// hybrid_scheduling_demo: watch the dual-approximation scheduler work.
//
// Builds a synthetic task set with heterogeneous GPU acceleration, walks one
// dual-approximation step at a chosen guess λ (the greedy knapsack of
// Fig. 4, the list schedule of Fig. 5), runs the full binary search, and
// compares the resulting Gantt chart and makespan against the baseline
// policies the paper cites.
//
//   ./hybrid_scheduling_demo --tasks 24 --cpus 4 --gpus 2 --seed 3
#include <algorithm>
#include <exception>
#include <iostream>

#include "sched/baselines.h"
#include "sched/dual_approx.h"
#include "sched/list_scheduling.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) try {
  using namespace swdual;
  using namespace swdual::sched;

  CliParser cli("hybrid_scheduling_demo",
                "dual-approximation scheduling walkthrough");
  cli.add_option("tasks", "number of tasks", "24");
  cli.add_option("cpus", "CPUs (m)", "4");
  cli.add_option("gpus", "GPUs (k)", "2");
  cli.add_option("seed", "random seed", "3");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }

  const auto n = cli.option_uint("tasks");
  const HybridPlatform platform{
      cli.option_uint("cpus"),
      cli.option_uint("gpus")};
  Rng rng(static_cast<std::uint64_t>(cli.option_uint("seed")));

  std::vector<Task> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    const double cpu = 5.0 + rng.uniform() * 95.0;
    const double accel = 1.0 + rng.uniform() * 19.0;  // 1x..20x speedup
    tasks.push_back({i, cpu, cpu / accel});
  }

  std::cout << "tasks (sorted by acceleration ratio, the knapsack priority):\n";
  TextTable task_table;
  task_table.set_header({"task", "p_cpu", "p_gpu", "accel"});
  auto by_ratio = tasks;
  std::sort(by_ratio.begin(), by_ratio.end(),
            [](const Task& a, const Task& b) { return a.accel() > b.accel(); });
  for (const Task& t : by_ratio) {
    task_table.add_row({std::to_string(t.id), TextTable::fmt(t.cpu_time, 1),
                        TextTable::fmt(t.gpu_time, 1),
                        TextTable::fmt(t.accel(), 1)});
  }
  std::cout << task_table.render() << '\n';

  // One visible dual-approximation step.
  const double lb = makespan_lower_bound(tasks, platform);
  std::cout << "certified lower bound on OPT: " << lb << "\n\n";
  for (const double lambda : {lb * 0.6, lb, lb * 1.3}) {
    const DualStepResult step = dual_approx_step(tasks, platform, lambda);
    std::cout << "dual_approx_step(lambda=" << TextTable::fmt(lambda, 1)
              << "): ";
    if (!step.feasible) {
      std::cout << "NO — no schedule of length <= lambda exists\n";
    } else {
      std::cout << "YES — schedule with makespan "
                << TextTable::fmt(step.schedule.makespan(), 1) << " <= 2*lambda ("
                << TextTable::fmt(2 * lambda, 1) << "); GPU area "
                << TextTable::fmt(step.gpu_area, 1) << ", CPU area "
                << TextTable::fmt(step.cpu_area, 1) << '\n';
    }
  }

  // Full binary search + baselines.
  DualSearchStats stats;
  const Schedule dual = swdual_schedule(tasks, platform, 1e-4, &stats);
  std::cout << "\nbinary search: " << stats.iterations
            << " iterations, final lambda " << TextTable::fmt(stats.final_lambda, 2)
            << '\n';

  TextTable results;
  results.set_header({"policy", "makespan", "vs lower bound", "idle %"});
  const auto report = [&](const std::string& name, const Schedule& schedule) {
    const ScheduleMetrics metrics = compute_metrics(schedule, platform);
    results.add_row({name, TextTable::fmt(metrics.makespan, 1),
                     TextTable::fmt(metrics.makespan / lb, 2),
                     TextTable::fmt(metrics.idle_fraction * 100, 1)});
  };
  report("swdual (dual approx)", dual);
  report("swdual-refined", swdual_schedule_refined(tasks, platform));
  report("self-scheduling [10]", self_scheduling(tasks, platform));
  report("equal-power [11]", equal_power(tasks, platform));
  report("proportional [12]", proportional_static(tasks, platform));
  report("lpt", lpt_hybrid(tasks, platform));
  std::cout << '\n' << results.render();

  std::cout << "\nSWDUAL Gantt chart (letters = tasks):\n"
            << render_gantt(dual, platform)
            << "\nself-scheduling Gantt chart:\n"
            << render_gantt(self_scheduling(tasks, platform), platform);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "error: " << error.what() << '\n';
  return 1;
}
