// database_search: a small but complete protein-search tool in the spirit of
// the paper's SWDUAL binary.
//
// Searches query sequences against a database on a hybrid (CPU + virtual
// GPU) platform with a selectable allocation policy, and prints ranked hits
// with timing. Inputs may be FASTA or SWDB; with --generate a synthetic
// Table III database is created on the fly.
//
// Examples:
//   ./database_search --generate ensembl_dog --scale 200 --queries 5
//   ./database_search --db db.fa --query-file queries.fa --cpus 2 --gpus 2
//   ./database_search --generate uniprot --scale 500 --policy self-scheduling
#include <fstream>
#include <iostream>

#include "master/master.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "seq/dbgen.h"
#include "seq/fasta.h"
#include "seq/queryset.h"
#include "seq/swdb.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/strings.h"

namespace {

using namespace swdual;

master::AllocationPolicy parse_policy(const std::string& name) {
  if (name == "swdual") return master::AllocationPolicy::kSwdual;
  if (name == "swdual-refined") return master::AllocationPolicy::kSwdualRefined;
  if (name == "self-scheduling") {
    return master::AllocationPolicy::kSelfScheduling;
  }
  if (name == "equal-power") return master::AllocationPolicy::kEqualPower;
  if (name == "proportional") return master::AllocationPolicy::kProportional;
  if (name == "lpt") return master::AllocationPolicy::kLpt;
  throw InvalidArgument("unknown policy: " + name);
}

std::vector<seq::Sequence> load_sequences(const std::string& path) {
  if (ends_with(path, ".swdb")) {
    return seq::SwdbReader(path).read_all();
  }
  return seq::read_fasta_file(path, seq::AlphabetKind::kProtein);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("database_search",
                "hybrid Smith-Waterman database search (SWDUAL)");
  cli.add_option("db", "database file (.fa/.fasta or .swdb)", "");
  cli.add_option("query-file", "query FASTA file ('' = sample from db)", "");
  cli.add_option("generate",
                 "generate a synthetic Table III database instead of --db "
                 "(uniprot, ensembl_dog, ensembl_rat, refseq_human, "
                 "refseq_mouse)",
                 "");
  cli.add_option("scale", "database scale denominator for --generate", "200");
  cli.add_option("queries", "number of sampled queries", "5");
  cli.add_option("cpus", "CPU workers (m)", "1");
  cli.add_option("gpus", "virtual GPU workers (k)", "1");
  cli.add_option("threads",
                 "intra-task threads per CPU worker (chunked parallel scan)",
                 "1");
  cli.add_option("policy",
                 "swdual | swdual-refined | self-scheduling | equal-power | "
                 "proportional | lpt",
                 "swdual");
  cli.add_option("backend",
                 "SIMD backend for the CPU kernels: auto | scalar | sse2 | "
                 "avx2 | avx512 (auto = widest the host supports)",
                 "auto");
  cli.add_option("top", "hits reported per query", "5");
  cli.add_option("filter-mode",
                 "two-stage search filter: off (exact full scan) | heuristic "
                 "(banded screen, exact rescan of candidates)",
                 "off");
  cli.add_option("band",
                 "half-width of the screening band (--filter-mode heuristic)",
                 "32");
  cli.add_option("keep-factor",
                 "screened candidates kept per requested hit "
                 "(--filter-mode heuristic)",
                 "4.0");
  cli.add_option("annotate",
                 "per-hit annotation: off | stats (e-value + bit score) | "
                 "stats+cigar (adds a traceback CIGAR)",
                 "off");
  cli.add_option("evalue",
                 "drop hits with e-value above this cutoff "
                 "(--annotate stats or stats+cigar; inf = keep all)",
                 "10");
  cli.add_flag("gantt", "print the planned Gantt chart");
  cli.add_option("trace",
                 "write a Chrome trace-event JSON timeline (open with "
                 "chrome://tracing or ui.perfetto.dev) to this file",
                 "");
  cli.add_flag("metrics", "print the runtime metrics registry after the run");

  try {
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::cout << cli.usage();
      return 0;
    }

    std::vector<seq::Sequence> db;
    if (!cli.option("generate").empty()) {
      seq::DatabaseProfile profile = seq::table3_profile(
          cli.option("generate"),
          cli.option_uint("scale"));
      std::cerr << "generating " << profile.num_sequences
                << " synthetic sequences for " << profile.name << "...\n";
      db = seq::generate_database(profile);
    } else if (!cli.option("db").empty()) {
      db = load_sequences(cli.option("db"));
    } else {
      std::cerr << "need --db or --generate (see --help)\n";
      return 2;
    }

    std::vector<seq::Sequence> queries;
    if (!cli.option("query-file").empty()) {
      queries = seq::read_fasta_file(cli.option("query-file"),
                                     seq::AlphabetKind::kProtein);
    } else {
      queries = seq::sample_query_set(
          db, cli.option_uint("queries"), 100, 5000,
          42);
    }

    master::MasterConfig config;
    config.cpu_workers = cli.option_uint("cpus");
    config.gpu_workers = cli.option_uint("gpus");
    config.policy = parse_policy(cli.option("policy"));
    config.top_hits = cli.option_uint("top");
    config.threads_per_cpu_worker =
        cli.option_uint("threads");
    if (!align::parse_backend(cli.option("backend"), config.cpu_backend)) {
      throw InvalidArgument("unknown backend: " + cli.option("backend") +
                            " (want auto|scalar|sse2|avx2|avx512)");
    }
    if (!align::parse_filter_mode(cli.option("filter-mode"),
                                  config.filter.mode)) {
      throw InvalidArgument("unknown filter mode: " +
                            cli.option("filter-mode") +
                            " (want off|heuristic)");
    }
    config.filter.band = cli.option_uint("band");
    config.filter.keep_factor = cli.option_double("keep-factor");
    config.filter.validate();
    if (!align::parse_annotate_mode(cli.option("annotate"),
                                    config.annotate.mode)) {
      throw InvalidArgument("unknown annotate mode: " + cli.option("annotate") +
                            " (want off|stats|stats+cigar)");
    }
    config.annotate.evalue_cutoff = cli.option_positive_double("evalue");
    config.annotate.validate();
    align::StatsCache stats_cache;
    std::shared_ptr<const align::KarlinAltschulParams> stats;
    if (config.annotate.enabled()) {
      std::cerr << "calibrating Karlin-Altschul parameters...\n";
      stats = stats_cache.acquire(config.scheme, seq::Alphabet::protein(),
                                  cli.option("db").empty()
                                      ? cli.option("generate")
                                      : cli.option("db"));
      config.stats = stats.get();
    }
    // Fail fast with a clear message (resolve_backend would also throw, but
    // only once the first CPU task runs).
    if (config.cpu_backend != align::Backend::kAuto &&
        !align::backend_available(config.cpu_backend)) {
      throw InvalidArgument(
          std::string("backend not available on this host: ") +
          align::backend_name(config.cpu_backend));
    }

    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    const std::string trace_path = cli.option("trace");
    if (!trace_path.empty() || cli.flag("metrics")) {
      config.tracer = &tracer;
      config.metrics = &metrics;
    }

    std::cerr << "searching " << queries.size() << " queries against "
              << db.size() << " records with policy "
              << master::policy_name(config.policy) << " on "
              << config.cpu_workers << " CPU (x"
              << config.threads_per_cpu_worker << " threads, "
              << align::backend_name(
                     align::resolve_backend(config.cpu_backend))
              << " backend) + " << config.gpu_workers << " GPU workers...\n";
    const master::SearchReport report =
        master::run_search(queries, db, config);

    for (const auto& result : report.results) {
      const auto& query = queries[result.query_index];
      std::cout << "query " << query.id << " (" << query.length() << " aa)\n";
      for (const auto& hit : result.hits) {
        std::cout << "  score " << hit.score << "  " << db[hit.db_index].id;
        if (hit.annotation) {
          std::cout << "  E=" << hit.annotation->evalue
                    << "  bits=" << hit.annotation->bits;
          if (!hit.annotation->cigar.empty()) {
            std::cout << "  cigar=" << hit.annotation->cigar;
          }
        }
        std::cout << '\n';
      }
    }
    std::cout << "\ncells:            " << report.total_cells
              << "\nwall time:        " << report.wall_seconds << " s"
              << "\nvirtual makespan: " << report.virtual_makespan
              << " s (paper-hardware model)"
              << "\nvirtual GCUPS:    " << report.virtual_gcups
              << "\nvirtual idle:     " << report.virtual_idle_fraction * 100
              << " %\n";
    if (config.filter.enabled()) {
      std::cout << "filter:           " << report.filter.candidates
                << " candidates, " << report.filter.rescans
                << " exact rescans, " << report.filter.band_uncertain
                << " band-uncertain (db records: "
                << db.size() * report.results.size() << " screened)\n";
    }
    if (cli.flag("gantt") && !report.planned.empty()) {
      std::cout << '\n'
                << sched::render_gantt(
                       report.planned,
                       {config.cpu_workers, config.gpu_workers});
    }
    if (!trace_path.empty()) {
      obs::ChromeTraceOptions trace_options;
      trace_options.track_names[obs::kMasterTrack] = "master";
      for (std::size_t g = 0; g < config.gpu_workers; ++g) {
        trace_options.track_names[obs::worker_track(g)] =
            "gpu" + std::to_string(g);
      }
      for (std::size_t c = 0; c < config.cpu_workers; ++c) {
        trace_options.track_names[obs::worker_track(config.gpu_workers + c)] =
            "cpu" + std::to_string(c);
      }
      std::ofstream out(trace_path);
      if (!out) throw IoError("cannot write trace file: " + trace_path);
      obs::write_chrome_trace(out, tracer.flush(), trace_options);
      std::cerr << "trace written to " << trace_path << '\n';
    }
    if (cli.flag("metrics")) {
      std::cout << '\n' << metrics.dump();
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
