// swdb_convert: FASTA <-> SWDB conversion utility (paper §IV's format step).
//
//   ./swdb_convert db.fasta db.swdb            # FASTA -> binary (v2)
//   ./swdb_convert --db-version 1 a.fa b.swdb  # emit the legacy v1 layout
//   ./swdb_convert db.swdb db.fasta            # binary -> FASTA
//   ./swdb_convert --stats db.swdb             # print database statistics
//
// --stats on an .swdb input reads only the header and index sections —
// statistics for a multi-gigabyte database cost a few kilobytes of I/O.
#include <iostream>

#include "seq/dbstats.h"
#include "seq/fasta.h"
#include "seq/swdb.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

void print_stats(const swdual::seq::DatabaseStats& stats,
                 const std::string& format) {
  using swdual::TextTable;
  TextTable table;
  table.set_header({"metric", "value"});
  table.add_row({"format", format});
  table.add_row({"sequences", std::to_string(stats.num_sequences)});
  table.add_row({"residues", std::to_string(stats.total_residues)});
  table.add_row({"min length", std::to_string(stats.min_length)});
  table.add_row({"max length", std::to_string(stats.max_length)});
  table.add_row({"mean length", TextTable::fmt(stats.mean_length, 1)});
  std::cout << table.render();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swdual;

  CliParser cli("swdb_convert", "convert between FASTA and SWDB");
  cli.add_flag("stats", "print statistics of the input instead of converting");
  cli.add_option("alphabet", "protein | dna | rna", "protein");
  cli.add_option("db-version",
                 "SWDB container version to write: 2 (pre-encoded, default) "
                 "| 1 (legacy)",
                 "2");

  try {
    cli.parse(argc, argv);
    if (cli.help_requested() || cli.positional().empty()) {
      std::cout << cli.usage()
                << "\nusage: swdb_convert [--stats] [--db-version 1|2] "
                   "<input> [output]\n";
      return cli.help_requested() ? 0 : 2;
    }

    seq::AlphabetKind alphabet = seq::AlphabetKind::kProtein;
    if (cli.option("alphabet") == "dna") alphabet = seq::AlphabetKind::kDna;
    if (cli.option("alphabet") == "rna") alphabet = seq::AlphabetKind::kRna;

    std::uint32_t version = seq::kSwdbVersionLatest;
    if (cli.option("db-version") == "1") {
      version = seq::kSwdbVersion1;
    } else if (cli.option("db-version") != "2") {
      std::cerr << "unknown --db-version (use 1 or 2)\n";
      return 2;
    }

    const std::string& input = cli.positional()[0];
    const bool input_is_swdb = ends_with(input, ".swdb");

    if (cli.flag("stats")) {
      WallTimer timer;
      seq::DatabaseStats stats;
      std::string format;
      if (input_is_swdb) {
        // Index-only path: lengths come straight from the SWDB index
        // section, no record is decoded.
        const seq::SwdbReader reader(input);
        stats = seq::compute_stats(reader);
        format = "swdb v" + std::to_string(reader.version()) +
                 (reader.pre_encoded() ? " (pre-encoded)" : "");
      } else {
        stats = seq::compute_stats(seq::read_fasta_file(input, alphabet));
        format = "fasta";
      }
      std::cerr << "collected stats in " << TextTable::fmt(timer.millis(), 1)
                << " ms\n";
      print_stats(stats, format);
      return 0;
    }

    WallTimer timer;
    const std::vector<seq::Sequence> records =
        input_is_swdb ? seq::SwdbReader(input).read_all()
                      : seq::read_fasta_file(input, alphabet);
    std::cerr << "read " << records.size() << " records in "
              << TextTable::fmt(timer.millis(), 1) << " ms\n";

    if (cli.positional().size() < 2) {
      std::cerr << "need an output path (or --stats)\n";
      return 2;
    }
    const std::string& output = cli.positional()[1];
    timer.reset();
    if (ends_with(output, ".swdb")) {
      seq::write_swdb(output, records, alphabet, version);
    } else {
      seq::write_fasta_file(output, records);
    }
    std::cerr << "wrote " << output << " in "
              << TextTable::fmt(timer.millis(), 1) << " ms\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
