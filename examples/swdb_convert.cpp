// swdb_convert: FASTA <-> SWDB conversion utility (paper §IV's format step).
//
//   ./swdb_convert db.fasta db.swdb          # FASTA -> binary
//   ./swdb_convert db.swdb db.fasta          # binary -> FASTA
//   ./swdb_convert --stats db.swdb           # print database statistics
#include <iostream>

#include "seq/dbstats.h"
#include "seq/fasta.h"
#include "seq/swdb.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace swdual;

  CliParser cli("swdb_convert", "convert between FASTA and SWDB");
  cli.add_flag("stats", "print statistics of the input instead of converting");
  cli.add_option("alphabet", "protein | dna | rna", "protein");

  try {
    cli.parse(argc, argv);
    if (cli.help_requested() || cli.positional().empty()) {
      std::cout << cli.usage()
                << "\nusage: swdb_convert [--stats] <input> [output]\n";
      return cli.help_requested() ? 0 : 2;
    }

    seq::AlphabetKind alphabet = seq::AlphabetKind::kProtein;
    if (cli.option("alphabet") == "dna") alphabet = seq::AlphabetKind::kDna;
    if (cli.option("alphabet") == "rna") alphabet = seq::AlphabetKind::kRna;

    const std::string& input = cli.positional()[0];
    WallTimer timer;
    const std::vector<seq::Sequence> records =
        ends_with(input, ".swdb")
            ? seq::SwdbReader(input).read_all()
            : seq::read_fasta_file(input, alphabet);
    std::cerr << "read " << records.size() << " records in "
              << TextTable::fmt(timer.millis(), 1) << " ms\n";

    if (cli.flag("stats")) {
      const seq::DatabaseStats stats = seq::compute_stats(records);
      TextTable table;
      table.set_header({"metric", "value"});
      table.add_row({"sequences", std::to_string(stats.num_sequences)});
      table.add_row({"residues", std::to_string(stats.total_residues)});
      table.add_row({"min length", std::to_string(stats.min_length)});
      table.add_row({"max length", std::to_string(stats.max_length)});
      table.add_row({"mean length", TextTable::fmt(stats.mean_length, 1)});
      std::cout << table.render();
      return 0;
    }

    if (cli.positional().size() < 2) {
      std::cerr << "need an output path (or --stats)\n";
      return 2;
    }
    const std::string& output = cli.positional()[1];
    timer.reset();
    if (ends_with(output, ".swdb")) {
      seq::write_swdb(output, records, alphabet);
    } else {
      seq::write_fasta_file(output, records);
    }
    std::cerr << "wrote " << output << " in "
              << TextTable::fmt(timer.millis(), 1) << " ms\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
