// Quickstart: the smallest useful tour of the SWDUAL library.
//
//   1. Reproduce the paper's Fig. 1 alignment example (global, linear gaps).
//   2. Score a protein pair with the Gotoh affine-gap oracle and the SIMD
//      kernels, and print the local alignment.
//   3. Run a small hybrid database search through the master–slave runtime.
//
// Build & run:  ./quickstart
#include <cstdio>
#include <exception>
#include <iostream>

#include "align/kernel_striped.h"
#include "align/scalar.h"
#include "align/search.h"
#include "align/traceback.h"
#include "master/master.h"
#include "seq/dbgen.h"
#include "seq/queryset.h"
#include "util/rng.h"

int main() try {
  using namespace swdual;

  // --- 1. Fig. 1: ACTTGTCCG vs ATTGTCAG, ma=+1 mi=-1 g=-2 ----------------
  std::cout << "== Fig. 1: global alignment, linear gap model ==\n";
  const auto s = seq::Sequence::from_text("s", "", seq::AlphabetKind::kDna,
                                          "ACTTGTCCG");
  const auto t = seq::Sequence::from_text("t", "", seq::AlphabetKind::kDna,
                                          "ATTGTCAG");
  const align::ScoreMatrix dna_scores =
      align::ScoreMatrix::uniform(seq::AlphabetKind::kDna, 1, -1);
  const align::Alignment fig1 = align::nw_align_linear(
      {s.residues.data(), s.residues.size()},
      {t.residues.data(), t.residues.size()}, dna_scores, -2);
  std::cout << align::render_alignment(fig1) << '\n';

  // --- 2. Local affine-gap alignment of two proteins ---------------------
  std::cout << "== Smith-Waterman / Gotoh local alignment (BLOSUM62) ==\n";
  const auto q = seq::Sequence::from_text(
      "q", "", seq::AlphabetKind::kProtein, "MKVLAWDERTNQGHKLMREWYV");
  const auto d = seq::Sequence::from_text(
      "d", "", seq::AlphabetKind::kProtein, "GGGMKVLAWDERTQGHKLMREWYVPPP");
  const align::ScoringScheme scheme;  // BLOSUM62, Gs=10, Ge=2
  const align::Alignment local = align::sw_align_affine(
      {q.residues.data(), q.residues.size()},
      {d.residues.data(), d.residues.size()}, scheme);
  std::cout << align::render_alignment(local);

  const int striped = align::striped_score(
                          {q.residues.data(), q.residues.size()},
                          {d.residues.data(), d.residues.size()}, scheme)
                          .score;
  std::cout << "striped SIMD kernel agrees: " << std::boolalpha
            << (striped == local.score) << "\n\n";

  // --- 3. Hybrid database search (1 CPU worker + 1 virtual GPU worker) ---
  std::cout << "== Hybrid master-slave search (SWDUAL allocation) ==\n";
  seq::DatabaseProfile profile{"demo", 200, 50, 400, 5.0, 0.5, 7};
  const auto db = seq::generate_database(profile);
  const auto queries = seq::sample_query_set(db, 5, 50, 400, 11);

  master::MasterConfig config;
  config.cpu_workers = 1;
  config.gpu_workers = 1;
  config.policy = master::AllocationPolicy::kSwdual;
  config.top_hits = 3;
  const master::SearchReport report = master::run_search(queries, db, config);

  for (const auto& result : report.results) {
    std::printf("query %zu (%zu aa): ", result.query_index,
                queries[result.query_index].length());
    for (const auto& hit : result.hits) {
      std::printf(" %s=%d", db[hit.db_index].id.c_str(), hit.score);
    }
    std::printf("\n");
  }
  std::printf(
      "\n%zu queries x %zu records: %.0f Mcells, wall %.3f s; modeled on "
      "paper hardware: %.3f s (%.1f GCUPS)\n",
      queries.size(), db.size(),
      static_cast<double>(report.total_cells) / 1e6, report.wall_seconds,
      report.virtual_makespan, report.virtual_gcups);
  return 0;
} catch (const std::exception& error) {
  std::cerr << "error: " << error.what() << '\n';
  return 1;
}
