// protein_annotation: the paper's motivating workload as an application.
//
// "Once a new biological sequence is discovered, its functional/structural
// characteristics must be established. In order to do that, the newly
// discovered sequence is compared against other sequences, looking for
// similarities." (§I)
//
// This example plays that scenario end to end: a reference database with
// known annotations, a set of "newly discovered" sequences (mutated copies
// of database entries plus unrelated randoms), a hybrid SWDUAL search, and
// statistical significance (bit scores, E-values) deciding which queries
// inherit an annotation and which are reported as novel.
#include <exception>
#include <iostream>

#include "align/statistics.h"
#include "core/report.h"
#include "master/master.h"
#include "seq/dbgen.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) try {
  using namespace swdual;

  CliParser cli("protein_annotation",
                "annotate novel sequences against a reference database");
  cli.add_option("db-size", "reference database size", "400");
  cli.add_option("novel", "number of novel sequences", "8");
  cli.add_option("evalue", "annotation E-value cutoff", "0.001");
  cli.add_option("seed", "random seed", "2014");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage();
    return 0;
  }

  Rng rng(static_cast<std::uint64_t>(cli.option_uint("seed")));
  const auto db_size = cli.option_uint("db-size");
  const auto novel_count = cli.option_uint("novel");
  const double cutoff = cli.option_positive_double("evalue");

  // Reference database: families named fam0.. with member sequences.
  std::vector<seq::Sequence> db;
  for (std::size_t i = 0; i < db_size; ++i) {
    seq::Sequence record = seq::random_protein(
        rng, "fam" + std::to_string(i % (db_size / 4)) + "_m" +
                 std::to_string(i / (db_size / 4)),
        static_cast<std::size_t>(rng.between(120, 450)));
    db.push_back(std::move(record));
  }

  // Novel sequences: half are mutated database members (annotatable), half
  // pure random (should stay unannotated).
  std::vector<seq::Sequence> queries;
  std::vector<bool> expect_hit;
  for (std::size_t i = 0; i < novel_count; ++i) {
    if (i % 2 == 0) {
      seq::Sequence q = db[rng.below(db.size())];
      // ~15% point mutations.
      for (auto& code : q.residues) {
        if (rng.uniform() < 0.15) {
          code = static_cast<std::uint8_t>(rng.below(20));
        }
      }
      q.id = "novel_" + std::to_string(i) + "_homolog";
      queries.push_back(std::move(q));
      expect_hit.push_back(true);
    } else {
      queries.push_back(seq::random_protein(
          rng, "novel_" + std::to_string(i) + "_orphan",
          static_cast<std::size_t>(rng.between(120, 450))));
      expect_hit.push_back(false);
    }
  }

  // Calibrate gapped Karlin–Altschul statistics for the default scheme.
  std::cerr << "calibrating gapped Gumbel parameters...\n";
  const align::KarlinAltschulParams params = align::calibrate_gapped_params(
      align::ScoringScheme{}, seq::amino_acid_frequencies(), 150, 150, 100,
      7);
  std::cerr << "  lambda = " << params.lambda << ", K = " << params.k
            << "\n\n";

  master::MasterConfig config;
  config.cpu_workers = 1;
  config.gpu_workers = 1;
  config.top_hits = 3;
  const master::SearchReport report = master::run_search(queries, db, config);

  std::uint64_t db_residues = 0;
  for (const auto& record : db) db_residues += record.length();

  std::cout << core::render_search_report(queries, db, report, params,
                                          cutoff);
  std::cout << "\nannotation decisions (E-value cutoff " << cutoff << "):\n";
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto hits = core::annotate_hits(report.results[q], params,
                                          queries[q].length(), db_residues);
    const bool significant = !hits.empty() && hits[0].evalue <= cutoff;
    std::cout << "  " << queries[q].id << ": ";
    if (significant) {
      const std::string& subject = db[hits[0].db_index].id;
      std::cout << "annotated from " << subject.substr(0, subject.find('_'))
                << " (E=" << hits[0].evalue << ")";
    } else {
      std::cout << "no significant homolog — novel family candidate";
    }
    std::cout << (significant == expect_hit[q] ? "  [as planted]"
                                               : "  [UNEXPECTED]")
              << '\n';
  }
  return 0;
} catch (const std::exception& error) {
  std::cerr << "error: " << error.what() << '\n';
  return 1;
}
