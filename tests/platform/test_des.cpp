// Unit/property tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "platform/des.h"
#include "sched/baselines.h"
#include "sched/dual_approx.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::platform {
namespace {

using sched::HybridPlatform;
using sched::PeType;
using sched::Task;

std::vector<Task> random_tasks(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    const double cpu = 1.0 + rng.uniform() * 50.0;
    tasks.push_back({i, cpu, cpu / (2.0 + rng.uniform() * 10.0)});
  }
  return tasks;
}

TEST(SimulateStatic, ReplaysScheduleCompactly) {
  const std::vector<Task> tasks = {{0, 4, 1}, {1, 4, 1}, {2, 4, 1}};
  const HybridPlatform platform{1, 1};
  sched::Schedule plan;
  plan.add({0, {PeType::kCpu, 0}, 0, 4});
  plan.add({1, {PeType::kCpu, 0}, 6, 10});  // gap 4..6 must compact away
  plan.add({2, {PeType::kGpu, 0}, 0, 1});
  const ExecutionTrace trace = simulate_static(plan, tasks, platform);
  EXPECT_DOUBLE_EQ(trace.makespan, 8.0);  // two CPU tasks back to back
  EXPECT_DOUBLE_EQ(trace.cpu_busy, 8.0);
  EXPECT_DOUBLE_EQ(trace.gpu_busy, 1.0);
}

TEST(SimulateStatic, MakespanNeverExceedsPlan) {
  Rng rng(9);
  for (int rep = 0; rep < 10; ++rep) {
    const auto tasks = random_tasks(30, rep + 100);
    const HybridPlatform platform{3, 2};
    const sched::Schedule plan = sched::swdual_schedule(tasks, platform);
    const ExecutionTrace trace = simulate_static(plan, tasks, platform);
    EXPECT_LE(trace.makespan, plan.makespan() + 1e-9);
    EXPECT_EQ(trace.entries.size(), tasks.size());
  }
}

TEST(SimulateStatic, IdleAccountingConsistent) {
  const auto tasks = random_tasks(20, 5);
  const HybridPlatform platform{2, 2};
  const sched::Schedule plan = sched::lpt_hybrid(tasks, platform);
  const ExecutionTrace trace = simulate_static(plan, tasks, platform);
  const double capacity = trace.makespan * 4;
  EXPECT_NEAR(trace.total_idle, capacity - trace.cpu_busy - trace.gpu_busy,
              1e-9);
  EXPECT_GE(trace.idle_fraction(platform), 0.0);
  EXPECT_LT(trace.idle_fraction(platform), 1.0);
}

TEST(SimulateStatic, UnknownTaskRejected) {
  sched::Schedule plan;
  plan.add({42, {PeType::kCpu, 0}, 0, 1});
  EXPECT_THROW((simulate_static(plan, {{0, 1, 1}}, {1, 1})),
               InvalidArgument);
}

TEST(SimulateSelfScheduling, SingleWorkerSerializes) {
  const auto tasks = random_tasks(10, 6);
  const ExecutionTrace trace = simulate_self_scheduling(tasks, {1, 0});
  double total = 0;
  for (const auto& t : tasks) total += t.cpu_time;
  EXPECT_NEAR(trace.makespan, total, 1e-9);
}

TEST(SimulateSelfScheduling, GpusGrabWorkFirst) {
  // Two tasks, one GPU + one CPU: the first task must land on the GPU.
  const std::vector<Task> tasks = {{0, 10, 1}, {1, 10, 1}};
  const ExecutionTrace trace = simulate_self_scheduling(tasks, {1, 1});
  ASSERT_EQ(trace.entries.size(), 2u);
  EXPECT_EQ(trace.entries[0].pe.type, PeType::kGpu);
}

TEST(SimulateSelfScheduling, MatchesListSchedulingSemantics) {
  // DES self-scheduling must equal the static self_scheduling baseline's
  // makespan (same greedy, different implementation).
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto tasks = random_tasks(40, seed);
    const HybridPlatform platform{3, 2};
    const double des = simulate_self_scheduling(tasks, platform).makespan;
    const double reference =
        sched::self_scheduling(tasks, platform).makespan();
    EXPECT_NEAR(des, reference, 1e-9) << "seed " << seed;
  }
}

TEST(SimulateSelfScheduling, DispatchLatencySlowsRun) {
  const auto tasks = random_tasks(20, 7);
  const HybridPlatform platform{2, 2};
  const double fast = simulate_self_scheduling(tasks, platform, 0.0).makespan;
  const double slow = simulate_self_scheduling(tasks, platform, 0.5).makespan;
  EXPECT_GT(slow, fast);
}

TEST(SimulateSelfScheduling, NegativeLatencyRejected) {
  EXPECT_THROW((simulate_self_scheduling({{0, 1, 1}}, {1, 1}, -1.0)),
               InvalidArgument);
}

TEST(ExecutionTraceTest, EmptyWorkloadIdleFractionIsZeroNotNaN) {
  // Regression: 0/0 used to leak NaN out of idle_fraction. The guard must
  // match the master's convention — an empty run is 0 % idle.
  const HybridPlatform platform{2, 2};
  const ExecutionTrace static_trace =
      simulate_static(sched::Schedule{}, {}, platform);
  EXPECT_DOUBLE_EQ(static_trace.makespan, 0.0);
  EXPECT_TRUE(std::isfinite(static_trace.idle_fraction(platform)));
  EXPECT_DOUBLE_EQ(static_trace.idle_fraction(platform), 0.0);

  const ExecutionTrace dynamic_trace = simulate_self_scheduling({}, platform);
  EXPECT_TRUE(std::isfinite(dynamic_trace.idle_fraction(platform)));
  EXPECT_DOUBLE_EQ(dynamic_trace.idle_fraction(platform), 0.0);

  // Degenerate platform: fraction stays clamped and finite either way.
  ExecutionTrace weird;
  weird.makespan = 1.0;
  weird.total_idle = 99.0;
  EXPECT_DOUBLE_EQ(weird.idle_fraction({2, 2}), 1.0);  // clamped to [0, 1]
}

}  // namespace
}  // namespace swdual::platform
