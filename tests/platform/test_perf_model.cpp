// Unit tests for the calibrated performance model.
#include <gtest/gtest.h>

#include "platform/perf_model.h"

namespace swdual::platform {
namespace {

TEST(WorkerClass, SecondsScaleLinearlyWithCells) {
  const WorkerClass w{2.0, 0.0};  // 2 GCUPS, no overhead
  EXPECT_DOUBLE_EQ(w.seconds_for(2'000'000'000ULL), 1.0);
  EXPECT_DOUBLE_EQ(w.seconds_for(4'000'000'000ULL), 2.0);
}

TEST(WorkerClass, OverheadAdds) {
  const WorkerClass w{1.0, 0.5};
  EXPECT_DOUBLE_EQ(w.seconds_for(0), 0.5);
  EXPECT_DOUBLE_EQ(w.seconds_for(1'000'000'000ULL), 1.5);
}

TEST(PerfModel, ClassOrderingMatchesTable2) {
  // Table II column 1: SWPS3 slowest, then STRIPED, SWIPE, CUDASW++ fastest.
  const PerfModel model;
  EXPECT_LT(model.swps3_cpu.gcups, model.striped_cpu.gcups);
  EXPECT_LT(model.striped_cpu.gcups, model.swipe_cpu.gcups);
  EXPECT_LT(model.swipe_cpu.gcups, model.cudasw_gpu.gcups);
}

TEST(PerfModel, SwdualUsesSwipeAndCudaswClasses) {
  const PerfModel model;
  EXPECT_EQ(&model.cpu_worker(), &model.swipe_cpu);
  EXPECT_EQ(&model.gpu_worker(), &model.cudasw_gpu);
}

TEST(PerfModel, MakeTaskDerivesBothTimes) {
  const PerfModel model;
  const sched::Task task = model.make_task(3, 83'000'000'000ULL);  // 83 Gcells
  EXPECT_EQ(task.id, 3u);
  EXPECT_NEAR(task.cpu_time, 83.0 / 8.3 + model.swipe_cpu.task_overhead, 1e-9);
  EXPECT_NEAR(task.gpu_time, 83.0 / 24.9 + model.cudasw_gpu.task_overhead,
              1e-9);
  EXPECT_GT(task.accel(), 1.0);  // sequence comparison is GPU-accelerated
}

TEST(PerfModel, Table2SingleWorkerTimesReproduced) {
  // The calibration promise: a 1.96e13-cell workload (paper estimate for 40
  // queries vs UniProt) lands near Table II's single-worker times.
  const PerfModel model;
  const std::uint64_t cells = 19'600'000'000'000ULL;
  EXPECT_NEAR(model.swps3_cpu.seconds_for(cells), 69208.2, 69208.2 * 0.05);
  EXPECT_NEAR(model.striped_cpu.seconds_for(cells), 7190.0, 7190.0 * 0.05);
  EXPECT_NEAR(model.swipe_cpu.seconds_for(cells), 2367.24, 2367.24 * 0.05);
  EXPECT_NEAR(model.cudasw_gpu.seconds_for(cells), 785.26, 785.26 * 0.05);
}

TEST(Calibrate, MeasuresPositiveRealThroughput) {
  const double gcups = calibrate_cpu_gcups(64, 16, 64);
  EXPECT_GT(gcups, 0.0);
}

}  // namespace
}  // namespace swdual::platform
