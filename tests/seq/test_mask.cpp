// Tests for low-complexity masking.
#include <gtest/gtest.h>

#include "seq/dbgen.h"
#include "seq/mask.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::seq {
namespace {

TEST(Entropy, UniformWindowMaximal) {
  // 4 distinct residues equally often: entropy = 2 bits.
  const std::vector<std::uint8_t> window = {0, 1, 2, 3, 0, 1, 2, 3};
  EXPECT_NEAR(shannon_entropy(window), 2.0, 1e-12);
}

TEST(Entropy, HomopolymerZero) {
  const std::vector<std::uint8_t> window(20, 5);
  EXPECT_DOUBLE_EQ(shannon_entropy(window), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy({}), 0.0);
}

TEST(Mask, PolyRunGetsMasked) {
  Rng rng(1);
  Sequence s = random_protein(rng, "s", 60);
  // Insert a 20-residue poly-K run in the middle.
  for (std::size_t i = 20; i < 40; ++i) s.residues[i] = 11;
  const std::vector<bool> flags = low_complexity_mask(s.residues);
  std::size_t flagged_in_run = 0;
  for (std::size_t i = 22; i < 38; ++i) flagged_in_run += flags[i];
  EXPECT_GE(flagged_in_run, 14u);  // run core is caught
}

TEST(Mask, RandomProteinMostlyUntouched) {
  Rng rng(2);
  const Sequence s = random_protein(rng, "s", 2000);
  const std::vector<bool> flags = low_complexity_mask(s.residues);
  std::size_t flagged = 0;
  for (bool f : flags) flagged += f;
  // Natural-composition random protein has high local entropy.
  EXPECT_LT(flagged, 2000u / 10);
}

TEST(Mask, MaskReplacesWithWildcardAndCounts) {
  Sequence s;
  s.alphabet = AlphabetKind::kProtein;
  s.residues.assign(30, 7);  // poly-G
  const std::size_t masked = mask_low_complexity(s);
  EXPECT_EQ(masked, 30u);
  for (std::uint8_t code : s.residues) {
    EXPECT_EQ(code, Alphabet::protein().wildcard_code());
  }
  // Idempotent: nothing new to mask.
  EXPECT_EQ(mask_low_complexity(s), 0u);
}

TEST(Mask, ShortSequenceWholeWindowRule) {
  Sequence s;
  s.alphabet = AlphabetKind::kProtein;
  s.residues = {3, 3, 3, 3};  // shorter than the window, zero entropy
  EXPECT_EQ(mask_low_complexity(s), 4u);

  Sequence diverse;
  diverse.alphabet = AlphabetKind::kProtein;
  diverse.residues = {0, 5, 9, 13, 17, 2, 7};  // high entropy, short
  EXPECT_EQ(mask_low_complexity(diverse), 0u);
}

TEST(Mask, EmptySequence) {
  Sequence s;
  s.alphabet = AlphabetKind::kProtein;
  EXPECT_EQ(mask_low_complexity(s), 0u);
}

TEST(Mask, WindowTooSmallRejected) {
  const std::vector<std::uint8_t> residues(10, 0);
  MaskConfig config;
  config.window = 1;
  EXPECT_THROW(low_complexity_mask(residues, config), InvalidArgument);
}

TEST(Mask, ThresholdControlsAggressiveness) {
  Rng rng(3);
  const Sequence s = random_protein(rng, "s", 500);
  MaskConfig lax;
  lax.entropy_threshold = 0.5;
  MaskConfig strict;
  strict.entropy_threshold = 4.0;  // near the 20-letter maximum
  std::size_t lax_count = 0, strict_count = 0;
  for (bool f : low_complexity_mask(s.residues, lax)) lax_count += f;
  for (bool f : low_complexity_mask(s.residues, strict)) strict_count += f;
  EXPECT_LE(lax_count, strict_count);
  EXPECT_EQ(strict_count, 500u);  // everything is below 4.0 bits in 12-windows
}

}  // namespace
}  // namespace swdual::seq
