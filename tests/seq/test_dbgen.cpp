// Unit tests for synthetic database generation (Table III stand-ins).
#include <gtest/gtest.h>

#include "seq/dbgen.h"
#include "seq/dbstats.h"
#include "util/error.h"

namespace swdual::seq {
namespace {

TEST(Table3Profiles, UnscaledCountsMatchThePaper) {
  const auto profiles = table3_profiles(1);
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(table3_profile("ensembl_dog", 1).num_sequences, 25160u);
  EXPECT_EQ(table3_profile("ensembl_rat", 1).num_sequences, 32971u);
  EXPECT_EQ(table3_profile("refseq_human", 1).num_sequences, 34705u);
  EXPECT_EQ(table3_profile("refseq_mouse", 1).num_sequences, 29437u);
  EXPECT_EQ(table3_profile("uniprot", 1).num_sequences, 537505u);
}

TEST(Table3Profiles, ScalingDividesCounts) {
  EXPECT_EQ(table3_profile("uniprot", 20).num_sequences, 537505u / 20);
  EXPECT_EQ(table3_profile("ensembl_dog", 20).num_sequences, 25160u / 20);
}

TEST(Table3Profiles, UnknownNameThrows) {
  EXPECT_THROW(table3_profile("swissprot", 1), InvalidArgument);
}

TEST(Table3Profiles, ZeroScaleRejected) {
  EXPECT_THROW(table3_profiles(0), InvalidArgument);
}

TEST(AminoAcidFrequencies, SumToRoughlyOne) {
  double total = 0;
  for (double f : amino_acid_frequencies()) total += f;
  EXPECT_EQ(amino_acid_frequencies().size(), 20u);
  EXPECT_NEAR(total, 1.0, 0.02);
}

TEST(RandomProtein, OnlyStandardResidues) {
  Rng rng(1);
  const Sequence s = random_protein(rng, "x", 5000);
  EXPECT_EQ(s.length(), 5000u);
  for (std::uint8_t code : s.residues) EXPECT_LT(code, 20);
}

TEST(RandomProtein, CompositionTracksBackground) {
  Rng rng(2);
  const Sequence s = random_protein(rng, "x", 200000);
  std::vector<std::size_t> counts(20, 0);
  for (std::uint8_t code : s.residues) counts[code]++;
  const auto& freqs = amino_acid_frequencies();
  for (std::size_t a = 0; a < 20; ++a) {
    const double observed = double(counts[a]) / 200000.0;
    EXPECT_NEAR(observed, freqs[a], 0.01) << "residue code " << a;
  }
}

TEST(GenerateDatabase, DeterministicInSeed) {
  DatabaseProfile p{"t", 50, 10, 500, 5.0, 0.5, 99};
  const auto a = generate_database(p);
  const auto b = generate_database(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(GenerateDatabase, DifferentSeedsDiffer) {
  DatabaseProfile p{"t", 50, 10, 500, 5.0, 0.5, 99};
  DatabaseProfile q = p;
  q.seed = 100;
  EXPECT_FALSE(generate_database(p)[5] == generate_database(q)[5]);
}

TEST(GenerateDatabase, RespectsLengthBoundsAndPinsExtremes) {
  DatabaseProfile p{"t", 200, 100, 4996, 5.7, 0.65, 101};
  const auto records = generate_database(p);
  const DatabaseStats stats = compute_stats(records);
  EXPECT_EQ(stats.num_sequences, 200u);
  EXPECT_EQ(stats.min_length, 100u);   // pinned extreme
  EXPECT_EQ(stats.max_length, 4996u);  // pinned extreme
  for (const auto& r : records) {
    EXPECT_GE(r.length(), 100u);
    EXPECT_LE(r.length(), 4996u);
  }
}

TEST(GenerateDatabase, LengthDistributionHasLognormalMedian) {
  DatabaseProfile p{"t", 4000, 1, 100000, 5.7, 0.65, 7};
  const auto records = generate_database(p);
  std::vector<std::size_t> lengths;
  for (const auto& r : records) lengths.push_back(r.length());
  std::sort(lengths.begin(), lengths.end());
  const double median = static_cast<double>(lengths[lengths.size() / 2]);
  EXPECT_NEAR(median, std::exp(5.7), std::exp(5.7) * 0.1);
}

TEST(GenerateDatabase, InvalidProfilesRejected) {
  EXPECT_THROW(generate_database({"t", 0, 1, 10, 5, 0.5, 1}), InvalidArgument);
  EXPECT_THROW(generate_database({"t", 5, 10, 2, 5, 0.5, 1}), InvalidArgument);
  EXPECT_THROW(generate_database({"t", 5, 0, 2, 5, 0.5, 1}), InvalidArgument);
}

}  // namespace
}  // namespace swdual::seq
