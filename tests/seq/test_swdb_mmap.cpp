// Unit tests for the mmap-backed zero-copy SWDB reader: the mapped view
// must be byte-for-byte identical to the streaming reader on both container
// versions, and v2 residues must come back 64-byte aligned and wildcard
// padded, ready for direct SIMD consumption.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "seq/alphabet.h"
#include "seq/dbgen.h"
#include "seq/swdb.h"
#include "util/error.h"

namespace swdual::seq {
namespace {

class SwdbMmapTest : public ::testing::Test {
 protected:
  // One file per test case: ctest runs cases as concurrent processes, and a
  // shared path would let one process truncate a file another has mapped
  // (SIGBUS on the next page touch).
  std::string path_ =
      ::testing::TempDir() + "/swdual_swdb_mmap_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".swdb";
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<Sequence> sample_records() {
    std::vector<Sequence> records;
    records.push_back(
        Sequence::from_text("r0", "first", AlphabetKind::kProtein, "MKVLAW"));
    records.push_back(
        Sequence::from_text("r1", "", AlphabetKind::kProtein, "A"));
    records.push_back(Sequence::from_text("r2", "long one",
                                          AlphabetKind::kProtein,
                                          std::string(1000, 'K')));
    return records;
  }

  /// The core contract: every byte the mapped reader serves equals what the
  /// streaming reader decodes — same residues, ids, descriptions, lengths,
  /// lane order.
  void expect_matches_streaming(const std::string& path) {
    const SwdbReader stream(path);
    const MappedSwdb mapped(path);
    ASSERT_EQ(mapped.size(), stream.size());
    EXPECT_EQ(mapped.alphabet(), stream.alphabet());
    EXPECT_EQ(mapped.version(), stream.version());
    EXPECT_EQ(mapped.pre_encoded(), stream.pre_encoded());
    EXPECT_EQ(mapped.total_residues(), stream.total_residues());
    ASSERT_EQ(mapped.lane_order().size(), stream.lane_order().size());
    for (std::size_t k = 0; k < mapped.lane_order().size(); ++k) {
      EXPECT_EQ(mapped.lane_order()[k], stream.lane_order()[k]) << k;
    }
    for (std::size_t i = 0; i < mapped.size(); ++i) {
      const Sequence decoded = stream.read(i);
      EXPECT_EQ(mapped.length(i), decoded.length()) << "record " << i;
      EXPECT_EQ(mapped.record(i), decoded) << "record " << i;
      const auto span = mapped.residues(i);
      ASSERT_EQ(span.size(), decoded.residues.size()) << "record " << i;
      for (std::size_t b = 0; b < span.size(); ++b) {
        ASSERT_EQ(span[b], decoded.residues[b])
            << "record " << i << " byte " << b;
      }
      EXPECT_EQ(mapped.id(i), decoded.id);
      EXPECT_EQ(mapped.description(i), decoded.description);
    }
  }
};

TEST_F(SwdbMmapTest, MatchesStreamingReaderOnVersion2) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein, kSwdbVersion2);
  expect_matches_streaming(path_);
}

TEST_F(SwdbMmapTest, MatchesStreamingReaderOnVersion1) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein, kSwdbVersion1);
  expect_matches_streaming(path_);
}

TEST_F(SwdbMmapTest, MatchesStreamingOnGeneratedDatabaseBothVersions) {
  DatabaseProfile profile{"t", 300, 5, 250, 5.0, 0.5, 99};
  const auto records = generate_database(profile);
  for (std::uint32_t version : {kSwdbVersion1, kSwdbVersion2}) {
    write_swdb(path_, records, AlphabetKind::kProtein, version);
    expect_matches_streaming(path_);
  }
}

TEST_F(SwdbMmapTest, Version2ResiduesAre64ByteAligned) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein, kSwdbVersion2);
  const MappedSwdb mapped(path_);
  ASSERT_TRUE(mapped.pre_encoded());
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    const auto span = mapped.residues(i);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(span.data()) % kSwdbV2Block,
              0u)
        << "record " << i;
  }
}

TEST_F(SwdbMmapTest, Version2PadBytesAreWildcard) {
  const auto records = sample_records();
  write_swdb(path_, records, AlphabetKind::kProtein, kSwdbVersion2);
  const MappedSwdb mapped(path_);
  const std::uint8_t wildcard =
      Alphabet::get(AlphabetKind::kProtein).wildcard_code();
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    const auto span = mapped.residues(i);
    const std::size_t padded =
        (span.size() + kSwdbV2Block - 1) / kSwdbV2Block * kSwdbV2Block;
    // The bytes between the logical end and the block boundary belong to
    // this record's reservation; they must hold the alphabet wildcard so a
    // kernel over-reading a lane tail scores them deterministically.
    for (std::size_t b = span.size(); b < padded; ++b) {
      ASSERT_EQ(span.data()[b], wildcard) << "record " << i << " pad " << b;
    }
  }
}

TEST_F(SwdbMmapTest, ResidueViewsMatchPerRecordSpans) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein);
  const MappedSwdb mapped(path_);
  const auto views = mapped.residue_views();
  ASSERT_EQ(views.size(), mapped.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i].data(), mapped.residues(i).data());
    EXPECT_EQ(views[i].size(), mapped.residues(i).size());
  }
}

TEST_F(SwdbMmapTest, MissingFileThrows) {
  EXPECT_THROW(MappedSwdb mapped("/no/such/db.swdb"), IoError);
}

TEST_F(SwdbMmapTest, BadMagicRejected) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTSWDBDATA-----------------------------";
  out.close();
  EXPECT_THROW(MappedSwdb mapped(path_), IoError);
}

TEST_F(SwdbMmapTest, TruncatedIndexRejected) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein);
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_THROW(MappedSwdb mapped(path_), IoError);
}

TEST_F(SwdbMmapTest, OutOfRangeIndexThrows) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein);
  const MappedSwdb mapped(path_);
  EXPECT_THROW(mapped.residues(3), InvalidArgument);
  EXPECT_THROW(mapped.record(3), InvalidArgument);
  EXPECT_THROW(mapped.length(3), InvalidArgument);
}

}  // namespace
}  // namespace swdual::seq
