// Unit tests for residue alphabets.
#include <gtest/gtest.h>

#include "seq/alphabet.h"
#include "seq/sequence.h"

namespace swdual::seq {
namespace {

TEST(Alphabet, DnaRoundTrip) {
  const Alphabet& a = Alphabet::dna();
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.decode(a.encode('A')), 'A');
  EXPECT_EQ(a.decode(a.encode('T')), 'T');
  EXPECT_EQ(a.encode('a'), a.encode('A'));  // case-insensitive
}

TEST(Alphabet, UnknownLettersMapToWildcard) {
  const Alphabet& a = Alphabet::dna();
  EXPECT_EQ(a.encode('Z'), a.wildcard_code());
  EXPECT_EQ(a.encode('U'), a.wildcard_code());  // RNA letter in DNA alphabet
  EXPECT_EQ(a.encode('#'), a.wildcard_code());
}

TEST(Alphabet, ProteinHas24CodesInBlosumOrder) {
  const Alphabet& a = Alphabet::protein();
  EXPECT_EQ(a.size(), 24u);
  EXPECT_EQ(a.letters(), "ARNDCQEGHILKMFPSTWYVBZX*");
  EXPECT_EQ(a.encode('A'), 0);
  EXPECT_EQ(a.encode('V'), 19);
  EXPECT_EQ(a.encode('X'), a.wildcard_code());
  EXPECT_EQ(a.encode('*'), 23);
}

TEST(Alphabet, ProteinWildcardIsX) {
  const Alphabet& a = Alphabet::protein();
  EXPECT_EQ(a.decode(a.wildcard_code()), 'X');
  EXPECT_EQ(a.encode('J'), a.wildcard_code());  // J not in the alphabet
}

TEST(Alphabet, ContainsDistinguishesMembersFromMapped) {
  const Alphabet& a = Alphabet::dna();
  EXPECT_TRUE(a.contains('A'));
  EXPECT_TRUE(a.contains('n'));   // wildcard letter itself
  EXPECT_FALSE(a.contains('Q'));  // mapped to wildcard but not a member
}

TEST(Alphabet, EncodeDecodeWholeString) {
  const Alphabet& a = Alphabet::protein();
  const std::string text = "MKVLAW";
  EXPECT_EQ(a.decode(a.encode(text)), text);
}

TEST(Alphabet, RnaUsesU) {
  const Alphabet& a = Alphabet::rna();
  EXPECT_EQ(a.decode(a.encode('U')), 'U');
  EXPECT_EQ(a.encode('T'), a.wildcard_code());
}

TEST(Sequence, FromTextRoundTrip) {
  const Sequence s =
      Sequence::from_text("id1", "a protein", AlphabetKind::kProtein, "MKVLAW");
  EXPECT_EQ(s.length(), 6u);
  EXPECT_EQ(s.to_text(), "MKVLAW");
  EXPECT_EQ(s.id, "id1");
  EXPECT_EQ(s.description, "a protein");
}

TEST(Sequence, EqualityComparesAllFields) {
  const Sequence a =
      Sequence::from_text("x", "", AlphabetKind::kDna, "ACGT");
  Sequence b = a;
  EXPECT_EQ(a, b);
  b.residues.push_back(0);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace swdual::seq
