// Unit tests for paper query-set construction (§V-A and §V-C).
#include <gtest/gtest.h>

#include "seq/dbgen.h"
#include "seq/queryset.h"
#include "util/error.h"

namespace swdual::seq {
namespace {

std::vector<Sequence> small_uniprot() {
  DatabaseProfile p = table3_profile("uniprot", 1000);  // 537 sequences
  return generate_database(p);
}

TEST(QuerySet, PaperSetHas40SequencesInRange) {
  const auto db = small_uniprot();
  const auto queries = make_query_set(QuerySetKind::kPaper, db);
  ASSERT_EQ(queries.size(), kPaperQueryCount);
  std::size_t min_len = SIZE_MAX, max_len = 0;
  for (const auto& q : queries) {
    min_len = std::min(min_len, q.length());
    max_len = std::max(max_len, q.length());
  }
  EXPECT_EQ(min_len, 100u);   // anchored extremes, as reported in the paper
  EXPECT_EQ(max_len, 5000u);
}

TEST(QuerySet, HomogeneousSetIsNarrow) {
  const auto db = small_uniprot();
  const auto queries = make_query_set(QuerySetKind::kHomogeneous, db);
  for (const auto& q : queries) {
    EXPECT_GE(q.length(), 4500u);
    EXPECT_LE(q.length(), 5000u);
  }
}

TEST(QuerySet, HeterogeneousSetSpansDatabaseExtremes) {
  const auto db = small_uniprot();
  const auto queries = make_query_set(QuerySetKind::kHeterogeneous, db);
  std::size_t min_len = SIZE_MAX, max_len = 0;
  for (const auto& q : queries) {
    min_len = std::min(min_len, q.length());
    max_len = std::max(max_len, q.length());
  }
  EXPECT_EQ(min_len, 4u);
  EXPECT_EQ(max_len, 35213u);
}

TEST(QuerySet, DeterministicInSeed) {
  const auto db = small_uniprot();
  const auto a = make_query_set(QuerySetKind::kPaper, db, 42);
  const auto b = make_query_set(QuerySetKind::kPaper, db, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  const auto c = make_query_set(QuerySetKind::kPaper, db, 43);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == c[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(QuerySet, WorksWithEmptyDatabase) {
  // All queries synthesized when the database offers no candidates.
  const std::vector<Sequence> empty;
  const auto queries = sample_query_set(empty, 10, 50, 60, 1);
  ASSERT_EQ(queries.size(), 10u);
  for (const auto& q : queries) {
    EXPECT_GE(q.length(), 50u);
    EXPECT_LE(q.length(), 60u);
  }
}

TEST(QuerySet, InvalidParametersRejected) {
  const std::vector<Sequence> empty;
  EXPECT_THROW(sample_query_set(empty, 0, 1, 10, 1), InvalidArgument);
  EXPECT_THROW(sample_query_set(empty, 5, 10, 2, 1), InvalidArgument);
}

}  // namespace
}  // namespace swdual::seq
