// Unit tests for FASTA parsing and writing.
#include <gtest/gtest.h>

#include <sstream>

#include "seq/fasta.h"
#include "util/error.h"

namespace swdual::seq {
namespace {

TEST(FastaReader, ParsesMultipleRecordsWithWrappedLines) {
  std::istringstream in(
      ">sp|P1|FIRST first protein\n"
      "MKVL\n"
      "AW\n"
      "\n"
      ">second\n"
      "ARNDC\n");
  const auto records = read_fasta(in, AlphabetKind::kProtein);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, "sp|P1|FIRST");
  EXPECT_EQ(records[0].description, "first protein");
  EXPECT_EQ(records[0].to_text(), "MKVLAW");
  EXPECT_EQ(records[1].id, "second");
  EXPECT_EQ(records[1].description, "");
  EXPECT_EQ(records[1].to_text(), "ARNDC");
}

TEST(FastaReader, EmptyStreamYieldsNoRecords) {
  std::istringstream in("");
  EXPECT_TRUE(read_fasta(in, AlphabetKind::kProtein).empty());
}

TEST(FastaReader, ResidueBeforeHeaderThrows) {
  std::istringstream in("MKVL\n>late\nAW\n");
  EXPECT_THROW(read_fasta(in, AlphabetKind::kProtein), IoError);
}

TEST(FastaReader, SkipsCommentsAndInlineWhitespace) {
  std::istringstream in(
      ">q\n"
      "; legacy comment\n"
      "MK VL\tAW\n");
  const auto records = read_fasta(in, AlphabetKind::kProtein);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].to_text(), "MKVLAW");
}

TEST(FastaReader, LowercaseResiduesNormalized) {
  std::istringstream in(">q\nacgt\n");
  const auto records = read_fasta(in, AlphabetKind::kDna);
  EXPECT_EQ(records[0].to_text(), "ACGT");
}

TEST(FastaReader, UnknownResiduesBecomeWildcard) {
  std::istringstream in(">q\nAC!T\n");
  const auto records = read_fasta(in, AlphabetKind::kDna);
  EXPECT_EQ(records[0].to_text(), "ACNT");
}

TEST(FastaReader, EmptyRecordAllowed) {
  std::istringstream in(">empty\n>full\nACGT\n");
  const auto records = read_fasta(in, AlphabetKind::kDna);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].empty());
  EXPECT_EQ(records[1].length(), 4u);
}

TEST(FastaWriter, RoundTripsThroughReader) {
  std::vector<Sequence> records;
  records.push_back(
      Sequence::from_text("a", "desc here", AlphabetKind::kProtein, "MKVLAW"));
  records.push_back(Sequence::from_text(
      "b", "", AlphabetKind::kProtein, std::string(150, 'A')));
  std::ostringstream out;
  write_fasta(out, records, 60);
  std::istringstream in(out.str());
  const auto parsed = read_fasta(in, AlphabetKind::kProtein);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], records[0]);
  EXPECT_EQ(parsed[1], records[1]);
}

TEST(FastaWriter, WrapsAtRequestedWidth) {
  std::vector<Sequence> records = {Sequence::from_text(
      "x", "", AlphabetKind::kDna, std::string(10, 'A'))};
  std::ostringstream out;
  write_fasta(out, records, 4);
  EXPECT_EQ(out.str(), ">x\nAAAA\nAAAA\nAA\n");
}

TEST(FastaFile, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/no/such/file.fa", AlphabetKind::kDna),
               IoError);
}

TEST(FastaFile, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/swdual_fasta_test.fa";
  std::vector<Sequence> records = {
      Sequence::from_text("r1", "d", AlphabetKind::kDna, "ACGTACGT")};
  write_fasta_file(path, records);
  const auto parsed = read_fasta_file(path, AlphabetKind::kDna);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], records[0]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swdual::seq
