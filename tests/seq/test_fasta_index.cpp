// Tests for the FASTA byte-offset index.
#include <gtest/gtest.h>

#include <cstdio>

#include "seq/dbgen.h"
#include "seq/fasta.h"
#include "seq/fasta_index.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::seq {
namespace {

class FastaIndexTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/swdual_fai_test.fa";
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<Sequence> write_sample(std::size_t count, std::size_t width) {
    DatabaseProfile profile{"fai", count, 10, 500, 5.0, 0.6, 13};
    auto records = generate_database(profile);
    records[0].description = "first record with description";
    write_fasta_file(path_, records, width);
    return records;
  }
};

TEST_F(FastaIndexTest, IndexCountsAndLengths) {
  const auto records = write_sample(25, 60);
  const FastaIndex index(path_, AlphabetKind::kProtein);
  ASSERT_EQ(index.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(index.length(i), records[i].length()) << "record " << i;
    EXPECT_EQ(index.id(i), records[i].id);
  }
}

TEST_F(FastaIndexTest, RandomReadsRoundTrip) {
  const auto records = write_sample(40, 50);
  const FastaIndex index(path_, AlphabetKind::kProtein);
  Rng rng(3);
  for (int rep = 0; rep < 30; ++rep) {
    const auto i = static_cast<std::size_t>(rng.below(records.size()));
    EXPECT_EQ(index.read(i), records[i]) << "record " << i;
  }
  // Sequential edge reads.
  EXPECT_EQ(index.read(0), records[0]);
  EXPECT_EQ(index.read(records.size() - 1), records.back());
}

TEST_F(FastaIndexTest, NarrowWrapWidths) {
  const auto records = write_sample(10, 7);  // heavily wrapped lines
  const FastaIndex index(path_, AlphabetKind::kProtein);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(index.read(i), records[i]);
  }
}

TEST_F(FastaIndexTest, MissingFileThrows) {
  EXPECT_THROW(FastaIndex("/no/such.fa", AlphabetKind::kProtein), IoError);
}

TEST_F(FastaIndexTest, MalformedLeadingResiduesThrow) {
  std::ofstream out(path_);
  out << "ACGT\n>late\nACGT\n";
  out.close();
  EXPECT_THROW(FastaIndex(path_, AlphabetKind::kDna), IoError);
}

TEST_F(FastaIndexTest, OutOfRangeRejected) {
  write_sample(3, 60);
  const FastaIndex index(path_, AlphabetKind::kProtein);
  EXPECT_THROW(index.read(3), InvalidArgument);
  EXPECT_THROW(index.length(3), InvalidArgument);
  EXPECT_THROW(index.id(3), InvalidArgument);
}

}  // namespace
}  // namespace swdual::seq
