// Fuzz-style robustness tests: the FASTA parser and SWDB reader must either
// succeed or throw IoError on arbitrary inputs — never crash, hang, or read
// out of bounds.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "seq/fasta.h"
#include "seq/swdb.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::seq {
namespace {

TEST(FastaFuzz, RandomPrintableSoup) {
  Rng rng(2024);
  const std::string charset =
      ">;ACGTNMKVLW \t\r\nacgt0123456789!@#$%^&*()_+-=[]{}|";
  for (int rep = 0; rep < 200; ++rep) {
    std::string soup;
    const auto len = rng.below(400);
    for (std::uint64_t i = 0; i < len; ++i) {
      soup += charset[rng.below(charset.size())];
    }
    std::istringstream in(soup);
    try {
      const auto records = read_fasta(in, AlphabetKind::kProtein);
      // Success: every record must decode without surprises.
      for (const auto& record : records) {
        EXPECT_EQ(record.to_text().size(), record.length());
      }
    } catch (const IoError&) {
      // Acceptable outcome for malformed input.
    }
  }
}

TEST(FastaFuzz, RandomBinaryGarbage) {
  Rng rng(777);
  for (int rep = 0; rep < 100; ++rep) {
    std::string soup;
    const auto len = rng.below(300);
    for (std::uint64_t i = 0; i < len; ++i) {
      soup += static_cast<char>(rng.below(256));
    }
    std::istringstream in(soup);
    try {
      read_fasta(in, AlphabetKind::kDna);
    } catch (const IoError&) {
    }
  }
}

TEST(SwdbFuzz, RandomFilesRejectedCleanly) {
  Rng rng(31415);
  const std::string path = ::testing::TempDir() + "/swdual_fuzz.swdb";
  for (int rep = 0; rep < 60; ++rep) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      const auto len = rng.below(200);
      for (std::uint64_t i = 0; i < len; ++i) {
        out.put(static_cast<char>(rng.below(256)));
      }
    }
    try {
      const SwdbReader reader(path);
      // A random file passing header checks is essentially impossible, but
      // if it does, reads must still be bounds-checked.
      if (reader.size() > 0) {
        (void)reader.read(0);
      }
    } catch (const IoError&) {
    } catch (const InvalidArgument&) {
    }
  }
  std::remove(path.c_str());
}

TEST(SwdbFuzz, BitFlippedValidFileNeverCrashes) {
  // Start from a valid SWDB and flip one byte at a time across the file;
  // the reader must produce either correct data or a clean exception.
  const std::string path = ::testing::TempDir() + "/swdual_flip.swdb";
  std::vector<Sequence> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(Sequence::from_text(
        "r" + std::to_string(i), "", AlphabetKind::kProtein, "MKVLAWERTY"));
  }
  write_swdb(path, records, AlphabetKind::kProtein);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  Rng rng(5);
  for (int rep = 0; rep < 80; ++rep) {
    std::string copy = bytes;
    copy[rng.below(copy.size())] ^=
        static_cast<char>(1 + rng.below(255));
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(copy.data(), static_cast<std::streamsize>(copy.size()));
    }
    try {
      const SwdbReader reader(path);
      for (std::size_t i = 0; i < reader.size(); ++i) {
        (void)reader.read(i);
      }
    } catch (const IoError&) {
    } catch (const InvalidArgument&) {
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swdual::seq
