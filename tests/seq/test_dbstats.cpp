// Unit tests for database statistics.
#include <gtest/gtest.h>

#include "seq/dbstats.h"

namespace swdual::seq {
namespace {

TEST(DbStats, EmptyDatabase) {
  const DatabaseStats s = compute_stats({});
  EXPECT_EQ(s.num_sequences, 0u);
  EXPECT_EQ(s.total_residues, 0u);
  EXPECT_EQ(s.mean_length, 0.0);
}

TEST(DbStats, FromLengths) {
  const DatabaseStats s = compute_stats_from_lengths({10, 20, 30});
  EXPECT_EQ(s.num_sequences, 3u);
  EXPECT_EQ(s.min_length, 10u);
  EXPECT_EQ(s.max_length, 30u);
  EXPECT_EQ(s.total_residues, 60u);
  EXPECT_DOUBLE_EQ(s.mean_length, 20.0);
}

TEST(DbStats, FromRecords) {
  std::vector<Sequence> records;
  records.push_back(Sequence::from_text("a", "", AlphabetKind::kDna, "ACGT"));
  records.push_back(Sequence::from_text("b", "", AlphabetKind::kDna, "AC"));
  const DatabaseStats s = compute_stats(records);
  EXPECT_EQ(s.num_sequences, 2u);
  EXPECT_EQ(s.min_length, 2u);
  EXPECT_EQ(s.max_length, 4u);
  EXPECT_EQ(s.total_residues, 6u);
}

}  // namespace
}  // namespace swdual::seq
