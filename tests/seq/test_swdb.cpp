// Unit tests for the SWDB binary random-access format (paper §IV).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "seq/dbgen.h"
#include "seq/fasta.h"
#include "seq/swdb.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::seq {
namespace {

class SwdbTest : public ::testing::Test {
 protected:
  // One file per test case: ctest runs cases as concurrent processes, and
  // some cases mmap the file (a concurrent truncate of a mapped file is a
  // SIGBUS, not a clean failure).
  std::string path_ =
      ::testing::TempDir() + "/swdual_swdb_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".swdb";
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<Sequence> sample_records() {
    std::vector<Sequence> records;
    records.push_back(
        Sequence::from_text("r0", "first", AlphabetKind::kProtein, "MKVLAW"));
    records.push_back(
        Sequence::from_text("r1", "", AlphabetKind::kProtein, "A"));
    records.push_back(Sequence::from_text("r2", "long one",
                                          AlphabetKind::kProtein,
                                          std::string(1000, 'K')));
    return records;
  }
};

TEST_F(SwdbTest, RoundTripsAllRecords) {
  const auto records = sample_records();
  write_swdb(path_, records, AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  ASSERT_EQ(reader.size(), records.size());
  EXPECT_EQ(reader.alphabet(), AlphabetKind::kProtein);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reader.read(i), records[i]) << "record " << i;
  }
}

TEST_F(SwdbTest, RandomAccessOutOfOrder) {
  const auto records = sample_records();
  write_swdb(path_, records, AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  // Read in reverse and repeatedly — any order must work.
  EXPECT_EQ(reader.read(2), records[2]);
  EXPECT_EQ(reader.read(0), records[0]);
  EXPECT_EQ(reader.read(2), records[2]);
  EXPECT_EQ(reader.read(1), records[1]);
}

TEST_F(SwdbTest, LengthsAvailableWithoutReadingData) {
  const auto records = sample_records();
  write_swdb(path_, records, AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  EXPECT_EQ(reader.length(0), 6u);
  EXPECT_EQ(reader.length(1), 1u);
  EXPECT_EQ(reader.length(2), 1000u);
  EXPECT_EQ(reader.total_residues(), 1007u);
}

TEST_F(SwdbTest, EmptyDatabaseRoundTrips) {
  write_swdb(path_, {}, AlphabetKind::kDna);
  const SwdbReader reader(path_);
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_EQ(reader.alphabet(), AlphabetKind::kDna);
  EXPECT_TRUE(reader.read_all().empty());
}

TEST_F(SwdbTest, IndexOutOfRangeThrows) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  EXPECT_THROW(reader.length(3), InvalidArgument);
  EXPECT_THROW(reader.read(3), InvalidArgument);
}

TEST_F(SwdbTest, MixedAlphabetRejected) {
  auto records = sample_records();
  records.push_back(Sequence::from_text("dna", "", AlphabetKind::kDna, "ACGT"));
  EXPECT_THROW(write_swdb(path_, records, AlphabetKind::kProtein),
               InvalidArgument);
}

TEST_F(SwdbTest, BadMagicRejected) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTSWDBDATA-----------------------------";
  out.close();
  EXPECT_THROW(SwdbReader reader(path_), IoError);
}

TEST_F(SwdbTest, MissingFileThrows) {
  EXPECT_THROW(SwdbReader reader("/no/such/db.swdb"), IoError);
}

TEST_F(SwdbTest, TruncatedFileRejected) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein);
  // Chop off the tail (index) and expect a structured failure.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_THROW(SwdbReader reader(path_), IoError);
}

TEST_F(SwdbTest, FastaConversionPreservesContent) {
  const std::string fasta_path = ::testing::TempDir() + "/swdual_conv.fa";
  const auto records = sample_records();
  write_fasta_file(fasta_path, records);
  const std::size_t n =
      convert_fasta_to_swdb(fasta_path, path_, AlphabetKind::kProtein);
  EXPECT_EQ(n, records.size());
  const SwdbReader reader(path_);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reader.read(i), records[i]);
  }
  std::remove(fasta_path.c_str());
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(SwdbTest, DefaultWriteIsVersion2) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  EXPECT_EQ(reader.version(), kSwdbVersion2);
  EXPECT_TRUE(reader.pre_encoded());
}

TEST_F(SwdbTest, ExplicitVersion1RoundTrips) {
  const auto records = sample_records();
  write_swdb(path_, records, AlphabetKind::kProtein, kSwdbVersion1);
  const SwdbReader reader(path_);
  EXPECT_EQ(reader.version(), kSwdbVersion1);
  EXPECT_FALSE(reader.pre_encoded());
  ASSERT_EQ(reader.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reader.read(i), records[i]) << "record " << i;
  }
}

TEST_F(SwdbTest, UnknownVersionRejected) {
  EXPECT_THROW(
      write_swdb(path_, sample_records(), AlphabetKind::kProtein, 3),
      InvalidArgument);
}

TEST_F(SwdbTest, LengthsSpanMatchesIndex) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  const auto lengths = reader.lengths();
  ASSERT_EQ(lengths.size(), reader.size());
  for (std::size_t i = 0; i < reader.size(); ++i) {
    EXPECT_EQ(lengths[i], reader.length(i)) << "record " << i;
  }
}

TEST_F(SwdbTest, LaneOrderIsLongestFirstForBothVersions) {
  const auto records = sample_records();  // lengths 6, 1, 1000
  for (std::uint32_t version : {kSwdbVersion1, kSwdbVersion2}) {
    write_swdb(path_, records, AlphabetKind::kProtein, version);
    const SwdbReader reader(path_);
    const auto order = reader.lane_order();
    ASSERT_EQ(order.size(), records.size()) << "version " << version;
    // A permutation, lengths non-increasing along it.
    std::vector<bool> seen(records.size(), false);
    for (const std::uint32_t id : order) {
      ASSERT_LT(id, records.size());
      EXPECT_FALSE(seen[id]) << "duplicate id " << id;
      seen[id] = true;
    }
    for (std::size_t k = 1; k < order.size(); ++k) {
      EXPECT_GE(reader.length(order[k - 1]), reader.length(order[k]))
          << "version " << version << " position " << k;
    }
    EXPECT_EQ(order[0], 2u);  // the 1000-residue record leads
  }
}

TEST_F(SwdbTest, LaneOrderBreaksLengthTiesById) {
  std::vector<Sequence> records;
  for (int i = 0; i < 6; ++i) {
    records.push_back(Sequence::from_text("t" + std::to_string(i), "",
                                          AlphabetKind::kProtein, "MKVLAW"));
  }
  write_swdb(path_, records, AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  const auto order = reader.lane_order();
  ASSERT_EQ(order.size(), records.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    EXPECT_EQ(order[k], k);  // equal lengths keep file order
  }
}

TEST_F(SwdbTest, TruncatedV2SectionRejected) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein);
  const std::string bytes = read_file_bytes(path_);
  // The v2 section is the file tail; chopping a few bytes off must be a
  // structured failure, never a silently ignored pre-encoded section.
  write_file_bytes(path_, bytes.substr(0, bytes.size() - 7));
  EXPECT_THROW(SwdbReader reader(path_), IoError);
  EXPECT_THROW(MappedSwdb mapped(path_), IoError);
}

TEST_F(SwdbTest, CorruptV2MagicRejected) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein);
  std::string bytes = read_file_bytes(path_);
  // v2_offset lives at bytes [28, 36) of the v2 header (little-endian).
  std::uint64_t v2_offset = 0;
  for (int b = 7; b >= 0; --b) {
    v2_offset = (v2_offset << 8) |
                static_cast<std::uint8_t>(bytes[28 + static_cast<size_t>(b)]);
  }
  ASSERT_LT(v2_offset + 4, bytes.size());
  bytes[v2_offset] = 'X';  // smash the "SWV2" magic
  write_file_bytes(path_, bytes);
  EXPECT_THROW(SwdbReader reader(path_), IoError);
  EXPECT_THROW(MappedSwdb mapped(path_), IoError);
}

TEST_F(SwdbTest, EmptyVersion2DatabaseRoundTrips) {
  write_swdb(path_, {}, AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  EXPECT_EQ(reader.version(), kSwdbVersion2);
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_TRUE(reader.lane_order().empty());
  const MappedSwdb mapped(path_);
  EXPECT_EQ(mapped.size(), 0u);
}

TEST_F(SwdbTest, ConvertFastaHonorsRequestedVersion) {
  const std::string fasta_path = ::testing::TempDir() + "/swdual_conv_v1.fa";
  write_fasta_file(fasta_path, sample_records());
  convert_fasta_to_swdb(fasta_path, path_, AlphabetKind::kProtein,
                        kSwdbVersion1);
  EXPECT_EQ(SwdbReader(path_).version(), kSwdbVersion1);
  convert_fasta_to_swdb(fasta_path, path_, AlphabetKind::kProtein);
  EXPECT_EQ(SwdbReader(path_).version(), kSwdbVersion2);
  std::remove(fasta_path.c_str());
}

TEST_F(SwdbTest, LargeGeneratedDatabaseRoundTrips) {
  DatabaseProfile profile{"t", 500, 10, 400, 5.0, 0.5, 77};
  const auto records = generate_database(profile);
  write_swdb(path_, records, AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  ASSERT_EQ(reader.size(), 500u);
  Rng rng(5);
  for (int i = 0; i < 25; ++i) {
    const auto idx = static_cast<std::size_t>(rng.below(500));
    EXPECT_EQ(reader.read(idx), records[idx]);
  }
}

}  // namespace
}  // namespace swdual::seq
