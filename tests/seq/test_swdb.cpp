// Unit tests for the SWDB binary random-access format (paper §IV).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "seq/dbgen.h"
#include "seq/fasta.h"
#include "seq/swdb.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::seq {
namespace {

class SwdbTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/swdual_swdb_test.swdb";
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<Sequence> sample_records() {
    std::vector<Sequence> records;
    records.push_back(
        Sequence::from_text("r0", "first", AlphabetKind::kProtein, "MKVLAW"));
    records.push_back(
        Sequence::from_text("r1", "", AlphabetKind::kProtein, "A"));
    records.push_back(Sequence::from_text("r2", "long one",
                                          AlphabetKind::kProtein,
                                          std::string(1000, 'K')));
    return records;
  }
};

TEST_F(SwdbTest, RoundTripsAllRecords) {
  const auto records = sample_records();
  write_swdb(path_, records, AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  ASSERT_EQ(reader.size(), records.size());
  EXPECT_EQ(reader.alphabet(), AlphabetKind::kProtein);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reader.read(i), records[i]) << "record " << i;
  }
}

TEST_F(SwdbTest, RandomAccessOutOfOrder) {
  const auto records = sample_records();
  write_swdb(path_, records, AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  // Read in reverse and repeatedly — any order must work.
  EXPECT_EQ(reader.read(2), records[2]);
  EXPECT_EQ(reader.read(0), records[0]);
  EXPECT_EQ(reader.read(2), records[2]);
  EXPECT_EQ(reader.read(1), records[1]);
}

TEST_F(SwdbTest, LengthsAvailableWithoutReadingData) {
  const auto records = sample_records();
  write_swdb(path_, records, AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  EXPECT_EQ(reader.length(0), 6u);
  EXPECT_EQ(reader.length(1), 1u);
  EXPECT_EQ(reader.length(2), 1000u);
  EXPECT_EQ(reader.total_residues(), 1007u);
}

TEST_F(SwdbTest, EmptyDatabaseRoundTrips) {
  write_swdb(path_, {}, AlphabetKind::kDna);
  const SwdbReader reader(path_);
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_EQ(reader.alphabet(), AlphabetKind::kDna);
  EXPECT_TRUE(reader.read_all().empty());
}

TEST_F(SwdbTest, IndexOutOfRangeThrows) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  EXPECT_THROW(reader.length(3), InvalidArgument);
  EXPECT_THROW(reader.read(3), InvalidArgument);
}

TEST_F(SwdbTest, MixedAlphabetRejected) {
  auto records = sample_records();
  records.push_back(Sequence::from_text("dna", "", AlphabetKind::kDna, "ACGT"));
  EXPECT_THROW(write_swdb(path_, records, AlphabetKind::kProtein),
               InvalidArgument);
}

TEST_F(SwdbTest, BadMagicRejected) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTSWDBDATA-----------------------------";
  out.close();
  EXPECT_THROW(SwdbReader reader(path_), IoError);
}

TEST_F(SwdbTest, MissingFileThrows) {
  EXPECT_THROW(SwdbReader reader("/no/such/db.swdb"), IoError);
}

TEST_F(SwdbTest, TruncatedFileRejected) {
  write_swdb(path_, sample_records(), AlphabetKind::kProtein);
  // Chop off the tail (index) and expect a structured failure.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_THROW(SwdbReader reader(path_), IoError);
}

TEST_F(SwdbTest, FastaConversionPreservesContent) {
  const std::string fasta_path = ::testing::TempDir() + "/swdual_conv.fa";
  const auto records = sample_records();
  write_fasta_file(fasta_path, records);
  const std::size_t n =
      convert_fasta_to_swdb(fasta_path, path_, AlphabetKind::kProtein);
  EXPECT_EQ(n, records.size());
  const SwdbReader reader(path_);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reader.read(i), records[i]);
  }
  std::remove(fasta_path.c_str());
}

TEST_F(SwdbTest, LargeGeneratedDatabaseRoundTrips) {
  DatabaseProfile profile{"t", 500, 10, 400, 5.0, 0.5, 77};
  const auto records = generate_database(profile);
  write_swdb(path_, records, AlphabetKind::kProtein);
  const SwdbReader reader(path_);
  ASSERT_EQ(reader.size(), 500u);
  Rng rng(5);
  for (int i = 0; i < 25; ++i) {
    const auto idx = static_cast<std::size_t>(rng.below(500));
    EXPECT_EQ(reader.read(idx), records[idx]);
  }
}

}  // namespace
}  // namespace swdual::seq
