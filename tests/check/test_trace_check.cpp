// Unit tests for schedule↔trace cross-validation, built around a tamper
// matrix: start from a genuine DES replay, corrupt one property at a time,
// and require the checker to catch each corruption.
#include <gtest/gtest.h>

#include <string>

#include "check/trace_check.h"
#include "platform/des.h"
#include "util/error.h"

namespace swdual::check {
namespace {

using platform::ExecutionTrace;
using platform::TraceEntry;
using sched::HybridPlatform;
using sched::PeType;
using sched::Schedule;
using sched::Task;

/// Recompute a hand-edited trace's aggregate fields so tests trip the check
/// they target instead of the aggregate-consistency net.
void refresh_aggregates(ExecutionTrace& trace,
                        const HybridPlatform& platform) {
  trace.makespan = trace.cpu_busy = trace.gpu_busy = 0.0;
  for (const TraceEntry& entry : trace.entries) {
    trace.makespan = std::max(trace.makespan, entry.end);
    (entry.pe.type == PeType::kCpu ? trace.cpu_busy : trace.gpu_busy) +=
        entry.end - entry.start;
  }
  trace.total_idle =
      trace.makespan * static_cast<double>(platform.total()) -
      trace.cpu_busy - trace.gpu_busy;
}

struct TamperFixture {
  std::vector<Task> tasks = {{0, 4, 2}, {1, 6, 3}, {2, 4, 2}};
  HybridPlatform platform{1, 1};
  Schedule schedule;
  ExecutionTrace trace;

  TamperFixture() {
    schedule.add({0, {PeType::kCpu, 0}, 0.0, 4.0});
    schedule.add({1, {PeType::kCpu, 0}, 4.0, 10.0});
    schedule.add({2, {PeType::kGpu, 0}, 0.0, 2.0});
    trace = platform::simulate_static(schedule, tasks, platform);
  }

  void expect_rejected(const std::string& needle) const {
    try {
      cross_validate_trace(trace, schedule, tasks, platform);
      FAIL() << "tampered trace accepted; wanted error containing '" << needle
             << "'";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual error: " << e.what();
    }
  }
};

TEST(CrossValidate, GenuineReplayPasses) {
  const TamperFixture f;
  EXPECT_NO_THROW(cross_validate_trace(f.trace, f.schedule, f.tasks,
                                       f.platform));
}

TEST(CrossValidate, DroppedEntryRejected) {
  TamperFixture f;
  f.trace.entries.pop_back();
  refresh_aggregates(f.trace, f.platform);
  f.expect_rejected("entries for a schedule of");
}

TEST(CrossValidate, StretchedDurationRejected) {
  TamperFixture f;
  f.trace.entries[0].end += 1.0;
  refresh_aggregates(f.trace, f.platform);
  f.expect_rejected("differs from processing time");
}

TEST(CrossValidate, SwappedExecutionOrderRejected) {
  // Two equal-duration tasks on one CPU, executed in the reverse of the
  // planned order: placements, durations, and start times all still line up,
  // so only the order check can catch it.
  std::vector<Task> tasks = {{0, 4, 2}, {1, 4, 2}};
  const HybridPlatform platform{1, 0};
  Schedule schedule;
  schedule.add({0, {PeType::kCpu, 0}, 0.0, 4.0});
  schedule.add({1, {PeType::kCpu, 0}, 4.0, 8.0});
  ExecutionTrace trace;
  trace.entries.push_back({1, {PeType::kCpu, 0}, 0.0, 4.0});
  trace.entries.push_back({0, {PeType::kCpu, 0}, 4.0, 8.0});
  refresh_aggregates(trace, platform);
  EXPECT_THROW(cross_validate_trace(trace, schedule, tasks, platform), Error);
}

TEST(CrossValidate, MisplacedEntryRejected) {
  TamperFixture f;
  f.trace.entries[0].pe = {PeType::kGpu, 0};  // planned on CPU0
  refresh_aggregates(f.trace, f.platform);
  f.expect_rejected("planned");
}

TEST(CrossValidate, NonexistentPeRejected) {
  TamperFixture f;
  for (TraceEntry& entry : f.trace.entries) {
    if (entry.pe.type == PeType::kGpu) entry.pe.index = 7;
  }
  refresh_aggregates(f.trace, f.platform);
  f.expect_rejected("nonexistent PE");
}

TEST(CrossValidate, DelayedStartRejected) {
  // Shift one PE's whole run later: durations and order survive, but the
  // replay is no longer the work-conserving compaction.
  TamperFixture f;
  for (TraceEntry& entry : f.trace.entries) {
    if (entry.pe.type == PeType::kGpu) {
      entry.start += 1.5;
      entry.end += 1.5;
    }
  }
  refresh_aggregates(f.trace, f.platform);
  f.expect_rejected("not the compaction");
}

TEST(CrossValidate, LyingAggregatesRejected) {
  TamperFixture f;
  f.trace.makespan *= 0.5;  // entries untouched; only the summary lies
  f.expect_rejected("makespan disagrees");
}

TEST(CrossValidate, NonCompactScheduleStillReplaysNoLater) {
  // A plan with idle gaps: the DES compacts it, the checker accepts the
  // compaction (entry.start <= planned start), and the replayed makespan
  // undercuts the plan's.
  const std::vector<Task> tasks = {{0, 4, 2}, {1, 6, 3}};
  const HybridPlatform platform{1, 0};
  Schedule schedule;
  schedule.add({0, {PeType::kCpu, 0}, 1.0, 5.0});    // gap before
  schedule.add({1, {PeType::kCpu, 0}, 7.0, 13.0});   // gap between
  const ExecutionTrace trace =
      platform::simulate_static(schedule, tasks, platform);
  EXPECT_NO_THROW(cross_validate_trace(trace, schedule, tasks, platform));
  EXPECT_DOUBLE_EQ(trace.makespan, 10.0);
}

TEST(ValidateTrace, SelfSchedulingReplayPasses) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 20; ++i) {
    tasks.push_back({i, double(1 + i % 9), double(1 + i % 4)});
  }
  const HybridPlatform platform{2, 2};
  const ExecutionTrace trace =
      platform::simulate_self_scheduling(tasks, platform);
  EXPECT_NO_THROW(validate_trace(trace, tasks, platform));
}

TEST(ValidateTrace, OverlapRejected) {
  const std::vector<Task> tasks = {{0, 4, 2}, {1, 6, 3}};
  const HybridPlatform platform{1, 0};
  ExecutionTrace trace;
  trace.entries.push_back({0, {PeType::kCpu, 0}, 0.0, 4.0});
  trace.entries.push_back({1, {PeType::kCpu, 0}, 2.0, 8.0});  // overlaps
  refresh_aggregates(trace, platform);
  EXPECT_THROW(validate_trace(trace, tasks, platform), Error);
}

TEST(ValidateTrace, DuplicateExecutionRejected) {
  const std::vector<Task> tasks = {{0, 4, 2}};
  const HybridPlatform platform{1, 1};
  ExecutionTrace trace;
  trace.entries.push_back({0, {PeType::kCpu, 0}, 0.0, 4.0});
  trace.entries.push_back({0, {PeType::kGpu, 0}, 0.0, 2.0});
  refresh_aggregates(trace, platform);
  EXPECT_THROW(validate_trace(trace, tasks, platform), Error);
}

TEST(ValidateTrace, MissingAndUnknownTasksRejected) {
  const std::vector<Task> tasks = {{0, 4, 2}, {1, 6, 3}};
  const HybridPlatform platform{1, 1};
  ExecutionTrace missing;
  missing.entries.push_back({0, {PeType::kCpu, 0}, 0.0, 4.0});
  refresh_aggregates(missing, platform);
  EXPECT_THROW(validate_trace(missing, tasks, platform), Error);

  ExecutionTrace unknown;
  unknown.entries.push_back({0, {PeType::kCpu, 0}, 0.0, 4.0});
  unknown.entries.push_back({1, {PeType::kCpu, 0}, 4.0, 10.0});
  unknown.entries.push_back({9, {PeType::kGpu, 0}, 0.0, 1.0});
  refresh_aggregates(unknown, platform);
  EXPECT_THROW(validate_trace(unknown, tasks, platform), Error);
}

TEST(ValidateTrace, NegativeStartRejected) {
  const std::vector<Task> tasks = {{0, 4, 2}};
  const HybridPlatform platform{1, 0};
  ExecutionTrace trace;
  trace.entries.push_back({0, {PeType::kCpu, 0}, -1.0, 3.0});
  refresh_aggregates(trace, platform);
  EXPECT_THROW(validate_trace(trace, tasks, platform), Error);
}

TEST(ValidateTrace, WrongPeClassDurationRejected) {
  // Task executed on the GPU but billed its CPU time.
  const std::vector<Task> tasks = {{0, 4, 2}};
  const HybridPlatform platform{1, 1};
  ExecutionTrace trace;
  trace.entries.push_back({0, {PeType::kGpu, 0}, 0.0, 4.0});
  refresh_aggregates(trace, platform);
  EXPECT_THROW(validate_trace(trace, tasks, platform), Error);
}

}  // namespace
}  // namespace swdual::check
