// Lockcheck case: calling a SWDUAL_REQUIRES function without holding the
// capability it names.
//
// This is the private-helper convention used across the serve layer:
// `*_locked()` helpers declare REQUIRES(mutex_) and only self-locking
// public methods may reach them. A caller that forgets the lock must not
// compile.
#include "util/mutex.h"

namespace {

class Account {
 public:
  void deposit(long amount) {
    swdual::util::MutexLock lock(mutex_);
    add_locked(amount);
  }

#ifdef LOCKCHECK_VIOLATION
  void deposit_careless(long amount) {
    add_locked(amount);  // REQUIRES(mutex_) callee, capability not held
  }
#endif

  long balance() {
    swdual::util::MutexLock lock(mutex_);
    return balance_;
  }

 private:
  void add_locked(long amount) SWDUAL_REQUIRES(mutex_) { balance_ += amount; }

  swdual::util::Mutex mutex_;
  long balance_ SWDUAL_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(10);
#ifdef LOCKCHECK_VIOLATION
  account.deposit_careless(10);
#endif
  return account.balance() == 10 ? 0 : 1;
}
