// Lockcheck case: re-acquiring a capability that is already held.
//
// util::Mutex is non-recursive (it wraps std::mutex), so a nested
// MutexLock over the same mutex is a guaranteed runtime deadlock; the
// analysis rejects it statically instead.
#include "util/mutex.h"

namespace {

class Once {
 public:
  void tick() {
    swdual::util::MutexLock lock(mutex_);
    ++ticks_;
  }

#ifdef LOCKCHECK_VIOLATION
  void tick_twice() {
    swdual::util::MutexLock lock(mutex_);
    swdual::util::MutexLock again(mutex_);  // mutex_ is already held
    ++ticks_;
  }
#endif

 private:
  swdual::util::Mutex mutex_;
  long ticks_ SWDUAL_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Once once;
  once.tick();
#ifdef LOCKCHECK_VIOLATION
  once.tick_twice();
#endif
  return 0;
}
