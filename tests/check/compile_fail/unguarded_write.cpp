// Lockcheck case: writing a SWDUAL_GUARDED_BY member without its mutex.
//
// Mirrors the stats aggregates in align::ShardedSearchEngine and the serve
// counters: every mutation must happen under the declared capability.
#include "util/mutex.h"

#include <cstdint>

namespace {

class Stats {
 public:
  void record_scan() {
    swdual::util::MutexLock lock(mutex_);
    ++scans_;
  }

#ifdef LOCKCHECK_VIOLATION
  void record_scan_racy() {
    ++scans_;  // guarded member written without holding mutex_
  }
#endif

  std::uint64_t scans() {
    swdual::util::MutexLock lock(mutex_);
    return scans_;
  }

 private:
  swdual::util::Mutex mutex_;
  std::uint64_t scans_ SWDUAL_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Stats stats;
  stats.record_scan();
#ifdef LOCKCHECK_VIOLATION
  stats.record_scan_racy();
#endif
  return stats.scans() == 0 ? 1 : 0;
}
