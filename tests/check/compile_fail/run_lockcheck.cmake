# Negative-compile runner for the lockcheck battery.
#
# Each case file compiles two ways:
#   MODE=clean      no extra defines        -> must compile warning-free
#   MODE=violation  -DLOCKCHECK_VIOLATION   -> must FAIL, and fail with a
#                                              thread-safety diagnostic
#
# The clean leg proves the case is well-formed (a violation test that fails
# for an unrelated syntax error proves nothing); the violation leg proves
# the analysis net is actually live under this compiler. -fsyntax-only is
# enough: Clang's thread-safety analysis runs during semantic analysis.
#
# Usage (see CMakeLists.txt next to this file):
#   cmake -DCOMPILER=<clang++> -DSOURCE=<case.cpp> -DINCLUDE_DIR=<repo>/src
#         -DMODE=<clean|violation> -P run_lockcheck.cmake

foreach(required COMPILER SOURCE INCLUDE_DIR MODE)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "run_lockcheck.cmake: -D${required}=... is required")
  endif()
endforeach()

set(flags
  -std=c++20 -fsyntax-only "-I${INCLUDE_DIR}"
  -Wthread-safety -Wthread-safety-beta
  -Werror=thread-safety -Werror=thread-safety-beta)
if(MODE STREQUAL "violation")
  list(APPEND flags -DLOCKCHECK_VIOLATION)
elseif(NOT MODE STREQUAL "clean")
  message(FATAL_ERROR "run_lockcheck.cmake: MODE must be clean or violation")
endif()

execute_process(
  COMMAND ${COMPILER} ${flags} ${SOURCE}
  RESULT_VARIABLE status
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)

if(MODE STREQUAL "clean")
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
      "lockcheck: expected ${SOURCE} to compile cleanly, got:\n"
      "${stdout}${stderr}")
  endif()
else()
  if(status EQUAL 0)
    message(FATAL_ERROR
      "lockcheck: ${SOURCE} compiled with LOCKCHECK_VIOLATION defined — "
      "the thread-safety net is not rejecting this violation")
  endif()
  if(NOT "${stdout}${stderr}" MATCHES "thread-safety")
    message(FATAL_ERROR
      "lockcheck: ${SOURCE} failed for a reason other than a thread-safety "
      "diagnostic:\n${stdout}${stderr}")
  endif()
endif()
