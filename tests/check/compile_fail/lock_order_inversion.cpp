// Lockcheck case: acquiring two mutexes against their declared order.
//
// The serve stack declares service -> result-cache -> profile-cache with
// SWDUAL_ACQUIRED_BEFORE (serve/service.h); this case is the minimal model
// of that declaration. The inversion diagnostic needs -Wthread-safety-beta,
// which is why the battery (and the build) always passes it alongside
// -Wthread-safety.
#include "util/mutex.h"

namespace {

class Ordered {
 public:
  void in_order() {
    swdual::util::MutexLock outer(first_);
    swdual::util::MutexLock inner(second_);
    ++transfers_;
  }

#ifdef LOCKCHECK_VIOLATION
  void inverted() {
    swdual::util::MutexLock inner(second_);
    swdual::util::MutexLock outer(first_);  // contradicts ACQUIRED_BEFORE
    ++transfers_;
  }
#endif

 private:
  swdual::util::Mutex first_ SWDUAL_ACQUIRED_BEFORE(second_);
  swdual::util::Mutex second_;
  long transfers_ SWDUAL_GUARDED_BY(second_) = 0;
};

}  // namespace

int main() {
  Ordered ordered;
  ordered.in_order();
#ifdef LOCKCHECK_VIOLATION
  ordered.inverted();
#endif
  return 0;
}
