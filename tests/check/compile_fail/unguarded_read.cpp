// Lockcheck case: reading a SWDUAL_GUARDED_BY member without its mutex.
//
// Clean mode: every access holds the lock. Violation mode adds a reader
// that skips it — Clang's -Wthread-safety must reject the translation unit
// (see run_lockcheck.cmake for how both modes are asserted).
#include "util/mutex.h"

namespace {

class Counter {
 public:
  void add(long amount) {
    swdual::util::MutexLock lock(mutex_);
    value_ += amount;
  }

  long read() {
    swdual::util::MutexLock lock(mutex_);
    return value_;
  }

#ifdef LOCKCHECK_VIOLATION
  long read_unguarded() {
    return value_;  // guarded member read without holding mutex_
  }
#endif

 private:
  swdual::util::Mutex mutex_;
  long value_ SWDUAL_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.add(1);
#ifdef LOCKCHECK_VIOLATION
  return static_cast<int>(counter.read_unguarded());
#else
  return static_cast<int>(counter.read()) - 1;
#endif
}
