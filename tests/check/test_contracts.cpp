// Unit tests for the SWDUAL_DCHECK contract macro tier.
#include <gtest/gtest.h>

#include "check/contracts.h"
#include "util/error.h"

namespace swdual::check {
namespace {

TEST(Contracts, DcheckPassesOnTrueCondition) {
  EXPECT_NO_THROW(SWDUAL_DCHECK(1 + 1 == 2, "arithmetic broke"));
}

TEST(Contracts, DcheckMatchesCompileTimeSwitch) {
  // When the contract tier is compiled in, a failing DCHECK throws after
  // evaluating its condition exactly once; when compiled out, the condition
  // must not be evaluated at all (it sits inside an unevaluated sizeof).
  int evaluations = 0;
  const auto probe = [&evaluations] {
    ++evaluations;
    return false;
  };
  if (contracts_enabled()) {
    EXPECT_THROW(SWDUAL_DCHECK(probe(), "probe tripped"), Error);
    EXPECT_EQ(evaluations, 1);
  } else {
    EXPECT_NO_THROW(SWDUAL_DCHECK(probe(), "probe tripped"));
    EXPECT_EQ(evaluations, 0);
  }
}

TEST(Contracts, AlwaysOnCheckThrowsRegardlessOfTier) {
  // SWDUAL_CHECK is the validator tier: never compiled out.
  EXPECT_THROW(SWDUAL_CHECK(false, "always-on check"), Error);
}

TEST(Contracts, DcheckErrorCarriesMessage) {
  if (!contracts_enabled()) GTEST_SKIP() << "contracts compiled out";
  try {
    SWDUAL_DCHECK(false, "span inverted in test fixture");
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("span inverted in test fixture"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace swdual::check
