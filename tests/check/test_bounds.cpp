// Unit tests for the certified lower bounds and the approximation-bound
// contract checker, including deliberately violating fixtures.
#include <gtest/gtest.h>

#include "check/bounds.h"
#include "sched/dual_approx.h"
#include "util/error.h"

namespace swdual::check {
namespace {

using sched::HybridPlatform;
using sched::PeType;
using sched::Schedule;
using sched::Task;

TEST(LowerBounds, EmptyWorkloadIsAllZero) {
  const LowerBounds bounds = schedule_lower_bounds({}, {2, 2});
  EXPECT_EQ(bounds.longest_task, 0.0);
  EXPECT_EQ(bounds.aggregate_area, 0.0);
  EXPECT_EQ(bounds.knapsack, 0.0);
  EXPECT_EQ(bounds.certified, 0.0);
}

TEST(LowerBounds, RejectsEmptyPlatform) {
  EXPECT_THROW(schedule_lower_bounds({{0, 1, 1}}, {0, 0}), InvalidArgument);
}

TEST(LowerBounds, SingleTaskUsesFasterSide) {
  const LowerBounds bounds = schedule_lower_bounds({{0, 10, 2}}, {1, 1});
  EXPECT_DOUBLE_EQ(bounds.longest_task, 2.0);
  EXPECT_DOUBLE_EQ(bounds.certified, 2.0);
}

TEST(LowerBounds, AreaBoundForManyUnitTasks) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 100; ++i) tasks.push_back({i, 1, 1});
  const LowerBounds bounds = schedule_lower_bounds(tasks, {1, 1});
  EXPECT_DOUBLE_EQ(bounds.aggregate_area, 50.0);
  EXPECT_NEAR(bounds.certified, 50.0, 0.5);
}

TEST(LowerBounds, MandatoryPlacementTightensPastFractionalRelaxation) {
  // Two tasks with cpu=11, gpu=10 on 1 CPU + 1 GPU. The plain fractional
  // relaxation (threshold ~10.5) misses that any λ < 11 forces both tasks
  // onto the single GPU (cpu_time 11 > λ), overflowing kλ. The true optimum
  // is 11 — one task per PE — and the knapsack bound certifies it.
  const std::vector<Task> tasks = {{0, 11, 10}, {1, 11, 10}};
  const HybridPlatform platform{1, 1};
  const LowerBounds bounds = schedule_lower_bounds(tasks, platform);
  EXPECT_DOUBLE_EQ(bounds.longest_task, 10.0);
  EXPECT_DOUBLE_EQ(bounds.aggregate_area, 10.0);
  EXPECT_NEAR(bounds.knapsack, 11.0, 1e-6);
  EXPECT_NEAR(bounds.certified, 11.0, 1e-6);
  // The fractional relaxation the scheduler's own lower bound uses is
  // strictly weaker on this instance.
  EXPECT_LT(sched::makespan_lower_bound(tasks, platform),
            bounds.certified - 0.1);
}

TEST(LowerBounds, CertifiedIsComponentMaximum) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 25; ++i) {
    tasks.push_back({i, double(2 + i % 7), double(1 + i % 3)});
  }
  const LowerBounds bounds = schedule_lower_bounds(tasks, {2, 2});
  EXPECT_GE(bounds.certified, bounds.longest_task);
  EXPECT_GE(bounds.certified, bounds.aggregate_area);
  EXPECT_GE(bounds.certified, bounds.knapsack);
  EXPECT_DOUBLE_EQ(bounds.certified,
                   std::max({bounds.longest_task, bounds.aggregate_area,
                             bounds.knapsack}));
}

TEST(BoundCheck, AcceptsOptimalShapedSchedule) {
  // One task per PE at its best placement: ratio 1 against the bound.
  const std::vector<Task> tasks = {{0, 11, 10}, {1, 11, 10}};
  const HybridPlatform platform{1, 1};
  Schedule s;
  s.add({0, {PeType::kCpu, 0}, 0.0, 11.0});
  s.add({1, {PeType::kGpu, 0}, 0.0, 10.0});
  const BoundCheckReport report =
      check_approximation_bound(s, tasks, platform);
  EXPECT_DOUBLE_EQ(report.makespan, 11.0);
  EXPECT_NEAR(report.ratio, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(report.factor, kDualApproxFactor);
}

TEST(BoundCheck, RejectsSerializedScheduleBeyondFactorTwo) {
  // Violating fixture: 8 unit tasks on 2 CPUs + 2 GPUs all serialized on one
  // CPU. Certified LB is 2 (area 8/4, knapsack 2), so makespan 8 breaks the
  // 2x contract and the checker must throw.
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 8; ++i) tasks.push_back({i, 1, 1});
  const HybridPlatform platform{2, 2};
  Schedule s;
  for (std::size_t i = 0; i < 8; ++i) {
    s.add({i, {PeType::kCpu, 0}, double(i), double(i + 1)});
  }
  try {
    check_approximation_bound(s, tasks, platform);
    FAIL() << "expected the bound checker to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("approximation bound violated"), std::string::npos);
    EXPECT_NE(what.find("knapsack"), std::string::npos);
  }
}

TEST(BoundCheck, SameFixturePassesUnderMatchingFactor) {
  // The serialized fixture has ratio exactly 4: a generous factor accepts it,
  // proving the checker keys off the factor rather than always rejecting.
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 8; ++i) tasks.push_back({i, 1, 1});
  Schedule s;
  for (std::size_t i = 0; i < 8; ++i) {
    s.add({i, {PeType::kCpu, 0}, double(i), double(i + 1)});
  }
  const BoundCheckReport report =
      check_approximation_bound(s, tasks, {2, 2}, 4.0);
  EXPECT_NEAR(report.ratio, 4.0, 1e-9);
}

TEST(BoundCheck, RefinedFactorIsStricter) {
  // A schedule with ratio exactly 2 passes the 2x contract (slack covers
  // the boundary) but must fail the refined 1.5x contract.
  const std::vector<Task> tasks = {{0, 5, 5}, {1, 5, 5}, {2, 5, 5},
                                   {3, 5, 5}};
  const HybridPlatform platform{2, 2};  // LB: area 20/4 = 5
  Schedule s;  // two PEs take two tasks each: makespan 10, others idle
  s.add({0, {PeType::kCpu, 0}, 0.0, 5.0});
  s.add({1, {PeType::kCpu, 0}, 5.0, 10.0});
  s.add({2, {PeType::kGpu, 0}, 0.0, 5.0});
  s.add({3, {PeType::kGpu, 0}, 5.0, 10.0});
  EXPECT_NO_THROW(
      check_approximation_bound(s, tasks, platform, kDualApproxFactor));
  EXPECT_THROW(
      check_approximation_bound(s, tasks, platform, kRefinedApproxFactor),
      Error);
}

TEST(BoundCheck, EmptyScheduleEmptyTasksPasses) {
  const BoundCheckReport report =
      check_approximation_bound(Schedule{}, {}, {1, 1});
  EXPECT_EQ(report.makespan, 0.0);
  EXPECT_EQ(report.ratio, 0.0);
}

TEST(BoundCheck, RejectsVacuousFactorAndTighteningSlack) {
  const std::vector<Task> tasks = {{0, 1, 1}};
  Schedule s;
  s.add({0, {PeType::kCpu, 0}, 0.0, 1.0});
  EXPECT_THROW(check_approximation_bound(s, tasks, {1, 1}, 0.5),
               InvalidArgument);
  EXPECT_THROW(check_approximation_bound(s, tasks, {1, 1}, 2.0, 0.9),
               InvalidArgument);
}

TEST(BoundCheck, SwdualScheduleAlwaysPasses) {
  // The contract the whole suite leans on: schedules from the dual
  // approximation never trip their own checker.
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 40; ++i) {
    tasks.push_back({i, double(1 + (i * 13) % 29), double(1 + (i * 5) % 7)});
  }
  const HybridPlatform platform{3, 2};
  EXPECT_NO_THROW(check_approximation_bound(
      sched::swdual_schedule(tasks, platform), tasks, platform));
}

}  // namespace
}  // namespace swdual::check
