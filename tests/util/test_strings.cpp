// Unit tests for string utilities.
#include <gtest/gtest.h>

#include "util/strings.h"

namespace swdual {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hi \t\r\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with(">header", ">"));
  EXPECT_FALSE(starts_with("", ">"));
  EXPECT_TRUE(ends_with("db.swdb", ".swdb"));
  EXPECT_FALSE(ends_with("db.fa", ".swdb"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(ToUpperAscii, OnlyTouchesLowercaseLetters) {
  std::string s = "acgT-n123";
  to_upper_ascii(s);
  EXPECT_EQ(s, "ACGT-N123");
}

}  // namespace
}  // namespace swdual
