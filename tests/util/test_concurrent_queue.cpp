// Unit tests for the closable MPMC queue (the master–slave transport).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/concurrent_queue.h"

namespace swdual {
namespace {

TEST(ConcurrentQueue, FifoOrderSingleThread) {
  ConcurrentQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(ConcurrentQueue, TryPopOnEmptyReturnsNullopt) {
  ConcurrentQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.push(9));
  EXPECT_EQ(q.try_pop(), 9);
}

TEST(ConcurrentQueue, CloseDrainsThenEndsStream) {
  ConcurrentQueue<int> q;
  EXPECT_TRUE(q.push(1));
  q.close();
  EXPECT_EQ(q.pop(), 1);           // items before close still delivered
  EXPECT_FALSE(q.pop().has_value());  // then end-of-stream
}

TEST(ConcurrentQueue, PushAfterCloseRejected) {
  ConcurrentQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_TRUE(q.closed());
}

TEST(ConcurrentQueue, CloseUnblocksWaitingConsumers) {
  ConcurrentQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(ConcurrentQueue, ManyProducersManyConsumersDeliverEverything) {
  ConcurrentQueue<int> q;
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 500;
  std::atomic<int> consumed{0};
  std::atomic<long> checksum{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = q.pop()) {
        consumed.fetch_add(1);
        checksum.fetch_add(*item);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = kProducers; c < kProducers + kConsumers; ++c) threads[c].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(checksum.load(), long(total) * (total - 1) / 2);
}

TEST(ConcurrentQueue, MoveOnlyPayload) {
  ConcurrentQueue<std::unique_ptr<int>> q;
  EXPECT_TRUE(q.push(std::make_unique<int>(5)));
  auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 5);
}

}  // namespace
}  // namespace swdual
