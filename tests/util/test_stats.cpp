// Unit tests for streaming and batch statistics.
#include <gtest/gtest.h>

#include "util/error.h"
#include "util/stats.h"

namespace swdual {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, HandlesNegativeValues) {
  RunningStats s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -10.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> sorted = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 25.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.9), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadQuantile) {
  EXPECT_THROW(percentile_sorted({}, 0.5), InvalidArgument);
  EXPECT_THROW(percentile_sorted({1.0}, 1.5), InvalidArgument);
}

TEST(Summarize, FullSummary) {
  const Summary s = summarize({5, 1, 3, 2, 4});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
}

TEST(Summarize, EmptyInputYieldsZeroSummary) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace swdual
