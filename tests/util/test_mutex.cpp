// util::Mutex / SharedMutex / MutexLock / CondVar behave exactly like the
// standard primitives they wrap — the annotations add static visibility,
// never behavior. Runs under the tsan preset (label: threads), which is the
// dynamic cross-check of the same contract the static analysis enforces.
#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <latch>
#include <thread>
#include <vector>

namespace swdual::util {
namespace {

TEST(Mutex, MutualExclusionAcrossThreads) {
  Mutex mutex;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  MutexLock lock(mutex);
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(Mutex, TryLockReflectsOwnership) {
  Mutex mutex;
  mutex.lock();
  // try_lock from another thread must fail while held (same-thread try_lock
  // on a held std::mutex is undefined behavior, so probe from a helper).
  bool acquired_while_held = true;
  std::thread probe([&] {
    acquired_while_held = mutex.try_lock();
    if (acquired_while_held) mutex.unlock();
  });
  probe.join();
  EXPECT_FALSE(acquired_while_held);
  mutex.unlock();

  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(Mutex, MutexLockReleasesAtScopeExit) {
  Mutex mutex;
  {
    MutexLock lock(mutex);
  }
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(SharedMutex, ReadersOverlapWritersExclude) {
  SharedMutex mutex;
  constexpr int kReaders = 4;
  std::latch all_reading(kReaders);

  // Every reader holds the shared lock until ALL of them are inside the
  // critical section at once: if shared acquisition were exclusive this
  // would deadlock instead of completing.
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  std::atomic<bool> writer_entered{false};
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      ReaderMutexLock lock(mutex);
      all_reading.arrive_and_wait();
      EXPECT_FALSE(writer_entered.load());
    });
  }

  std::thread writer([&] {
    all_reading.wait();  // readers are (or were) all inside
    WriterMutexLock lock(mutex);
    writer_entered.store(true);
  });

  for (auto& reader : readers) reader.join();
  writer.join();
  EXPECT_TRUE(writer_entered.load());
}

TEST(SharedMutex, TryLockFailsWhileReaderHoldsShared) {
  SharedMutex mutex;
  mutex.lock_shared();
  bool acquired_exclusive = true;
  std::thread probe([&] {
    acquired_exclusive = mutex.try_lock();
    if (acquired_exclusive) mutex.unlock();
  });
  probe.join();
  EXPECT_FALSE(acquired_exclusive);

  // A second shared acquisition is still fine.
  ASSERT_TRUE(mutex.try_lock_shared());
  mutex.unlock_shared();
  mutex.unlock_shared();

  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(CondVar, ProducerConsumerHandoff) {
  // The canonical wait idiom from util/mutex.h: an explicit predicate loop
  // around wait(mutex), with the capability held across the whole exchange.
  Mutex mutex;
  CondVar ready;
  bool produced = false;
  long payload = 0;

  std::thread consumer([&] {
    MutexLock lock(mutex);
    while (!produced) ready.wait(mutex);
    EXPECT_EQ(payload, 42);
  });

  {
    MutexLock lock(mutex);
    payload = 42;
    produced = true;
  }
  ready.notify_one();
  consumer.join();
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar go;
  bool released = false;
  int awake = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mutex);
      while (!released) go.wait(mutex);
      ++awake;
    });
  }

  {
    MutexLock lock(mutex);
    released = true;
  }
  go.notify_all();
  for (auto& waiter : waiters) waiter.join();

  MutexLock lock(mutex);
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace swdual::util
