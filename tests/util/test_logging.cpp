// Tests for the leveled logger.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/logging.h"

namespace swdual {
namespace {

TEST(Logger, LevelFiltering) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kError);
  EXPECT_EQ(logger.level(), LogLevel::kError);
  // kInfo messages below the level are discarded silently (no crash, no
  // observable output handle here — we assert the level gate logic).
  LOG_INFO << "this is filtered";
  LOG_ERROR << "this is emitted";
  logger.set_level(LogLevel::kOff);
  LOG_ERROR << "also filtered";
  logger.set_level(original);
}

TEST(Logger, SingletonIdentity) {
  EXPECT_EQ(&Logger::instance(), &Logger::instance());
}

TEST(Logger, ConcurrentWritesDoNotCrash) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kOff);  // mute output, keep the code path
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        LOG_WARN << "thread " << t << " message " << i;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  logger.set_level(original);
}

TEST(LogLine, StreamsArbitraryTypes) {
  Logger& logger = Logger::instance();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kOff);
  LOG_ERROR << 42 << ' ' << 3.14 << ' ' << std::string("text") << ' ' << true;
  logger.set_level(original);
}

}  // namespace
}  // namespace swdual
