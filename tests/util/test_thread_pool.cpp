// Unit tests for the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "util/thread_pool.h"

namespace swdual {
namespace {

TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ZeroRequestedStillHasOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, SubmitWithArguments) {
  ThreadPool pool(2);
  auto f = pool.submit([](int a, int b) { return a + b; }, 3, 4);
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, SubmitMoveOnlyCallableAndArgument) {
  ThreadPool pool(2);
  auto value = std::make_unique<int>(41);
  auto f = pool.submit(
      [captured = std::make_unique<int>(1)](std::unique_ptr<int> arg) {
        return *captured + *arg;
      },
      std::move(value));
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    // No explicit wait: destructor must run all queued tasks before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
  parallel_for(pool, 0, 16, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ParallelFor, ChunkGrainCoversDisjointRanges) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> ranges{0};
  parallel_for(pool, hits.size(), 7,
               [&](std::size_t begin, std::size_t end) {
                 EXPECT_LT(begin, end);
                 EXPECT_LE(end - begin, 7u);
                 ranges.fetch_add(1);
                 for (std::size_t i = begin; i < end; ++i) {
                   hits[i].fetch_add(1);
                 }
               });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(ranges.load(), (100 + 6) / 7);
}

TEST(ParallelFor, ZeroGrainTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 5, 0, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(end, begin + 1);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 5);
}

}  // namespace
}  // namespace swdual
