// Unit tests for text-table and CSV rendering.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/error.h"
#include "util/table.h"

namespace swdual {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "time"});
  t.add_row({"swipe", "2367.24"});
  t.add_row({"swdual", "543.28"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("swdual"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable t;
  t.set_header({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(543.279, 1), "543.3");
}

TEST(TextTable, WriteCsvRoundTrip) {
  TextTable t;
  t.set_header({"x"});
  t.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/swdual_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "1");
  std::remove(path.c_str());
}

TEST(TextTable, WriteCsvBadPathThrows) {
  TextTable t;
  t.set_header({"x"});
  EXPECT_THROW(t.write_csv("/nonexistent-dir/x.csv"), IoError);
}

}  // namespace
}  // namespace swdual
