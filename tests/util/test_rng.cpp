// Unit tests for the deterministic PRNG.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace swdual {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(20));
  EXPECT_EQ(seen.size(), 20u);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) hit_lo = true;
    if (v == 3) hit_hi = true;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(10);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(12);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(rng.lognormal(5.7, 0.65));
  std::sort(samples.begin(), samples.end());
  const double median = samples[samples.size() / 2];
  EXPECT_NEAR(median, std::exp(5.7), std::exp(5.7) * 0.05);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
  EXPECT_NE(splitmix64(state2), first);  // state advanced
}

}  // namespace
}  // namespace swdual
