// Tests for CRC-32 (IEEE): known vectors and incremental equivalence.
#include <gtest/gtest.h>

#include <string_view>

#include "util/crc32.h"

namespace swdual {
namespace {

std::uint32_t crc_of(std::string_view text) {
  return crc32({reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size()});
}

TEST(Crc32, KnownVectors) {
  // Canonical check value for "123456789" under CRC-32/IEEE.
  EXPECT_EQ(crc_of("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc_of(""), 0x00000000u);
  EXPECT_EQ(crc_of("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc_of("abc"), 0x352441C2u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  Crc32 incremental;
  for (std::size_t i = 0; i < text.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, text.size() - i);
    incremental.update(text.data() + i, n);
  }
  EXPECT_EQ(incremental.value(), crc_of(text));
}

TEST(Crc32, SensitiveToSingleBitFlips) {
  std::vector<std::uint8_t> data(64, 0xAB);
  const std::uint32_t original = crc32(data);
  for (std::size_t byte : {0u, 31u, 63u}) {
    auto copy = data;
    copy[byte] ^= 1;
    EXPECT_NE(crc32(copy), original) << "byte " << byte;
  }
}

}  // namespace
}  // namespace swdual
