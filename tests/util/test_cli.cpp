// Unit tests for the CLI parser.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "util/cli.h"
#include "util/error.h"

namespace swdual {
namespace {

CliParser make() {
  CliParser cli("tool", "test tool");
  cli.add_flag("verbose", "debug logging");
  cli.add_option("db", "database path", "default.swdb");
  cli.add_option("workers", "worker count", "4");
  cli.add_option("scale", "scale factor", "1.5");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArguments) {
  auto cli = make();
  const char* argv[] = {"tool"};
  cli.parse(1, argv);
  EXPECT_FALSE(cli.flag("verbose"));
  EXPECT_EQ(cli.option("db"), "default.swdb");
  EXPECT_EQ(cli.option_int("workers"), 4);
}

TEST(Cli, SpaceSeparatedValues) {
  auto cli = make();
  const char* argv[] = {"tool", "--db", "x.swdb", "--workers", "8"};
  cli.parse(5, argv);
  EXPECT_EQ(cli.option("db"), "x.swdb");
  EXPECT_EQ(cli.option_int("workers"), 8);
}

TEST(Cli, EqualsSeparatedValues) {
  auto cli = make();
  const char* argv[] = {"tool", "--db=y.swdb", "--scale=2.25"};
  cli.parse(3, argv);
  EXPECT_EQ(cli.option("db"), "y.swdb");
  EXPECT_DOUBLE_EQ(cli.option_double("scale"), 2.25);
}

TEST(Cli, FlagsAndPositionals) {
  auto cli = make();
  const char* argv[] = {"tool", "--verbose", "input.fa", "out.fa"};
  cli.parse(4, argv);
  EXPECT_TRUE(cli.flag("verbose"));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.fa");
}

TEST(Cli, UnknownOptionThrows) {
  auto cli = make();
  const char* argv[] = {"tool", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), InvalidArgument);
}

TEST(Cli, MissingValueThrows) {
  auto cli = make();
  const char* argv[] = {"tool", "--db"};
  EXPECT_THROW(cli.parse(2, argv), InvalidArgument);
}

TEST(Cli, FlagWithValueThrows) {
  auto cli = make();
  const char* argv[] = {"tool", "--verbose=yes"};
  EXPECT_THROW(cli.parse(2, argv), InvalidArgument);
}

TEST(Cli, NonNumericIntThrows) {
  auto cli = make();
  const char* argv[] = {"tool", "--workers", "many"};
  cli.parse(3, argv);
  EXPECT_THROW(cli.option_int("workers"), InvalidArgument);
}

TEST(Cli, OverflowingIntThrowsInsteadOfClamping) {
  auto cli = make();
  const char* argv[] = {"tool", "--workers", "99999999999999999999"};
  cli.parse(3, argv);
  EXPECT_THROW(cli.option_int("workers"), InvalidArgument);
}

TEST(Cli, UnderflowingIntThrowsInsteadOfClamping) {
  auto cli = make();
  const char* argv[] = {"tool", "--workers", "-99999999999999999999"};
  cli.parse(3, argv);
  EXPECT_THROW(cli.option_int("workers"), InvalidArgument);
}

TEST(Cli, LongMaxStillParses) {
  auto cli = make();
  const std::string max = std::to_string(std::numeric_limits<long>::max());
  const std::string arg = "--workers=" + max;
  const char* argv[] = {"tool", arg.c_str()};
  cli.parse(2, argv);
  EXPECT_EQ(cli.option_int("workers"), std::numeric_limits<long>::max());
}

TEST(Cli, OverflowingDoubleThrows) {
  auto cli = make();
  const char* argv[] = {"tool", "--scale", "1e999"};
  cli.parse(3, argv);
  EXPECT_THROW(cli.option_double("scale"), InvalidArgument);
}

TEST(Cli, UnderflowingDoubleIsAcceptedAsTiny) {
  auto cli = make();
  const char* argv[] = {"tool", "--scale", "1e-999"};
  cli.parse(3, argv);
  EXPECT_GE(cli.option_double("scale"), 0.0);
  EXPECT_LT(cli.option_double("scale"), 1e-300);
}

TEST(Cli, UintParsesCounts) {
  auto cli = make();
  const char* argv[] = {"tool", "--workers", "8"};
  cli.parse(3, argv);
  EXPECT_EQ(cli.option_uint("workers"), 8u);
}

TEST(Cli, UintRejectsNegative) {
  auto cli = make();
  const char* argv[] = {"tool", "--workers", "-1"};
  cli.parse(3, argv);
  EXPECT_THROW(cli.option_uint("workers"), InvalidArgument);
}

TEST(Cli, UintRejectsExplicitPlusSignAndJunk) {
  auto cli = make();
  const char* argv[] = {"tool", "--workers", "+4"};
  cli.parse(3, argv);
  EXPECT_THROW(cli.option_uint("workers"), InvalidArgument);
  const char* argv2[] = {"tool", "--workers", "4x"};
  auto cli2 = make();
  cli2.parse(3, argv2);
  EXPECT_THROW(cli2.option_uint("workers"), InvalidArgument);
}

TEST(Cli, UintRejectsOverflow) {
  auto cli = make();
  const char* argv[] = {"tool", "--workers", "99999999999999999999999"};
  cli.parse(3, argv);
  EXPECT_THROW(cli.option_uint("workers"), InvalidArgument);
}

TEST(Cli, HelpRequested) {
  auto cli = make();
  const char* argv[] = {"tool", "--help"};
  cli.parse(2, argv);
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(cli.usage().find("--db"), std::string::npos);
}

}  // namespace
}  // namespace swdual
