// Integration tests for the master–slave runtime (paper Fig. 6).
#include <gtest/gtest.h>

#include "align/scalar.h"
#include "master/master.h"
#include "seq/dbgen.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::master {
namespace {

struct Fixture {
  std::vector<seq::Sequence> queries;
  std::vector<seq::Sequence> db;

  explicit Fixture(std::size_t num_queries = 6, std::size_t db_size = 40,
                   std::uint64_t seed = 17) {
    Rng rng(seed);
    for (std::size_t q = 0; q < num_queries; ++q) {
      queries.push_back(seq::random_protein(
          rng, "q" + std::to_string(q),
          static_cast<std::size_t>(rng.between(30, 120))));
    }
    for (std::size_t d = 0; d < db_size; ++d) {
      db.push_back(seq::random_protein(
          rng, "d" + std::to_string(d),
          static_cast<std::size_t>(rng.between(20, 150))));
    }
  }

  /// Reference: best hit per query via the scalar oracle.
  std::vector<int> best_scores() const {
    std::vector<int> best;
    const align::ScoringScheme scheme;
    for (const auto& query : queries) {
      int top = 0;
      for (const auto& record : db) {
        top = std::max(
            top, align::gotoh_score(
                     {query.residues.data(), query.residues.size()},
                     {record.residues.data(), record.residues.size()}, scheme)
                     .score);
      }
      best.push_back(top);
    }
    return best;
  }
};

class MasterPolicies : public ::testing::TestWithParam<AllocationPolicy> {};

TEST_P(MasterPolicies, AllPoliciesProduceExactTopHits) {
  const Fixture fixture;
  MasterConfig config;
  config.cpu_workers = 2;
  config.gpu_workers = 2;
  config.policy = GetParam();
  config.top_hits = 1;
  config.validate_contracts = true;
  const SearchReport report =
      run_search(fixture.queries, fixture.db, config);
  ASSERT_EQ(report.results.size(), fixture.queries.size());
  const std::vector<int> expected = fixture.best_scores();
  for (std::size_t q = 0; q < fixture.queries.size(); ++q) {
    ASSERT_EQ(report.results[q].hits.size(), 1u);
    EXPECT_EQ(report.results[q].hits[0].score, expected[q])
        << policy_name(GetParam()) << " query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MasterPolicies,
    ::testing::Values(AllocationPolicy::kSwdual,
                      AllocationPolicy::kSwdualRefined,
                      AllocationPolicy::kSelfScheduling,
                      AllocationPolicy::kEqualPower,
                      AllocationPolicy::kProportional, AllocationPolicy::kLpt),
    [](const auto& param_info) {
      std::string name = policy_name(param_info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(Master, VirtualAccountingPopulated) {
  const Fixture fixture;
  MasterConfig config;
  config.cpu_workers = 1;
  config.gpu_workers = 1;
  // Toy databases are smaller than a real dispatch batch: zero the modeled
  // per-task overheads so the scheduler sees the raw 3x GPU speed ratio and
  // a balanced CPU+GPU split is optimal.
  config.model.cudasw_gpu.task_overhead = 0.0;
  config.model.swipe_cpu.task_overhead = 0.0;
  const SearchReport report =
      run_search(fixture.queries, fixture.db, config);
  EXPECT_GT(report.total_cells, 0u);
  EXPECT_GT(report.virtual_makespan, 0.0);
  EXPECT_GT(report.virtual_gcups, 0.0);
  EXPECT_GE(report.wall_seconds, 0.0);
  EXPECT_FALSE(report.planned.empty());
  EXPECT_EQ(report.worker_virtual_busy.size(), 2u);
}

TEST(Master, SwdualPutsWorkOnBothPeTypes) {
  const Fixture fixture(12, 60, 23);
  MasterConfig config;
  config.cpu_workers = 2;
  config.gpu_workers = 2;
  config.model.cudasw_gpu.task_overhead = 0.0;  // see above
  config.model.swipe_cpu.task_overhead = 0.0;
  const SearchReport report =
      run_search(fixture.queries, fixture.db, config);
  std::size_t on_cpu = 0, on_gpu = 0;
  for (const auto& a : report.planned.assignments()) {
    (a.pe.type == sched::PeType::kCpu ? on_cpu : on_gpu)++;
  }
  EXPECT_GT(on_gpu, 0u);  // GPUs are faster: they must receive work
  EXPECT_EQ(on_cpu + on_gpu, fixture.queries.size());
}

TEST(Master, DynamicPolicyHasNoStaticPlan) {
  const Fixture fixture;
  MasterConfig config;
  config.policy = AllocationPolicy::kSelfScheduling;
  const SearchReport report =
      run_search(fixture.queries, fixture.db, config);
  EXPECT_TRUE(report.planned.empty());
  ASSERT_EQ(report.results.size(), fixture.queries.size());
}

TEST(Master, MoreWorkersThanTasks) {
  const Fixture fixture(2, 20, 31);
  MasterConfig config;
  config.cpu_workers = 4;
  config.gpu_workers = 4;
  const SearchReport report =
      run_search(fixture.queries, fixture.db, config);
  ASSERT_EQ(report.results.size(), 2u);
  for (const auto& r : report.results) EXPECT_FALSE(r.hits.empty());
}

TEST(Master, CpuOnlyAndGpuOnlyPlatforms) {
  const Fixture fixture(3, 15, 37);
  for (const auto& [cpus, gpus] :
       {std::pair<std::size_t, std::size_t>{2, 0}, {0, 2}}) {
    MasterConfig config;
    config.cpu_workers = cpus;
    config.gpu_workers = gpus;
    config.policy = AllocationPolicy::kSwdual;
    const SearchReport report =
        run_search(fixture.queries, fixture.db, config);
    ASSERT_EQ(report.results.size(), 3u);
  }
}

TEST(Master, EmptyQueriesEmptyReport) {
  const Fixture fixture(1, 5, 41);
  MasterConfig config;
  const SearchReport report = run_search({}, fixture.db, config);
  EXPECT_TRUE(report.results.empty());
  EXPECT_EQ(report.total_cells, 0u);
}

TEST(Master, ZeroWorkersRejected) {
  const Fixture fixture(1, 5, 43);
  MasterConfig config;
  config.cpu_workers = 0;
  config.gpu_workers = 0;
  EXPECT_THROW(run_search(fixture.queries, fixture.db, config),
               InvalidArgument);
}

TEST(Master, MultiRoundMatchesOneRoundResults) {
  const Fixture fixture(9, 40, 51);
  MasterConfig one_round;
  one_round.cpu_workers = 1;
  one_round.gpu_workers = 1;
  one_round.top_hits = 2;
  MasterConfig three_rounds = one_round;
  three_rounds.rounds = 3;
  three_rounds.validate_contracts = true;  // every round's plan is contracted
  const SearchReport a = run_search(fixture.queries, fixture.db, one_round);
  const SearchReport b =
      run_search(fixture.queries, fixture.db, three_rounds);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t q = 0; q < a.results.size(); ++q) {
    ASSERT_EQ(a.results[q].hits.size(), b.results[q].hits.size());
    for (std::size_t h = 0; h < a.results[q].hits.size(); ++h) {
      EXPECT_EQ(a.results[q].hits[h].score, b.results[q].hits[h].score);
      EXPECT_EQ(a.results[q].hits[h].db_index, b.results[q].hits[h].db_index);
    }
  }
  // Every task still planned exactly once across rounds.
  EXPECT_EQ(b.planned.size(), fixture.queries.size());
}

TEST(Master, ThreadedCpuWorkersMatchSerialHits) {
  const Fixture fixture(8, 50, 61);
  MasterConfig serial;
  serial.cpu_workers = 2;
  serial.gpu_workers = 1;
  serial.top_hits = 3;
  MasterConfig threaded = serial;
  threaded.threads_per_cpu_worker = 4;
  const SearchReport a = run_search(fixture.queries, fixture.db, serial);
  const SearchReport b = run_search(fixture.queries, fixture.db, threaded);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t q = 0; q < a.results.size(); ++q) {
    ASSERT_EQ(a.results[q].hits.size(), b.results[q].hits.size());
    for (std::size_t h = 0; h < a.results[q].hits.size(); ++h) {
      EXPECT_EQ(a.results[q].hits[h].score, b.results[q].hits[h].score);
      EXPECT_EQ(a.results[q].hits[h].db_index, b.results[q].hits[h].db_index);
    }
  }
  EXPECT_EQ(a.total_cells, b.total_cells);
}

TEST(Master, MoreRoundsThanTasksClamped) {
  const Fixture fixture(3, 10, 53);
  MasterConfig config;
  config.rounds = 100;
  const SearchReport report =
      run_search(fixture.queries, fixture.db, config);
  ASSERT_EQ(report.results.size(), 3u);
  for (const auto& r : report.results) EXPECT_FALSE(r.hits.empty());
}

TEST(Master, FaultyWorkerTasksReassignedExactResults) {
  // Worker 0 (a GPU) fails every task; the master must reroute everything
  // and still produce exact results.
  const Fixture fixture(6, 30, 61);
  MasterConfig config;
  config.cpu_workers = 2;
  config.gpu_workers = 2;
  config.top_hits = 1;
  config.fault_injector = [](std::size_t, std::size_t worker_id) {
    return worker_id == 0;
  };
  const SearchReport report =
      run_search(fixture.queries, fixture.db, config);
  const auto expected = fixture.best_scores();
  ASSERT_EQ(report.results.size(), fixture.queries.size());
  for (std::size_t q = 0; q < fixture.queries.size(); ++q) {
    EXPECT_EQ(report.results[q].hits[0].score, expected[q]) << "query " << q;
  }
}

TEST(Master, TransientFaultsRetriedInDynamicMode) {
  const Fixture fixture(8, 25, 63);
  MasterConfig config;
  config.cpu_workers = 1;
  config.gpu_workers = 1;
  config.policy = AllocationPolicy::kSelfScheduling;
  // Every task fails exactly once (on its first attempt).
  auto attempts = std::make_shared<std::map<std::size_t, int>>();
  auto mutex = std::make_shared<std::mutex>();
  config.fault_injector = [attempts, mutex](std::size_t task_id,
                                            std::size_t) {
    std::lock_guard<std::mutex> lock(*mutex);
    return (*attempts)[task_id]++ == 0;
  };
  const SearchReport report =
      run_search(fixture.queries, fixture.db, config);
  const auto expected = fixture.best_scores();
  for (std::size_t q = 0; q < fixture.queries.size(); ++q) {
    EXPECT_EQ(report.results[q].hits[0].score, expected[q]);
  }
}

TEST(Master, PermanentFailureEventuallyGivesUp) {
  const Fixture fixture(2, 10, 67);
  MasterConfig config;
  config.cpu_workers = 1;
  config.gpu_workers = 1;
  config.max_task_retries = 2;
  config.fault_injector = [](std::size_t task_id, std::size_t) {
    return task_id == 0;  // task 0 fails everywhere, forever
  };
  EXPECT_THROW(run_search(fixture.queries, fixture.db, config), Error);
}

TEST(Master, TopHitsHonored) {
  const Fixture fixture(1, 30, 47);
  MasterConfig config;
  config.top_hits = 7;
  const SearchReport report =
      run_search(fixture.queries, fixture.db, config);
  EXPECT_EQ(report.results[0].hits.size(), 7u);
  // Hits sorted by score.
  for (std::size_t i = 1; i < report.results[0].hits.size(); ++i) {
    EXPECT_GE(report.results[0].hits[i - 1].score,
              report.results[0].hits[i].score);
  }
}

}  // namespace
}  // namespace swdual::master
