// Property tests for the wire protocol: round-trip fidelity and rejection
// of every malformed-frame class (truncation, corruption, wrong type).
#include <gtest/gtest.h>

#include "master/wire.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::master {
namespace {

TEST(Wire, RegisterRoundTrip) {
  RegisterMsg msg{7, {sched::PeType::kGpu, 3}};
  const auto frame = encode_register(msg);
  EXPECT_EQ(frame_type(frame), MessageType::kRegister);
  const RegisterMsg decoded = decode_register(frame);
  EXPECT_EQ(decoded.worker_id, 7u);
  EXPECT_EQ(decoded.pe.type, sched::PeType::kGpu);
  EXPECT_EQ(decoded.pe.index, 3u);
}

TEST(Wire, OrderRoundTrip) {
  const TaskOrder order{123456789012345ULL, 42};
  const TaskOrder decoded = decode_order(encode_order(order));
  EXPECT_EQ(decoded.task_id, order.task_id);
  EXPECT_EQ(decoded.query_index, order.query_index);
}

TEST(Wire, ReportRoundTripWithScores) {
  Rng rng(1);
  for (int rep = 0; rep < 20; ++rep) {
    TaskReport report;
    report.task_id = rng.below(1'000'000);
    report.query_index = rng.below(1000);
    report.worker_id = rng.below(16);
    report.pe = {rep % 2 == 0 ? sched::PeType::kCpu : sched::PeType::kGpu,
                 rng.below(8)};
    report.failed = rep % 3 == 0;
    report.cells = rng.next();
    report.wall_seconds = rng.uniform() * 100;
    report.virtual_seconds = rng.uniform() * 1000;
    const auto n = rng.below(200);
    for (std::uint64_t i = 0; i < n; ++i) {
      report.scores.push_back(static_cast<int>(rng.between(-5, 30000)));
    }
    const TaskReport decoded = decode_report(encode_report(report));
    EXPECT_EQ(decoded.task_id, report.task_id);
    EXPECT_EQ(decoded.query_index, report.query_index);
    EXPECT_EQ(decoded.worker_id, report.worker_id);
    EXPECT_EQ(decoded.pe.type, report.pe.type);
    EXPECT_EQ(decoded.pe.index, report.pe.index);
    EXPECT_EQ(decoded.failed, report.failed);
    EXPECT_EQ(decoded.cells, report.cells);
    EXPECT_DOUBLE_EQ(decoded.wall_seconds, report.wall_seconds);
    EXPECT_DOUBLE_EQ(decoded.virtual_seconds, report.virtual_seconds);
    EXPECT_EQ(decoded.scores, report.scores);
  }
}

TEST(Wire, ShutdownFrame) {
  const auto frame = encode_shutdown();
  EXPECT_EQ(frame_type(frame), MessageType::kShutdown);
}

TEST(Wire, TruncatedFrameRejected) {
  auto frame = encode_order({1, 2});
  frame.resize(frame.size() - 3);
  EXPECT_THROW(decode_order(frame), IoError);
  frame.resize(4);
  EXPECT_THROW(frame_type(frame), IoError);
}

TEST(Wire, CorruptPayloadRejectedByChecksum) {
  auto frame = encode_order({1, 2});
  frame[10] ^= 0x55;  // flip bits inside the payload
  EXPECT_THROW(decode_order(frame), IoError);
}

TEST(Wire, CorruptChecksumRejected) {
  auto frame = encode_order({1, 2});
  frame.back() ^= 0xff;
  EXPECT_THROW(decode_order(frame), IoError);
}

TEST(Wire, BadMagicRejected) {
  auto frame = encode_order({1, 2});
  frame[0] = 'X';
  EXPECT_THROW(frame_type(frame), IoError);
  EXPECT_THROW(decode_order(frame), IoError);
}

TEST(Wire, WrongTypeRejected) {
  const auto frame = encode_order({1, 2});
  EXPECT_THROW(decode_report(frame), IoError);
  EXPECT_THROW(decode_register(frame), IoError);
}

TEST(Wire, FuzzedFramesNeverCrash) {
  // Random byte soup must always throw IoError, never read out of bounds.
  Rng rng(99);
  for (int rep = 0; rep < 500; ++rep) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_THROW(
        {
          try {
            decode_report(junk);
          } catch (const IoError&) {
            throw;
          } catch (...) {
            FAIL() << "wrong exception type for fuzz input";
          }
        },
        IoError);
  }
}

TEST(Wire, LengthFieldLyingAboutSizeRejected) {
  auto frame = encode_order({1, 2});
  frame[5] = 0xff;  // claim a much longer payload than present
  EXPECT_THROW(decode_order(frame), IoError);
}

}  // namespace
}  // namespace swdual::master
