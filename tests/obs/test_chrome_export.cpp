// Chrome trace_event exporter tests (ISSUE 2 satellites): a golden-file
// comparison of a deterministic virtual-clock run, structural validation of
// the JSON (every event carries ph/ts/pid), and the acceptance check that
// per-worker busy sums recovered *from the exported JSON* match the
// SearchReport aggregates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "json_lite.h"
#include "master/master.h"
#include "obs/trace.h"
#include "platform/des.h"
#include "sched/schedule.h"
#include "sched/task.h"
#include "seq/dbgen.h"
#include "util/rng.h"

#ifndef SWDUAL_OBS_TEST_DIR
#error "SWDUAL_OBS_TEST_DIR must point at the directory holding golden files"
#endif

namespace swdual::obs {
namespace {

/// A small fixed workload replayed through the DES: timestamps are purely
/// virtual (modeled seconds), so the exported JSON is identical on every
/// host and can be compared byte-for-byte against the golden file.
std::string deterministic_trace_json() {
  const std::vector<sched::Task> tasks = {
      {0, 4.0, 1.0},
      {1, 2.0, 0.5},
      {2, 3.0, 1.5},
      {3, 1.0, 0.25},
  };
  const sched::HybridPlatform platform{/*num_cpus=*/2, /*num_gpus=*/1};
  sched::Schedule schedule;
  schedule.add({0, {sched::PeType::kGpu, 0}, 0.0, 1.0});
  schedule.add({3, {sched::PeType::kGpu, 0}, 1.0, 1.25});
  schedule.add({1, {sched::PeType::kCpu, 0}, 0.0, 2.0});
  schedule.add({2, {sched::PeType::kCpu, 1}, 0.0, 3.0});

  Tracer tracer;
  platform::simulate_static(schedule, tasks, platform, &tracer);
  ChromeTraceOptions options;
  options.track_names[worker_track(0)] = "gpu0";
  options.track_names[worker_track(1)] = "cpu0";
  options.track_names[worker_track(2)] = "cpu1";
  return chrome_trace_json(tracer.flush(), options);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ChromeExport, MatchesGoldenTrace) {
  if (!Tracer::compiled_in()) {
    GTEST_SKIP() << "tracer compiled out (SWDUAL_TRACE=OFF)";
  }
  const std::string actual = deterministic_trace_json();
  const std::string golden_path =
      std::string(SWDUAL_OBS_TEST_DIR) + "/golden_trace.json";
  if (std::getenv("SWDUAL_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  const std::string golden = read_file(golden_path);
  EXPECT_EQ(actual, golden)
      << "exporter output drifted from tests/obs/golden_trace.json; if the "
         "change is intentional, regenerate the golden file";
}

TEST(ChromeExport, JsonParsesAndEveryEventHasPhTsPid) {
  if (!Tracer::compiled_in()) {
    GTEST_SKIP() << "tracer compiled out (SWDUAL_TRACE=OFF)";
  }
  const std::string json = deterministic_trace_json();
  const testjson::Value root = testjson::parse(json);  // throws if malformed
  ASSERT_EQ(root.kind, testjson::Value::Kind::kObject);
  ASSERT_TRUE(root.has("traceEvents"));
  const testjson::Value& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, testjson::Value::Kind::kArray);
  ASSERT_FALSE(events.array.empty());

  std::size_t task_events = 0;
  for (const testjson::Value& event : events.array) {
    ASSERT_EQ(event.kind, testjson::Value::Kind::kObject);
    EXPECT_TRUE(event.has("ph"));
    EXPECT_TRUE(event.has("ts"));
    EXPECT_TRUE(event.has("pid"));
    EXPECT_TRUE(event.has("tid"));
    const std::string ph = event.at("ph").string;
    EXPECT_TRUE(ph == "M" || ph == "X" || ph == "i") << "ph=" << ph;
    if (ph == "X") {
      ++task_events;
      EXPECT_TRUE(event.has("dur"));
      EXPECT_GE(event.at("dur").number, 0.0);
      // Virtual-clock DES events live on the virtual lane of their PE.
      EXPECT_DOUBLE_EQ(event.at("tid").number, 0.0);
      EXPECT_EQ(event.at("cat").string, "des");
    }
  }
  EXPECT_EQ(task_events, 4u);  // one complete event per scheduled task
}

TEST(ChromeExport, ExportedBusySumsMatchSearchReport) {
  if (!Tracer::compiled_in()) {
    GTEST_SKIP() << "tracer compiled out (SWDUAL_TRACE=OFF)";
  }
  // Full pipeline: run a search, export the trace, re-parse the JSON, and
  // recover per-worker virtual busy time from the file alone.
  Rng rng(211);
  std::vector<seq::Sequence> queries;
  std::vector<seq::Sequence> db;
  for (std::size_t q = 0; q < 6; ++q) {
    queries.push_back(seq::random_protein(
        rng, "q" + std::to_string(q),
        static_cast<std::size_t>(rng.between(30, 90))));
  }
  for (std::size_t d = 0; d < 25; ++d) {
    db.push_back(seq::random_protein(
        rng, "d" + std::to_string(d),
        static_cast<std::size_t>(rng.between(20, 100))));
  }

  Tracer tracer;
  master::MasterConfig config;
  config.cpu_workers = 2;
  config.gpu_workers = 1;
  config.tracer = &tracer;
  const master::SearchReport report = master::run_search(queries, db, config);
  const std::string json = chrome_trace_json(tracer.flush());

  const testjson::Value root = testjson::parse(json);
  std::map<std::size_t, double> busy_micros;  // worker id → Σ dur (µs)
  for (const testjson::Value& event : root.at("traceEvents").array) {
    if (event.at("ph").string != "X") continue;
    if (event.at("tid").number != 0.0) continue;        // virtual lane only
    if (event.at("cat").string != "task") continue;     // worker task spans
    const auto pid = static_cast<std::size_t>(event.at("pid").number);
    busy_micros[pid - 1] += event.at("dur").number;
  }

  ASSERT_FALSE(report.worker_virtual_busy.empty());
  double report_total = 0.0;
  for (const auto& [worker_id, busy] : report.worker_virtual_busy) {
    report_total += busy;
    // format_micros keeps 3 decimals of a microsecond, so each span is exact
    // to 1e-9 s; allow that much per contributing span.
    EXPECT_NEAR(busy_micros[worker_id] * 1e-6, busy,
                1e-9 * static_cast<double>(queries.size() + 1))
        << "worker " << worker_id;
  }
  EXPECT_GT(report_total, 0.0);
}

}  // namespace
}  // namespace swdual::obs
