// Unit tests for obs::MetricsRegistry.
#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace swdual::obs {
namespace {

TEST(Metrics, CountersAccumulate) {
  MetricsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.counter("tasks_dispatched"), 0.0);
  registry.add("tasks_dispatched");
  registry.add("tasks_dispatched");
  registry.add("tasks_dispatched", 3.0);
  EXPECT_DOUBLE_EQ(registry.counter("tasks_dispatched"), 5.0);
  EXPECT_DOUBLE_EQ(registry.counter("never_touched"), 0.0);
}

TEST(Metrics, HistogramSummary) {
  MetricsRegistry registry;
  registry.observe("chunk_scan_seconds", 0.5);
  registry.observe("chunk_scan_seconds", 1.5);
  registry.observe("chunk_scan_seconds", 1.0);
  const auto h = registry.histogram("chunk_scan_seconds");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 3.0);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0);
}

TEST(Metrics, EmptyHistogramIsAllZero) {
  MetricsRegistry registry;
  const auto h = registry.histogram("absent");
  EXPECT_EQ(h.count, 0u);
  EXPECT_DOUBLE_EQ(h.sum, 0.0);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Metrics, NegativeSamplesKeepMinMax) {
  MetricsRegistry registry;
  registry.observe("delta", -2.0);
  registry.observe("delta", 1.0);
  const auto h = registry.histogram("delta");
  EXPECT_DOUBLE_EQ(h.min, -2.0);
  EXPECT_DOUBLE_EQ(h.max, 1.0);
}

TEST(Metrics, PercentilesInterpolateRetainedSamples) {
  MetricsRegistry registry;
  for (int i = 1; i <= 100; ++i) {
    registry.observe("latency", static_cast<double>(i));
  }
  EXPECT_NEAR(registry.percentile("latency", 0.0), 1.0, 1e-12);
  EXPECT_NEAR(registry.percentile("latency", 0.5), 50.5, 1e-9);
  EXPECT_NEAR(registry.percentile("latency", 0.95), 95.05, 1e-9);
  EXPECT_NEAR(registry.percentile("latency", 0.99), 99.01, 1e-9);
  EXPECT_NEAR(registry.percentile("latency", 1.0), 100.0, 1e-12);
}

TEST(Metrics, PercentileOfAbsentHistogramIsZero) {
  MetricsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.percentile("absent", 0.5), 0.0);
}

TEST(Metrics, PercentileIgnoresInsertionOrder) {
  MetricsRegistry registry;
  registry.observe("h", 3.0);
  registry.observe("h", 1.0);
  registry.observe("h", 2.0);
  EXPECT_DOUBLE_EQ(registry.percentile("h", 0.5), 2.0);
}

TEST(Metrics, DumpIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.add("zebra", 2.0);
  registry.add("alpha", 1.0);
  registry.observe("latency", 0.25);
  const std::string dump = registry.dump();
  EXPECT_EQ(dump,
            "counter alpha 1\n"
            "counter zebra 2\n"
            "histogram latency count=1 sum=0.25 min=0.25 max=0.25 "
            "mean=0.25\n");
}

}  // namespace
}  // namespace swdual::obs
