#!/usr/bin/env python3
"""End-to-end smoke test for `database_search --trace/--metrics`.

Runs the example binary on a tiny generated workload, then checks that the
trace file is valid Chrome trace_event JSON (every event carries ph/ts/pid)
and that the metrics dump reached stdout. Works with SWDUAL_TRACE=OFF too:
the trace file is then a valid empty trace, and metrics still flow.
"""
import json
import subprocess
import sys
import tempfile
import os


def main():
    binary = sys.argv[1]
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        cmd = [
            binary,
            "--generate", "uniprot",
            "--scale", "20000",
            "--queries", "2",
            "--cpus", "2",
            "--gpus", "1",
            "--threads", "2",
            "--trace", trace_path,
            "--metrics",
        ]
        result = subprocess.run(cmd, capture_output=True, text=True,
                                timeout=300)
        if result.returncode != 0:
            print(result.stdout)
            print(result.stderr)
            raise SystemExit(f"database_search exited {result.returncode}")

        if "counter tasks_dispatched" not in result.stdout:
            print(result.stdout)
            raise SystemExit("metrics dump missing from stdout")

        with open(trace_path) as handle:
            trace = json.load(handle)
        events = trace["traceEvents"]
        assert isinstance(events, list), "traceEvents must be a list"
        for event in events:
            for key in ("ph", "ts", "pid"):
                assert key in event, f"event missing {key!r}: {event}"
        print(f"ok: {len(events)} events, metrics dumped")


if __name__ == "__main__":
    main()
