// Timeline invariant suite (ISSUE 2 satellites): for every allocation
// policy, the traced execution must be a physically consistent timeline —
// well-formed spans, no overlap per PE, and busy sums that reproduce the
// SearchReport aggregates. Plus the fault-injection trace contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "master/master.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "seq/dbgen.h"
#include "util/rng.h"

namespace swdual::master {
namespace {

struct Fixture {
  std::vector<seq::Sequence> queries;
  std::vector<seq::Sequence> db;

  explicit Fixture(std::size_t num_queries = 8, std::size_t db_size = 30,
                   std::uint64_t seed = 97) {
    Rng rng(seed);
    for (std::size_t q = 0; q < num_queries; ++q) {
      queries.push_back(seq::random_protein(
          rng, "q" + std::to_string(q),
          static_cast<std::size_t>(rng.between(30, 100))));
    }
    for (std::size_t d = 0; d < db_size; ++d) {
      db.push_back(seq::random_protein(
          rng, "d" + std::to_string(d),
          static_cast<std::size_t>(rng.between(20, 120))));
    }
  }
};

std::vector<obs::TraceEvent> task_spans(
    const std::vector<obs::TraceEvent>& events, obs::Clock clock) {
  std::vector<obs::TraceEvent> spans;
  for (const obs::TraceEvent& event : events) {
    if (event.category == "task" && event.clock == clock) {
      spans.push_back(event);
    }
  }
  return spans;
}

class TimelinePolicies : public ::testing::TestWithParam<AllocationPolicy> {};

TEST_P(TimelinePolicies, SpansAreWellFormedNonOverlappingAndSumToBusy) {
  if (!obs::Tracer::compiled_in()) {
    GTEST_SKIP() << "tracer compiled out (SWDUAL_TRACE=OFF)";
  }
  const Fixture fixture;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  MasterConfig config;
  config.cpu_workers = 2;
  config.gpu_workers = 2;
  config.policy = GetParam();
  config.tracer = &tracer;
  config.metrics = &metrics;
  const SearchReport report = run_search(fixture.queries, fixture.db, config);
  const std::vector<obs::TraceEvent> events = tracer.flush();

  // Every span is well-formed on both clock domains.
  for (const obs::TraceEvent& event : events) {
    EXPECT_GE(event.end, event.start)
        << policy_name(GetParam()) << ": span '" << event.name
        << "' ends before it starts";
  }

  // Exactly one successful task span per query, and dispatch accounting.
  const auto virtual_spans = task_spans(events, obs::Clock::kVirtual);
  ASSERT_EQ(virtual_spans.size(), fixture.queries.size());
  EXPECT_DOUBLE_EQ(metrics.counter("tasks_dispatched"),
                   static_cast<double>(fixture.queries.size()));
  EXPECT_DOUBLE_EQ(metrics.counter("task_retries"), 0.0);

  // Per PE (track), spans never overlap — on either clock.
  for (const obs::Clock clock : {obs::Clock::kVirtual, obs::Clock::kWall}) {
    std::map<std::size_t, std::vector<obs::TraceEvent>> per_track;
    for (const obs::TraceEvent& span : task_spans(events, clock)) {
      per_track[span.track].push_back(span);
    }
    for (auto& [track, spans] : per_track) {
      std::sort(spans.begin(), spans.end(),
                [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                  return a.start < b.start;
                });
      for (std::size_t i = 1; i < spans.size(); ++i) {
        EXPECT_GE(spans[i].start, spans[i - 1].end - 1e-12)
            << policy_name(GetParam()) << ": overlapping task spans on track "
            << track << " (clock " << static_cast<int>(clock) << ")";
      }
    }
  }

  // Per-worker virtual span sums reproduce SearchReport::worker_virtual_busy.
  std::map<std::size_t, double> span_busy;  // worker id → Σ virtual duration
  for (const obs::TraceEvent& span : virtual_spans) {
    span_busy[span.track - 1] += span.duration();
  }
  for (const auto& [worker_id, busy] : report.worker_virtual_busy) {
    EXPECT_NEAR(span_busy[worker_id], busy, 1e-9)
        << policy_name(GetParam()) << ": worker " << worker_id;
  }
  for (const auto& [worker_id, busy] : span_busy) {
    EXPECT_TRUE(report.worker_virtual_busy.count(worker_id))
        << "trace has spans for worker " << worker_id
        << " missing from the report";
    (void)busy;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, TimelinePolicies,
    ::testing::Values(AllocationPolicy::kSwdual,
                      AllocationPolicy::kSwdualRefined,
                      AllocationPolicy::kSelfScheduling,
                      AllocationPolicy::kEqualPower,
                      AllocationPolicy::kProportional, AllocationPolicy::kLpt),
    [](const auto& param_info) {
      std::string name = policy_name(param_info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(FaultTrace, TwoFaultsShowTwoRetriesAndAWorkerMove) {
  if (!obs::Tracer::compiled_in()) {
    GTEST_SKIP() << "tracer compiled out (SWDUAL_TRACE=OFF)";
  }
  const Fixture fixture(6, 20, 101);
  constexpr std::size_t kDoomedTask = 3;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  MasterConfig config;
  config.cpu_workers = 2;
  config.gpu_workers = 2;
  config.tracer = &tracer;
  config.metrics = &metrics;
  // The fixed task fails on its first two attempts, wherever they land.
  auto failures = std::make_shared<std::atomic<int>>(0);
  config.fault_injector = [failures](std::size_t task_id, std::size_t) {
    return task_id == kDoomedTask && failures->fetch_add(1) < 2;
  };
  const SearchReport report = run_search(fixture.queries, fixture.db, config);
  ASSERT_EQ(report.results.size(), fixture.queries.size());

  const std::vector<obs::TraceEvent> events = tracer.flush();
  std::vector<obs::TraceEvent> faults;
  std::vector<obs::TraceEvent> retries;
  std::vector<obs::TraceEvent> doomed_spans;
  for (const obs::TraceEvent& event : events) {
    if (event.category == "fault") faults.push_back(event);
    if (event.category == "retry") retries.push_back(event);
    if (event.category == "task" && event.clock == obs::Clock::kVirtual &&
        static_cast<std::size_t>(event.arg("task_id")) == kDoomedTask) {
      doomed_spans.push_back(event);
    }
  }

  // Exactly 2 fault + 2 retry events, counter agrees.
  ASSERT_EQ(faults.size(), 2u);
  ASSERT_EQ(retries.size(), 2u);
  EXPECT_DOUBLE_EQ(metrics.counter("task_retries"), 2.0);
  EXPECT_DOUBLE_EQ(metrics.counter("task_faults"), 2.0);
  for (const obs::TraceEvent& retry : retries) {
    EXPECT_EQ(static_cast<std::size_t>(retry.arg("task_id")), kDoomedTask);
    // The master reroutes to a different worker than the one that failed.
    EXPECT_NE(retry.arg("failed_worker"), retry.arg("target_worker"));
  }

  // The task finally succeeded exactly once, on a different worker than the
  // one whose attempt failed last.
  ASSERT_EQ(doomed_spans.size(), 1u);
  const double last_failed_worker = faults.back().arg("worker");
  EXPECT_NE(doomed_spans[0].arg("worker"), last_failed_worker);
  EXPECT_DOUBLE_EQ(doomed_spans[0].arg("worker"),
                   retries.back().arg("target_worker"));

  // Dispatches = one per task + one per retry.
  EXPECT_DOUBLE_EQ(metrics.counter("tasks_dispatched"),
                   static_cast<double>(fixture.queries.size()) + 2.0);
}

TEST(EmptyWorkload, IdleFractionIsZeroNotNaN) {
  const Fixture fixture(1, 5, 103);
  MasterConfig config;
  const SearchReport report = run_search({}, fixture.db, config);
  EXPECT_TRUE(report.results.empty());
  EXPECT_TRUE(std::isfinite(report.virtual_idle_fraction));
  EXPECT_DOUBLE_EQ(report.virtual_idle_fraction, 0.0);
  EXPECT_DOUBLE_EQ(report.virtual_makespan, 0.0);
}

}  // namespace
}  // namespace swdual::master
