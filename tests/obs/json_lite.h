// Minimal recursive-descent JSON parser for test assertions (no external
// dependency allowed in this environment). Supports the full value grammar
// the Chrome trace exporter emits: objects, arrays, strings with escapes,
// numbers, booleans, null. Throws std::runtime_error on malformed input, so
// tests double as validity checks of the exporter's output.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace swdual::testjson {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  const Value& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing key: " + key);
    return object.at(key);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value value = parse_value();
    skip_space();
    if (pos_ != text_.size()) throw std::runtime_error("trailing JSON data");
    return value;
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_space();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume_literal(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value value;
        value.kind = Value::Kind::kString;
        value.string = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        Value value;
        value.kind = Value::Kind::kBool;
        if (consume_literal("true")) {
          value.boolean = true;
        } else if (consume_literal("false")) {
          value.boolean = false;
        } else {
          throw std::runtime_error("bad literal");
        }
        return value;
      }
      case 'n': {
        if (!consume_literal("null")) throw std::runtime_error("bad literal");
        return {};
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
          const unsigned code = static_cast<unsigned>(
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: throw std::runtime_error("unknown escape");
      }
    }
  }

  Value parse_number() {
    skip_space();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double number = std::strtod(start, &end);
    if (end == start) throw std::runtime_error("bad number");
    pos_ += static_cast<std::size_t>(end - start);
    Value value;
    value.kind = Value::Kind::kNumber;
    value.number = number;
    return value;
  }

  Value parse_array() {
    expect('[');
    Value value;
    value.kind = Value::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return value;
      if (c != ',') throw std::runtime_error("expected ',' in array");
    }
  }

  Value parse_object() {
    expect('{');
    Value value;
    value.kind = Value::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      const std::string key = parse_string();
      expect(':');
      value.object.emplace(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return value;
      if (c != ',') throw std::runtime_error("expected ',' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace swdual::testjson
