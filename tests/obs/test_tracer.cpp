// Unit tests for obs::Tracer — spans, instants, clock domains, flush.
#include <gtest/gtest.h>

#include "obs/trace.h"

namespace swdual::obs {
namespace {

/// The whole file asserts recorded events, which the SWDUAL_TRACE=OFF build
/// intentionally drops; skip rather than fail there.
#define SKIP_IF_COMPILED_OUT()                                        \
  if (!Tracer::compiled_in()) {                                       \
    GTEST_SKIP() << "tracer compiled out (SWDUAL_TRACE=OFF)";         \
  }

TEST(Tracer, SpanRecordsWallEventWithArgs) {
  SKIP_IF_COMPILED_OUT();
  Tracer tracer;
  {
    Span span = tracer.span("work", "test", 3);
    span.arg("answer", 42.0);
  }
  const std::vector<TraceEvent> events = tracer.flush();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& event = events[0];
  EXPECT_EQ(event.name, "work");
  EXPECT_EQ(event.category, "test");
  EXPECT_EQ(event.track, 3u);
  EXPECT_EQ(event.clock, Clock::kWall);
  EXPECT_EQ(event.phase, TraceEvent::Phase::kComplete);
  EXPECT_GE(event.end, event.start);
  EXPECT_DOUBLE_EQ(event.arg("answer"), 42.0);
  EXPECT_DOUBLE_EQ(event.arg("missing", -1.0), -1.0);
}

TEST(Tracer, VirtualIntervalEmitsSecondEvent) {
  SKIP_IF_COMPILED_OUT();
  Tracer tracer;
  {
    Span span = tracer.span("task", "test", 1);
    span.virtual_interval(2.5, 4.0);
  }
  const auto events = tracer.flush();
  ASSERT_EQ(events.size(), 2u);
  std::size_t virtual_count = 0;
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.name, "task");
    if (event.clock == Clock::kVirtual) {
      ++virtual_count;
      EXPECT_DOUBLE_EQ(event.start, 2.5);
      EXPECT_DOUBLE_EQ(event.end, 4.0);
    }
  }
  EXPECT_EQ(virtual_count, 1u);
}

TEST(Tracer, InstantEventHasZeroDuration) {
  SKIP_IF_COMPILED_OUT();
  Tracer tracer;
  tracer.instant("ping", "test", 7, {{"x", 1.0}});
  const auto events = tracer.flush();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kInstant);
  EXPECT_DOUBLE_EQ(events[0].duration(), 0.0);
  EXPECT_DOUBLE_EQ(events[0].arg("x"), 1.0);
}

TEST(Tracer, FlushDrainsExactlyOnceAndOrdersBySeq) {
  SKIP_IF_COMPILED_OUT();
  Tracer tracer;
  for (int i = 0; i < 10; ++i) {
    tracer.instant("e" + std::to_string(i), "test", 0);
  }
  const auto events = tracer.flush();
  ASSERT_EQ(events.size(), 10u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].name, "e" + std::to_string(i));
    if (i > 0) {
      EXPECT_GT(events[i].seq, events[i - 1].seq);
    }
  }
  EXPECT_TRUE(tracer.flush().empty());  // second flush: nothing left
}

TEST(Tracer, InertSpanIsSafeEverywhere) {
  Span span;  // no tracer attached
  span.arg("ignored", 1.0);
  span.virtual_interval(0.0, 1.0);
  span.finish();
  span.finish();  // idempotent
}

TEST(Tracer, MovedFromSpanDoesNotDoubleRecord) {
  SKIP_IF_COMPILED_OUT();
  Tracer tracer;
  {
    Span outer;
    {
      Span inner = tracer.span("moved", "test", 0);
      outer = std::move(inner);
    }  // inner's destructor must be a no-op now
  }
  EXPECT_EQ(tracer.flush().size(), 1u);
}

TEST(Tracer, SpansFromTwoTracersStaySeparate) {
  SKIP_IF_COMPILED_OUT();
  Tracer a;
  Tracer b;
  a.instant("a", "test", 0);
  b.instant("b", "test", 0);
  a.instant("a2", "test", 0);
  const auto from_a = a.flush();
  const auto from_b = b.flush();
  ASSERT_EQ(from_a.size(), 2u);
  ASSERT_EQ(from_b.size(), 1u);
  EXPECT_EQ(from_b[0].name, "b");
}

TEST(Tracer, NowIsMonotone) {
  Tracer tracer;
  const double t0 = tracer.now();
  const double t1 = tracer.now();
  EXPECT_GE(t1, t0);
}

TEST(Tracer, CompiledOutFlushIsEmpty) {
  if (Tracer::compiled_in()) GTEST_SKIP() << "tracer is compiled in";
  Tracer tracer;
  tracer.instant("dropped", "test", 0);
  { Span span = tracer.span("dropped", "test", 0); }
  EXPECT_TRUE(tracer.flush().empty());
}

}  // namespace
}  // namespace swdual::obs
