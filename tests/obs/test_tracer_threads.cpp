// Concurrency hammer for obs::Tracer (satellite: tracer concurrency).
// Runs under the `threads` ctest label so the tsan preset covers it.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace swdual::obs {
namespace {

TEST(TracerThreads, HammerFlushYieldsEveryEventExactlyOnce) {
  if (!Tracer::compiled_in()) {
    GTEST_SKIP() << "tracer compiled out (SWDUAL_TRACE=OFF)";
  }
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kEventsPerThread = 500;

  Tracer tracer;
  std::vector<TraceEvent> collected;
  std::mutex collected_mutex;

  // One flusher races the producers to prove concurrent flush loses nothing.
  std::atomic<bool> done{false};
  std::thread flusher([&] {
    while (!done.load()) {
      auto batch = tracer.flush();
      std::lock_guard<std::mutex> lock(collected_mutex);
      collected.insert(collected.end(),
                       std::make_move_iterator(batch.begin()),
                       std::make_move_iterator(batch.end()));
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&tracer, t] {
      for (std::size_t i = 0; i < kEventsPerThread; ++i) {
        if (i % 2 == 0) {
          Span span = tracer.span("work", "hammer", t);
          span.arg("producer", static_cast<double>(t));
          span.arg("i", static_cast<double>(i));
        } else {
          tracer.instant("ping", "hammer", t,
                         {{"producer", static_cast<double>(t)},
                          {"i", static_cast<double>(i)}});
        }
      }
    });
  }
  for (auto& thread : producers) thread.join();
  done.store(true);
  flusher.join();
  {
    auto batch = tracer.flush();  // whatever the flusher didn't catch
    collected.insert(collected.end(),
                     std::make_move_iterator(batch.begin()),
                     std::make_move_iterator(batch.end()));
  }

  ASSERT_EQ(collected.size(), kThreads * kEventsPerThread);

  // Exactly once: every (producer, i) pair present, no duplicates; seq is a
  // total order without repeats.
  std::set<std::pair<std::size_t, std::size_t>> seen;
  std::set<std::uint64_t> seqs;
  for (const TraceEvent& event : collected) {
    const auto producer = static_cast<std::size_t>(event.arg("producer", -1));
    const auto i = static_cast<std::size_t>(event.arg("i", -1));
    EXPECT_TRUE(seen.insert({producer, i}).second)
        << "duplicate event " << producer << "/" << i;
    EXPECT_TRUE(seqs.insert(event.seq).second) << "duplicate seq";
  }
  EXPECT_EQ(seen.size(), kThreads * kEventsPerThread);

  // Per-producer wall timestamps are monotone in seq order (steady clock,
  // one recording thread per producer).
  std::sort(collected.begin(), collected.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  std::map<std::size_t, double> last_start;
  for (const TraceEvent& event : collected) {
    const auto producer = static_cast<std::size_t>(event.arg("producer"));
    const auto found = last_start.find(producer);
    if (found != last_start.end()) {
      EXPECT_GE(event.start, found->second)
          << "timestamps went backwards on producer " << producer;
    }
    last_start[producer] = event.start;
  }
}

}  // namespace
}  // namespace swdual::obs
