// Unit tests for list scheduling primitives.
#include <gtest/gtest.h>

#include "sched/list_scheduling.h"
#include "util/error.h"

namespace swdual::sched {
namespace {

TEST(ListSchedule, SinglePeRunsSequentially) {
  Schedule s;
  const std::vector<Task> tasks = {{0, 3, 1}, {1, 4, 1}, {2, 2, 1}};
  list_schedule_onto(tasks, {{PeType::kCpu, 0}}, s);
  EXPECT_DOUBLE_EQ(s.makespan(), 9.0);
  EXPECT_DOUBLE_EQ(s.find_task(1)->start, 3.0);
  EXPECT_DOUBLE_EQ(s.find_task(2)->start, 7.0);
}

TEST(ListSchedule, PicksEarliestAvailablePe) {
  Schedule s;
  const std::vector<Task> tasks = {{0, 4, 0}, {1, 1, 0}, {2, 1, 0}, {3, 1, 0}};
  list_schedule_onto(tasks, {{PeType::kCpu, 0}, {PeType::kCpu, 1}}, s);
  // CPU0 gets task0 (4); CPU1 gets 1,2,3 (3 total). Makespan 4.
  EXPECT_DOUBLE_EQ(s.makespan(), 4.0);
  EXPECT_EQ(s.find_task(3)->pe.index, 1u);
}

TEST(ListSchedule, UsesPeTypeSpecificDurations) {
  Schedule s;
  const std::vector<Task> tasks = {{0, 10, 2}};
  list_schedule_onto(tasks, {{PeType::kGpu, 0}}, s);
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
}

TEST(ListSchedule, GrahamBoundHolds) {
  // List scheduling never exceeds avg load + max task.
  std::vector<Task> tasks;
  double total = 0, longest = 0;
  for (std::size_t i = 0; i < 57; ++i) {
    const double t = 1.0 + static_cast<double>((i * 7) % 13);
    tasks.push_back({i, t, t});
    total += t;
    longest = std::max(longest, t);
  }
  const HybridPlatform platform{4, 0};
  Schedule s;
  list_schedule_onto(tasks, cpu_pool(platform), s);
  EXPECT_LE(s.makespan(), total / 4.0 + longest + 1e-9);
  validate_schedule(s, tasks, platform);
}

TEST(ListSchedule, AppendsToExistingSchedule) {
  Schedule s;
  s.add({99, {PeType::kCpu, 0}, 0.0, 5.0});
  const std::vector<Task> tasks = {{0, 1, 1}};
  list_schedule_onto(tasks, {{PeType::kCpu, 0}}, s);
  EXPECT_DOUBLE_EQ(s.find_task(0)->start, 5.0);  // resumes after busy period
}

TEST(ListSchedule, EmptyTaskListIsNoop) {
  Schedule s;
  list_schedule_onto({}, {{PeType::kCpu, 0}}, s);
  EXPECT_TRUE(s.empty());
}

TEST(ListSchedule, NoPesRejected) {
  Schedule s;
  const std::vector<Task> tasks = {{0, 1, 1}};
  EXPECT_THROW(list_schedule_onto(tasks, {}, s), InvalidArgument);
}

TEST(Pools, SizesAndOrder) {
  const HybridPlatform platform{3, 2};
  EXPECT_EQ(cpu_pool(platform).size(), 3u);
  EXPECT_EQ(gpu_pool(platform).size(), 2u);
  const auto all = all_pes(platform);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].type, PeType::kGpu);  // GPUs lead the mixed pool
  EXPECT_EQ(all[4].type, PeType::kCpu);
}

TEST(SortedLpt, OrdersByRequestedType) {
  const std::vector<Task> tasks = {{0, 1, 9}, {1, 5, 2}, {2, 3, 4}};
  const auto by_cpu = sorted_lpt(tasks, PeType::kCpu);
  EXPECT_EQ(by_cpu[0].id, 1u);
  const auto by_gpu = sorted_lpt(tasks, PeType::kGpu);
  EXPECT_EQ(by_gpu[0].id, 0u);
}

TEST(ScheduleSplit, IndependentSides) {
  const std::vector<Task> cpu_tasks = {{0, 5, 1}};
  const std::vector<Task> gpu_tasks = {{1, 9, 2}};
  const Schedule s = schedule_split(cpu_tasks, gpu_tasks, {1, 1});
  EXPECT_EQ(s.find_task(0)->pe.type, PeType::kCpu);
  EXPECT_EQ(s.find_task(1)->pe.type, PeType::kGpu);
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
}

TEST(ScheduleSplit, TasksWithoutMatchingPesRejected) {
  const std::vector<Task> cpu_tasks = {{0, 5, 1}};
  EXPECT_THROW(schedule_split(cpu_tasks, {}, {0, 1}), InvalidArgument);
}

}  // namespace
}  // namespace swdual::sched
