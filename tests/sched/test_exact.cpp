// Tests for the exact branch-and-bound scheduler (the ground-truth oracle).
#include <gtest/gtest.h>

#include "check/bounds.h"
#include "check/trace_check.h"
#include "platform/des.h"
#include "sched/baselines.h"
#include "sched/dual_approx.h"
#include "sched/exact.h"
#include "util/rng.h"

namespace swdual::sched {
namespace {

std::vector<Task> random_tasks(Rng& rng, std::size_t n) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    const double cpu = 1.0 + rng.uniform() * 49.0;
    tasks.push_back({i, cpu, cpu / (1.0 + rng.uniform() * 9.0)});
  }
  return tasks;
}

TEST(Exact, EmptyAndSingleTask) {
  const HybridPlatform platform{2, 1};
  EXPECT_EQ(exact_schedule({}, platform)->makespan, 0.0);
  const std::vector<Task> one = {{0, 10, 2}};
  const auto result = exact_schedule(one, platform);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->makespan, 2.0);  // GPU is faster
  validate_schedule(result->schedule, one, platform);
}

TEST(Exact, KnownOptimumTwoMachines) {
  // Tasks {3,3,2,2,2} on 2 identical CPUs: optimum is 6.
  std::vector<Task> tasks;
  const double times[] = {3, 3, 2, 2, 2};
  for (std::size_t i = 0; i < 5; ++i) {
    tasks.push_back({i, times[i], times[i]});
  }
  const auto result = exact_schedule(tasks, {2, 0});
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->makespan, 6.0);
}

TEST(Exact, HybridForcedChoice) {
  // One task hugely accelerated, one decelerated: optimum uses each PE for
  // what it is good at.
  const std::vector<Task> tasks = {{0, 100, 5}, {1, 5, 100}};
  const auto result = exact_schedule(tasks, {1, 1});
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->makespan, 5.0);
}

TEST(Exact, MatchesBruteForceEnumeration) {
  Rng rng(71);
  for (int rep = 0; rep < 15; ++rep) {
    const auto tasks = random_tasks(rng, 2 + rng.below(6));
    const HybridPlatform platform{1 + rng.below(2), 1 + rng.below(2)};
    // Brute force over all placements.
    const std::size_t pes = platform.total();
    std::vector<std::size_t> assign(tasks.size(), 0);
    double best = 1e300;
    while (true) {
      std::vector<double> load(pes, 0.0);
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        const bool is_cpu = assign[i] < platform.num_cpus;
        load[assign[i]] += is_cpu ? tasks[i].cpu_time : tasks[i].gpu_time;
      }
      best = std::min(best, *std::max_element(load.begin(), load.end()));
      std::size_t pos = 0;
      while (pos < tasks.size() && ++assign[pos] == pes) {
        assign[pos] = 0;
        ++pos;
      }
      if (pos == tasks.size()) break;
    }
    const auto result = exact_schedule(tasks, platform);
    ASSERT_TRUE(result.has_value());
    EXPECT_NEAR(result->makespan, best, 1e-9) << "rep " << rep;
    validate_schedule(result->schedule, tasks, platform);
    check::cross_validate_trace(
        platform::simulate_static(result->schedule, tasks, platform),
        result->schedule, tasks, platform);
  }
}

TEST(Exact, CertifiedLowerBoundsNeverExceedExactOptimum) {
  // The contract checker's certified bounds are sound against the exact
  // oracle: every component is a true lower bound on the optimal makespan,
  // and the optimal schedule itself passes the 2x bound check trivially.
  Rng rng(79);
  for (int rep = 0; rep < 12; ++rep) {
    const auto tasks = random_tasks(rng, 4 + rng.below(8));
    const HybridPlatform platform{1 + rng.below(2), 1 + rng.below(2)};
    const auto result = exact_schedule(tasks, platform);
    ASSERT_TRUE(result.has_value());
    const check::LowerBounds bounds =
        check::schedule_lower_bounds(tasks, platform);
    EXPECT_LE(bounds.certified, result->makespan * (1 + 1e-9)) << "rep " << rep;
    const check::BoundCheckReport report = check::check_approximation_bound(
        result->schedule, tasks, platform, check::kDualApproxFactor);
    EXPECT_GE(report.ratio, 1.0 - 1e-9) << "rep " << rep;
  }
}

TEST(Exact, NeverAboveHeuristicsNeverBelowLowerBound) {
  Rng rng(73);
  for (int rep = 0; rep < 10; ++rep) {
    const auto tasks = random_tasks(rng, 10 + rng.below(6));
    const HybridPlatform platform{2, 2};
    const auto result = exact_schedule(tasks, platform);
    ASSERT_TRUE(result.has_value());
    EXPECT_LE(result->makespan,
              swdual_schedule(tasks, platform).makespan() + 1e-9);
    EXPECT_LE(result->makespan, lpt_hybrid(tasks, platform).makespan() + 1e-9);
    EXPECT_GE(result->makespan,
              makespan_lower_bound(tasks, platform) - 1e-9);
  }
}

TEST(Exact, DualApproxWithinFactorTwoOfTrueOptimum) {
  Rng rng(75);
  for (int rep = 0; rep < 10; ++rep) {
    const auto tasks = random_tasks(rng, 12);
    const HybridPlatform platform{2, 2};
    const auto exact = exact_schedule(tasks, platform);
    ASSERT_TRUE(exact.has_value());
    const double approx = swdual_schedule(tasks, platform).makespan();
    EXPECT_LE(approx, 2.0 * exact->makespan + 1e-9) << "rep " << rep;
  }
}

TEST(Exact, NodeLimitReturnsNullopt) {
  Rng rng(77);
  const auto tasks = random_tasks(rng, 18);
  EXPECT_FALSE(exact_schedule(tasks, {3, 3}, 10).has_value());
}

}  // namespace
}  // namespace swdual::sched
