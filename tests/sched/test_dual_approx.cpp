// Unit tests for the dual-approximation step and binary search (paper §III).
#include <gtest/gtest.h>

#include "check/bounds.h"
#include "check/trace_check.h"
#include "platform/des.h"
#include "sched/dual_approx.h"
#include "sched/schedule.h"
#include "util/error.h"

namespace swdual::sched {
namespace {

/// Full contract pass for a schedule produced by a dual-approx path:
/// structural validity, certified approximation bound, and exact DES replay.
void expect_contracts(const Schedule& schedule, const std::vector<Task>& tasks,
                      const HybridPlatform& platform,
                      double factor = check::kDualApproxFactor) {
  validate_schedule(schedule, tasks, platform);
  check::check_approximation_bound(schedule, tasks, platform, factor);
  check::cross_validate_trace(
      platform::simulate_static(schedule, tasks, platform), schedule, tasks,
      platform);
}

TEST(DualStep, TaskTooLongEverywhereIsNo) {
  const std::vector<Task> tasks = {{0, 10, 10}};
  const DualStepResult r = dual_approx_step(tasks, {1, 1}, 5.0);
  EXPECT_FALSE(r.feasible);
}

TEST(DualStep, ForcedGpuTaskPlacedOnGpu) {
  // cpu_time 100 > λ=10, gpu_time 5 <= λ: must land on a GPU.
  const std::vector<Task> tasks = {{0, 100, 5}};
  const DualStepResult r = dual_approx_step(tasks, {1, 1}, 10.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.find_task(0)->pe.type, PeType::kGpu);
}

TEST(DualStep, ForcedCpuTaskPlacedOnCpu) {
  // gpu_time > λ (a decelerated task), cpu_time <= λ: must land on a CPU.
  const std::vector<Task> tasks = {{0, 5, 100}};
  const DualStepResult r = dual_approx_step(tasks, {1, 1}, 10.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.find_task(0)->pe.type, PeType::kCpu);
}

TEST(DualStep, MandatoryGpuAreaOverflowIsNo) {
  // Three tasks forced to the single GPU (cpu too slow), 6 each > k*λ=10.
  const std::vector<Task> tasks = {{0, 100, 6}, {1, 100, 6}, {2, 100, 6}};
  EXPECT_FALSE(dual_approx_step(tasks, {1, 1}, 10.0).feasible);
}

TEST(DualStep, CpuOverloadIsNo) {
  // GPU budget fits only ~1 task; the rest exceed m*λ on the CPU side.
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 10; ++i) tasks.push_back({i, 10, 10});
  EXPECT_FALSE(dual_approx_step(tasks, {1, 1}, 10.0).feasible);
}

TEST(DualStep, GuaranteeMakespanAtMostTwoLambda) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 20; ++i) {
    tasks.push_back({i, 8.0 + static_cast<double>(i % 5), 2.0});
  }
  const HybridPlatform platform{2, 2};
  const double lambda = 30.0;
  const DualStepResult r = dual_approx_step(tasks, platform, lambda);
  ASSERT_TRUE(r.feasible);
  validate_schedule(r.schedule, tasks, platform);
  EXPECT_LE(r.schedule.makespan(), 2.0 * lambda + 1e-9);
  check::cross_validate_trace(
      platform::simulate_static(r.schedule, tasks, platform), r.schedule,
      tasks, platform);
}

TEST(DualStep, KnapsackPrefersBestAcceleratedTasks) {
  // Two tasks fit on the GPU; the ones with the highest p/p̄ ratio must win.
  const std::vector<Task> tasks = {
      {0, 10, 1},   // ratio 10
      {1, 10, 5},   // ratio 2
      {2, 10, 1},   // ratio 10
      {3, 10, 5},   // ratio 2
  };
  // λ=10: GPU budget 2 (k=1, but crossing allowed). With budget kλ=10 the
  // ratio-10 tasks (area 2) go first, then ratio-2 tasks fill to >= 10.
  const DualStepResult r = dual_approx_step(tasks, {2, 1}, 10.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.find_task(0)->pe.type, PeType::kGpu);
  EXPECT_EQ(r.schedule.find_task(2)->pe.type, PeType::kGpu);
}

TEST(DualStep, EmptyTasksFeasible) {
  const DualStepResult r = dual_approx_step({}, {1, 1}, 1.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.schedule.empty());
}

TEST(DualStep, CpuOnlyPlatform) {
  const std::vector<Task> tasks = {{0, 4, 1}, {1, 4, 1}};
  const DualStepResult r = dual_approx_step(tasks, {2, 0}, 4.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.find_task(0)->pe.type, PeType::kCpu);
}

TEST(DualStep, GpuOnlyPlatform) {
  const std::vector<Task> tasks = {{0, 4, 1}, {1, 4, 1}};
  const DualStepResult r = dual_approx_step(tasks, {0, 1}, 2.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.schedule.makespan(), 2.0);
}

TEST(LowerBound, SingleTaskUsesFasterSide) {
  const std::vector<Task> tasks = {{0, 10, 2}};
  EXPECT_DOUBLE_EQ(makespan_lower_bound(tasks, {1, 1}), 2.0);
}

TEST(LowerBound, AreaBoundDominatesManySmallTasks) {
  // 100 unit tasks, 1 CPU + 1 GPU at equal speed: area bound = 50.
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 100; ++i) tasks.push_back({i, 1, 1});
  EXPECT_NEAR(makespan_lower_bound(tasks, {1, 1}), 50.0, 0.1);
}

TEST(LowerBound, NeverExceedsAchievedMakespan) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 30; ++i) {
    tasks.push_back({i, double(1 + i % 7), double(1 + i % 3)});
  }
  const HybridPlatform platform{3, 2};
  const double lb = makespan_lower_bound(tasks, platform);
  const double achieved = swdual_schedule(tasks, platform).makespan();
  EXPECT_LE(lb, achieved + 1e-9);
}

TEST(SwdualSchedule, EmptyInput) {
  DualSearchStats stats;
  const Schedule s = swdual_schedule({}, {1, 1}, 1e-3, &stats);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(SwdualSchedule, TwoApproxGuarantee) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 50; ++i) {
    tasks.push_back({i, double(5 + i % 17), double(1 + i % 4)});
  }
  const HybridPlatform platform{4, 4};
  DualSearchStats stats;
  const Schedule s = swdual_schedule(tasks, platform, 1e-4, &stats);
  expect_contracts(s, tasks, platform);
  const double lb = makespan_lower_bound(tasks, platform);
  EXPECT_LE(s.makespan(), 2.0 * lb * 1.01 + 1e-9)
      << "2-approximation guarantee vs certified lower bound";
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GE(stats.makespan, lb);
}

TEST(SwdualSchedule, CertifiedBoundsTightenMakespanLowerBound) {
  // The contract checker's knapsack bound enforces the mandatory-placement
  // conditions the fractional relaxation of makespan_lower_bound omits, so
  // it can only be tighter (and never above the achieved makespan).
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 60; ++i) {
    tasks.push_back({i, double(3 + i % 13), double(1 + i % 5)});
  }
  const HybridPlatform platform{3, 2};
  const check::LowerBounds bounds =
      check::schedule_lower_bounds(tasks, platform);
  // makespan_lower_bound's bisection stops at a 1e-9 *relative* gap and
  // reports the feasible end, so it may overshoot the shared fractional
  // threshold by that much — compare with a matching relative margin.
  const double legacy = makespan_lower_bound(tasks, platform);
  EXPECT_GE(bounds.certified, legacy * (1.0 - 1e-8));
  EXPECT_GE(bounds.certified, bounds.longest_task);
  EXPECT_GE(bounds.certified, bounds.aggregate_area);
  EXPECT_LE(bounds.certified,
            swdual_schedule(tasks, platform).makespan() + 1e-9);
}

TEST(SwdualSchedule, BinarySearchIterationsLogarithmic) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 100; ++i) {
    tasks.push_back({i, double(1 + i % 23), double(1 + i % 5)});
  }
  DualSearchStats stats;
  swdual_schedule(tasks, {4, 4}, 1e-6, &stats);
  EXPECT_LE(stats.iterations, 64u);  // log2((Bmax-Bmin)/eps·Bmax) range
}

TEST(SwdualSchedule, StatsLowerBoundIsCertified) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < 40; ++i) {
    tasks.push_back({i, double(2 + i % 9), double(1 + i % 3)});
  }
  const HybridPlatform platform{2, 2};
  DualSearchStats stats;
  swdual_schedule(tasks, platform, 1e-4, &stats);
  // A certified NO at stats.lower_bound means OPT > lower_bound; the
  // returned makespan can thus never be below it.
  EXPECT_GE(stats.makespan, stats.lower_bound - 1e-9);
}

TEST(SwdualRefined, NeverWorseThanBase) {
  for (std::uint64_t variant = 0; variant < 5; ++variant) {
    std::vector<Task> tasks;
    for (std::size_t i = 0; i < 30; ++i) {
      tasks.push_back({i, double(1 + (i * 7 + variant) % 19),
                       double(1 + (i * 3 + variant) % 5)});
    }
    const HybridPlatform platform{3, 2};
    const double base = swdual_schedule(tasks, platform).makespan();
    const Schedule refined = swdual_schedule_refined(tasks, platform);
    // The refined (3/2-style) variant is held to the tighter factor.
    expect_contracts(refined, tasks, platform, check::kRefinedApproxFactor);
    EXPECT_LE(refined.makespan(), base + 1e-9) << "variant " << variant;
  }
}

TEST(SwdualSchedule, RejectsBadEpsilon) {
  EXPECT_THROW(swdual_schedule({{0, 1, 1}}, {1, 1}, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace swdual::sched
