// Property tests of the dual-approximation scheme on randomized instances:
// the 2λ guarantee on YES answers, soundness of NO certificates against a
// brute-force oracle on small instances, and end-to-end approximation ratio.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "check/bounds.h"
#include "check/trace_check.h"
#include "platform/des.h"
#include "sched/baselines.h"
#include "sched/dual_approx.h"
#include "util/rng.h"

namespace swdual::sched {
namespace {

std::vector<Task> random_instance(Rng& rng, std::size_t n, double accel_lo,
                                  double accel_hi) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    const double cpu = 1.0 + rng.uniform() * 199.0;
    const double accel = accel_lo + rng.uniform() * (accel_hi - accel_lo);
    tasks.push_back({i, cpu, cpu / accel});
  }
  return tasks;
}

/// Brute force: try all 2^n CPU/GPU splits; within a side, optimal makespan
/// for identical machines approximated exactly by trying all orderings is
/// too slow, so we use the area/longest lower bound per side, which is exact
/// for feasibility questions "does a schedule of length ≤ λ exist" only in
/// one direction. Instead we check the *feasibility certificate* direction
/// that must always hold: if dual_approx_step answers NO at λ, then no
/// schedule with makespan ≤ λ may exist. We verify with an exhaustive
/// placement search (tasks onto individual PEs).
double brute_force_optimum(const std::vector<Task>& tasks,
                           const HybridPlatform& platform) {
  const std::size_t n = tasks.size();
  const std::size_t pes = platform.total();
  std::vector<std::size_t> assign(n, 0);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    std::vector<double> load(pes, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const bool on_gpu = assign[i] < platform.num_gpus;
      load[assign[i]] += on_gpu ? tasks[i].gpu_time : tasks[i].cpu_time;
    }
    best = std::min(best, *std::max_element(load.begin(), load.end()));
    // Next assignment in base-`pes`.
    std::size_t pos = 0;
    while (pos < n && ++assign[pos] == pes) {
      assign[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

class DualApproxRandom : public ::testing::TestWithParam<
                             std::tuple<int, std::size_t, std::size_t>> {};

TEST_P(DualApproxRandom, TwoApproxAgainstLowerBound) {
  const auto [seed, m, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 3);
  for (int rep = 0; rep < 5; ++rep) {
    const auto tasks =
        random_instance(rng, 20 + rng.below(60), 2.0, 30.0);
    const HybridPlatform platform{m, k};
    const Schedule s = swdual_schedule(tasks, platform, 1e-4);
    validate_schedule(s, tasks, platform);
    const double lb = makespan_lower_bound(tasks, platform);
    ASSERT_LE(s.makespan(), 2.0 * lb * 1.001 + 1e-9)
        << "seed=" << seed << " rep=" << rep << " m=" << m << " k=" << k;
    // Full contract pass: certified bound + exact DES replay of the plan.
    check::check_approximation_bound(s, tasks, platform);
    check::cross_validate_trace(
        platform::simulate_static(s, tasks, platform), s, tasks, platform);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Platforms, DualApproxRandom,
    ::testing::Values(std::tuple{1, 1u, 1u}, std::tuple{2, 4u, 1u},
                      std::tuple{3, 1u, 4u}, std::tuple{4, 4u, 4u},
                      std::tuple{5, 8u, 8u}, std::tuple{6, 2u, 6u}));

TEST(DualApproxSoundness, CertifiedLowerBoundsNeverExceedBruteForceOptimum) {
  // The contract checker's certified bounds must be true lower bounds: on
  // instances small enough to solve exactly, every component stays at or
  // below the brute-force optimum.
  Rng rng(9091);
  for (int rep = 0; rep < 30; ++rep) {
    const auto tasks = random_instance(rng, 2 + rng.below(6), 1.2, 20.0);
    const HybridPlatform platform{1 + rng.below(2), 1 + rng.below(2)};
    const double opt = brute_force_optimum(tasks, platform);
    const check::LowerBounds bounds =
        check::schedule_lower_bounds(tasks, platform);
    ASSERT_LE(bounds.longest_task, opt * (1 + 1e-9)) << "rep " << rep;
    ASSERT_LE(bounds.aggregate_area, opt * (1 + 1e-9)) << "rep " << rep;
    ASSERT_LE(bounds.knapsack, opt * (1 + 1e-9)) << "rep " << rep;
    ASSERT_LE(bounds.certified, opt * (1 + 1e-9)) << "rep " << rep;
  }
}

TEST(DualApproxSoundness, NoAnswerNeverContradictsBruteForce) {
  // Small instances where the exact optimum is computable: whenever the
  // step answers NO at λ, the true optimum must exceed λ.
  Rng rng(4242);
  for (int rep = 0; rep < 30; ++rep) {
    const auto tasks = random_instance(rng, 2 + rng.below(5), 1.5, 12.0);
    const HybridPlatform platform{1 + rng.below(2), 1 + rng.below(2)};
    const double opt = brute_force_optimum(tasks, platform);
    for (const double factor : {0.5, 0.8, 0.95, 1.0, 1.05, 1.5, 2.0}) {
      const double lambda = opt * factor;
      const DualStepResult r = dual_approx_step(tasks, platform, lambda);
      if (!r.feasible) {
        ASSERT_LT(lambda, opt * (1 + 1e-9))
            << "NO answered although a schedule of length " << opt
            << " <= " << lambda << " exists (rep " << rep << ")";
      } else {
        ASSERT_LE(r.schedule.makespan(), 2.0 * lambda + 1e-9);
      }
    }
  }
}

TEST(DualApproxSoundness, FullSearchWithinTwoTimesBruteForce) {
  Rng rng(777);
  for (int rep = 0; rep < 15; ++rep) {
    const auto tasks = random_instance(rng, 2 + rng.below(6), 1.5, 10.0);
    const HybridPlatform platform{1 + rng.below(2), 1 + rng.below(2)};
    const double opt = brute_force_optimum(tasks, platform);
    const double got = swdual_schedule(tasks, platform, 1e-5).makespan();
    ASSERT_LE(got, 2.0 * opt * 1.001 + 1e-9) << "rep " << rep;
    ASSERT_GE(got, opt - 1e-9) << "beat the optimum?! rep " << rep;
  }
}

TEST(DualApproxQuality, BeatsOrMatchesBaselinesOnAcceleratedWorkloads) {
  // The headline claim: with heterogeneous acceleration, SWDUAL's allocation
  // beats self-scheduling and proportional-static most of the time.
  Rng rng(31337);
  int no_worse_than_ss = 0, no_worse_than_prop = 0;
  const int total = 20;
  for (int rep = 0; rep < total; ++rep) {
    const auto tasks = random_instance(rng, 40 + rng.below(40), 1.0, 40.0);
    const HybridPlatform platform{4, 4};
    const double dual = swdual_schedule(tasks, platform).makespan();
    if (dual <= self_scheduling(tasks, platform).makespan() + 1e-9) {
      ++no_worse_than_ss;
    }
    if (dual <= proportional_static(tasks, platform).makespan() + 1e-9) {
      ++no_worse_than_prop;
    }
  }
  EXPECT_GE(no_worse_than_ss, total * 3 / 4);
  EXPECT_GE(no_worse_than_prop, total * 3 / 4);
}

TEST(DualApproxQuality, RefinedVariantMeetsThreeHalvesBound) {
  // The local-search refinement stands in for the 3/2-approximation of
  // Kedad-Sidhoum et al.; hold it to that factor against the certified
  // lower bound on randomized instances.
  Rng rng(2718);
  for (int rep = 0; rep < 10; ++rep) {
    const auto tasks = random_instance(rng, 15 + rng.below(30), 2.0, 25.0);
    const HybridPlatform platform{1 + rng.below(4), 1 + rng.below(4)};
    const Schedule s = swdual_schedule_refined(tasks, platform, 1e-4);
    validate_schedule(s, tasks, platform);
    check::check_approximation_bound(s, tasks, platform,
                                     check::kRefinedApproxFactor);
    check::cross_validate_trace(
        platform::simulate_static(s, tasks, platform), s, tasks, platform);
  }
}

TEST(DualApproxQuality, HomogeneousAndHeterogeneousTaskSizes) {
  // §V-C: the allocator must handle near-uniform and wildly varying task
  // sizes equally well (ratio to lower bound stays within 2).
  Rng rng(555);
  for (const bool homogeneous : {true, false}) {
    std::vector<Task> tasks;
    for (std::size_t i = 0; i < 40; ++i) {
      const double cpu = homogeneous ? 95.0 + rng.uniform() * 10.0
                                     : std::exp(rng.uniform() * 8.0);
      tasks.push_back({i, cpu, cpu / 15.0});
    }
    const HybridPlatform platform{4, 4};
    const double got = swdual_schedule(tasks, platform).makespan();
    const double lb = makespan_lower_bound(tasks, platform);
    EXPECT_LE(got, 2.0 * lb * 1.001)
        << (homogeneous ? "homogeneous" : "heterogeneous");
  }
}

}  // namespace
}  // namespace swdual::sched
