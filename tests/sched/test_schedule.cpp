// Unit tests for the schedule model, validator, and metrics.
#include <gtest/gtest.h>

#include "check/contracts.h"
#include "sched/schedule.h"
#include "util/error.h"

namespace swdual::sched {
namespace {

std::vector<Task> three_tasks() {
  return {{0, 10.0, 2.0}, {1, 20.0, 4.0}, {2, 6.0, 3.0}};
}

TEST(Schedule, EmptyScheduleZeroMakespan) {
  Schedule s;
  EXPECT_EQ(s.makespan(), 0.0);
  EXPECT_EQ(s.area(PeType::kCpu), 0.0);
}

TEST(Schedule, MakespanAndAreas) {
  Schedule s;
  s.add({0, {PeType::kCpu, 0}, 0.0, 10.0});
  s.add({1, {PeType::kGpu, 0}, 0.0, 4.0});
  s.add({2, {PeType::kCpu, 1}, 0.0, 6.0});
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
  EXPECT_DOUBLE_EQ(s.area(PeType::kCpu), 16.0);
  EXPECT_DOUBLE_EQ(s.area(PeType::kGpu), 4.0);
  EXPECT_DOUBLE_EQ(s.pe_finish({PeType::kCpu, 0}), 10.0);
  EXPECT_DOUBLE_EQ(s.pe_finish({PeType::kGpu, 1}), 0.0);
}

TEST(Schedule, FindTask) {
  Schedule s;
  s.add({7, {PeType::kGpu, 1}, 1.0, 3.0});
  ASSERT_TRUE(s.find_task(7).has_value());
  EXPECT_EQ(s.find_task(7)->pe.index, 1u);
  EXPECT_FALSE(s.find_task(8).has_value());
}

TEST(Validate, AcceptsCorrectSchedule) {
  const auto tasks = three_tasks();
  const HybridPlatform platform{2, 1};
  Schedule s;
  s.add({0, {PeType::kCpu, 0}, 0.0, 10.0});
  s.add({1, {PeType::kGpu, 0}, 0.0, 4.0});
  s.add({2, {PeType::kCpu, 0}, 10.0, 16.0});
  EXPECT_NO_THROW(validate_schedule(s, tasks, platform));
}

TEST(Validate, DetectsMissingTask) {
  const auto tasks = three_tasks();
  Schedule s;
  s.add({0, {PeType::kCpu, 0}, 0.0, 10.0});
  EXPECT_THROW(validate_schedule(s, tasks, {2, 1}), Error);
}

TEST(Validate, DetectsDuplicatePlacement) {
  const auto tasks = three_tasks();
  Schedule s;
  s.add({0, {PeType::kCpu, 0}, 0.0, 10.0});
  s.add({0, {PeType::kCpu, 1}, 0.0, 10.0});
  s.add({1, {PeType::kGpu, 0}, 0.0, 4.0});
  s.add({2, {PeType::kCpu, 0}, 10.0, 16.0});
  EXPECT_THROW(validate_schedule(s, tasks, {2, 1}), Error);
}

TEST(Validate, DetectsWrongDuration) {
  const auto tasks = three_tasks();
  Schedule s;
  s.add({0, {PeType::kCpu, 0}, 0.0, 2.0});  // CPU time is 10, not 2
  s.add({1, {PeType::kGpu, 0}, 0.0, 4.0});
  s.add({2, {PeType::kCpu, 0}, 10.0, 16.0});
  EXPECT_THROW(validate_schedule(s, tasks, {2, 1}), Error);
}

TEST(Validate, DetectsOverlapOnSamePe) {
  const auto tasks = three_tasks();
  Schedule s;
  s.add({0, {PeType::kCpu, 0}, 0.0, 10.0});
  s.add({2, {PeType::kCpu, 0}, 5.0, 11.0});  // overlaps task 0
  s.add({1, {PeType::kGpu, 0}, 0.0, 4.0});
  EXPECT_THROW(validate_schedule(s, tasks, {2, 1}), Error);
}

TEST(Validate, DetectsNonexistentPe) {
  const auto tasks = three_tasks();
  Schedule s;
  s.add({0, {PeType::kCpu, 5}, 0.0, 10.0});  // only 2 CPUs
  s.add({1, {PeType::kGpu, 0}, 0.0, 4.0});
  s.add({2, {PeType::kCpu, 0}, 0.0, 6.0});
  EXPECT_THROW(validate_schedule(s, tasks, {2, 1}), Error);
}

TEST(Validate, DetectsUnknownTask) {
  Schedule s;
  s.add({99, {PeType::kCpu, 0}, 0.0, 1.0});
  EXPECT_THROW(validate_schedule(s, three_tasks(), {2, 1}), Error);
}

TEST(Validate, DetectsNegativeStart) {
  const auto tasks = three_tasks();
  Schedule s;
  s.add({0, {PeType::kCpu, 0}, -1.0, 9.0});
  s.add({1, {PeType::kGpu, 0}, 0.0, 4.0});
  s.add({2, {PeType::kCpu, 1}, 0.0, 6.0});
  EXPECT_THROW(validate_schedule(s, tasks, {2, 1}), Error);
}

TEST(Validate, DetectsCpuDurationUsedOnGpu) {
  // Task 0 placed on a GPU but given its CPU duration (10 instead of 2):
  // the validator must reject PE-type-mismatched spans.
  const auto tasks = three_tasks();
  Schedule s;
  s.add({0, {PeType::kGpu, 0}, 0.0, 10.0});
  s.add({1, {PeType::kGpu, 0}, 10.0, 14.0});
  s.add({2, {PeType::kCpu, 0}, 0.0, 6.0});
  EXPECT_THROW(validate_schedule(s, tasks, {2, 1}), Error);
}

TEST(Contracts, AddRejectsInvertedSpanWhenEnabled) {
  // Schedule::add carries a SWDUAL_DCHECK that the span is not inverted;
  // it only fires when the contract tier is compiled in.
  if (!check::contracts_enabled()) GTEST_SKIP() << "contracts compiled out";
  Schedule s;
  EXPECT_THROW(s.add({0, {PeType::kCpu, 0}, 5.0, 4.0}), Error);
}

TEST(Metrics, IdleAccounting) {
  const HybridPlatform platform{1, 1};
  Schedule s;
  s.add({0, {PeType::kCpu, 0}, 0.0, 10.0});
  s.add({1, {PeType::kGpu, 0}, 0.0, 4.0});
  const ScheduleMetrics metrics = compute_metrics(s, platform);
  EXPECT_DOUBLE_EQ(metrics.makespan, 10.0);
  EXPECT_DOUBLE_EQ(metrics.total_idle, 6.0);  // GPU idle 6
  EXPECT_DOUBLE_EQ(metrics.idle_fraction, 6.0 / 20.0);
  EXPECT_EQ(metrics.tasks_on_cpu, 1u);
  EXPECT_EQ(metrics.tasks_on_gpu, 1u);
}

TEST(Gantt, RendersEveryPeRow) {
  const HybridPlatform platform{2, 1};
  Schedule s;
  s.add({0, {PeType::kCpu, 0}, 0.0, 10.0});
  const std::string text = render_gantt(s, platform);
  EXPECT_NE(text.find("CPU0"), std::string::npos);
  EXPECT_NE(text.find("CPU1"), std::string::npos);
  EXPECT_NE(text.find("GPU0"), std::string::npos);
  EXPECT_NE(text.find("makespan"), std::string::npos);
}

TEST(PeName, Formats) {
  EXPECT_EQ(pe_name({PeType::kCpu, 3}), "CPU3");
  EXPECT_EQ(pe_name({PeType::kGpu, 0}), "GPU0");
}

}  // namespace
}  // namespace swdual::sched
