// Unit tests for baseline allocation policies.
#include <gtest/gtest.h>

#include "check/trace_check.h"
#include "platform/des.h"
#include "sched/baselines.h"
#include "sched/schedule.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::sched {
namespace {

/// Structural validity plus exact DES replay (every static policy's
/// schedules are compact, so the replay reproduces the plan bit for bit).
void expect_replayable(const Schedule& schedule,
                       const std::vector<Task>& tasks,
                       const HybridPlatform& platform) {
  validate_schedule(schedule, tasks, platform);
  check::cross_validate_trace(
      platform::simulate_static(schedule, tasks, platform), schedule, tasks,
      platform);
}

std::vector<Task> random_tasks(std::size_t n, std::uint64_t seed,
                               double accel_lo = 2.0, double accel_hi = 10.0) {
  Rng rng(seed);
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    const double cpu = 1.0 + rng.uniform() * 99.0;
    const double accel = accel_lo + rng.uniform() * (accel_hi - accel_lo);
    tasks.push_back({i, cpu, cpu / accel});
  }
  return tasks;
}

TEST(SelfScheduling, ValidAndComplete) {
  const auto tasks = random_tasks(40, 1);
  const HybridPlatform platform{4, 4};
  const Schedule s = self_scheduling(tasks, platform);
  expect_replayable(s, tasks, platform);
}

TEST(SelfScheduling, SinglePePlatformSerializes) {
  const auto tasks = random_tasks(10, 2);
  const Schedule s = self_scheduling(tasks, {1, 0});
  double total = 0;
  for (const auto& t : tasks) total += t.cpu_time;
  EXPECT_DOUBLE_EQ(s.makespan(), total);
}

TEST(EarliestCompletion, NeverWorseThanSelfSchedulingHere) {
  // ECT considers the task's duration on each PE; with strongly accelerated
  // tasks it should beat plain availability-based self-scheduling on average.
  double ect_wins = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto tasks = random_tasks(60, seed);
    const HybridPlatform platform{4, 2};
    const double ss = self_scheduling(tasks, platform).makespan();
    const double ect = earliest_completion(tasks, platform).makespan();
    if (ect <= ss + 1e-9) ect_wins += 1;
  }
  EXPECT_GE(ect_wins, 8);
}

TEST(EqualPower, DealsRoundRobin) {
  const auto tasks = random_tasks(12, 3);
  const HybridPlatform platform{2, 2};
  const Schedule s = equal_power(tasks, platform);
  expect_replayable(s, tasks, platform);
  // 12 tasks over 4 PEs -> 3 each.
  std::size_t on_gpu0 = 0;
  for (const auto& a : s.assignments()) {
    if (a.pe == PeId{PeType::kGpu, 0}) ++on_gpu0;
  }
  EXPECT_EQ(on_gpu0, 3u);
}

TEST(ProportionalStatic, ValidAndGpuGetsMostWork) {
  const auto tasks = random_tasks(80, 4, 8.0, 12.0);  // ~10x acceleration
  const HybridPlatform platform{4, 4};
  const Schedule s = proportional_static(tasks, platform);
  expect_replayable(s, tasks, platform);
  // With ~10x faster GPUs, the GPU pool should receive most of the
  // CPU-equivalent work: GPU-area * accel ≈ moved work.
  const ScheduleMetrics metrics = compute_metrics(s, platform);
  EXPECT_GT(metrics.tasks_on_gpu, metrics.tasks_on_cpu);
}

TEST(ProportionalStatic, RequiresBothPeTypes) {
  const auto tasks = random_tasks(5, 5);
  EXPECT_THROW(proportional_static(tasks, {4, 0}), InvalidArgument);
}

TEST(ProportionalStatic, EmptyTasksYieldEmptySchedule) {
  EXPECT_TRUE(proportional_static({}, {2, 2}).empty());
}

TEST(LptHybrid, ValidAndBeatsUnorderedEct) {
  double wins = 0;
  for (std::uint64_t seed = 10; seed < 20; ++seed) {
    const auto tasks = random_tasks(60, seed);
    const HybridPlatform platform{4, 2};
    expect_replayable(lpt_hybrid(tasks, platform), tasks, platform);
    if (lpt_hybrid(tasks, platform).makespan() <=
        earliest_completion(tasks, platform).makespan() + 1e-9) {
      wins += 1;
    }
  }
  EXPECT_GE(wins, 7);  // LPT ordering usually helps
}

TEST(AllBaselines, HandleSingleTask) {
  const std::vector<Task> tasks = {{0, 10, 1}};
  const HybridPlatform platform{2, 2};
  using Policy = Schedule (*)(const std::vector<Task>&, const HybridPlatform&);
  for (Policy policy :
       {Policy{&self_scheduling}, Policy{&earliest_completion},
        Policy{&equal_power}, Policy{&proportional_static},
        Policy{&lpt_hybrid}}) {
    const Schedule s = (*policy)(tasks, platform);
    expect_replayable(s, tasks, platform);
    EXPECT_GT(s.makespan(), 0.0);
  }
}

}  // namespace
}  // namespace swdual::sched
