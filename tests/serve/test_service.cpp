// Edge-case tests for the concurrent query service: admission control,
// shutdown draining, duplicate collapsing, cache behaviour, bit-identity
// against the direct search path, and latency metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "align/search.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "seq/dbgen.h"
#include "serve/service.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::serve {
namespace {

std::vector<seq::Sequence> tiny_database(std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<seq::Sequence> db;
  for (std::size_t i = 0; i < count; ++i) {
    db.push_back(seq::random_protein(
        rng, "db" + std::to_string(i),
        static_cast<std::size_t>(rng.between(20, 120))));
  }
  return db;
}

seq::Sequence make_query(std::uint64_t seed, std::size_t length) {
  Rng rng(seed);
  return seq::random_protein(rng, "q" + std::to_string(seed), length);
}

ServiceConfig small_config() {
  ServiceConfig config;
  config.master.cpu_workers = 1;
  config.master.gpu_workers = 1;
  config.db_id = "tiny";
  return config;
}

TEST(QueryService, SubmitAfterShutdownIsRejectedWithReason) {
  QueryService service(tiny_database(5, 1), small_config());
  service.shutdown();
  const Submission ticket = service.submit(make_query(2, 40));
  EXPECT_EQ(ticket.status, SubmitStatus::kShutdown);
  EXPECT_FALSE(ticket.accepted());
  EXPECT_FALSE(ticket.reason.empty());
  EXPECT_EQ(service.stats().rejected_shutdown, 1u);
}

TEST(QueryService, ShutdownDrainsAdmittedRequests) {
  // Requests accepted before shutdown must still be answered.
  ServiceConfig config = small_config();
  config.max_batch = 2;
  auto service =
      std::make_unique<QueryService>(tiny_database(8, 3), std::move(config));
  std::vector<std::shared_future<QueryResponse>> pending;
  for (std::uint64_t s = 0; s < 6; ++s) {
    const Submission ticket = service->submit(make_query(10 + s, 30));
    ASSERT_TRUE(ticket.accepted());
    pending.push_back(ticket.result);
  }
  service->shutdown();
  for (auto& future : pending) {
    EXPECT_FALSE(future.get().hits.empty());
  }
  service.reset();  // destructor joins cleanly after explicit shutdown
}

TEST(QueryService, FullAdmissionQueueRejectsImmediately) {
  ServiceConfig config = small_config();
  config.admission_capacity = 2;
  config.max_batch = 1;
  // Hold the batcher inside its first batch so the admission queue state is
  // deterministic while we probe it.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<int> calls{0};
  config.before_batch = [&](std::size_t) {
    if (calls.fetch_add(1) == 0) {
      entered.set_value();
      release_future.wait();
    }
  };
  QueryService service(tiny_database(5, 4), std::move(config));

  const Submission first = service.submit(make_query(20, 30));
  ASSERT_TRUE(first.accepted());
  entered.get_future().wait();  // batcher drained `first`, queue now empty

  const Submission second = service.submit(make_query(21, 30));
  const Submission third = service.submit(make_query(22, 30));
  ASSERT_TRUE(second.accepted());
  ASSERT_TRUE(third.accepted());
  const Submission rejected = service.submit(make_query(23, 30));
  EXPECT_EQ(rejected.status, SubmitStatus::kQueueFull);
  EXPECT_NE(rejected.reason.find("admission queue full"), std::string::npos);
  EXPECT_EQ(service.stats().rejected_queue_full, 1u);

  release.set_value();
  EXPECT_FALSE(first.result.get().hits.empty());
  EXPECT_FALSE(second.result.get().hits.empty());
  EXPECT_FALSE(third.result.get().hits.empty());
}

TEST(QueryService, DuplicateConcurrentQueriesCollapseToOneSearch) {
  ServiceConfig config = small_config();
  config.max_batch = 8;
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<int> calls{0};
  config.before_batch = [&](std::size_t) {
    if (calls.fetch_add(1) == 0) {
      entered.set_value();
      release_future.wait();
    }
  };
  QueryService service(tiny_database(10, 5), std::move(config));

  // First batch: a decoy that blocks the batcher while the duplicates queue.
  const Submission decoy = service.submit(make_query(30, 25));
  ASSERT_TRUE(decoy.accepted());
  entered.get_future().wait();

  const seq::Sequence query = make_query(31, 60);
  const Submission a = service.submit(query);
  const Submission b = service.submit(query);
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());
  release.set_value();

  const QueryResponse ra = a.result.get();
  const QueryResponse rb = b.result.get();
  EXPECT_FALSE(ra.cache_hit);
  EXPECT_FALSE(rb.cache_hit);
  ASSERT_EQ(ra.hits.size(), rb.hits.size());
  for (std::size_t i = 0; i < ra.hits.size(); ++i) {
    EXPECT_EQ(ra.hits[i].db_index, rb.hits[i].db_index);
    EXPECT_EQ(ra.hits[i].score, rb.hits[i].score);
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.searches, 2u);  // decoy + ONE search for the duplicates
  EXPECT_EQ(stats.results.size, 2u);  // one cache entry per distinct query

  // The duplicates produced one cache entry; a re-submit is a pure hit.
  const Submission again = service.submit(query);
  ASSERT_TRUE(again.accepted());
  EXPECT_TRUE(again.result.get().cache_hit);
  EXPECT_EQ(service.stats().searches, 2u);  // no new search
}

TEST(QueryService, ResponsesAreBitIdenticalToDirectSearch) {
  const auto db = tiny_database(20, 6);
  ServiceConfig config = small_config();
  const align::ScoringScheme scheme = config.master.scheme;
  const align::KernelKind kernel = config.master.cpu_kernel;
  const std::size_t top = config.master.top_hits;
  QueryService service(db, std::move(config));

  std::vector<seq::Sequence> queries;
  std::vector<std::shared_future<QueryResponse>> pending;
  for (std::uint64_t s = 0; s < 5; ++s) {
    queries.push_back(make_query(40 + s, 35 + 10 * s));
    // Submit each query twice: the second is either batched into the same
    // workload or a cache hit — identical either way.
    for (int copy = 0; copy < 2; ++copy) {
      const Submission ticket = service.submit(queries.back());
      ASSERT_TRUE(ticket.accepted());
      pending.push_back(ticket.result);
    }
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const QueryResponse response = pending[i].get();
    const auto expected =
        align::search_database(queries[i / 2], db, scheme, kernel).top(top);
    ASSERT_EQ(response.hits.size(), expected.size()) << "request " << i;
    for (std::size_t h = 0; h < expected.size(); ++h) {
      EXPECT_EQ(response.hits[h].db_index, expected[h].db_index)
          << "request " << i << " hit " << h;
      EXPECT_EQ(response.hits[h].score, expected[h].score)
          << "request " << i << " hit " << h;
    }
  }
}

TEST(QueryService, LatencyMetricsAndSpansAreRecorded) {
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  ServiceConfig config = small_config();
  config.metrics = &metrics;
  config.tracer = &tracer;
  QueryService service(tiny_database(8, 7), std::move(config));

  const seq::Sequence query = make_query(50, 45);
  std::vector<std::shared_future<QueryResponse>> pending;
  for (int i = 0; i < 4; ++i) {
    const Submission ticket = service.submit(query);
    ASSERT_TRUE(ticket.accepted());
    pending.push_back(ticket.result);
  }
  for (auto& future : pending) {
    const QueryResponse response = future.get();
    EXPECT_GE(response.queue_seconds, 0.0);
    EXPECT_GE(response.execute_seconds, 0.0);
    EXPECT_GE(response.total_seconds, response.queue_seconds);
  }
  service.shutdown();

  EXPECT_EQ(metrics.counter("serve_accepted"), 4.0);
  EXPECT_EQ(metrics.histogram("serve_latency_seconds").count, 4u);
  EXPECT_GT(metrics.percentile("serve_latency_seconds", 0.5), 0.0);
  EXPECT_LE(metrics.percentile("serve_latency_seconds", 0.5),
            metrics.percentile("serve_latency_seconds", 0.99));
  EXPECT_GT(metrics.counter("serve_cache_hits") +
                metrics.counter("serve_cache_misses"),
            0.0);

  if (obs::Tracer::compiled_in()) {
    bool saw_queued = false;
    bool saw_answer = false;
    for (const auto& event : tracer.flush()) {
      if (event.category != "serve") continue;
      if (event.name == "queued") saw_queued = true;
      if (event.name == "execute" || event.name == "cache-hit") {
        saw_answer = true;
      }
    }
    EXPECT_TRUE(saw_queued);
    EXPECT_TRUE(saw_answer);
  }
}

TEST(QueryService, EmptyQueryIsRejectedUpFront) {
  QueryService service(tiny_database(3, 8), small_config());
  seq::Sequence empty;
  EXPECT_THROW((void)service.submit(empty), InvalidArgument);
}

}  // namespace
}  // namespace swdual::serve
