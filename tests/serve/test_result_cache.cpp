// Unit tests for the serve-layer LRU result cache.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "align/backend.h"
#include "align/profile_cache.h"
#include "align/scoring.h"
#include "serve/cache.h"

namespace swdual::serve {
namespace {

ResultCache::Hits hits_of(int score) { return {{0, score}}; }

TEST(ResultCache, MissThenHit) {
  ResultCache cache(4);
  EXPECT_EQ(cache.lookup("a"), nullptr);
  cache.insert("a", hits_of(7));
  const auto found = cache.lookup("a");
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0].score, 7);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 4u);
}

TEST(ResultCache, InsertRaceKeepsFirstValue) {
  ResultCache cache(4);
  const auto first = cache.insert("k", hits_of(1));
  const auto second = cache.insert("k", hits_of(2));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ((*cache.lookup("k"))[0].score, 1);
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.insert("a", hits_of(1));
  cache.insert("b", hits_of(2));
  ASSERT_NE(cache.lookup("a"), nullptr);  // refresh "a": "b" becomes LRU
  cache.insert("c", hits_of(3));
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, EvictedValueSurvivesThroughSharedPtr) {
  ResultCache cache(1);
  const auto held = cache.insert("a", hits_of(5));
  cache.insert("b", hits_of(6));
  EXPECT_EQ(cache.lookup("a"), nullptr);
  ASSERT_EQ(held->size(), 1u);
  EXPECT_EQ((*held)[0].score, 5);
}

TEST(ResultCache, KeySeparatesEveryDimension) {
  const std::vector<std::uint8_t> query{1, 2, 3};
  const std::vector<std::uint8_t> other{1, 2, 4};
  align::ScoringScheme scheme;
  align::ScoringScheme different_gaps = scheme;
  different_gaps.gap.open += 1;
  const std::span<const std::uint8_t> q{query.data(), query.size()};
  const std::string base =
      result_key(q, "db1", scheme, align::KernelKind::kInterSeq);
  EXPECT_NE(base, result_key({other.data(), other.size()}, "db1", scheme,
                             align::KernelKind::kInterSeq));
  EXPECT_NE(base,
            result_key(q, "db2", scheme, align::KernelKind::kInterSeq));
  EXPECT_NE(base, result_key(q, "db1", different_gaps,
                             align::KernelKind::kInterSeq));
  EXPECT_NE(base,
            result_key(q, "db1", scheme, align::KernelKind::kStriped));
  EXPECT_EQ(base, result_key(q, "db1", scheme, align::KernelKind::kInterSeq));

  // The two-stage filter splits the cache only when enabled, and every
  // parameter of an enabled filter is part of the identity.
  align::FilterConfig heuristic;
  heuristic.mode = align::FilterMode::kHeuristic;
  const std::string filtered = result_key(
      q, "db1", scheme, align::KernelKind::kInterSeq, heuristic);
  EXPECT_NE(base, filtered);
  align::FilterConfig wider = heuristic;
  wider.band += 1;
  EXPECT_NE(filtered, result_key(q, "db1", scheme,
                                 align::KernelKind::kInterSeq, wider));
  align::FilterConfig keepier = heuristic;
  keepier.keep_factor += 1.0;
  EXPECT_NE(filtered, result_key(q, "db1", scheme,
                                 align::KernelKind::kInterSeq, keepier));
  // kOff ≡ exact search, so it shares the unfiltered key (and cache entry).
  align::FilterConfig off;
  EXPECT_EQ(base,
            result_key(q, "db1", scheme, align::KernelKind::kInterSeq, off));

  // Annotation splits the cache only when enabled; mode and cutoff are both
  // part of an enabled config's identity (the mode decides the payload, the
  // cutoff decides which hits survive).
  align::AnnotateConfig stats;
  stats.mode = align::AnnotateMode::kStats;
  const std::string annotated = result_key(
      q, "db1", scheme, align::KernelKind::kInterSeq, off, stats);
  EXPECT_NE(base, annotated);
  align::AnnotateConfig cigar = stats;
  cigar.mode = align::AnnotateMode::kStatsCigar;
  EXPECT_NE(annotated, result_key(q, "db1", scheme,
                                  align::KernelKind::kInterSeq, off, cigar));
  align::AnnotateConfig strict = stats;
  strict.evalue_cutoff = 0.001;
  EXPECT_NE(annotated, result_key(q, "db1", scheme,
                                  align::KernelKind::kInterSeq, off, strict));
  // Annotate kOff adds nothing: plain and off-annotated answers alias.
  EXPECT_EQ(base, result_key(q, "db1", scheme, align::KernelKind::kInterSeq,
                             off, align::AnnotateConfig{}));
}

TEST(ResultCache, KeyLayoutIsPinned) {
  // Pins the exact key layout so a field cannot sneak in (or out)
  // unreviewed. The key is db id, scoring parameters, kernel, and the raw
  // query residues — nothing else. In particular the SIMD backend and the
  // shard topology (shard count, threads per shard, scatter order) are
  // excluded on purpose: both produce bit-identical answers
  // (tests/align/test_backend_equivalence.cpp,
  // tests/align/test_sharded_search.cpp), so one cached result serves every
  // backend and every shard count. Extending the key with either would
  // silently split the cache per deployment topology.
  const std::vector<std::uint8_t> query{3, 1, 4, 1, 5};
  const align::ScoringScheme scheme;
  const align::KernelKind kernel = align::KernelKind::kStriped;
  std::string expected = "dbX";
  expected += '/';
  expected += align::scoring_key(scheme);
  expected += '/';
  expected += align::kernel_name(kernel);
  expected += '/';
  expected.append(reinterpret_cast<const char*>(query.data()), query.size());
  EXPECT_EQ(result_key({query.data(), query.size()}, "dbX", scheme, kernel),
            expected);

  // An enabled two-stage filter adds exactly one segment before the query
  // bytes: "filter:<mode>:b<band>:k<keep_factor>". A disabled filter adds
  // nothing — the off answer is the exact answer, so the keys must collide.
  align::FilterConfig filter;
  filter.mode = align::FilterMode::kHeuristic;
  filter.band = 48;
  filter.keep_factor = 2.5;
  std::string filtered = "dbX";
  filtered += '/';
  filtered += align::scoring_key(scheme);
  filtered += '/';
  filtered += align::kernel_name(kernel);
  filtered += '/';
  filtered += "filter:";
  filtered += align::filter_mode_name(filter.mode);
  filtered += ":b48:k";
  filtered += std::to_string(2.5);
  filtered += '/';
  filtered.append(reinterpret_cast<const char*>(query.data()), query.size());
  EXPECT_EQ(result_key({query.data(), query.size()}, "dbX", scheme, kernel,
                       filter),
            filtered);

  // An enabled annotation likewise adds exactly one segment (after the
  // filter's, before the query bytes): "annotate:<mode>:e<cutoff>".
  align::AnnotateConfig annotate;
  annotate.mode = align::AnnotateMode::kStatsCigar;
  annotate.evalue_cutoff = 10.0;
  std::string annotated = "dbX";
  annotated += '/';
  annotated += align::scoring_key(scheme);
  annotated += '/';
  annotated += align::kernel_name(kernel);
  annotated += '/';
  annotated += "annotate:";
  annotated += align::annotate_mode_name(align::AnnotateMode::kStatsCigar);
  annotated += ":e";
  annotated += std::to_string(10.0);
  annotated += '/';
  annotated.append(reinterpret_cast<const char*>(query.data()),
                   query.size());
  EXPECT_EQ(result_key({query.data(), query.size()}, "dbX", scheme, kernel,
                       align::FilterConfig{}, annotate),
            annotated);
}

}  // namespace
}  // namespace swdual::serve
