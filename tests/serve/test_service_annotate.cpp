// Annotated responses through the query service (ctest labels: serve
// annotate): stats+cigar responses must carry e-value / bit score / CIGAR
// per hit, the CIGAR must re-derive the hit's exact search score, cache
// hits must stay annotated, a finite e-value cutoff must drop exactly the
// insignificant suffix, and every shard topology must produce bit-identical
// annotated answers.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "align/alignment.h"
#include "align/annotate.h"
#include "align/search.h"
#include "align/statistics.h"
#include "seq/alphabet.h"
#include "seq/dbgen.h"
#include "serve/service.h"
#include "util/rng.h"

namespace swdual::serve {
namespace {

std::vector<seq::Sequence> make_database(std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<seq::Sequence> db;
  for (std::size_t i = 0; i < count; ++i) {
    db.push_back(seq::random_protein(
        rng, "db" + std::to_string(i),
        static_cast<std::size_t>(rng.between(20, 150))));
  }
  return db;
}

seq::Sequence make_query(std::uint64_t seed, std::size_t length) {
  Rng rng(seed);
  return seq::random_protein(rng, "q" + std::to_string(seed), length);
}

align::DbView view_of(const std::vector<seq::Sequence>& db) {
  align::DbView view;
  for (const auto& record : db) {
    view.emplace_back(record.residues.data(), record.residues.size());
  }
  return view;
}

ServiceConfig annotated_config(const std::string& db_id,
                               align::AnnotateMode mode) {
  ServiceConfig config;
  config.master.cpu_workers = 1;
  config.master.gpu_workers = 1;
  config.db_id = db_id;
  config.master.annotate.mode = mode;
  return config;
}

/// The service's calibration is deterministic in (scheme, alphabet, db_id),
/// so an independent StatsCache reproduces the exact params it used.
align::KarlinAltschulParams params_for(const ServiceConfig& config) {
  align::StatsCache cache;
  return *cache.acquire(config.master.scheme, seq::Alphabet::protein(),
                        config.db_id);
}

TEST(QueryServiceAnnotate, StatsCigarResponseCarriesValidatedAnnotations) {
  const auto db = make_database(40, 11);
  const align::DbView db_view = view_of(db);
  ServiceConfig config =
      annotated_config("annot", align::AnnotateMode::kStatsCigar);
  const align::ScoringScheme scheme = config.master.scheme;
  const std::size_t top_k = config.master.top_hits;
  const align::KarlinAltschulParams params = params_for(config);
  const std::uint64_t n = align::db_residue_count(db_view);
  QueryService service(db, std::move(config));

  const seq::Sequence query = make_query(21, 80);
  const Submission ticket = service.submit(query);
  ASSERT_TRUE(ticket.accepted());
  const QueryResponse response = ticket.result.get();
  EXPECT_TRUE(response.annotated);
  ASSERT_FALSE(response.hits.empty());

  const std::vector<align::SearchHit> plain =
      align::search_database(query.residues, db_view, scheme,
                             align::KernelKind::kInterSeq)
          .top(top_k);
  ASSERT_EQ(response.hits.size(), plain.size());
  for (std::size_t i = 0; i < response.hits.size(); ++i) {
    EXPECT_EQ(response.hits[i].db_index, plain[i].db_index) << "hit " << i;
    EXPECT_EQ(response.hits[i].score, plain[i].score) << "hit " << i;
    ASSERT_NE(response.hits[i].annotation, nullptr) << "hit " << i;
    const align::HitAnnotation& note = *response.hits[i].annotation;
    EXPECT_DOUBLE_EQ(note.evalue, align::evalue(params,
                                                response.hits[i].score,
                                                query.residues.size(), n));
    EXPECT_DOUBLE_EQ(note.bits,
                     align::bit_score(params, response.hits[i].score));
    EXPECT_EQ(align::cigar_score(
                  note.cigar,
                  {query.residues.data(), query.residues.size()},
                  db_view[response.hits[i].db_index], note.query_begin,
                  note.db_begin, scheme),
              response.hits[i].score)
        << "hit " << i << " cigar " << note.cigar;
  }
  service.shutdown();
}

TEST(QueryServiceAnnotate, StatsModeOmitsCigar) {
  const auto db = make_database(30, 12);
  QueryService service(db,
                       annotated_config("stats", align::AnnotateMode::kStats));
  const Submission ticket = service.submit(make_query(22, 60));
  ASSERT_TRUE(ticket.accepted());
  const QueryResponse response = ticket.result.get();
  EXPECT_TRUE(response.annotated);
  ASSERT_FALSE(response.hits.empty());
  for (const align::SearchHit& hit : response.hits) {
    ASSERT_NE(hit.annotation, nullptr);
    EXPECT_GT(hit.annotation->evalue, 0.0);
    EXPECT_TRUE(hit.annotation->cigar.empty());
  }
  service.shutdown();
}

TEST(QueryServiceAnnotate, CacheHitStaysAnnotated) {
  const auto db = make_database(30, 13);
  QueryService service(
      db, annotated_config("cached", align::AnnotateMode::kStatsCigar));
  const seq::Sequence query = make_query(23, 70);

  const QueryResponse fresh = service.submit(query).result.get();
  ASSERT_FALSE(fresh.hits.empty());
  EXPECT_FALSE(fresh.cache_hit);

  const QueryResponse cached = service.submit(query).result.get();
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_TRUE(cached.annotated);
  ASSERT_EQ(cached.hits.size(), fresh.hits.size());
  for (std::size_t i = 0; i < cached.hits.size(); ++i) {
    ASSERT_NE(cached.hits[i].annotation, nullptr);
    // The cache shares the hit vector, annotations included.
    EXPECT_EQ(cached.hits[i].annotation.get(),
              fresh.hits[i].annotation.get());
  }
  service.shutdown();
}

TEST(QueryServiceAnnotate, FiniteCutoffDropsInsignificantSuffix) {
  const auto db = make_database(50, 14);
  const seq::Sequence query = make_query(24, 60);

  // Reference pass with no cutoff to learn the e-value distribution.
  ServiceConfig reference_config =
      annotated_config("cut", align::AnnotateMode::kStats);
  std::vector<align::SearchHit> reference;
  {
    QueryService service(db, std::move(reference_config));
    reference = service.submit(query).result.get().hits;
    service.shutdown();
  }
  ASSERT_GE(reference.size(), 2u);
  const double cutoff = reference.front().annotation->evalue;
  std::size_t expected_kept = 0;
  while (expected_kept < reference.size() &&
         reference[expected_kept].annotation->evalue <= cutoff) {
    ++expected_kept;
  }
  if (expected_kept == reference.size()) {
    GTEST_SKIP() << "random corpus produced no droppable suffix";
  }

  ServiceConfig config = annotated_config("cut", align::AnnotateMode::kStats);
  config.master.annotate.evalue_cutoff = cutoff;
  QueryService service(db, std::move(config));
  const QueryResponse response = service.submit(query).result.get();
  ASSERT_EQ(response.hits.size(), expected_kept);
  for (std::size_t i = 0; i < response.hits.size(); ++i) {
    EXPECT_EQ(response.hits[i].db_index, reference[i].db_index);
    EXPECT_EQ(response.hits[i].score, reference[i].score);
    EXPECT_LE(response.hits[i].annotation->evalue, cutoff);
  }
  service.shutdown();
}

TEST(QueryServiceAnnotate, ShardTopologiesBitIdenticalToMasterPath) {
  const auto db = make_database(60, 15);
  const seq::Sequence query = make_query(25, 90);

  std::vector<align::SearchHit> master_hits;
  {
    QueryService service(
        db, annotated_config("topo", align::AnnotateMode::kStatsCigar));
    master_hits = service.submit(query).result.get().hits;
    service.shutdown();
  }
  ASSERT_FALSE(master_hits.empty());

  for (std::size_t shards : {1u, 2u, 5u}) {
    ServiceConfig config =
        annotated_config("topo", align::AnnotateMode::kStatsCigar);
    config.shards = shards;
    // A fresh db_id would split the stats cache; same id, same params.
    QueryService service(db, std::move(config));
    const QueryResponse response = service.submit(query).result.get();
    EXPECT_TRUE(response.annotated) << shards << " shards";
    ASSERT_EQ(response.hits.size(), master_hits.size()) << shards
                                                        << " shards";
    for (std::size_t i = 0; i < response.hits.size(); ++i) {
      EXPECT_EQ(response.hits[i].db_index, master_hits[i].db_index)
          << shards << " shards, hit " << i;
      EXPECT_EQ(response.hits[i].score, master_hits[i].score)
          << shards << " shards, hit " << i;
      ASSERT_NE(response.hits[i].annotation, nullptr)
          << shards << " shards, hit " << i;
      const align::HitAnnotation& got = *response.hits[i].annotation;
      const align::HitAnnotation& want = *master_hits[i].annotation;
      EXPECT_DOUBLE_EQ(got.evalue, want.evalue)
          << shards << " shards, hit " << i;
      EXPECT_DOUBLE_EQ(got.bits, want.bits) << shards << " shards, hit " << i;
      EXPECT_EQ(got.cigar, want.cigar) << shards << " shards, hit " << i;
      EXPECT_EQ(got.query_begin, want.query_begin);
      EXPECT_EQ(got.db_begin, want.db_begin);
    }
    service.shutdown();
  }
}

}  // namespace
}  // namespace swdual::serve
