// Serve-layer sharded scatter-gather: bit-identity of sharded responses,
// cache hits independent of shard topology, shard-failure recovery through
// the master scheduler, partial-results-with-reason fallback, and the
// shutdown-mid-scatter drain guarantee. The multithreaded soak at the end
// runs under tsan via the preset matrix (labels: serve, shards, threads).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "align/search.h"
#include "obs/metrics.h"
#include "seq/dbgen.h"
#include "serve/service.h"
#include "util/rng.h"

namespace swdual::serve {
namespace {

std::vector<seq::Sequence> make_database(std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<seq::Sequence> db;
  for (std::size_t i = 0; i < count; ++i) {
    db.push_back(seq::random_protein(
        rng, "db" + std::to_string(i),
        static_cast<std::size_t>(rng.between(15, 110))));
  }
  return db;
}

seq::Sequence make_query(std::uint64_t seed, std::size_t length) {
  Rng rng(seed);
  return seq::random_protein(rng, "q" + std::to_string(seed), length);
}

ServiceConfig sharded_config(std::size_t shards) {
  ServiceConfig config;
  config.master.cpu_workers = 1;
  config.master.gpu_workers = 1;
  config.db_id = "sharded";
  config.shards = shards;
  return config;
}

void expect_hits_equal(const std::vector<align::SearchHit>& actual,
                       const std::vector<align::SearchHit>& expected,
                       const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t h = 0; h < expected.size(); ++h) {
    EXPECT_EQ(actual[h].db_index, expected[h].db_index)
        << label << " hit " << h;
    EXPECT_EQ(actual[h].score, expected[h].score) << label << " hit " << h;
  }
}

TEST(ShardedQueryService, ResponsesBitIdenticalToDirectSearch) {
  const auto db = make_database(24, 1);
  for (const std::size_t shards : {2u, 5u}) {
    ServiceConfig config = sharded_config(shards);
    config.threads_per_shard = 2;
    const align::ScoringScheme scheme = config.master.scheme;
    const align::KernelKind kernel = config.master.cpu_kernel;
    const std::size_t top = config.master.top_hits;
    QueryService service(db, std::move(config));
    EXPECT_EQ(service.num_shards(), shards);

    for (std::uint64_t s = 0; s < 4; ++s) {
      const seq::Sequence query = make_query(100 + s, 30 + 12 * s);
      const Submission ticket = service.submit(query);
      ASSERT_TRUE(ticket.accepted());
      const QueryResponse response = ticket.result.get();
      EXPECT_FALSE(response.partial);
      const auto expected =
          align::search_database(query, db, scheme, kernel).top(top);
      expect_hits_equal(response.hits, expected,
                        "shards=" + std::to_string(shards) + " query " +
                            std::to_string(s));
    }
    const auto stats = service.stats();
    EXPECT_GT(stats.shards.group_passes, 0u);
    EXPECT_EQ(stats.shards.failures, 0u);
  }
}

TEST(ShardedQueryService, CacheHitsBitIdenticalRegardlessOfShardCount) {
  // Regression for the cache-key topology rule: the result key excludes
  // shard count (like the backend), so a cached answer is the same answer
  // at every shard count — and a hit must be bit-identical to the direct
  // unsharded search no matter which topology computed it.
  const auto db = make_database(20, 2);
  const seq::Sequence query = make_query(7, 55);
  std::vector<align::SearchHit> expected;
  {
    ServiceConfig probe = sharded_config(1);
    expected = align::search_database(query, db, probe.master.scheme,
                                      probe.master.cpu_kernel)
                   .top(probe.master.top_hits);
  }
  for (const std::size_t shards : {1u, 3u, 7u}) {
    QueryService service(db, sharded_config(shards));
    const Submission first = service.submit(query);
    ASSERT_TRUE(first.accepted());
    const QueryResponse warm = first.result.get();
    EXPECT_FALSE(warm.cache_hit);
    expect_hits_equal(warm.hits, expected,
                      "warm shards=" + std::to_string(shards));

    const Submission second = service.submit(query);
    ASSERT_TRUE(second.accepted());
    const QueryResponse hit = second.result.get();
    EXPECT_TRUE(hit.cache_hit);
    expect_hits_equal(hit.hits, expected,
                      "cached shards=" + std::to_string(shards));
    EXPECT_EQ(service.stats().searches, 1u);  // the hit ran no search
  }
}

TEST(ShardedQueryService, FailedShardIsRecoveredThroughMasterScheduler) {
  const auto db = make_database(18, 3);
  ServiceConfig config = sharded_config(3);
  config.max_shard_retries = 1;
  // Shard 1 fails every in-engine attempt; the serve layer must rescue it
  // by re-running exactly that shard through master::run_search.
  config.before_shard = [](std::size_t shard, std::size_t) {
    if (shard == 1) throw std::runtime_error("injected: shard 1 down");
  };
  const align::ScoringScheme scheme = config.master.scheme;
  const align::KernelKind kernel = config.master.cpu_kernel;
  const std::size_t top = config.master.top_hits;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  QueryService service(db, std::move(config));

  const seq::Sequence query = make_query(11, 48);
  const Submission ticket = service.submit(query);
  ASSERT_TRUE(ticket.accepted());
  const QueryResponse response = ticket.result.get();
  EXPECT_FALSE(response.partial) << response.partial_reason;
  const auto expected =
      align::search_database(query, db, scheme, kernel).top(top);
  expect_hits_equal(response.hits, expected, "recovered via master");

  const auto stats = service.stats();
  EXPECT_GE(stats.shard_recoveries, 1u);
  EXPECT_EQ(stats.partial_responses, 0u);
  EXPECT_GE(metrics.counter("serve_shard_recoveries"), 1.0);
  EXPECT_GE(metrics.counter("serve_shard_failures"), 1.0);
}

TEST(ShardedQueryService, ExhaustedShardYieldsPartialResponseNeverCached) {
  const auto db = make_database(18, 4);
  ServiceConfig config = sharded_config(3);
  config.max_shard_retries = 1;
  config.shard_recovery = false;  // no master fallback: partial surfaces
  config.before_shard = [](std::size_t shard, std::size_t) {
    if (shard == 0) throw std::runtime_error("injected: shard 0 down");
  };
  QueryService service(db, std::move(config));

  const seq::Sequence query = make_query(13, 52);
  const Submission first = service.submit(query);
  ASSERT_TRUE(first.accepted());
  const QueryResponse partial = first.result.get();
  EXPECT_TRUE(partial.partial);
  EXPECT_NE(partial.partial_reason.find("shard 0"), std::string::npos);
  EXPECT_NE(partial.partial_reason.find("shard 0 down"), std::string::npos);

  // Partial answers must not poison the cache: the retry is a fresh search
  // (still partial here — the shard is still down), never a cache hit.
  const Submission second = service.submit(query);
  ASSERT_TRUE(second.accepted());
  const QueryResponse again = second.result.get();
  EXPECT_FALSE(again.cache_hit);
  EXPECT_TRUE(again.partial);
  const auto stats = service.stats();
  EXPECT_EQ(stats.searches, 2u);
  EXPECT_EQ(stats.partial_responses, 2u);
  EXPECT_EQ(stats.results.size, 0u);  // nothing was inserted
}

TEST(ShardedQueryService, ShutdownMidScatterDrainsAdmittedRequests) {
  const auto db = make_database(12, 5);
  ServiceConfig config = sharded_config(2);
  config.max_batch = 1;  // queries 2..n wait in admission during the block
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<int> calls{0};
  config.before_shard = [&](std::size_t, std::size_t) {
    if (calls.fetch_add(1) == 0) {
      entered.set_value();
      release_future.wait();
    }
  };
  auto service =
      std::make_unique<QueryService>(db, std::move(config));

  std::vector<std::shared_future<QueryResponse>> pending;
  for (std::uint64_t s = 0; s < 4; ++s) {
    const Submission ticket = service->submit(make_query(20 + s, 35));
    ASSERT_TRUE(ticket.accepted());
    pending.push_back(ticket.result);
  }
  entered.get_future().wait();  // the scatter is in flight right now
  service->shutdown();          // stop admissions mid-scatter
  EXPECT_EQ(service->submit(make_query(99, 30)).status,
            SubmitStatus::kShutdown);
  release.set_value();          // let the scatter finish

  for (auto& future : pending) {
    const QueryResponse response = future.get();
    EXPECT_FALSE(response.partial);
    EXPECT_FALSE(response.hits.empty());
  }
  service.reset();  // destructor joins after the drain
}

TEST(ShardedQueryServiceSoak, ConcurrentSubmittersWithInjectedShardFaults) {
  const auto db = make_database(14, 6);
  std::vector<seq::Sequence> pool;
  for (std::size_t q = 0; q < 5; ++q) {
    pool.push_back(make_query(300 + q, 28 + 9 * q));
  }

  ServiceConfig config = sharded_config(3);
  config.threads_per_shard = 2;
  config.admission_capacity = 64;
  config.max_batch = 6;
  config.max_shard_retries = 2;
  // Every 9th shard attempt fails; the in-engine recovery retry (attempt
  // counter keeps moving) or the master fallback rescues it, so no request
  // may surface as partial.
  std::atomic<std::uint64_t> attempts{0};
  config.before_shard = [&](std::size_t, std::size_t) {
    if (attempts.fetch_add(1) % 9 == 8) {
      throw std::runtime_error("soak fault");
    }
  };
  const align::ScoringScheme scheme = config.master.scheme;
  const align::KernelKind kernel = config.master.cpu_kernel;
  const std::size_t top = config.master.top_hits;
  QueryService service(db, std::move(config));

  std::vector<std::vector<align::SearchHit>> expected;
  for (const seq::Sequence& query : pool) {
    expected.push_back(
        align::search_database(query, db, scheme, kernel).top(top));
  }

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 25;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> partials{0};
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.below(pool.size()));
        Submission ticket = service.submit(pool[pick]);
        if (!ticket.accepted()) {
          std::this_thread::yield();
          continue;  // backpressure; soak cares about delivered answers
        }
        const QueryResponse response = ticket.result.get();
        if (response.partial) ++partials;
        if (response.hits.size() != expected[pick].size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t h = 0; h < response.hits.size(); ++h) {
          if (response.hits[h].db_index != expected[pick][h].db_index ||
              response.hits[h].score != expected[pick][h].score) {
            ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  service.shutdown();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(partials.load(), 0u);
  const auto stats = service.stats();
  EXPECT_GT(stats.shards.scans, 0u);
  EXPECT_EQ(stats.accepted,
            stats.results.hits + stats.results.misses);
}

}  // namespace
}  // namespace swdual::serve
