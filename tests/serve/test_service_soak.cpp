// Multithreaded soak: several submitter threads hammer one service with a
// small query pool while the batcher coalesces and caches. Run under tsan
// via the preset matrix (labels: serve, threads). Every accepted future must
// be fulfilled, answers must be consistent for equal queries, and the
// bookkeeping must balance.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "seq/dbgen.h"
#include "serve/service.h"
#include "util/rng.h"

namespace swdual::serve {
namespace {

TEST(QueryServiceSoak, ConcurrentSubmittersAllGetConsistentAnswers) {
  Rng rng(99);
  std::vector<seq::Sequence> db;
  for (std::size_t i = 0; i < 10; ++i) {
    db.push_back(seq::random_protein(
        rng, "db" + std::to_string(i),
        static_cast<std::size_t>(rng.between(20, 80))));
  }
  std::vector<seq::Sequence> pool;
  for (std::size_t q = 0; q < 6; ++q) {
    pool.push_back(seq::random_protein(rng, "q" + std::to_string(q),
                                       30 + 5 * q));
  }

  ServiceConfig config;
  config.master.cpu_workers = 1;
  config.master.gpu_workers = 1;
  config.admission_capacity = 64;
  config.max_batch = 8;
  config.db_id = "soak";
  QueryService service(db, std::move(config));

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 30;
  std::mutex collected_mutex;
  std::vector<std::pair<std::size_t, std::shared_future<QueryResponse>>>
      collected;  // (pool index, future)
  std::atomic<std::uint64_t> rejected{0};

  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t pick = (t * kPerThread + i) % pool.size();
        for (;;) {
          const Submission ticket = service.submit(pool[pick]);
          if (ticket.accepted()) {
            std::lock_guard<std::mutex> lock(collected_mutex);
            collected.emplace_back(pick, ticket.result);
            break;
          }
          // Backpressure: the queue was full; yield and retry.
          ASSERT_EQ(ticket.status, SubmitStatus::kQueueFull);
          rejected.fetch_add(1);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();

  ASSERT_EQ(collected.size(), kThreads * kPerThread);
  std::vector<std::vector<align::SearchHit>> reference(pool.size());
  for (auto& [pick, future] : collected) {
    const QueryResponse response = future.get();
    ASSERT_FALSE(response.hits.empty());
    if (reference[pick].empty()) {
      reference[pick] = response.hits;
      continue;
    }
    ASSERT_EQ(response.hits.size(), reference[pick].size());
    for (std::size_t h = 0; h < response.hits.size(); ++h) {
      EXPECT_EQ(response.hits[h].db_index, reference[pick][h].db_index);
      EXPECT_EQ(response.hits[h].score, reference[pick][h].score);
    }
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.accepted, kThreads * kPerThread);
  EXPECT_EQ(stats.rejected_queue_full, rejected.load());
  // 120 requests over 6 distinct queries: at most 6 entries and far fewer
  // searches than requests — the cache and the batcher dedup must both bite.
  EXPECT_LE(stats.results.size, pool.size());
  EXPECT_LT(stats.searches, kThreads * kPerThread);
  EXPECT_GT(stats.results.hits, 0u);
}

TEST(QueryServiceSoak, ShutdownRacingSubmittersLosesNoAcceptedRequest) {
  Rng rng(123);
  std::vector<seq::Sequence> db;
  for (std::size_t i = 0; i < 6; ++i) {
    db.push_back(seq::random_protein(rng, "db" + std::to_string(i), 40));
  }
  const seq::Sequence query = seq::random_protein(rng, "q", 35);

  ServiceConfig config;
  config.master.cpu_workers = 1;
  config.master.gpu_workers = 0;
  config.db_id = "race";
  QueryService service(db, std::move(config));

  std::vector<std::thread> submitters;
  std::mutex collected_mutex;
  std::vector<std::shared_future<QueryResponse>> accepted;
  for (std::size_t t = 0; t < 3; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        const Submission ticket = service.submit(query);
        if (!ticket.accepted()) {
          EXPECT_EQ(ticket.status, SubmitStatus::kShutdown);
          return;  // shutdown won the race; later submits also reject
        }
        std::lock_guard<std::mutex> lock(collected_mutex);
        accepted.push_back(ticket.result);
      }
    });
  }
  service.shutdown();
  for (auto& thread : submitters) thread.join();
  // Everything accepted before shutdown is still answered (drain semantics).
  for (auto& future : accepted) {
    EXPECT_FALSE(future.get().hits.empty());
  }
}

}  // namespace
}  // namespace swdual::serve
