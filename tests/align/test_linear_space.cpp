// Property tests for Myers–Miller linear-space alignment: score-identical
// to the quadratic-memory traceback on random inputs, valid alignments
// (gap-stripping reproduces the inputs), and the linear-space local variant
// matching sw_align_affine.
#include <gtest/gtest.h>

#include "align/linear_space.h"
#include "align/scalar.h"
#include "align/traceback.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& c : out) c = static_cast<std::uint8_t>(rng.below(20));
  return out;
}

void expect_valid_global(const Alignment& a,
                         const std::vector<std::uint8_t>& q,
                         const std::vector<std::uint8_t>& d) {
  const seq::Alphabet& alpha = seq::Alphabet::protein();
  std::string q_nogap, d_nogap;
  for (char c : a.aligned_query) {
    if (c != '-') q_nogap += c;
  }
  for (char c : a.aligned_db) {
    if (c != '-') d_nogap += c;
  }
  EXPECT_EQ(q_nogap, alpha.decode(q));
  EXPECT_EQ(d_nogap, alpha.decode(d));
}

TEST(LinearSpaceGlobal, MatchesQuadraticOracleOnRandomPairs) {
  ScoringScheme scheme;
  Rng rng(101);
  for (int rep = 0; rep < 40; ++rep) {
    const auto q = random_codes(rng, 1 + rng.below(120));
    const auto d = random_codes(rng, 1 + rng.below(120));
    const Alignment linear = nw_align_affine_linear(q, d, scheme);
    const Alignment quadratic = nw_align_affine(q, d, scheme);
    ASSERT_EQ(linear.score, quadratic.score)
        << "rep " << rep << " qlen=" << q.size() << " dlen=" << d.size();
    expect_valid_global(linear, q, d);
  }
}

TEST(LinearSpaceGlobal, GapPenaltySweep) {
  Rng rng(103);
  for (const auto& [gs, ge] :
       {std::pair{10, 2}, {5, 1}, {0, 1}, {14, 4}, {1, 3}}) {
    ScoringScheme scheme;
    scheme.gap = {gs, ge};
    for (int rep = 0; rep < 12; ++rep) {
      const auto q = random_codes(rng, 1 + rng.below(80));
      const auto d = random_codes(rng, 1 + rng.below(80));
      ASSERT_EQ(nw_align_affine_linear(q, d, scheme).score,
                nw_align_affine(q, d, scheme).score)
          << "gs=" << gs << " ge=" << ge << " rep=" << rep;
    }
  }
}

TEST(LinearSpaceGlobal, ExtremeShapes) {
  ScoringScheme scheme;
  Rng rng(105);
  // Long vs short, short vs long, equal, single residues.
  for (const auto& [m, n] : {std::pair<std::size_t, std::size_t>{1, 1},
                             {1, 50},
                             {50, 1},
                             {200, 3},
                             {3, 200},
                             {2, 2}}) {
    const auto q = random_codes(rng, m);
    const auto d = random_codes(rng, n);
    const Alignment linear = nw_align_affine_linear(q, d, scheme);
    ASSERT_EQ(linear.score, nw_align_affine(q, d, scheme).score)
        << m << "x" << n;
    expect_valid_global(linear, q, d);
  }
}

TEST(LinearSpaceGlobal, GapSpanningTheSplitRow) {
  // Construct a case whose optimal alignment deletes a long middle block of
  // the query — the deletion must cross the recursion's split row and pay
  // its open penalty exactly once.
  ScoringScheme scheme;
  Rng rng(107);
  const auto flank = random_codes(rng, 40);
  std::vector<std::uint8_t> q = flank;
  const auto middle = random_codes(rng, 30);
  q.insert(q.end(), middle.begin(), middle.end());
  q.insert(q.end(), flank.begin(), flank.end());
  std::vector<std::uint8_t> d = flank;
  d.insert(d.end(), flank.begin(), flank.end());  // db lacks the middle
  const Alignment linear = nw_align_affine_linear(q, d, scheme);
  ASSERT_EQ(linear.score, nw_align_affine(q, d, scheme).score);
  expect_valid_global(linear, q, d);
}

TEST(LinearSpaceGlobal, EmptyInputs) {
  ScoringScheme scheme;
  const std::vector<std::uint8_t> empty;
  const auto d = std::vector<std::uint8_t>{0, 1, 2};
  EXPECT_EQ(nw_align_affine_linear(empty, d, scheme).aligned_query, "---");
  EXPECT_EQ(nw_align_affine_linear(d, empty, scheme).aligned_db, "---");
  EXPECT_EQ(nw_align_affine_linear(empty, empty, scheme).score, 0);
}

TEST(LinearSpaceLocal, MatchesSwAlignAffine) {
  ScoringScheme scheme;
  Rng rng(109);
  for (int rep = 0; rep < 30; ++rep) {
    const auto q = random_codes(rng, 1 + rng.below(100));
    const auto d = random_codes(rng, 1 + rng.below(100));
    const Alignment linear = sw_align_affine_linear(q, d, scheme);
    const Alignment full = sw_align_affine(q, d, scheme);
    ASSERT_EQ(linear.score, full.score) << "rep " << rep;
  }
}

TEST(LinearSpaceLocal, LargePairStaysExact) {
  // A pair large enough that the quadratic matrix would be ~100 MB of int
  // triples; the linear-space path handles it and agrees with the
  // score-only oracle.
  ScoringScheme scheme;
  Rng rng(111);
  auto q = random_codes(rng, 2000);
  auto d = q;
  for (std::size_t i = 0; i < d.size(); i += 13) {
    d[i] = static_cast<std::uint8_t>(rng.below(20));
  }
  const Alignment linear = sw_align_affine_linear(q, d, scheme);
  EXPECT_EQ(linear.score, gotoh_score(q, d, scheme).score);
}

}  // namespace
}  // namespace swdual::align
