// Direct tests of the portable SIMD vector wrappers — the SSE2 and scalar
// paths must behave identically, and the kernels' assumptions (saturation,
// shift fill, comparison semantics) are pinned down here.
#include <gtest/gtest.h>

#include "align/simd16.h"
#include "align/simd8.h"

namespace swdual::align {
namespace {

TEST(V16, LoadStoreRoundTrip) {
  const std::int16_t data[8] = {-3, 0, 7, 32767, -32768, 100, -100, 1};
  const V16 v = V16::load(data);
  std::int16_t out[8];
  v.store(out);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], data[i]);
}

TEST(V16, SaturatingAddClampsAtMax) {
  const V16 a = V16::splat(32000);
  const V16 b = V16::splat(1000);
  EXPECT_EQ(adds(a, b).lane(0), 32767);
  EXPECT_EQ(adds(a, b).lane(7), 32767);
}

TEST(V16, SaturatingSubClampsAtMin) {
  const V16 a = V16::splat(-32000);
  const V16 b = V16::splat(1000);
  EXPECT_EQ(subs(a, b).lane(3), -32768);
}

TEST(V16, MaxIsLaneWise) {
  const std::int16_t xs[8] = {1, -2, 3, -4, 5, -6, 7, -8};
  const std::int16_t ys[8] = {-1, 2, -3, 4, -5, 6, -7, 8};
  const V16 m = max(V16::load(xs), V16::load(ys));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(m.lane(static_cast<std::size_t>(i)), std::abs(xs[i]));
}

TEST(V16, AnyGtStrict) {
  EXPECT_FALSE(any_gt(V16::splat(5), V16::splat(5)));
  EXPECT_TRUE(any_gt(V16::splat(6), V16::splat(5)));
  V16 mixed = V16::splat(0);
  mixed.set_lane(4, 1);
  EXPECT_TRUE(any_gt(mixed, V16::splat(0)));
}

TEST(V16, ShiftLanesUpInsertsFill) {
  const std::int16_t data[8] = {10, 20, 30, 40, 50, 60, 70, 80};
  const V16 shifted = V16::load(data).shift_lanes_up(-999);
  EXPECT_EQ(shifted.lane(0), -999);
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(shifted.lane(static_cast<std::size_t>(i)), data[i - 1]);
  }
}

TEST(V16, HmaxOverMixedSigns) {
  const std::int16_t data[8] = {-5, -3, -10, -1, -7, -2, -8, -4};
  EXPECT_EQ(V16::load(data).hmax(), -1);
  V16 v = V16::load(data);
  v.set_lane(2, 12);
  EXPECT_EQ(v.hmax(), 12);
}

TEST(V8, SaturatingAddClampsAt255) {
  EXPECT_EQ(adds(V8::splat(250), V8::splat(10)).lane(0), 255);
  EXPECT_EQ(adds(V8::splat(100), V8::splat(10)).lane(15), 110);
}

TEST(V8, SaturatingSubClampsAtZero) {
  EXPECT_EQ(subs(V8::splat(3), V8::splat(10)).lane(5), 0);
  EXPECT_EQ(subs(V8::splat(10), V8::splat(3)).lane(5), 7);
}

TEST(V8, AnyGtUnsignedSemantics) {
  EXPECT_FALSE(any_gt(V8::splat(0), V8::splat(0)));
  EXPECT_TRUE(any_gt(V8::splat(1), V8::splat(0)));
  EXPECT_FALSE(any_gt(V8::splat(5), V8::splat(200)));  // unsigned compare
}

TEST(V8, ShiftLanesUpInsertsZero) {
  std::uint8_t data[16];
  for (int i = 0; i < 16; ++i) data[i] = static_cast<std::uint8_t>(i + 1);
  const V8 shifted = V8::load(data).shift_lanes_up();
  EXPECT_EQ(shifted.lane(0), 0);
  for (int i = 1; i < 16; ++i) {
    EXPECT_EQ(shifted.lane(static_cast<std::size_t>(i)), data[i - 1]);
  }
}

TEST(V8, HmaxFindsMaximum) {
  std::uint8_t data[16] = {};
  data[11] = 200;
  data[3] = 199;
  EXPECT_EQ(V8::load(data).hmax(), 200);
}

}  // namespace
}  // namespace swdual::align
