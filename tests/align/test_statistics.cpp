// Tests for Karlin–Altschul statistics.
#include <gtest/gtest.h>

#include "align/statistics.h"
#include "seq/dbgen.h"
#include "util/error.h"

namespace swdual::align {
namespace {

TEST(UngappedLambda, Blosum62MatchesPublishedValue) {
  // BLAST reports λ ≈ 0.3176 for ungapped BLOSUM62 with Robinson background
  // frequencies.
  const double lambda = solve_ungapped_lambda(
      ScoreMatrix::blosum62(), seq::amino_acid_frequencies());
  EXPECT_NEAR(lambda, 0.3176, 0.02);
}

TEST(UngappedLambda, RootSatisfiesTheEquation) {
  const auto& freqs = seq::amino_acid_frequencies();
  const ScoreMatrix& matrix = ScoreMatrix::blosum62();
  const double lambda = solve_ungapped_lambda(matrix, freqs);
  double total = 0.0;
  for (std::size_t a = 0; a < freqs.size(); ++a) {
    for (std::size_t b = 0; b < freqs.size(); ++b) {
      total += freqs[a] * freqs[b] *
               std::exp(lambda * matrix.score(static_cast<std::uint8_t>(a),
                                              static_cast<std::uint8_t>(b)));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(UngappedLambda, RejectsPositiveExpectedScore) {
  // uniform(+1, +1): everything matches, E[s] > 0 — no Gumbel regime.
  const ScoreMatrix bad = ScoreMatrix::uniform(seq::AlphabetKind::kDna, 1, 1);
  const std::vector<double> freqs(4, 0.25);
  EXPECT_THROW(solve_ungapped_lambda(bad, freqs), InvalidArgument);
}

TEST(GappedCalibration, DeterministicAndPlausible) {
  ScoringScheme scheme;
  const auto& freqs = seq::amino_acid_frequencies();
  const KarlinAltschulParams a =
      calibrate_gapped_params(scheme, freqs, 100, 100, 60, 7);
  const KarlinAltschulParams b =
      calibrate_gapped_params(scheme, freqs, 100, 100, 60, 7);
  EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
  EXPECT_DOUBLE_EQ(a.k, b.k);
  EXPECT_GT(a.lambda, 0.0);
  EXPECT_GT(a.k, 0.0);
  // Gapped λ is below the ungapped λ (gaps make high scores likelier).
  const double ungapped = solve_ungapped_lambda(
      ScoreMatrix::blosum62(), freqs);
  EXPECT_LT(a.lambda, ungapped * 1.3);
}

TEST(Evalue, DecreasesExponentiallyInScore) {
  KarlinAltschulParams params{0.3, 0.1};
  const double e50 = evalue(params, 50, 1000, 1000000);
  const double e60 = evalue(params, 60, 1000, 1000000);
  EXPECT_GT(e50, e60);
  EXPECT_NEAR(e50 / e60, std::exp(0.3 * 10), 1e-6);
}

TEST(Evalue, ScalesLinearlyWithSearchSpace) {
  KarlinAltschulParams params{0.3, 0.1};
  EXPECT_NEAR(evalue(params, 40, 2000, 500) / evalue(params, 40, 1000, 500),
              2.0, 1e-9);
}

TEST(Pvalue, BoundedAndMonotone) {
  KarlinAltschulParams params{0.3, 0.1};
  double previous = 1.0;
  for (int score = 20; score <= 120; score += 20) {
    const double p = pvalue(params, score, 300, 1000000);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_LE(p, previous);
    previous = p;
  }
}

TEST(BitScore, LinearInRawScore) {
  KarlinAltschulParams params{0.3, 0.1};
  const double b1 = bit_score(params, 100);
  const double b2 = bit_score(params, 200);
  EXPECT_NEAR(b2 - b1, 0.3 * 100 / std::log(2.0), 1e-9);
}

TEST(Statistics, UncalibratedParamsRejected) {
  KarlinAltschulParams params;  // zeros
  EXPECT_THROW(evalue(params, 50, 100, 100), InvalidArgument);
  EXPECT_THROW(bit_score(params, 50), InvalidArgument);
}

}  // namespace
}  // namespace swdual::align
