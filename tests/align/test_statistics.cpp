// Tests for Karlin–Altschul statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "align/statistics.h"
#include "seq/dbgen.h"
#include "util/error.h"

namespace swdual::align {
namespace {

TEST(UngappedLambda, Blosum62MatchesPublishedValue) {
  // BLAST reports λ ≈ 0.3176 for ungapped BLOSUM62 with Robinson background
  // frequencies.
  const double lambda = solve_ungapped_lambda(
      ScoreMatrix::blosum62(), seq::amino_acid_frequencies());
  EXPECT_NEAR(lambda, 0.3176, 0.02);
}

TEST(UngappedLambda, RootSatisfiesTheEquation) {
  const auto& freqs = seq::amino_acid_frequencies();
  const ScoreMatrix& matrix = ScoreMatrix::blosum62();
  const double lambda = solve_ungapped_lambda(matrix, freqs);
  double total = 0.0;
  for (std::size_t a = 0; a < freqs.size(); ++a) {
    for (std::size_t b = 0; b < freqs.size(); ++b) {
      total += freqs[a] * freqs[b] *
               std::exp(lambda * matrix.score(static_cast<std::uint8_t>(a),
                                              static_cast<std::uint8_t>(b)));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(UngappedLambda, RejectsPositiveExpectedScore) {
  // uniform(+1, +1): everything matches, E[s] > 0 — no Gumbel regime.
  const ScoreMatrix bad = ScoreMatrix::uniform(seq::AlphabetKind::kDna, 1, 1);
  const std::vector<double> freqs(4, 0.25);
  EXPECT_THROW(solve_ungapped_lambda(bad, freqs), InvalidArgument);
}

TEST(GappedCalibration, DeterministicAndPlausible) {
  ScoringScheme scheme;
  const auto& freqs = seq::amino_acid_frequencies();
  const KarlinAltschulParams a =
      calibrate_gapped_params(scheme, freqs, 100, 100, 60, 7);
  const KarlinAltschulParams b =
      calibrate_gapped_params(scheme, freqs, 100, 100, 60, 7);
  EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
  EXPECT_DOUBLE_EQ(a.k, b.k);
  EXPECT_GT(a.lambda, 0.0);
  EXPECT_GT(a.k, 0.0);
  // Gapped λ is below the ungapped λ (gaps make high scores likelier).
  const double ungapped = solve_ungapped_lambda(
      ScoreMatrix::blosum62(), freqs);
  EXPECT_LT(a.lambda, ungapped * 1.3);
}

TEST(Evalue, DecreasesExponentiallyInScore) {
  KarlinAltschulParams params{0.3, 0.1};
  const double e50 = evalue(params, 50, 1000, 1000000);
  const double e60 = evalue(params, 60, 1000, 1000000);
  EXPECT_GT(e50, e60);
  EXPECT_NEAR(e50 / e60, std::exp(0.3 * 10), 1e-6);
}

TEST(Evalue, ScalesLinearlyWithSearchSpace) {
  KarlinAltschulParams params{0.3, 0.1};
  EXPECT_NEAR(evalue(params, 40, 2000, 500) / evalue(params, 40, 1000, 500),
              2.0, 1e-9);
}

TEST(Pvalue, BoundedAndMonotone) {
  KarlinAltschulParams params{0.3, 0.1};
  double previous = 1.0;
  for (int score = 20; score <= 120; score += 20) {
    const double p = pvalue(params, score, 300, 1000000);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_LE(p, previous);
    previous = p;
  }
}

TEST(BitScore, LinearInRawScore) {
  KarlinAltschulParams params{0.3, 0.1};
  const double b1 = bit_score(params, 100);
  const double b2 = bit_score(params, 200);
  EXPECT_NEAR(b2 - b1, 0.3 * 100 / std::log(2.0), 1e-9);
}

TEST(Statistics, UncalibratedParamsRejected) {
  KarlinAltschulParams params;  // zeros
  EXPECT_THROW(evalue(params, 50, 100, 100), InvalidArgument);
  EXPECT_THROW(bit_score(params, 50), InvalidArgument);
}

TEST(Statistics, NonFiniteParamsAndEmptySearchSpaceRejected) {
  KarlinAltschulParams nan_lambda{
      std::numeric_limits<double>::quiet_NaN(), 0.1};
  EXPECT_THROW(evalue(nan_lambda, 50, 100, 100), InvalidArgument);
  EXPECT_THROW(bit_score(nan_lambda, 50), InvalidArgument);
  KarlinAltschulParams inf_k{0.3, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(evalue(inf_k, 50, 100, 100), InvalidArgument);
  EXPECT_THROW(bit_score(inf_k, 50), InvalidArgument);
  // A zero-size search space has no chance hits to count; silently
  // returning E = 0 would fake infinite significance.
  KarlinAltschulParams good{0.3, 0.1};
  EXPECT_THROW(evalue(good, 50, 0, 100), InvalidArgument);
  EXPECT_THROW(evalue(good, 50, 100, 0), InvalidArgument);
  EXPECT_THROW(pvalue(good, 50, 0, 100), InvalidArgument);
  EXPECT_THROW(pvalue(good, 50, 100, 0), InvalidArgument);
}

TEST(GappedCalibration, ZeroFrequencyResiduesAreNeverSampled) {
  // Regression: the CDF sampler used to map a residue whose frequency is
  // exactly 0 to the next non-zero entry's slot only by luck of the
  // upper_bound, and rng.uniform() can return exactly 0.0, which landed on
  // the first code even when its frequency was 0. Calibrating with
  // freqs = {0, p, q} over a 3×3 matrix must equal calibrating with
  // {p, q} over the 2×2 submatrix that drops residue 0.
  const ScoreMatrix dna = ScoreMatrix::uniform(seq::AlphabetKind::kDna, 2,
                                               -3);
  ScoringScheme padded;
  padded.matrix = &dna;
  const KarlinAltschulParams with_zero = calibrate_gapped_params(
      padded, {0.0, 0.5, 0.5}, 80, 80, 50, 9);
  const KarlinAltschulParams without_zero = calibrate_gapped_params(
      padded, {0.5, 0.5}, 80, 80, 50, 9);
  // Identical sample streams: the shifted support must not change which
  // residues (beyond relabeling) or how many randoms are drawn. The
  // uniform matrix scores depend only on equality, and codes 1/2 vs 0/1
  // keep the same equality pattern under the same RNG stream.
  EXPECT_DOUBLE_EQ(with_zero.lambda, without_zero.lambda);
  EXPECT_DOUBLE_EQ(with_zero.k, without_zero.k);
}

TEST(GappedCalibration, RejectsNegativeAndNonFiniteFrequencies) {
  const ScoringScheme scheme;
  EXPECT_THROW(
      calibrate_gapped_params(scheme, {0.5, -0.5, 1.0}, 40, 40, 10, 1),
      InvalidArgument);
  EXPECT_THROW(
      calibrate_gapped_params(
          scheme, {0.5, std::numeric_limits<double>::quiet_NaN()}, 40, 40,
          10, 1),
      InvalidArgument);
}

TEST(UngappedLambda, BracketingFailureReportsInvalidArgument) {
  // The only positive score lies on a zero-frequency residue pair: the
  // restriction sum never reaches 1, so λ cannot be bracketed. This must
  // surface as InvalidArgument (clear diagnosis), not an infinite loop or
  // a garbage λ.
  const std::size_t size = seq::Alphabet::get(seq::AlphabetKind::kDna).size();
  std::vector<std::int8_t> scores(size * size, -1);
  scores[2 * size + 2] = 5;  // positive score only on dead residue 2
  const ScoreMatrix lopsided(seq::AlphabetKind::kDna, size, scores,
                             "lopsided");
  EXPECT_THROW(solve_ungapped_lambda(lopsided, {0.5, 0.5, 0.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace swdual::align
