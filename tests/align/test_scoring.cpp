// Unit tests for substitution matrices and scheme parsing.
#include <gtest/gtest.h>

#include "align/scoring.h"
#include "util/error.h"

namespace swdual::align {
namespace {

using seq::Alphabet;
using seq::AlphabetKind;

TEST(Blosum62, WellKnownEntries) {
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  const Alphabet& a = Alphabet::protein();
  const auto s = [&](char x, char y) {
    return m.score(a.encode(x), a.encode(y));
  };
  EXPECT_EQ(s('A', 'A'), 4);
  EXPECT_EQ(s('W', 'W'), 11);
  EXPECT_EQ(s('C', 'C'), 9);
  EXPECT_EQ(s('A', 'R'), -1);
  EXPECT_EQ(s('W', 'Y'), 2);
  EXPECT_EQ(s('L', 'I'), 2);
  EXPECT_EQ(s('E', 'Z'), 4);
  EXPECT_EQ(s('*', '*'), 1);
  EXPECT_EQ(s('G', '*'), -4);
}

TEST(Blosum62, IsSymmetric) { EXPECT_TRUE(ScoreMatrix::blosum62().symmetric()); }

TEST(Blosum62, DiagonalIsRowMaximum) {
  // Every standard residue scores best against itself in BLOSUM62.
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  for (std::uint8_t a = 0; a < 20; ++a) {
    for (std::uint8_t b = 0; b < 20; ++b) {
      EXPECT_LE(m.score(a, b), m.score(a, a))
          << "row " << int(a) << " col " << int(b);
    }
  }
}

TEST(Blosum62, MinMaxCached) {
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  EXPECT_EQ(m.max_score(), 11);
  EXPECT_EQ(m.min_score(), -4);
}

TEST(UniformMatrix, MatchMismatchAndWildcard) {
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 5, -4);
  const Alphabet& a = Alphabet::dna();
  EXPECT_EQ(m.score(a.encode('A'), a.encode('A')), 5);
  EXPECT_EQ(m.score(a.encode('A'), a.encode('C')), -4);
  EXPECT_EQ(m.score(a.encode('A'), a.encode('N')), 0);
  EXPECT_EQ(m.score(a.encode('N'), a.encode('N')), 0);
  EXPECT_TRUE(m.symmetric());
}

TEST(NcbiParser, RoundTripsASmallMatrix) {
  const std::string text =
      "# comment line\n"
      "   A  C  G  T  N\n"
      "A  2 -1 -1 -1  0\n"
      "C -1  2 -1 -1  0\n"
      "G -1 -1  2 -1  0\n"
      "T -1 -1 -1  2  0\n"
      "N  0  0  0  0  0\n";
  const ScoreMatrix m =
      ScoreMatrix::parse_ncbi(text, AlphabetKind::kDna, "toy");
  const Alphabet& a = Alphabet::dna();
  EXPECT_EQ(m.score(a.encode('A'), a.encode('A')), 2);
  EXPECT_EQ(m.score(a.encode('G'), a.encode('T')), -1);
  EXPECT_EQ(m.score(a.encode('N'), a.encode('A')), 0);
  EXPECT_EQ(m.name(), "toy");
}

TEST(NcbiParser, ParsesBlosum62Subset) {
  // A fragment in NCBI layout must land in the right cells.
  const std::string text =
      "   A  R  N\n"
      "A  4 -1 -2\n"
      "R -1  5  0\n"
      "N -2  0  6\n";
  const ScoreMatrix m =
      ScoreMatrix::parse_ncbi(text, AlphabetKind::kProtein, "b62frag");
  const Alphabet& a = Alphabet::protein();
  EXPECT_EQ(m.score(a.encode('A'), a.encode('A')), 4);
  EXPECT_EQ(m.score(a.encode('N'), a.encode('N')), 6);
  EXPECT_EQ(m.score(a.encode('R'), a.encode('N')), 0);
  // Letters absent from the fragment default to 0.
  EXPECT_EQ(m.score(a.encode('W'), a.encode('W')), 0);
}

TEST(NcbiParser, RejectsShortRow) {
  const std::string text =
      "   A  C\n"
      "A  2\n";
  EXPECT_THROW(ScoreMatrix::parse_ncbi(text, AlphabetKind::kDna, "bad"),
               IoError);
}

TEST(NcbiParser, RejectsEmptyInput) {
  EXPECT_THROW(ScoreMatrix::parse_ncbi("", AlphabetKind::kDna, "bad"),
               InvalidArgument);
}

TEST(ScoreMatrixInvariants, RejectsWrongSize) {
  EXPECT_THROW(ScoreMatrix(AlphabetKind::kDna, 5,
                           std::vector<std::int8_t>(10, 0), "bad"),
               InvalidArgument);
  EXPECT_THROW(ScoreMatrix(AlphabetKind::kDna, 3,
                           std::vector<std::int8_t>(9, 0), "bad"),
               InvalidArgument);
}

}  // namespace
}  // namespace swdual::align
