// Tests for the shared LRU query-profile cache.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "align/profile_cache.h"
#include "align/search.h"
#include "seq/dbgen.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<seq::Sequence> tiny_database(std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<seq::Sequence> db;
  for (std::size_t i = 0; i < count; ++i) {
    db.push_back(seq::random_protein(
        rng, "db" + std::to_string(i),
        static_cast<std::size_t>(rng.between(20, 150))));
  }
  return db;
}

seq::Sequence make_query(std::uint64_t seed, std::size_t length) {
  Rng rng(seed);
  return seq::random_protein(rng, "q", length);
}

std::span<const std::uint8_t> view(const seq::Sequence& s) {
  return {s.residues.data(), s.residues.size()};
}

TEST(ProfileCache, SecondAcquireIsAHitAndSharesTheEntry) {
  ProfileCache cache(4);
  const seq::Sequence query = make_query(3, 80);
  ScoringScheme scheme;
  const auto first = cache.acquire(view(query), scheme, KernelKind::kStriped);
  const auto second = cache.acquire(view(query), scheme, KernelKind::kStriped);
  EXPECT_EQ(first.get(), second.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 4u);
}

TEST(ProfileCache, EntryOwnsItsResidues) {
  ProfileCache cache(2);
  ScoringScheme scheme;
  std::shared_ptr<const CachedProfiles> cached;
  {
    const seq::Sequence query = make_query(5, 60);
    cached = cache.acquire(view(query), scheme, KernelKind::kScalar);
  }  // submitting buffer destroyed; the cached copy must stay valid
  EXPECT_EQ(cached->query().size(), 60u);
  EXPECT_EQ(cached->profiles().kernel(), KernelKind::kScalar);
}

TEST(ProfileCache, DistinctKernelsAndGapsGetDistinctEntries) {
  ProfileCache cache(8);
  const seq::Sequence query = make_query(7, 70);
  ScoringScheme scheme;
  const auto striped = cache.acquire(view(query), scheme, KernelKind::kStriped);
  const auto interseq =
      cache.acquire(view(query), scheme, KernelKind::kInterSeq);
  EXPECT_NE(striped.get(), interseq.get());

  ScoringScheme other = scheme;
  other.gap.open += 1;
  const auto other_gaps =
      cache.acquire(view(query), other, KernelKind::kStriped);
  EXPECT_NE(striped.get(), other_gaps.get());
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(ProfileCache, ScoringKeySeparatesGapPenalties) {
  ScoringScheme a;
  ScoringScheme b = a;
  b.gap.extend += 1;
  EXPECT_NE(scoring_key(a), scoring_key(b));
  EXPECT_EQ(scoring_key(a), scoring_key(a));
}

TEST(ProfileCache, EvictsLeastRecentlyUsedButAcquiredEntriesSurvive) {
  ProfileCache cache(2);
  ScoringScheme scheme;
  const seq::Sequence q0 = make_query(11, 40);
  const seq::Sequence q1 = make_query(12, 40);
  const seq::Sequence q2 = make_query(13, 40);

  const auto held = cache.acquire(view(q0), scheme, KernelKind::kStriped);
  (void)cache.acquire(view(q1), scheme, KernelKind::kStriped);
  // Touch q0 so q1 becomes the LRU victim, then overflow.
  (void)cache.acquire(view(q0), scheme, KernelKind::kStriped);
  (void)cache.acquire(view(q2), scheme, KernelKind::kStriped);

  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);

  // q1 was evicted: re-acquiring it is a miss. q0 is still resident.
  (void)cache.acquire(view(q1), scheme, KernelKind::kStriped);
  EXPECT_EQ(cache.stats().misses, 4u);
  (void)cache.acquire(view(q0), scheme, KernelKind::kStriped);

  // The shared_ptr held across the evictions stays fully usable.
  EXPECT_EQ(held->query().size(), 40u);
}

TEST(ProfileCache, CachedProfilesScoreBitIdenticalToDirectSearch) {
  const auto db = tiny_database(25, 17);
  const DbView db_view = make_db_view(db);
  const seq::Sequence query = make_query(18, 90);
  ScoringScheme scheme;
  ProfileCache cache(4);
  for (KernelKind kernel : {KernelKind::kScalar, KernelKind::kStriped,
                            KernelKind::kStriped8, KernelKind::kInterSeq}) {
    const SearchResult direct = search_database(view(query), db_view, scheme,
                                                kernel, Backend::kAuto);
    const auto cached = cache.acquire(view(query), scheme, kernel);
    // Scan twice through the same cached profiles: reuse must not perturb
    // scores (the lazy 16-bit escalation state is per-profile, not per-scan).
    for (int pass = 0; pass < 2; ++pass) {
      const SearchResult via_cache =
          search_database(cached->profiles(), db_view);
      ASSERT_EQ(via_cache.scores.size(), direct.scores.size());
      for (std::size_t i = 0; i < direct.scores.size(); ++i) {
        EXPECT_EQ(via_cache.scores[i], direct.scores[i])
            << kernel_name(kernel) << " record " << i << " pass " << pass;
      }
      EXPECT_EQ(via_cache.cells, direct.cells);
    }
  }
}

}  // namespace
}  // namespace swdual::align
