// Tests for locate-then-realign (memory-frugal full alignment).
#include <gtest/gtest.h>

#include "align/locate.h"
#include "align/traceback.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& c : out) c = static_cast<std::uint8_t>(rng.below(20));
  return out;
}

TEST(Locate, RegionMatchesFullTraceback) {
  ScoringScheme scheme;
  Rng rng(41);
  for (int rep = 0; rep < 30; ++rep) {
    const auto q = random_codes(rng, 1 + rng.below(150));
    const auto d = random_codes(rng, 1 + rng.below(150));
    const LocalRegion region = locate_best_alignment(q, d, scheme);
    const Alignment full = sw_align_affine(q, d, scheme);
    ASSERT_EQ(region.score, full.score) << "rep " << rep;
    if (region.score == 0) continue;
    // End coordinates must agree exactly (same scan order). Start
    // coordinates may differ between co-optimal alignments, but must form a
    // non-empty region ending at the shared end cell.
    EXPECT_EQ(region.query_end, full.query_end);
    EXPECT_EQ(region.db_end, full.db_end);
    EXPECT_GE(region.query_begin, 1u);
    EXPECT_LE(region.query_begin, region.query_end);
    EXPECT_LE(region.db_begin, region.db_end);
  }
}

TEST(Locate, FrugalAlignmentScoreIdentical) {
  ScoringScheme scheme;
  Rng rng(43);
  for (int rep = 0; rep < 30; ++rep) {
    const auto q = random_codes(rng, 1 + rng.below(120));
    const auto d = random_codes(rng, 1 + rng.below(120));
    const Alignment frugal = sw_align_affine_frugal(q, d, scheme);
    const Alignment full = sw_align_affine(q, d, scheme);
    ASSERT_EQ(frugal.score, full.score) << "rep " << rep;
  }
}

TEST(Locate, FrugalCoordinatesConsistentWithScore) {
  // Re-scoring the frugal alignment's columns must reproduce its score,
  // and its coordinates must index the original sequences correctly.
  ScoringScheme scheme;
  const seq::Alphabet& alpha = seq::Alphabet::protein();
  Rng rng(45);
  for (int rep = 0; rep < 20; ++rep) {
    const auto q = random_codes(rng, 20 + rng.below(100));
    const auto d = random_codes(rng, 20 + rng.below(100));
    const Alignment a = sw_align_affine_frugal(q, d, scheme);
    if (a.score == 0) continue;
    // Strip gaps: must equal the claimed coordinate slices.
    std::string q_nogap, d_nogap;
    for (char c : a.aligned_query) {
      if (c != '-') q_nogap += c;
    }
    for (char c : a.aligned_db) {
      if (c != '-') d_nogap += c;
    }
    std::string q_slice, d_slice;
    for (std::size_t i = a.query_begin; i <= a.query_end; ++i) {
      q_slice += alpha.decode(q[i - 1]);
    }
    for (std::size_t j = a.db_begin; j <= a.db_end; ++j) {
      d_slice += alpha.decode(d[j - 1]);
    }
    EXPECT_EQ(q_nogap, q_slice) << "rep " << rep;
    EXPECT_EQ(d_nogap, d_slice) << "rep " << rep;
  }
}

TEST(Locate, PlantedMotifFound) {
  // A strong motif buried in noise: the located region must pin it.
  ScoringScheme scheme;
  Rng rng(47);
  auto motif = random_codes(rng, 40);
  auto q = random_codes(rng, 30);
  q.insert(q.end(), motif.begin(), motif.end());
  auto q_tail = random_codes(rng, 30);
  q.insert(q.end(), q_tail.begin(), q_tail.end());
  auto d = random_codes(rng, 100);
  d.insert(d.begin() + 50, motif.begin(), motif.end());
  const LocalRegion region = locate_best_alignment(q, d, scheme);
  EXPECT_LE(region.query_begin, 31u + 2);   // motif starts at q position 31
  EXPECT_GE(region.query_end, 70u - 2);
  EXPECT_LE(region.db_begin, 51u + 2);
  EXPECT_GE(region.db_end, 90u - 2);
}

TEST(Locate, EmptyAndZeroScoreInputs) {
  ScoringScheme scheme;
  EXPECT_EQ(locate_best_alignment({}, {}, scheme).score, 0);
  const Alignment a = sw_align_affine_frugal({}, {}, scheme);
  EXPECT_EQ(a.score, 0);
  EXPECT_TRUE(a.aligned_query.empty());
}

}  // namespace
}  // namespace swdual::align
