// Unit tests for query profile construction (sequential and striped).
#include <gtest/gtest.h>

#include "align/profile.h"
#include "seq/alphabet.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

using seq::Alphabet;

TEST(QueryProfile, RowsMatchMatrixLookups) {
  const auto q = Alphabet::protein().encode("MKVLAWYNDERT");
  const ScoreMatrix& m = ScoreMatrix::blosum62();
  const QueryProfile profile(q, m);
  ASSERT_EQ(profile.query_length(), q.size());
  for (std::uint8_t code = 0; code < m.size(); ++code) {
    const std::int16_t* row = profile.row(code);
    for (std::size_t i = 0; i < q.size(); ++i) {
      EXPECT_EQ(row[i], m.score(q[i], code)) << "code " << int(code);
    }
  }
}

TEST(StripedProfile, LayoutMapsPositionsToLanes) {
  Rng rng(11);
  for (std::size_t qlen : {1u, 7u, 8u, 9u, 40u, 64u, 129u}) {
    std::vector<std::uint8_t> q(qlen);
    for (auto& c : q) c = static_cast<std::uint8_t>(rng.below(20));
    const ScoreMatrix& m = ScoreMatrix::blosum62();
    const StripedProfile profile(q, m);
    const std::size_t seg = profile.segment_length();
    ASSERT_GE(seg * kLanes16, qlen);
    ASSERT_LT((seg - 1) * kLanes16, qlen + kLanes16);
    for (std::uint8_t code = 0; code < 4; ++code) {
      const std::int16_t* row = profile.row(code);
      for (std::size_t s = 0; s < seg; ++s) {
        for (std::size_t lane = 0; lane < kLanes16; ++lane) {
          const std::size_t position = lane * seg + s;
          const std::int16_t expected =
              position < qlen ? m.score(q[position], code) : std::int16_t{0};
          ASSERT_EQ(row[s * kLanes16 + lane], expected)
              << "qlen=" << qlen << " s=" << s << " lane=" << lane;
        }
      }
    }
  }
}

TEST(StripedProfile, RejectsEmptyQuery) {
  EXPECT_THROW(StripedProfile({}, ScoreMatrix::blosum62()),
               InvalidArgument);
}

TEST(StripedProfile, SegmentLengthCeiling) {
  std::vector<std::uint8_t> q(17, 0);
  const StripedProfile profile(q, ScoreMatrix::blosum62());
  EXPECT_EQ(profile.segment_length(), 3u);  // ceil(17/8)
}

}  // namespace
}  // namespace swdual::align
