// Cross-backend equivalence: every compiled-and-runnable SIMD backend must
// produce bit-identical scores AND identical overflow (8→16-bit escalation)
// decisions to the scalar reference backend, on every kernel, through every
// driver layer (raw kernels, search_database, the chunked parallel engine).
// Backends the host cannot execute are skipped, not failed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "align/backend.h"
#include "align/kernel_interseq.h"
#include "align/kernel_striped.h"
#include "align/kernel_striped8.h"
#include "align/parallel_search.h"
#include "align/scalar.h"
#include "align/search.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t len,
                                       std::size_t alphabet = 20) {
  std::vector<std::uint8_t> out(len);
  for (auto& c : out) c = static_cast<std::uint8_t>(rng.below(alphabet));
  return out;
}

/// A small random protein corpus plus one query, with a few length-extreme
/// records (empty-ish, lane-multiple, long) to exercise batching edges.
struct Corpus {
  std::vector<std::uint8_t> query;
  std::vector<std::vector<std::uint8_t>> records;

  DbView view() const {
    DbView v;
    for (const auto& r : records) v.emplace_back(r.data(), r.size());
    return v;
  }
};

Corpus make_corpus(std::uint64_t seed, std::size_t n, std::size_t query_len,
                   std::size_t max_len) {
  Rng rng(seed);
  Corpus c;
  c.query = random_codes(rng, query_len);
  c.records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.records.push_back(random_codes(
        rng, static_cast<std::size_t>(rng.between(1, static_cast<int>(max_len)))));
  }
  if (n >= 3) {
    c.records[0] = random_codes(rng, 1);
    c.records[1] = random_codes(rng, 64);    // lane-count multiple
    c.records[2] = random_codes(rng, max_len);
  }
  return c;
}

class BackendEquivalence : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (const char* old = std::getenv("SWDUAL_FORCE_BACKEND")) saved_ = old;
    if (!backend_available(GetParam())) {
      GTEST_SKIP() << backend_name(GetParam())
                   << " backend not available on this host";
    }
  }
  void TearDown() override {
    if (saved_.empty()) {
      ::unsetenv("SWDUAL_FORCE_BACKEND");
    } else {
      ::setenv("SWDUAL_FORCE_BACKEND", saved_.c_str(), 1);
    }
  }
  /// Route all kAuto dispatch in the code under test to `backend`.
  static void force(Backend backend) {
    ::setenv("SWDUAL_FORCE_BACKEND", backend_name(backend), 1);
  }

 private:
  std::string saved_;
};

TEST_P(BackendEquivalence, StripedKernelsMatchScalarPairwise) {
  const Corpus corpus = make_corpus(0x5eed, 40, 180, 300);
  const ScoringScheme scheme;
  for (const auto& record : corpus.records) {
    force(Backend::kScalar);
    const StripedResult ref16 = striped_score(corpus.query, record, scheme);
    const StripedResult ref8 = striped8_score(corpus.query, record, scheme);
    force(GetParam());
    const StripedResult got16 = striped_score(corpus.query, record, scheme);
    const StripedResult got8 = striped8_score(corpus.query, record, scheme);
    ASSERT_EQ(got16.score, ref16.score);
    ASSERT_EQ(got16.overflow, ref16.overflow);
    ASSERT_EQ(got8.score, ref8.score);
    ASSERT_EQ(got8.overflow, ref8.overflow)
        << "8-bit escalation decision diverged on "
        << backend_name(GetParam());
  }
}

TEST_P(BackendEquivalence, InterSeqMatchesScalarBatch) {
  const Corpus corpus = make_corpus(0xba7c, 37, 120, 400);
  const ScoringScheme scheme;
  SequenceViews views;
  for (const auto& r : corpus.records) views.emplace_back(r.data(), r.size());
  force(Backend::kScalar);
  const InterSeqResult ref = interseq_scores(corpus.query, views, scheme);
  force(GetParam());
  const InterSeqResult got = interseq_scores(corpus.query, views, scheme);
  ASSERT_EQ(got.scores, ref.scores);
  ASSERT_EQ(got.overflow, ref.overflow);
  ASSERT_EQ(got.cells, ref.cells) << "padding must not be billed as cells";
}

TEST_P(BackendEquivalence, SearchDatabaseMatchesScalarOnEveryKernel) {
  const Corpus corpus = make_corpus(0xdb, 60, 200, 350);
  const DbView db = corpus.view();
  const ScoringScheme scheme;
  for (KernelKind kernel : {KernelKind::kStriped, KernelKind::kStriped8,
                            KernelKind::kInterSeq}) {
    force(Backend::kScalar);
    const SearchResult ref =
        search_database(corpus.query, db, scheme, kernel);
    force(GetParam());
    const SearchResult got =
        search_database(corpus.query, db, scheme, kernel);
    ASSERT_EQ(got.scores, ref.scores) << kernel_name(kernel);
    ASSERT_EQ(got.cells, ref.cells) << kernel_name(kernel);
    ASSERT_EQ(got.overflow_rescans, ref.overflow_rescans)
        << kernel_name(kernel) << ": escalation decisions diverged";
  }
}

TEST_P(BackendEquivalence, EscalationDecisionsMatchUnderForcedOverflow) {
  // Half the records are near-copies of a poly-tryptophan query, so the
  // byte tier saturates on them (score 11/residue ≫ the u8 ceiling) and the
  // search must escalate those — and only those — pairs identically.
  Rng rng(0xf00d);
  std::vector<std::uint8_t> query(600, 17);  // 'W' scores 11 vs itself
  std::vector<std::vector<std::uint8_t>> records;
  for (std::size_t i = 0; i < 24; ++i) {
    if (i % 2 == 0) {
      std::vector<std::uint8_t> hot = query;
      hot.resize(300 + 20 * i, 17);
      records.push_back(std::move(hot));
    } else {
      records.push_back(random_codes(rng, 200));
    }
  }
  DbView db;
  for (const auto& r : records) db.emplace_back(r.data(), r.size());
  const ScoringScheme scheme;
  force(Backend::kScalar);
  const SearchResult ref =
      search_database(query, db, scheme, KernelKind::kStriped8);
  EXPECT_GT(ref.overflow_rescans, 0u) << "corpus failed to saturate";
  force(GetParam());
  const SearchResult got =
      search_database(query, db, scheme, KernelKind::kStriped8);
  EXPECT_EQ(got.scores, ref.scores);
  EXPECT_EQ(got.overflow_rescans, ref.overflow_rescans);
}

TEST_P(BackendEquivalence, ExplicitBackendParamMatchesForcedEnv) {
  // The Backend parameter threaded through the drivers must agree with the
  // env override route (both end in the same kernel table).
  const Corpus corpus = make_corpus(0xca11, 30, 150, 250);
  const DbView db = corpus.view();
  const ScoringScheme scheme;
  force(GetParam());
  const SearchResult via_env =
      search_database(corpus.query, db, scheme, KernelKind::kInterSeq);
  ::unsetenv("SWDUAL_FORCE_BACKEND");
  const SearchResult via_param = search_database(
      corpus.query, db, scheme, KernelKind::kInterSeq, GetParam());
  EXPECT_EQ(via_param.scores, via_env.scores);
  EXPECT_EQ(via_param.cells, via_env.cells);
}

TEST_P(BackendEquivalence, ParallelEngineMatchesSerialScalarAcrossThreads) {
  const Corpus corpus = make_corpus(0x9a7, 90, 160, 300);
  const DbView db = corpus.view();
  const ScoringScheme scheme;
  force(Backend::kScalar);
  const SearchResult ref =
      search_database(corpus.query, db, scheme, KernelKind::kInterSeq);
  force(GetParam());
  for (std::size_t threads : {1u, 4u}) {
    ParallelSearchOptions options;
    options.threads = threads;
    const ParallelSearchEngine engine(db, options);
    const SearchResult got =
        engine.search(corpus.query, scheme, KernelKind::kInterSeq);
    ASSERT_EQ(got.scores, ref.scores) << "threads=" << threads;
    ASSERT_EQ(got.cells, ref.cells) << "threads=" << threads;
  }
}

TEST_P(BackendEquivalence, InterSeqRaggedLengthsMatchScalarAcrossThreads) {
  // Worst case for lane batching: one 5000-residue outlier among short
  // records. The longest-first order puts the giant in the first batch with
  // the next-longest records; every backend and thread count must still
  // score bit-identically to the serial scalar reference.
  Rng rng(0xaaa9);
  std::vector<std::vector<std::uint8_t>> records;
  for (std::size_t i = 0; i < 50; ++i) {
    records.push_back(random_codes(rng, 50));
  }
  records.push_back(random_codes(rng, 5000));
  DbView db;
  for (const auto& r : records) db.emplace_back(r.data(), r.size());
  const std::vector<std::uint8_t> query = random_codes(rng, 200);
  const ScoringScheme scheme;
  force(Backend::kScalar);
  const SearchResult ref =
      search_database(query, db, scheme, KernelKind::kInterSeq);
  force(GetParam());
  const SearchResult serial =
      search_database(query, db, scheme, KernelKind::kInterSeq);
  ASSERT_EQ(serial.scores, ref.scores);
  ASSERT_EQ(serial.cells, ref.cells);
  for (std::size_t threads : {1u, 4u}) {
    for (const bool sorted : {false, true}) {
      ParallelSearchOptions options;
      options.threads = threads;
      options.sort_by_length = sorted;
      const ParallelSearchEngine engine(db, options);
      const SearchResult got =
          engine.search(query, scheme, KernelKind::kInterSeq);
      ASSERT_EQ(got.scores, ref.scores)
          << "threads=" << threads << " sorted=" << sorted;
      ASSERT_EQ(got.cells, ref.cells)
          << "threads=" << threads << " sorted=" << sorted;
    }
  }
}

TEST_P(BackendEquivalence, ScoresAgreeWithGotohOracle) {
  // Anchor the whole equivalence class to ground truth, not just to the
  // scalar backend: a handful of random pairs against the 32-bit oracle.
  const Corpus corpus = make_corpus(0x02ac1e, 12, 140, 220);
  const ScoringScheme scheme;
  force(GetParam());
  for (const auto& record : corpus.records) {
    const int oracle = gotoh_score(corpus.query, record, scheme).score;
    EXPECT_EQ(striped_score(corpus.query, record, scheme).score, oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendEquivalence,
                         ::testing::Values(Backend::kScalar, Backend::kSSE2,
                                           Backend::kAVX2, Backend::kAVX512),
                         [](const ::testing::TestParamInfo<Backend>& pi) {
                           return std::string(backend_name(pi.param));
                         });

}  // namespace
}  // namespace swdual::align
