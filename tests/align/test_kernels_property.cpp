// Property tests: every SIMD kernel must agree exactly with the 32-bit
// scalar Gotoh oracle on randomized inputs, across scoring schemes, sequence
// lengths, and alphabets.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "align/kernel_interseq.h"
#include "align/kernel_striped.h"
#include "align/scalar.h"
#include "seq/dbgen.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

using seq::AlphabetKind;

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t len,
                                       std::size_t alphabet) {
  std::vector<std::uint8_t> out(len);
  for (auto& c : out) c = static_cast<std::uint8_t>(rng.below(alphabet));
  return out;
}

struct SchemeParam {
  int match = 0;       // 0 -> BLOSUM62, else uniform(match, mismatch)
  int mismatch = 0;
  int gap_open = 10;
  int gap_extend = 2;
};

class KernelAgreement
    : public ::testing::TestWithParam<std::tuple<SchemeParam, int>> {
 protected:
  // Owns the uniform matrix when one is requested.
  ScoreMatrix uniform_ = ScoreMatrix::uniform(AlphabetKind::kProtein, 1, -1);

  ScoringScheme scheme() {
    const SchemeParam& p = std::get<0>(GetParam());
    ScoringScheme s;
    if (p.match != 0) {
      uniform_ = ScoreMatrix::uniform(AlphabetKind::kProtein,
                                      static_cast<std::int8_t>(p.match),
                                      static_cast<std::int8_t>(p.mismatch));
      s.matrix = &uniform_;
    }
    s.gap.open = p.gap_open;
    s.gap.extend = p.gap_extend;
    return s;
  }
  int seed() const { return std::get<1>(GetParam()); }
};

TEST_P(KernelAgreement, StripedMatchesOracleOnRandomPairs) {
  const ScoringScheme s = scheme();
  Rng rng(static_cast<std::uint64_t>(seed()) * 7919 + 13);
  for (int rep = 0; rep < 25; ++rep) {
    const auto qlen = static_cast<std::size_t>(rng.between(1, 200));
    const auto dlen = static_cast<std::size_t>(rng.between(1, 200));
    const auto q = random_codes(rng, qlen, 20);
    const auto d = random_codes(rng, dlen, 20);
    const int oracle = gotoh_score(q, d, s).score;
    const StripedResult r = striped_score(q, d, s);
    ASSERT_FALSE(r.overflow) << "unexpected 16-bit overflow";
    ASSERT_EQ(r.score, oracle)
        << "striped mismatch at rep " << rep << " qlen=" << qlen
        << " dlen=" << dlen;
  }
}

TEST_P(KernelAgreement, InterSeqMatchesOracleOnRandomBatches) {
  const ScoringScheme s = scheme();
  Rng rng(static_cast<std::uint64_t>(seed()) * 104729 + 7);
  for (int rep = 0; rep < 5; ++rep) {
    const auto qlen = static_cast<std::size_t>(rng.between(1, 150));
    const auto q = random_codes(rng, qlen, 20);
    // Batch sizes around the 8-lane boundary, with wildly varying lengths.
    const auto batch = static_cast<std::size_t>(rng.between(1, 19));
    std::vector<std::vector<std::uint8_t>> db;
    for (std::size_t i = 0; i < batch; ++i) {
      db.push_back(random_codes(
          rng, static_cast<std::size_t>(rng.between(1, 300)), 20));
    }
    SequenceViews views;
    for (const auto& d : db) views.emplace_back(d.data(), d.size());
    const InterSeqResult r = interseq_scores(q, views, s);
    ASSERT_EQ(r.scores.size(), batch);
    for (std::size_t i = 0; i < batch; ++i) {
      ASSERT_FALSE(r.overflow[i]);
      const int oracle = gotoh_score(q, views[i], s).score;
      ASSERT_EQ(r.scores[i], oracle)
          << "interseq lane mismatch rep=" << rep << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, KernelAgreement,
    ::testing::Combine(
        ::testing::Values(SchemeParam{0, 0, 10, 2},   // BLOSUM62 default
                          SchemeParam{0, 0, 14, 4},   // stiffer affine gaps
                          SchemeParam{0, 0, 5, 1},    // cheap gaps
                          SchemeParam{0, 0, 0, 1},    // pure linear (Gs=0)
                          SchemeParam{2, -3, 8, 2},   // uniform DNA-style
                          SchemeParam{5, -4, 12, 3}), // high-contrast
        ::testing::Range(0, 4)));  // 4 seeds per scheme

TEST(KernelEdgeCases, SingleResidueSequences) {
  ScoringScheme s;
  const std::vector<std::uint8_t> q = {0};  // 'A'
  const std::vector<std::uint8_t> d = {0};
  const int oracle = gotoh_score(q, d, s).score;
  EXPECT_EQ(striped_score(q, d, s).score, oracle);
  SequenceViews views{std::span<const std::uint8_t>(d.data(), d.size())};
  EXPECT_EQ(interseq_scores(q, views, s).scores[0], oracle);
}

TEST(KernelEdgeCases, QueryLengthExactMultipleOfLanes) {
  ScoringScheme s;
  Rng rng(99);
  for (std::size_t qlen : {8u, 16u, 64u, 128u}) {
    const auto q = random_codes(rng, qlen, 20);
    const auto d = random_codes(rng, 100, 20);
    EXPECT_EQ(striped_score(q, d, s).score, gotoh_score(q, d, s).score)
        << "qlen=" << qlen;
  }
}

TEST(KernelEdgeCases, QueryShorterThanLaneCount) {
  ScoringScheme s;
  Rng rng(123);
  for (std::size_t qlen : {1u, 2u, 7u}) {
    const auto q = random_codes(rng, qlen, 20);
    const auto d = random_codes(rng, 50, 20);
    EXPECT_EQ(striped_score(q, d, s).score, gotoh_score(q, d, s).score);
  }
}

TEST(KernelEdgeCases, HighlyRepetitiveSequencesStressLazyF) {
  // Long runs of one residue maximize vertical gap chains that wrap lanes —
  // the case the lazy-F loop exists for.
  ScoringScheme s;
  const std::vector<std::uint8_t> q(100, 11);  // poly-K
  std::vector<std::uint8_t> d(300, 11);
  for (std::size_t i = 0; i < d.size(); i += 17) d[i] = 3;  // sparse D
  const int oracle = gotoh_score(q, d, s).score;
  EXPECT_EQ(striped_score(q, d, s).score, oracle);
  SequenceViews views{std::span<const std::uint8_t>(d.data(), d.size())};
  EXPECT_EQ(interseq_scores(q, views, s).scores[0], oracle);
}

TEST(KernelEdgeCases, StripedOverflowDetected) {
  // Identical long sequences of tryptophan: score 11 per residue; 3500
  // residues -> 38500 > INT16_MAX, so the kernel must flag overflow.
  ScoringScheme s;
  const std::vector<std::uint8_t> q(3500, 17);  // 'W' scores 11 vs itself
  const StripedResult r = striped_score(q, q, s);
  EXPECT_TRUE(r.overflow);
}

TEST(KernelEdgeCases, InterSeqOverflowDetected) {
  ScoringScheme s;
  const std::vector<std::uint8_t> q(3500, 17);
  SequenceViews views{std::span<const std::uint8_t>(q.data(), q.size())};
  const InterSeqResult r = interseq_scores(q, views, s);
  EXPECT_TRUE(r.overflow[0]);
}

TEST(KernelEdgeCases, InterSeqEmptyLaneHandling) {
  // A batch with an empty sequence: its score is 0 and other lanes are
  // unaffected.
  ScoringScheme s;
  Rng rng(5);
  const auto q = random_codes(rng, 40, 20);
  const auto d1 = random_codes(rng, 60, 20);
  const std::vector<std::uint8_t> d2;
  SequenceViews views{std::span<const std::uint8_t>(d1.data(), d1.size()),
                      std::span<const std::uint8_t>(d2.data(), d2.size())};
  const InterSeqResult r = interseq_scores(q, views, s);
  EXPECT_EQ(r.scores[0], gotoh_score(q, views[0], s).score);
  EXPECT_EQ(r.scores[1], 0);
}

}  // namespace
}  // namespace swdual::align
