// Unit tests for the scalar Smith–Waterman kernels (the scoring oracles).
#include <gtest/gtest.h>

#include <string>

#include "align/scalar.h"
#include "seq/sequence.h"
#include "util/error.h"

namespace swdual::align {
namespace {

using seq::Alphabet;
using seq::AlphabetKind;

std::vector<std::uint8_t> protein(const std::string& text) {
  return Alphabet::protein().encode(text);
}

std::vector<std::uint8_t> dna(const std::string& text) {
  return Alphabet::dna().encode(text);
}

TEST(SwLinear, EmptyInputsScoreZero) {
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 1, -1);
  EXPECT_EQ(sw_score_linear({}, dna("ACGT"), m, 2).score, 0);
  EXPECT_EQ(sw_score_linear(dna("ACGT"), {}, m, 2).score, 0);
  EXPECT_EQ(sw_score_linear({}, {}, m, 2).score, 0);
}

TEST(SwLinear, PerfectMatchScoresLengthTimesMatch) {
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 3, -2);
  const auto q = dna("ACGTACGT");
  const ScoreResult r = sw_score_linear(q, q, m, 5);
  EXPECT_EQ(r.score, 3 * 8);
  EXPECT_EQ(r.end_query, 8u);
  EXPECT_EQ(r.end_db, 8u);
}

TEST(SwLinear, LocalAlignmentIgnoresFlankingMismatch) {
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 1, -3);
  // Best local region is the common "GGGG".
  const ScoreResult r =
      sw_score_linear(dna("TTGGGGTT"), dna("AAGGGGAA"), m, 2);
  EXPECT_EQ(r.score, 4);
}

TEST(SwLinear, GapBeatsMismatchWhenCheaper) {
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 2, -10);
  // ACGT vs AGT: alignment A-GT with one gap: 3 matches (6) - gap (1) = 5.
  const ScoreResult r = sw_score_linear(dna("ACGT"), dna("AGT"), m, 1);
  EXPECT_EQ(r.score, 5);
}

TEST(SwLinear, CellsCounted) {
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 1, -1);
  const ScoreResult r = sw_score_linear(dna("ACGT"), dna("ACG"), m, 2);
  EXPECT_EQ(r.cells, 12u);
}

TEST(Gotoh, EmptyInputsScoreZero) {
  ScoringScheme scheme;
  EXPECT_EQ(gotoh_score({}, protein("ARND"), scheme).score, 0);
  EXPECT_EQ(gotoh_score(protein("ARND"), {}, scheme).score, 0);
}

TEST(Gotoh, SelfAlignmentEqualsDiagonalSum) {
  ScoringScheme scheme;  // BLOSUM62, 10/2
  const auto q = protein("MKVLAARND");
  int expected = 0;
  for (std::uint8_t code : q) {
    expected += scheme.matrix->score(code, code);
  }
  EXPECT_EQ(gotoh_score(q, q, scheme).score, expected);
}

TEST(Gotoh, AffineGapChargesOpenPlusExtendOnce) {
  // match +2, mismatch -9 forces the gap; Gs=3, Ge=1.
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 2, -9);
  ScoringScheme scheme{&m, {3, 1}};
  // AAAATTTT vs AAAACGTTTT: best is 8 matches (16) - (Gs+Ge) - Ge = 16-5=11
  // for the length-2 gap.
  const ScoreResult r =
      gotoh_score(dna("AAAATTTT"), dna("AAAACGTTTT"), scheme);
  EXPECT_EQ(r.score, 11);
}

TEST(Gotoh, LongGapCheaperThanTwoShortOnes) {
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 2, -9);
  ScoringScheme scheme{&m, {10, 1}};
  // One gap of length 2 costs 10+1+1=12; two gaps of length 1 cost 22.
  // AAAA vs AACGAA... construct: query AAAA vs db AAXXAA where skipping XX
  // in one gap wins: 4 matches (8) - 12 = -4 -> local alignment prefers the
  // two-match run (4). Use longer runs so the gap pays off:
  // query A*8, db A*4 CG A*4: 8 matches (16) - 12 = 4 > 8 (one run of 4)=8?
  // 16-12=4 < 8, so optimum is a clean run of 4 matches = 8. Verify that.
  const ScoreResult r =
      gotoh_score(dna("AAAAAAAA"), dna("AAAACGAAAA"), scheme);
  EXPECT_EQ(r.score, 8);
  // With a cheaper gap the bridge wins: 16 - (4+1+1) = 10 > 8.
  ScoringScheme cheap{&m, {4, 1}};
  EXPECT_EQ(gotoh_score(dna("AAAAAAAA"), dna("AAAACGAAAA"), cheap).score, 10);
}

TEST(Gotoh, ScoreNeverNegative) {
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 1, -5);
  ScoringScheme scheme{&m, {10, 5}};
  const ScoreResult r = gotoh_score(dna("AAAA"), dna("TTTT"), scheme);
  EXPECT_EQ(r.score, 0);
}

TEST(Gotoh, ReportsBestCellCoordinates) {
  ScoringScheme scheme;
  // Query embedded in the middle of the db: end coordinates point at the
  // end of the embedded copy.
  const auto q = protein("WWWWW");
  const auto d = protein("AAAWWWWWAAA");
  const ScoreResult r = gotoh_score(q, d, scheme);
  EXPECT_EQ(r.end_query, 5u);
  EXPECT_EQ(r.end_db, 8u);
}

TEST(Gotoh, SymmetricInArguments) {
  ScoringScheme scheme;
  const auto a = protein("MKVLAWDERTNQ");
  const auto b = protein("MKVLQWDTTNQ");
  EXPECT_EQ(gotoh_score(a, b, scheme).score, gotoh_score(b, a, scheme).score);
}

TEST(Gotoh, RejectsNegativePenalties) {
  ScoringScheme scheme;
  scheme.gap.open = -1;
  EXPECT_THROW(gotoh_score(protein("ARND"), protein("ARND"), scheme),
               InvalidArgument);
}

}  // namespace
}  // namespace swdual::align
