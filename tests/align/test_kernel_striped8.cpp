// Property tests for the byte-precision striped kernel: exact whenever it
// does not flag overflow, and overflow flagged before any clamping can
// corrupt a score.
#include <gtest/gtest.h>

#include "align/kernel_striped8.h"
#include "align/scalar.h"
#include "align/search.h"
#include "seq/dbgen.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& c : out) c = static_cast<std::uint8_t>(rng.below(20));
  return out;
}

TEST(Striped8, MatchesOracleWhenNoOverflow) {
  ScoringScheme scheme;
  Rng rng(31);
  int verified = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const auto q = random_codes(rng, 1 + rng.below(180));
    const auto d = random_codes(rng, 1 + rng.below(180));
    const StripedResult r8 = striped8_score(q, d, scheme);
    if (r8.overflow) continue;  // separately tested below
    ASSERT_EQ(r8.score, gotoh_score(q, d, scheme).score)
        << "rep " << rep << " qlen=" << q.size() << " dlen=" << d.size();
    ++verified;
  }
  EXPECT_GT(verified, 150);  // random protein pairs rarely overflow bytes
}

TEST(Striped8, BiasedProfilePadsWithBias) {
  Rng rng(33);
  const auto q = random_codes(rng, 13);  // forces padding in 16-lane layout
  const StripedProfileU8 profile(q, ScoreMatrix::blosum62());
  EXPECT_EQ(profile.bias(), 4);  // BLOSUM62 min is -4
  // Padding lanes hold exactly bias (true score 0) for every residue code.
  const std::size_t seg = profile.segment_length();
  const std::uint8_t* row = profile.row(0);
  for (std::size_t s = 0; s < seg; ++s) {
    for (std::size_t lane = 0; lane < kLanes8; ++lane) {
      if (lane * seg + s >= q.size()) {
        EXPECT_EQ(row[s * kLanes8 + lane], profile.bias());
      }
    }
  }
}

TEST(Striped8, OverflowFlaggedOnHighScores) {
  // Poly-tryptophan self-alignment: 30 residues already score 330 > 251.
  ScoringScheme scheme;
  const std::vector<std::uint8_t> q(64, 17);
  const StripedResult r = striped8_score(q, q, scheme);
  EXPECT_TRUE(r.overflow);
}

TEST(Striped8, NeverSilentlyWrong) {
  // Adversarial: moderately self-similar sequences near the byte ceiling.
  // Every non-overflow result must be exact.
  ScoringScheme scheme;
  Rng rng(35);
  for (int rep = 0; rep < 100; ++rep) {
    auto q = random_codes(rng, 60);
    auto d = q;
    for (std::size_t i = 0; i < d.size(); i += 1 + rng.below(6)) {
      d[i] = static_cast<std::uint8_t>(rng.below(20));
    }
    const StripedResult r = striped8_score(q, d, scheme);
    const int oracle = gotoh_score(q, d, scheme).score;
    if (!r.overflow) {
      ASSERT_EQ(r.score, oracle) << "rep " << rep;
    } else {
      ASSERT_GE(oracle, 255 - 4 - 11)
          << "overflow flagged although the oracle score is far below the "
             "ceiling (rep "
          << rep << ")";
    }
  }
}

TEST(Striped8, SearchDriverEscalatesToExactScores) {
  Rng rng(37);
  std::vector<seq::Sequence> db;
  for (int i = 0; i < 20; ++i) {
    db.push_back(seq::random_protein(rng, "d", 150));
  }
  // Plant a high-scoring record that overflows the byte tier.
  seq::Sequence hot = seq::random_protein(rng, "hot", 400);
  db.push_back(hot);
  ScoringScheme scheme;
  const SearchResult exact =
      search_database(hot, db, scheme, KernelKind::kScalar);
  const SearchResult tiered =
      search_database(hot, db, scheme, KernelKind::kStriped8);
  EXPECT_GE(tiered.overflow_rescans, 1u);
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(tiered.scores[i], exact.scores[i]) << "record " << i;
  }
}

TEST(Striped8, RejectsOutOfRangePenalties) {
  const std::vector<std::uint8_t> q = {0, 1, 2};
  ScoringScheme scheme;
  scheme.gap.open = 300;
  EXPECT_THROW(striped8_score(q, q, scheme), InvalidArgument);
  scheme.gap.open = 10;
  scheme.gap.extend = 0;
  EXPECT_THROW(striped8_score(q, q, scheme), InvalidArgument);
}

TEST(Striped8, GapPenaltySweepAgainstOracle) {
  Rng rng(39);
  for (const auto& [gs, ge] : {std::pair{5, 1}, {10, 2}, {14, 4}, {0, 1}}) {
    ScoringScheme scheme;
    scheme.gap = {gs, ge};
    for (int rep = 0; rep < 20; ++rep) {
      const auto q = random_codes(rng, 1 + rng.below(100));
      const auto d = random_codes(rng, 1 + rng.below(100));
      const StripedResult r = striped8_score(q, d, scheme);
      if (!r.overflow) {
        ASSERT_EQ(r.score, gotoh_score(q, d, scheme).score)
            << "gs=" << gs << " ge=" << ge;
      }
    }
  }
}

}  // namespace
}  // namespace swdual::align
