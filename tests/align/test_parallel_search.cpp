// Parallel-vs-serial equivalence for the chunked search engine: identical
// scores, cells, and overflow accounting for every kernel across thread
// counts and chunk geometries, plus byte-level determinism across runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "align/parallel_search.h"
#include "align/search.h"
#include "seq/dbgen.h"
#include "seq/swdb.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<seq::Sequence> random_database(std::size_t count,
                                           std::uint64_t seed,
                                           std::size_t min_len = 10,
                                           std::size_t max_len = 300) {
  Rng rng(seed);
  std::vector<seq::Sequence> db;
  for (std::size_t i = 0; i < count; ++i) {
    db.push_back(seq::random_protein(
        rng, "db" + std::to_string(i),
        static_cast<std::size_t>(
            rng.between(static_cast<std::int64_t>(min_len),
                        static_cast<std::int64_t>(max_len)))));
  }
  return db;
}

/// Byte-level equality of the deterministic parts of a SearchResult
/// (seconds is wall-clock and excluded by design).
void expect_identical(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.scores.size(), b.scores.size());
  if (!a.scores.empty()) {
    EXPECT_EQ(std::memcmp(a.scores.data(), b.scores.data(),
                          a.scores.size() * sizeof(int)),
              0);
  }
  EXPECT_EQ(a.cells, b.cells);
  EXPECT_EQ(a.overflow_rescans, b.overflow_rescans);
}

class ParallelSearchKernels : public ::testing::TestWithParam<KernelKind> {};

TEST_P(ParallelSearchKernels, MatchesSerialAcrossThreadCounts) {
  const auto db = random_database(60, 11);
  const DbView views = make_db_view(db);
  Rng rng(12);
  const seq::Sequence query = seq::random_protein(rng, "q", 120);
  const std::span<const std::uint8_t> query_view(query.residues.data(),
                                                 query.residues.size());
  ScoringScheme scheme;
  const SearchResult serial =
      search_database(query_view, views, scheme, GetParam());
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelSearchOptions options;
    options.threads = threads;
    const ParallelSearchEngine engine(views, options);
    expect_identical(engine.search(query_view, scheme, GetParam()), serial);
  }
}

TEST_P(ParallelSearchKernels, MatchesSerialAcrossChunkGeometries) {
  const auto db = random_database(25, 13);
  const DbView views = make_db_view(db);
  Rng rng(14);
  const seq::Sequence query = seq::random_protein(rng, "q", 80);
  const std::span<const std::uint8_t> query_view(query.residues.data(),
                                                 query.residues.size());
  ScoringScheme scheme;
  const SearchResult serial =
      search_database(query_view, views, scheme, GetParam());
  // Chunk sizes: single-record chunks, a mid value, and one larger than the
  // whole database (collapses to a single chunk); each with/without the
  // length-sorted permutation.
  for (const std::size_t chunk_records : {1u, 7u, 1000u}) {
    for (const bool sorted : {false, true}) {
      ParallelSearchOptions options;
      options.threads = 3;
      options.chunk_records = chunk_records;
      options.sort_by_length = sorted;
      const ParallelSearchEngine engine(views, options);
      if (chunk_records >= db.size()) {
        EXPECT_EQ(engine.num_chunks(), 1u);
      }
      expect_identical(engine.search(query_view, scheme, GetParam()), serial);
    }
  }
}

TEST_P(ParallelSearchKernels, DeterministicAcrossRepeatedRuns) {
  const auto db = random_database(40, 15);
  const DbView views = make_db_view(db);
  Rng rng(16);
  const seq::Sequence query = seq::random_protein(rng, "q", 150);
  const std::span<const std::uint8_t> query_view(query.residues.data(),
                                                 query.residues.size());
  ScoringScheme scheme;
  ParallelSearchOptions options;
  options.threads = 4;
  const ParallelSearchEngine engine(views, options);
  const SearchResult first = engine.search(query_view, scheme, GetParam());
  for (int run = 0; run < 3; ++run) {
    expect_identical(engine.search(query_view, scheme, GetParam()), first);
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, ParallelSearchKernels,
                         ::testing::Values(KernelKind::kScalar,
                                           KernelKind::kStriped,
                                           KernelKind::kStriped8,
                                           KernelKind::kInterSeq),
                         [](const auto& param_info) {
                           return kernel_name(param_info.param);
                         });

TEST(ParallelSearch, OverflowEscalationMatchesSerial) {
  // A planted self-similar giant saturates the 8-bit tier, exercising the
  // shared lazily built 16-bit escalation profile across chunks.
  Rng rng(17);
  std::vector<seq::Sequence> db = random_database(12, 18, 20, 120);
  seq::Sequence big;
  big.id = "big";
  big.alphabet = seq::AlphabetKind::kProtein;
  big.residues.assign(3000, 17);  // poly-W
  db.push_back(big);
  const DbView views = make_db_view(db);
  const std::span<const std::uint8_t> query_view(big.residues.data(),
                                                 big.residues.size());
  ScoringScheme scheme;
  for (KernelKind kernel : {KernelKind::kStriped, KernelKind::kStriped8,
                            KernelKind::kInterSeq}) {
    const SearchResult serial =
        search_database(query_view, views, scheme, kernel);
    EXPECT_GE(serial.overflow_rescans, 1u) << kernel_name(kernel);
    ParallelSearchOptions options;
    options.threads = 4;
    options.chunk_records = 3;
    const ParallelSearchEngine engine(views, options);
    expect_identical(engine.search(query_view, scheme, kernel), serial);
  }
}

TEST(ParallelSearch, RankedSearchEqualsTopOfFullResult) {
  const auto db = random_database(50, 19);
  const DbView views = make_db_view(db);
  Rng rng(20);
  const seq::Sequence query = seq::random_protein(rng, "q", 100);
  const std::span<const std::uint8_t> query_view(query.residues.data(),
                                                 query.residues.size());
  ScoringScheme scheme;
  ParallelSearchOptions options;
  options.threads = 4;
  const ParallelSearchEngine engine(views, options);
  for (const std::size_t k : {1u, 5u, 200u}) {
    const RankedSearchResult ranked =
        engine.search_ranked(query_view, scheme, KernelKind::kStriped8, k);
    const auto expected = ranked.result.top(k);
    ASSERT_EQ(ranked.hits.size(), expected.size()) << "k=" << k;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(ranked.hits[i].db_index, expected[i].db_index) << "k=" << k;
      EXPECT_EQ(ranked.hits[i].score, expected[i].score) << "k=" << k;
    }
  }
}

TEST(ParallelSearch, EmptyDatabaseAndEmptyQuery) {
  const DbView empty_db;
  ParallelSearchOptions options;
  options.threads = 2;
  const ParallelSearchEngine engine(empty_db, options);
  ScoringScheme scheme;
  Rng rng(21);
  const seq::Sequence query = seq::random_protein(rng, "q", 30);
  const std::span<const std::uint8_t> query_view(query.residues.data(),
                                                 query.residues.size());
  for (KernelKind kernel : {KernelKind::kScalar, KernelKind::kStriped,
                            KernelKind::kStriped8, KernelKind::kInterSeq}) {
    const SearchResult r = engine.search(query_view, scheme, kernel);
    EXPECT_TRUE(r.scores.empty());
    EXPECT_EQ(r.cells, 0u);
  }

  const auto db = random_database(10, 22);
  const DbView views = make_db_view(db);
  const ParallelSearchEngine full(views, options);
  for (KernelKind kernel : {KernelKind::kScalar, KernelKind::kStriped,
                            KernelKind::kStriped8, KernelKind::kInterSeq}) {
    const SearchResult serial = search_database({}, views, scheme, kernel);
    expect_identical(full.search({}, scheme, kernel), serial);
  }
}

TEST(ParallelSearch, MappedDatabaseMatchesRecordViews) {
  // The zero-copy path: an engine built over a MappedSwdb (v1 or v2 file)
  // must score bit-identically to one built over in-memory record views —
  // for every kernel, with and without the lane-batch ordering.
  const std::string path =
      ::testing::TempDir() + "/swdual_parallel_mapped.swdb";
  const auto db = random_database(48, 31);
  const DbView views = make_db_view(db);
  Rng rng(32);
  const seq::Sequence query = seq::random_protein(rng, "q", 110);
  const std::span<const std::uint8_t> query_view(query.residues.data(),
                                                 query.residues.size());
  ScoringScheme scheme;
  for (const std::uint32_t version :
       {seq::kSwdbVersion1, seq::kSwdbVersion2}) {
    seq::write_swdb(path, db, seq::AlphabetKind::kProtein, version);
    const seq::MappedSwdb mapped(path);
    for (const bool sorted : {false, true}) {
      ParallelSearchOptions options;
      options.threads = 3;
      options.sort_by_length = sorted;
      const ParallelSearchEngine from_views(views, options);
      const ParallelSearchEngine from_mapped(mapped, options);
      for (KernelKind kernel : {KernelKind::kScalar, KernelKind::kStriped,
                                KernelKind::kStriped8,
                                KernelKind::kInterSeq}) {
        expect_identical(from_mapped.search(query_view, scheme, kernel),
                         from_views.search(query_view, scheme, kernel));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ParallelSearch, ResidueBalancedPartitionCoversAndBalances) {
  // Heavily skewed lengths: auto partitioning must still cover every record
  // exactly once and produce the requested chunk structure.
  Rng rng(23);
  std::vector<seq::Sequence> db;
  for (int i = 0; i < 64; ++i) {
    db.push_back(seq::random_protein(rng, "d", i % 8 == 0 ? 2000 : 20));
  }
  const DbView views = make_db_view(db);
  ParallelSearchOptions options;
  options.threads = 4;
  options.chunks_per_thread = 2;
  const ParallelSearchEngine engine(views, options);
  EXPECT_EQ(engine.num_chunks(), 8u);
  EXPECT_EQ(engine.db_records(), db.size());
  const seq::Sequence query = seq::random_protein(rng, "q", 64);
  const std::span<const std::uint8_t> query_view(query.residues.data(),
                                                 query.residues.size());
  ScoringScheme scheme;
  const SearchResult serial =
      search_database(query_view, views, scheme, KernelKind::kInterSeq);
  expect_identical(engine.search(query_view, scheme, KernelKind::kInterSeq),
                   serial);
}

}  // namespace
}  // namespace swdual::align
