// Integration tests for the database-search driver across kernels.
#include <gtest/gtest.h>

#include "align/search.h"
#include "seq/dbgen.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<seq::Sequence> tiny_database(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<seq::Sequence> db;
  for (std::size_t i = 0; i < count; ++i) {
    db.push_back(seq::random_protein(
        rng, "db" + std::to_string(i),
        static_cast<std::size_t>(rng.between(20, 200))));
  }
  return db;
}

class SearchKernels : public ::testing::TestWithParam<KernelKind> {};

TEST_P(SearchKernels, AllKernelsAgreeWithScalar) {
  const auto db = tiny_database(30, 7);
  Rng rng(8);
  const seq::Sequence query = seq::random_protein(rng, "q", 90);
  ScoringScheme scheme;
  const SearchResult scalar =
      search_database(query, db, scheme, KernelKind::kScalar);
  const SearchResult other = search_database(query, db, scheme, GetParam());
  ASSERT_EQ(other.scores.size(), scalar.scores.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(other.scores[i], scalar.scores[i]) << "record " << i;
  }
  EXPECT_EQ(other.cells, scalar.cells);
}

INSTANTIATE_TEST_SUITE_P(Kernels, SearchKernels,
                         ::testing::Values(KernelKind::kScalar,
                                           KernelKind::kStriped,
                                           KernelKind::kStriped8,
                                           KernelKind::kInterSeq),
                         [](const auto& param_info) {
                           return kernel_name(param_info.param);
                         });

TEST(Search, TopHitsSortedAndTiesStable) {
  SearchResult result;
  result.scores = {10, 50, 50, 3, 70};
  const auto top = result.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].db_index, 4u);
  EXPECT_EQ(top[1].db_index, 1u);  // tie: earlier index first
  EXPECT_EQ(top[2].db_index, 2u);
}

TEST(Search, TopClampsToDatabaseSize) {
  SearchResult result;
  result.scores = {1, 2};
  EXPECT_EQ(result.top(10).size(), 2u);
}

TEST(Search, SelfHitScoresHighest) {
  auto db = tiny_database(20, 21);
  Rng rng(22);
  db.push_back(seq::random_protein(rng, "planted", 120));
  const seq::Sequence query = db.back();
  ScoringScheme scheme;
  for (KernelKind kernel :
       {KernelKind::kScalar, KernelKind::kStriped, KernelKind::kStriped8,
        KernelKind::kInterSeq}) {
    const SearchResult r = search_database(query, db, scheme, kernel);
    const auto top = r.top(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].db_index, db.size() - 1) << kernel_name(kernel);
  }
}

TEST(Search, OverflowRescanProducesExactScores) {
  // One enormous self-similar record saturates 16-bit kernels; the driver
  // must fall back to the 32-bit oracle for that pair.
  Rng rng(9);
  std::vector<seq::Sequence> db = tiny_database(5, 10);
  seq::Sequence big;
  big.id = "big";
  big.alphabet = seq::AlphabetKind::kProtein;
  big.residues.assign(3500, 17);  // poly-W
  db.push_back(big);
  seq::Sequence query = big;
  ScoringScheme scheme;
  const SearchResult scalar =
      search_database(query, db, scheme, KernelKind::kScalar);
  for (KernelKind kernel : {KernelKind::kStriped, KernelKind::kStriped8,
                            KernelKind::kInterSeq}) {
    const SearchResult r = search_database(query, db, scheme, kernel);
    EXPECT_GE(r.overflow_rescans, 1u) << kernel_name(kernel);
    for (std::size_t i = 0; i < db.size(); ++i) {
      EXPECT_EQ(r.scores[i], scalar.scores[i])
          << kernel_name(kernel) << " record " << i;
    }
  }
}

TEST(Search, GcupsAccountingPositive) {
  const auto db = tiny_database(10, 30);
  Rng rng(31);
  const seq::Sequence query = seq::random_protein(rng, "q", 60);
  ScoringScheme scheme;
  const SearchResult r =
      search_database(query, db, scheme, KernelKind::kInterSeq);
  EXPECT_GT(r.cells, 0u);
  EXPECT_GE(r.seconds, 0.0);
}

}  // namespace
}  // namespace swdual::align
