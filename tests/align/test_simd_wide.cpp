// Direct tests of the wide (AVX2 / AVX-512BW) vector wrappers against the
// interface contract of simd8.h / simd16.h, plus the width-generic scalar
// emulation at the same lane counts. This TU is compiled with the wide ISA
// flags (see tests/align/CMakeLists.txt), so every check that executes wide
// instructions is guarded by a runtime CPUID skip — the binary must still
// *start* on a host without AVX.
//
// The one genuinely tricky operation at 256/512 bits is shift_lanes_up:
// x86 byte shifts do not cross 128-bit boundaries, so the wrappers carry
// the crossing byte with permute+alignr. These tests pin the exact
// whole-vector semantics the striped kernels rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "align/backend.h"
#include "align/simd_avx2.h"
#include "align/simd_avx512.h"
#include "align/simd_scalar.h"

namespace swdual::align {
namespace {

template <class V>
void check_u8_contract() {
  constexpr std::size_t kL = V::kLanes;
  // Load/store round trip.
  std::uint8_t data[kL];
  for (std::size_t i = 0; i < kL; ++i) {
    data[i] = static_cast<std::uint8_t>(3 * i + 1);
  }
  std::uint8_t out[kL];
  V::load(data).store(out);
  for (std::size_t i = 0; i < kL; ++i) ASSERT_EQ(out[i], data[i]);
  // Saturating arithmetic.
  EXPECT_EQ(adds(V::splat(250), V::splat(10)).lane(0), 255);
  EXPECT_EQ(adds(V::splat(100), V::splat(10)).lane(kL - 1), 110);
  EXPECT_EQ(subs(V::splat(3), V::splat(10)).lane(kL / 2), 0);
  EXPECT_EQ(subs(V::splat(10), V::splat(3)).lane(kL / 2), 7);
  // Lane-wise max and unsigned any_gt.
  EXPECT_EQ(max(V::splat(5), V::splat(9)).lane(1), 9);
  EXPECT_FALSE(any_gt(V::splat(0), V::splat(0)));
  EXPECT_TRUE(any_gt(V::splat(1), V::splat(0)));
  EXPECT_FALSE(any_gt(V::splat(5), V::splat(200)));  // unsigned compare
  // A single differing lane must be seen — including one in the top
  // 128-bit half, where a lazily-written movemask would lose it.
  std::uint8_t hot[kL] = {};
  hot[kL - 2] = 1;
  EXPECT_TRUE(any_gt(V::load(hot), V::zero()));
  // Whole-vector lane shift with zero fill (crosses 128-bit halves).
  const V shifted = V::load(data).shift_lanes_up();
  EXPECT_EQ(shifted.lane(0), 0);
  for (std::size_t i = 1; i < kL; ++i) {
    ASSERT_EQ(shifted.lane(i), data[i - 1]) << "lane " << i;
  }
  // hmax, with the maximum placed in each 128-bit half in turn.
  for (std::size_t pos : {std::size_t{0}, kL / 2, kL - 1}) {
    std::uint8_t m[kL];
    for (std::size_t i = 0; i < kL; ++i) m[i] = static_cast<std::uint8_t>(i);
    m[pos] = 201;
    EXPECT_EQ(V::load(m).hmax(), 201) << "pos " << pos;
  }
}

template <class V>
void check_i16_contract() {
  constexpr std::size_t kL = V::kLanes;
  std::int16_t data[kL];
  for (std::size_t i = 0; i < kL; ++i) {
    data[i] = static_cast<std::int16_t>(100 * i - 500);
  }
  std::int16_t out[kL];
  V::load(data).store(out);
  for (std::size_t i = 0; i < kL; ++i) ASSERT_EQ(out[i], data[i]);
  // Signed saturation at both rails.
  EXPECT_EQ(adds(V::splat(32000), V::splat(1000)).lane(0), 32767);
  EXPECT_EQ(subs(V::splat(-32000), V::splat(1000)).lane(kL - 1), -32768);
  // max / any_gt are signed.
  EXPECT_EQ(max(V::splat(-3), V::splat(-9)).lane(2), -3);
  EXPECT_FALSE(any_gt(V::splat(5), V::splat(5)));
  EXPECT_TRUE(any_gt(V::splat(6), V::splat(5)));
  V mixed = V::splat(0);
  mixed.set_lane(kL - 2, 1);  // top half again
  EXPECT_TRUE(any_gt(mixed, V::splat(0)));
  // Lane shift with explicit fill (the kernels pass the no-gap sentinel).
  const V shifted = V::load(data).shift_lanes_up(-999);
  EXPECT_EQ(shifted.lane(0), -999);
  for (std::size_t i = 1; i < kL; ++i) {
    ASSERT_EQ(shifted.lane(i), data[i - 1]) << "lane " << i;
  }
  // set_lane round-trips and hmax sees every half.
  for (std::size_t pos : {std::size_t{0}, kL / 2, kL - 1}) {
    V v = V::splat(-5);
    v.set_lane(pos, 1234);
    EXPECT_EQ(v.lane(pos), 1234);
    EXPECT_EQ(v.hmax(), 1234) << "pos " << pos;
  }
}

TEST(SimdWideScalar, U8EmulationAt32And64Lanes) {
  check_u8_contract<VecU8Scalar<32>>();
  check_u8_contract<VecU8Scalar<64>>();
}

TEST(SimdWideScalar, I16EmulationAt16And32Lanes) {
  check_i16_contract<VecI16Scalar<16>>();
  check_i16_contract<VecI16Scalar<32>>();
}

#if defined(SWDUAL_SIMD_AVX2)
TEST(SimdWideAvx2, U8ContractHolds) {
  if (!backend_available(Backend::kAVX2)) GTEST_SKIP() << "no AVX2 CPU";
  check_u8_contract<V8x32>();
}

TEST(SimdWideAvx2, I16ContractHolds) {
  if (!backend_available(Backend::kAVX2)) GTEST_SKIP() << "no AVX2 CPU";
  check_i16_contract<V16x16>();
}
#endif  // SWDUAL_SIMD_AVX2

#if defined(SWDUAL_SIMD_AVX512)
TEST(SimdWideAvx512, U8ContractHolds) {
  if (!backend_available(Backend::kAVX512)) GTEST_SKIP() << "no AVX-512BW CPU";
  check_u8_contract<V8x64>();
}

TEST(SimdWideAvx512, I16ContractHolds) {
  if (!backend_available(Backend::kAVX512)) GTEST_SKIP() << "no AVX-512BW CPU";
  check_i16_contract<V16x32>();
}
#endif  // SWDUAL_SIMD_AVX512

}  // namespace
}  // namespace swdual::align
