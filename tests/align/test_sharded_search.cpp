// Sharded scatter-gather search battery: the sharded engine must be
// bit-identical to the unsharded search at every shard count, for every
// kernel, on every available backend, serial and threaded — including a
// ragged database whose 5000-residue outlier dwarfs every other record.
// Plus: residue-balance guarantees of the planner under Zipf-skewed
// lengths, multi-query group equivalence, deterministic fault injection
// through the before_shard hook (retry-to-recovery and budget exhaustion →
// partial results with a reason), and the zero-copy MappedSwdb path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "align/backend.h"
#include "align/parallel_search.h"
#include "align/search.h"
#include "align/sharded_search.h"
#include "seq/swdb.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t len,
                                       std::size_t alphabet = 20) {
  std::vector<std::uint8_t> out(len);
  for (auto& c : out) c = static_cast<std::uint8_t>(rng.below(alphabet));
  return out;
}

/// Ragged corpus: mostly short records plus one 5000-residue outlier, so a
/// single record carries more residues than several whole shards.
struct Corpus {
  std::vector<std::uint8_t> query;
  std::vector<std::vector<std::uint8_t>> records;

  DbView view() const {
    DbView v;
    for (const auto& r : records) v.emplace_back(r.data(), r.size());
    return v;
  }
};

Corpus ragged_corpus(std::uint64_t seed, std::size_t n,
                     std::size_t query_len) {
  Rng rng(seed);
  Corpus c;
  c.query = random_codes(rng, query_len);
  c.records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.records.push_back(random_codes(
        rng, static_cast<std::size_t>(rng.between(1, 100))));
  }
  if (n >= 2) {
    c.records[n / 2] = random_codes(rng, 5000);  // the outlier
    c.records[0] = random_codes(rng, 1);
  }
  return c;
}

void expect_hits_equal(const std::vector<SearchHit>& actual,
                       const std::vector<SearchHit>& expected,
                       const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t h = 0; h < expected.size(); ++h) {
    EXPECT_EQ(actual[h].db_index, expected[h].db_index)
        << label << " hit " << h;
    EXPECT_EQ(actual[h].score, expected[h].score) << label << " hit " << h;
  }
}

constexpr std::size_t kShardCounts[] = {1, 2, 3, 7, 16};

TEST(ShardPlan, CoversEveryRecordExactlyOnce) {
  const Corpus corpus = ragged_corpus(11, 40, 30);
  for (const std::size_t shards : kShardCounts) {
    const ShardPlan plan = plan_shards(corpus.view(), shards);
    ASSERT_EQ(plan.shards.size(), std::min<std::size_t>(shards, 40));
    std::vector<int> seen(corpus.records.size(), 0);
    for (const auto& shard : plan.shards) {
      ASSERT_FALSE(shard.records.empty());
      for (std::size_t i = 1; i < shard.records.size(); ++i) {
        EXPECT_LT(shard.records[i - 1], shard.records[i])
            << "records must be ascending";
      }
      for (const std::uint32_t id : shard.records) ++seen[id];
    }
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], 1) << "record " << i << " at " << shards
                            << " shards";
    }
  }
}

TEST(ShardPlan, ZipfSkewedLengthsStayResidueBalanced) {
  // Zipf-skewed record lengths concentrate residues in few hot records; the
  // LPT planner must still bound per-shard residue imbalance to <= 10%.
  Rng rng(23);
  std::vector<std::uint32_t> lengths(600);
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    const double rank = static_cast<double>((i * 131) % lengths.size()) + 1.0;
    lengths[i] = static_cast<std::uint32_t>(
        20.0 + 4000.0 / std::pow(rank, 1.1) +
        static_cast<double>(rng.below(10)));
  }
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const ShardPlan plan = plan_shards(lengths, shards);
    EXPECT_LE(plan.imbalance(), 0.10)
        << shards << " shards, imbalance " << plan.imbalance();
  }
}

TEST(ShardPlan, EmptyDatabaseYieldsEmptyPlan) {
  const ShardPlan plan = plan_shards(DbView{}, 4);
  EXPECT_TRUE(plan.shards.empty());
  EXPECT_EQ(plan.imbalance(), 0.0);
}

// The battery: shard counts x kernels x available backends x
// serial/threaded, against the direct unsharded search.
TEST(ShardedSearch, BitIdenticalToUnshardedEverywhere) {
  const Corpus corpus = ragged_corpus(42, 60, 64);
  const DbView db = corpus.view();
  const ScoringScheme scheme;
  const std::size_t k = 10;

  const KernelKind kernels[] = {KernelKind::kScalar, KernelKind::kStriped,
                                KernelKind::kStriped8,
                                KernelKind::kInterSeq};
  for (const Backend backend : available_backends()) {
    for (const KernelKind kernel : kernels) {
      const SearchResult expected =
          search_database(corpus.query, db, scheme, kernel, backend);
      const std::vector<SearchHit> expected_hits = expected.top(k);
      for (const std::size_t shards : kShardCounts) {
        for (const std::size_t threads : {1u, 3u}) {
          ShardedSearchOptions options;
          options.num_shards = shards;
          options.threads_per_shard = threads;
          options.parallel_scatter = threads > 1;
          const ShardedSearchEngine engine(db, options);
          const ShardedSearchResult result = engine.search_ranked(
              corpus.query, scheme, kernel, k, backend);
          const std::string label =
              std::string(backend_name(backend)) + "/" +
              kernel_name(kernel) + "/shards=" + std::to_string(shards) +
              "/threads=" + std::to_string(threads);
          EXPECT_TRUE(result.complete) << label;
          EXPECT_TRUE(result.failures.empty()) << label;
          ASSERT_EQ(result.ranked.result.scores.size(),
                    expected.scores.size())
              << label;
          EXPECT_EQ(result.ranked.result.scores, expected.scores) << label;
          EXPECT_EQ(result.ranked.result.cells, expected.cells) << label;
          EXPECT_EQ(result.ranked.result.overflow_rescans,
                    expected.overflow_rescans)
              << label;
          expect_hits_equal(result.ranked.hits, expected_hits, label);
        }
      }
    }
  }
}

TEST(ShardedSearch, MultiQueryGroupMatchesPerQuerySearch) {
  const Corpus corpus = ragged_corpus(7, 50, 48);
  const DbView db = corpus.view();
  const ScoringScheme scheme;
  Rng rng(99);
  std::vector<std::vector<std::uint8_t>> query_storage;
  for (const std::size_t len : {30u, 48u, 65u, 90u}) {
    query_storage.push_back(random_codes(rng, len));
  }
  std::vector<std::span<const std::uint8_t>> queries;
  for (const auto& q : query_storage) queries.emplace_back(q.data(), q.size());

  ShardedSearchOptions options;
  options.num_shards = 3;
  options.threads_per_shard = 2;
  const ShardedSearchEngine engine(db, options);

  const auto group = engine.search_many(queries, scheme,
                                        KernelKind::kStriped8, 8);
  ASSERT_EQ(group.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const SearchResult expected =
        search_database(queries[q], db, scheme, KernelKind::kStriped8);
    EXPECT_TRUE(group[q].complete);
    EXPECT_EQ(group[q].ranked.result.scores, expected.scores)
        << "query " << q;
    expect_hits_equal(group[q].ranked.hits, expected.top(8),
                      "query " + std::to_string(q));
  }
  // One group pass over the shards, not one pass per query.
  EXPECT_EQ(engine.stats().group_passes, 1u);
  EXPECT_EQ(engine.stats().scans, 3u);
}

TEST(ShardedSearch, FailedShardRetriesOnRecoveryPathAndStaysBitIdentical) {
  const Corpus corpus = ragged_corpus(5, 30, 40);
  const DbView db = corpus.view();
  const ScoringScheme scheme;

  std::atomic<int> injected{0};
  ShardedSearchOptions options;
  options.num_shards = 4;
  options.max_shard_retries = 1;
  options.before_shard = [&](std::size_t shard, std::size_t attempt) {
    if (shard == 1 && attempt == 0) {
      ++injected;
      throw std::runtime_error("injected shard fault");
    }
  };
  const ShardedSearchEngine engine(db, options);
  const ShardedSearchResult result =
      engine.search_ranked(corpus.query, scheme, KernelKind::kInterSeq, 6);

  EXPECT_EQ(injected.load(), 1);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(engine.stats().retries, 1u);
  EXPECT_EQ(engine.stats().failures, 0u);

  const SearchResult expected =
      search_database(corpus.query, db, scheme, KernelKind::kInterSeq);
  EXPECT_EQ(result.ranked.result.scores, expected.scores);
  expect_hits_equal(result.ranked.hits, expected.top(6), "recovered");
}

TEST(ShardedSearch, RetryBudgetExhaustionYieldsPartialResultsWithReason) {
  const Corpus corpus = ragged_corpus(6, 30, 40);
  const DbView db = corpus.view();
  const ScoringScheme scheme;

  ShardedSearchOptions options;
  options.num_shards = 3;
  options.max_shard_retries = 2;
  options.before_shard = [](std::size_t shard, std::size_t) {
    if (shard == 2) throw std::runtime_error("shard 2 is on fire");
  };
  const ShardedSearchEngine engine(db, options);
  const ShardedSearchResult result =
      engine.search_ranked(corpus.query, scheme, KernelKind::kStriped, 5);

  EXPECT_FALSE(result.complete);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].shard, 2u);
  EXPECT_EQ(result.failures[0].attempts, 3u);  // 1 try + 2 retries
  EXPECT_NE(result.failures[0].reason.find("on fire"), std::string::npos);
  EXPECT_EQ(engine.stats().failures, 1u);

  // The scanned shards' scores are still exact; the failed shard's records
  // read zero and are absent from the hits.
  const SearchResult expected =
      search_database(corpus.query, db, scheme, KernelKind::kStriped);
  const auto& failed_records = engine.plan().shards[2].records;
  std::vector<bool> failed(db.size(), false);
  for (const std::uint32_t id : failed_records) failed[id] = true;
  for (std::size_t i = 0; i < db.size(); ++i) {
    if (failed[i]) {
      EXPECT_EQ(result.ranked.result.scores[i], 0) << "record " << i;
    } else {
      EXPECT_EQ(result.ranked.result.scores[i], expected.scores[i])
          << "record " << i;
    }
  }
  for (const SearchHit& hit : result.ranked.hits) {
    EXPECT_FALSE(failed[hit.db_index])
        << "failed-shard record " << hit.db_index << " in partial hits";
  }
}

TEST(ShardedSearch, MappedSwdbShardsAreBitIdenticalToRecordViews) {
  Rng rng(17);
  std::vector<seq::Sequence> records;
  for (std::size_t i = 0; i < 40; ++i) {
    seq::Sequence s;
    s.id = "r" + std::to_string(i);
    s.residues = random_codes(rng, 1 + rng.below(90));
    records.push_back(std::move(s));
  }
  records[20].residues = random_codes(rng, 5000);  // ragged outlier
  const std::string path =
      testing::TempDir() + "/sharded_search_db.swdb";
  seq::write_swdb(path, records, seq::AlphabetKind::kProtein);
  auto mapped = std::make_shared<const seq::MappedSwdb>(path);

  const std::vector<std::uint8_t> query = random_codes(rng, 70);
  const ScoringScheme scheme;
  const DbView direct_view = make_db_view(records);
  const SearchResult expected =
      search_database(query, direct_view, scheme, KernelKind::kInterSeq);

  ShardedSearchOptions options;
  options.num_shards = 3;
  options.threads_per_shard = 2;
  const ShardedSearchEngine engine(mapped, options);
  const ShardedSearchResult result =
      engine.search_ranked(query, scheme, KernelKind::kInterSeq, 10);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.ranked.result.scores, expected.scores);
  expect_hits_equal(result.ranked.hits, expected.top(10), "mmap");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swdual::align
