// Unit/property tests for the banded heuristic kernel.
#include <gtest/gtest.h>

#include "align/banded.h"
#include "align/scalar.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& c : out) c = static_cast<std::uint8_t>(rng.below(20));
  return out;
}

TEST(Banded, FullWidthBandMatchesOracle) {
  ScoringScheme scheme;
  Rng rng(31);
  for (int rep = 0; rep < 10; ++rep) {
    const auto q = random_codes(rng, static_cast<std::size_t>(rng.between(5, 80)));
    const auto d = random_codes(rng, static_cast<std::size_t>(rng.between(5, 80)));
    // Band wider than the matrix == exact.
    const auto r = banded_gotoh_score(q, d, scheme, q.size() + d.size());
    EXPECT_EQ(r.score, gotoh_score(q, d, scheme).score) << "rep " << rep;
  }
}

TEST(Banded, NeverExceedsExactScore) {
  ScoringScheme scheme;
  Rng rng(32);
  for (int rep = 0; rep < 20; ++rep) {
    const auto q = random_codes(rng, 60);
    const auto d = random_codes(rng, 90);
    const int exact = gotoh_score(q, d, scheme).score;
    for (std::size_t band : {2u, 5u, 10u, 25u}) {
      EXPECT_LE(banded_gotoh_score(q, d, scheme, band).score, exact)
          << "rep " << rep << " band " << band;
    }
  }
}

TEST(Banded, FindsDiagonalHomology) {
  // Two near-identical sequences: the optimum hugs the diagonal, so even a
  // narrow band recovers the exact score.
  ScoringScheme scheme;
  Rng rng(33);
  auto q = random_codes(rng, 200);
  auto d = q;
  for (std::size_t i = 0; i < d.size(); i += 23) {
    d[i] = static_cast<std::uint8_t>(rng.below(20));  // sprinkle mutations
  }
  const int exact = gotoh_score(q, d, scheme).score;
  EXPECT_EQ(banded_gotoh_score(q, d, scheme, 8).score, exact);
}

TEST(Banded, CountsOnlyBandCells) {
  ScoringScheme scheme;
  Rng rng(34);
  const auto q = random_codes(rng, 100);
  const auto d = random_codes(rng, 100);
  const auto narrow = banded_gotoh_score(q, d, scheme, 5);
  const auto full = banded_gotoh_score(q, d, scheme, 200);
  EXPECT_LT(narrow.cells, full.cells);
  EXPECT_LE(narrow.cells, 100u * 11u);  // per row at most 2*band+1 cells
}

TEST(Banded, RejectsZeroBand) {
  ScoringScheme scheme;
  Rng rng(35);
  const auto q = random_codes(rng, 10);
  EXPECT_THROW(banded_gotoh_score(q, q, scheme, 0), InvalidArgument);
}

TEST(Banded, EmptyInputsScoreZero) {
  ScoringScheme scheme;
  const auto r = banded_gotoh_score({}, {}, scheme, 4);
  EXPECT_EQ(r.score, 0);
  EXPECT_TRUE(r.exact) << "empty matrix is trivially covered";
  EXPECT_FALSE(r.edge_hit);
  Rng rng(36);
  const auto q = random_codes(rng, 12);
  EXPECT_EQ(banded_gotoh_score(q, {}, scheme, 4).score, 0);
  EXPECT_EQ(banded_gotoh_score({}, q, scheme, 4).score, 0);
  EXPECT_TRUE(banded_gotoh_score(q, {}, scheme, 4).exact);
  EXPECT_TRUE(banded_gotoh_score({}, q, scheme, 4).exact);
}

/// Ground-truth banded DP: full m×n matrices with an explicit in-band
/// predicate, no sliding-window state to get wrong. Out-of-band cells hold
/// H = 0 and E = F = −inf, exactly the semantics banded.cpp documents.
BandedResult reference_banded(std::span<const std::uint8_t> q,
                              std::span<const std::uint8_t> d,
                              const ScoringScheme& scheme, std::size_t band) {
  const std::size_t m = q.size();
  const std::size_t n = d.size();
  BandedResult out;
  out.exact = banded_covers_all(m, n, band);
  if (m == 0 || n == 0) return out;
  const ScoreMatrix& matrix = *scheme.matrix;
  const int gs = scheme.gap.open;
  const int ge = scheme.gap.extend;
  constexpr int kNegInf = -(1 << 28);
  const auto in_band = [&](std::size_t i, std::size_t j) {
    const std::size_t c = i * n / m;
    return j + band >= c && j <= c + band;
  };
  std::vector<std::vector<int>> H(m + 1, std::vector<int>(n + 1, 0));
  std::vector<std::vector<int>> E(m + 1, std::vector<int>(n + 1, kNegInf));
  std::vector<std::vector<int>> F(m + 1, std::vector<int>(n + 1, kNegInf));
  int edge_best = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    const std::size_t c = i * n / m;
    for (std::size_t j = 1; j <= n; ++j) {
      if (!in_band(i, j)) continue;
      out.cells++;
      E[i][j] = std::max(E[i][j - 1] - ge, H[i][j - 1] - gs - ge);
      F[i][j] = std::max(F[i - 1][j] - ge, H[i - 1][j] - gs - ge);
      const int s = matrix.row(q[i - 1])[d[j - 1]];
      const int h = std::max({H[i - 1][j - 1] + s, E[i][j], F[i][j], 0});
      H[i][j] = h;
      if (h > out.score) {
        out.score = h;
        out.end_query = i;
        out.end_db = j;
      }
      const bool left_edge = c > band && j == c - band && j >= 2;
      const bool right_edge = j == c + band && j <= n - 1;
      if ((left_edge || right_edge) && h > edge_best) edge_best = h;
    }
  }
  out.edge_hit = out.score > 0 && edge_best == out.score;
  return out;
}

TEST(Banded, ExtremeGeometriesMatchReference) {
  // Satellite hardening battery: very ragged length ratios slide the window
  // by many columns per row (the former double-slope center and the old
  // one-cell stale invalidation both broke here), band ≥ n degenerates to
  // full-width, and m ≫ n parks the center at the right edge for most rows.
  ScoringScheme scheme;
  Rng rng(0x9e0);
  const std::size_t dims[][2] = {{1, 1},    {1, 500},  {500, 1},  {3, 1000},
                                 {1000, 3}, {7, 311},  {311, 7},  {64, 64},
                                 {129, 40}, {40, 129}, {2, 2},    {97, 997}};
  for (const auto& dim : dims) {
    const auto q = random_codes(rng, dim[0]);
    const auto d = random_codes(rng, dim[1]);
    for (std::size_t band : {1u, 2u, 5u, 37u, 1024u}) {
      const auto got = banded_gotoh_score(q, d, scheme, band);
      const auto want = reference_banded(q, d, scheme, band);
      ASSERT_EQ(got.score, want.score)
          << dim[0] << "x" << dim[1] << " band " << band;
      ASSERT_EQ(got.cells, want.cells)
          << dim[0] << "x" << dim[1] << " band " << band;
      ASSERT_EQ(got.edge_hit, want.edge_hit)
          << dim[0] << "x" << dim[1] << " band " << band;
      ASSERT_EQ(got.exact, want.exact);
    }
  }
}

TEST(Banded, ExactCertificateIsSound) {
  // Whenever `exact` is set the banded score must equal the full Gotoh
  // oracle — across shapes chosen so covers-all flips both ways.
  ScoringScheme scheme;
  Rng rng(0xce57);
  for (int rep = 0; rep < 40; ++rep) {
    const auto q = random_codes(rng, static_cast<std::size_t>(rng.between(1, 60)));
    const auto d = random_codes(rng, static_cast<std::size_t>(rng.between(1, 60)));
    for (std::size_t band : {1u, 4u, 16u, 64u, 128u}) {
      const auto r = banded_gotoh_score(q, d, scheme, band);
      if (r.exact) {
        EXPECT_EQ(r.score, gotoh_score(q, d, scheme).score)
            << q.size() << "x" << d.size() << " band " << band;
        EXPECT_FALSE(r.edge_hit)
            << "a covering band has no genuine boundary cells";
      }
    }
  }
}

TEST(Banded, CoversAllMatchesCellCount) {
  // covers_all must agree with the DP itself: true iff the banded scan
  // touches every one of the m·n cells.
  ScoringScheme scheme;
  Rng rng(0xca11);
  for (int rep = 0; rep < 30; ++rep) {
    const std::size_t m = static_cast<std::size_t>(rng.between(1, 40));
    const std::size_t n = static_cast<std::size_t>(rng.between(1, 40));
    const auto q = random_codes(rng, m);
    const auto d = random_codes(rng, n);
    for (std::size_t band : {1u, 3u, 10u, 50u}) {
      const auto r = banded_gotoh_score(q, d, scheme, band);
      EXPECT_EQ(banded_covers_all(m, n, band), r.cells == m * n)
          << m << "x" << n << " band " << band;
    }
  }
}

TEST(Banded, EdgeHitFlagsNarrowBandOnClippedHomology) {
  // A W-polymer block in the top-left corner of a 100×200 matrix: with n =
  // 2m the band's center line moves two columns per row, so any match
  // diagonal through the block keeps drifting towards the left band edge
  // and the best clipped path provably ends ON the boundary — the
  // uncertainty flag must fire. A generous band recovers the exact score
  // and clears it.
  ScoringScheme scheme;
  Rng rng(0xed9e);
  std::vector<std::uint8_t> q(40, 17);  // 'W' scores 11 vs itself
  auto q_tail = random_codes(rng, 60);
  q.insert(q.end(), q_tail.begin(), q_tail.end());
  std::vector<std::uint8_t> d(40, 17);
  auto d_tail = random_codes(rng, 160);
  d.insert(d.end(), d_tail.begin(), d_tail.end());
  const auto narrow = banded_gotoh_score(q, d, scheme, 4);
  const auto wide = banded_gotoh_score(q, d, scheme, 400);
  EXPECT_LT(narrow.score, wide.score);
  EXPECT_TRUE(narrow.edge_hit) << "clipped optimum must look uncertain";
  EXPECT_EQ(wide.score, gotoh_score(q, d, scheme).score);
}

}  // namespace
}  // namespace swdual::align
