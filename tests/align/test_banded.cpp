// Unit/property tests for the banded heuristic kernel.
#include <gtest/gtest.h>

#include "align/banded.h"
#include "align/scalar.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& c : out) c = static_cast<std::uint8_t>(rng.below(20));
  return out;
}

TEST(Banded, FullWidthBandMatchesOracle) {
  ScoringScheme scheme;
  Rng rng(31);
  for (int rep = 0; rep < 10; ++rep) {
    const auto q = random_codes(rng, static_cast<std::size_t>(rng.between(5, 80)));
    const auto d = random_codes(rng, static_cast<std::size_t>(rng.between(5, 80)));
    // Band wider than the matrix == exact.
    const auto r = banded_gotoh_score(q, d, scheme, q.size() + d.size());
    EXPECT_EQ(r.score, gotoh_score(q, d, scheme).score) << "rep " << rep;
  }
}

TEST(Banded, NeverExceedsExactScore) {
  ScoringScheme scheme;
  Rng rng(32);
  for (int rep = 0; rep < 20; ++rep) {
    const auto q = random_codes(rng, 60);
    const auto d = random_codes(rng, 90);
    const int exact = gotoh_score(q, d, scheme).score;
    for (std::size_t band : {2u, 5u, 10u, 25u}) {
      EXPECT_LE(banded_gotoh_score(q, d, scheme, band).score, exact)
          << "rep " << rep << " band " << band;
    }
  }
}

TEST(Banded, FindsDiagonalHomology) {
  // Two near-identical sequences: the optimum hugs the diagonal, so even a
  // narrow band recovers the exact score.
  ScoringScheme scheme;
  Rng rng(33);
  auto q = random_codes(rng, 200);
  auto d = q;
  for (std::size_t i = 0; i < d.size(); i += 23) {
    d[i] = static_cast<std::uint8_t>(rng.below(20));  // sprinkle mutations
  }
  const int exact = gotoh_score(q, d, scheme).score;
  EXPECT_EQ(banded_gotoh_score(q, d, scheme, 8).score, exact);
}

TEST(Banded, CountsOnlyBandCells) {
  ScoringScheme scheme;
  Rng rng(34);
  const auto q = random_codes(rng, 100);
  const auto d = random_codes(rng, 100);
  const auto narrow = banded_gotoh_score(q, d, scheme, 5);
  const auto full = banded_gotoh_score(q, d, scheme, 200);
  EXPECT_LT(narrow.cells, full.cells);
  EXPECT_LE(narrow.cells, 100u * 11u);  // per row at most 2*band+1 cells
}

TEST(Banded, RejectsZeroBand) {
  ScoringScheme scheme;
  Rng rng(35);
  const auto q = random_codes(rng, 10);
  EXPECT_THROW(banded_gotoh_score(q, q, scheme, 0), InvalidArgument);
}

TEST(Banded, EmptyInputsScoreZero) {
  ScoringScheme scheme;
  EXPECT_EQ(banded_gotoh_score({}, {}, scheme, 4).score, 0);
}

}  // namespace
}  // namespace swdual::align
