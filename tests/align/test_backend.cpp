// Units for the runtime SIMD backend layer: names, parsing, lane counts,
// availability invariants, the SWDUAL_FORCE_BACKEND override, and the
// per-backend kernel tables.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "align/backend.h"
#include "util/error.h"

namespace swdual::align {
namespace {

/// Saves an environment variable on construction and restores it on
/// destruction, so tests can freely re-point the selection overrides.
class ScopedEnvVar {
 public:
  explicit ScopedEnvVar(const char* name) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
  }
  ~ScopedEnvVar() {
    if (saved_.empty()) {
      ::unsetenv(name_);
    } else {
      ::setenv(name_, saved_.c_str(), 1);
    }
  }
  void set(const std::string& value) { ::setenv(name_, value.c_str(), 1); }
  void clear() { ::unsetenv(name_); }

 private:
  const char* name_;
  std::string saved_;
};

class ScopedForceBackend : public ScopedEnvVar {
 public:
  ScopedForceBackend() : ScopedEnvVar("SWDUAL_FORCE_BACKEND") {}
};

class ScopedDisableAvx512 : public ScopedEnvVar {
 public:
  ScopedDisableAvx512() : ScopedEnvVar("SWDUAL_DISABLE_AVX512") {}
};

/// The widest available backend excluding kAVX512 (what auto selection must
/// pick when the 512-bit tier is disabled).
Backend widest_non_avx512() {
  Backend widest = Backend::kScalar;
  for (Backend b : available_backends()) {
    if (b != Backend::kAVX512) widest = b;
  }
  return widest;
}

TEST(Backend, NamesRoundTripThroughParse) {
  for (Backend b : {Backend::kAuto, Backend::kScalar, Backend::kSSE2,
                    Backend::kAVX2, Backend::kAVX512}) {
    Backend parsed = Backend::kAuto;
    ASSERT_TRUE(parse_backend(backend_name(b), parsed)) << backend_name(b);
    EXPECT_EQ(parsed, b);
  }
}

TEST(Backend, ParseRejectsUnknownNamesUntouched) {
  Backend out = Backend::kSSE2;
  EXPECT_FALSE(parse_backend("", out));
  EXPECT_FALSE(parse_backend("AVX2", out));  // case-sensitive, like the CLI
  EXPECT_FALSE(parse_backend("neon", out));
  EXPECT_EQ(out, Backend::kSSE2);
}

TEST(Backend, LaneCountsMatchVectorWidths) {
  EXPECT_EQ(backend_lanes8(Backend::kScalar), 16u);
  EXPECT_EQ(backend_lanes8(Backend::kSSE2), 16u);
  EXPECT_EQ(backend_lanes8(Backend::kAVX2), 32u);
  EXPECT_EQ(backend_lanes8(Backend::kAVX512), 64u);
  EXPECT_EQ(backend_lanes16(Backend::kScalar), 8u);
  EXPECT_EQ(backend_lanes16(Backend::kSSE2), 8u);
  EXPECT_EQ(backend_lanes16(Backend::kAVX2), 16u);
  EXPECT_EQ(backend_lanes16(Backend::kAVX512), 32u);
  // The u8 tier always packs twice as many lanes as the i16 tier.
  for (Backend b : available_backends()) {
    EXPECT_EQ(backend_lanes8(b), 2 * backend_lanes16(b)) << backend_name(b);
  }
}

TEST(Backend, ScalarIsAlwaysCompiledAndAvailable) {
  EXPECT_TRUE(backend_compiled(Backend::kScalar));
  EXPECT_TRUE(backend_available(Backend::kScalar));
  EXPECT_FALSE(backend_compiled(Backend::kAuto));
}

TEST(Backend, AvailableImpliesCompiled) {
  for (Backend b : {Backend::kScalar, Backend::kSSE2, Backend::kAVX2,
                    Backend::kAVX512}) {
    if (backend_available(b)) {
      EXPECT_TRUE(backend_compiled(b)) << backend_name(b);
    }
  }
}

TEST(Backend, AvailableBackendsIsNarrowestFirstAndContainsScalar) {
  const std::vector<Backend> avail = available_backends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), Backend::kScalar);
  for (std::size_t i = 1; i < avail.size(); ++i) {
    EXPECT_LE(backend_lanes8(avail[i - 1]), backend_lanes8(avail[i]));
  }
}

TEST(Backend, BestBackendIsTheWidestAvailable) {
  ScopedForceBackend env;
  ScopedDisableAvx512 disable;
  env.clear();
  disable.clear();
  const std::vector<Backend> avail = available_backends();
  EXPECT_EQ(best_backend(), avail.back());
}

TEST(Backend, DisableAvx512RemovesItFromAutoSelection) {
  ScopedForceBackend env;
  ScopedDisableAvx512 disable;
  env.clear();
  disable.set("1");
  EXPECT_EQ(best_backend(), widest_non_avx512());
  for (KernelKind kernel : {KernelKind::kStriped8, KernelKind::kStriped,
                            KernelKind::kInterSeq}) {
    EXPECT_NE(best_backend(kernel), Backend::kAVX512) << kernel_name(kernel);
  }
  // kAuto resolution flows through the same gate.
  EXPECT_EQ(resolve_backend(Backend::kAuto), widest_non_avx512());
}

TEST(Backend, DisableAvx512ZeroMeansEnabled) {
  ScopedForceBackend env;
  ScopedDisableAvx512 disable;
  env.clear();
  disable.set("0");
  EXPECT_EQ(best_backend(), available_backends().back());
}

TEST(Backend, DisableAvx512LeavesExplicitRequestsAlone) {
  // The env var opts *auto* selection out of the 512-bit tier; code that
  // explicitly names kAVX512 made a deliberate choice and keeps it.
  if (!backend_available(Backend::kAVX512)) {
    GTEST_SKIP() << "avx512 not available on this host";
  }
  ScopedForceBackend env;
  ScopedDisableAvx512 disable;
  env.clear();
  disable.set("1");
  EXPECT_EQ(resolve_backend(Backend::kAVX512), Backend::kAVX512);
}

TEST(Backend, DisableAvx512ContradictsForcedAvx512) {
  if (!backend_available(Backend::kAVX512)) {
    GTEST_SKIP() << "avx512 not available on this host";
  }
  ScopedForceBackend env;
  ScopedDisableAvx512 disable;
  env.set("avx512");
  disable.set("1");
  EXPECT_THROW(best_backend(), InvalidArgument);
  EXPECT_THROW(best_backend(KernelKind::kInterSeq), InvalidArgument);
}

TEST(Backend, KernelAwareBestGatesStriped8OffAvx512) {
  ScopedForceBackend env;
  ScopedDisableAvx512 disable;
  env.clear();
  disable.clear();
  if (best_backend() != Backend::kAVX512) {
    GTEST_SKIP() << "widest backend is not avx512; the gate is invisible";
  }
  // The striped8 kernel measured slower on 512-bit vectors (see DESIGN.md,
  // "AVX-512 striped8 regression"), so auto selection steps it down to
  // AVX2 while the 16-bit kernels keep the full width.
  ASSERT_TRUE(backend_available(Backend::kAVX2));
  EXPECT_EQ(best_backend(KernelKind::kStriped8), Backend::kAVX2);
  EXPECT_EQ(best_backend(KernelKind::kStriped), Backend::kAVX512);
  EXPECT_EQ(best_backend(KernelKind::kInterSeq), Backend::kAVX512);
  EXPECT_EQ(resolve_backend(Backend::kAuto, KernelKind::kStriped8),
            Backend::kAVX2);
}

TEST(Backend, ForcedBackendOverridesKernelGate) {
  if (!backend_available(Backend::kAVX512)) {
    GTEST_SKIP() << "avx512 not available on this host";
  }
  ScopedForceBackend env;
  ScopedDisableAvx512 disable;
  disable.clear();
  env.set("avx512");
  EXPECT_EQ(best_backend(KernelKind::kStriped8), Backend::kAVX512);
}

TEST(Backend, ResolveWithKernelHonorsExplicitBackend) {
  ScopedForceBackend env;
  ScopedDisableAvx512 disable;
  env.clear();
  disable.clear();
  for (Backend b : available_backends()) {
    EXPECT_EQ(resolve_backend(b, KernelKind::kStriped8), b) << backend_name(b);
  }
}

TEST(Backend, ForceEnvSelectsEachAvailableBackend) {
  ScopedForceBackend env;
  for (Backend b : available_backends()) {
    env.set(backend_name(b));
    EXPECT_EQ(best_backend(), b) << backend_name(b);
    // kAuto resolves through the override too.
    EXPECT_EQ(resolve_backend(Backend::kAuto), b);
  }
}

TEST(Backend, ForceEnvRejectsUnknownName) {
  ScopedForceBackend env;
  env.set("neon");
  EXPECT_THROW(best_backend(), InvalidArgument);
}

TEST(Backend, ForceEnvRejectsUnavailableBackend) {
  ScopedForceBackend env;
  bool found_unavailable = false;
  for (Backend b : {Backend::kSSE2, Backend::kAVX2, Backend::kAVX512}) {
    if (backend_available(b)) continue;
    found_unavailable = true;
    env.set(backend_name(b));
    EXPECT_THROW(best_backend(), InvalidArgument) << backend_name(b);
  }
  if (!found_unavailable) {
    GTEST_SKIP() << "every compiled backend is available on this host";
  }
}

TEST(Backend, ForceEnvAutoAndEmptyFallThroughToWidest) {
  ScopedForceBackend env;
  const std::vector<Backend> avail = available_backends();
  env.set("auto");
  EXPECT_EQ(best_backend(), avail.back());
  env.set("");
  EXPECT_EQ(best_backend(), avail.back());
}

TEST(Backend, ResolveValidatesAvailability) {
  ScopedForceBackend env;
  env.clear();
  for (Backend b : available_backends()) {
    EXPECT_EQ(resolve_backend(b), b);
  }
  for (Backend b : {Backend::kSSE2, Backend::kAVX2, Backend::kAVX512}) {
    if (!backend_available(b)) {
      EXPECT_THROW(resolve_backend(b), InvalidArgument) << backend_name(b);
    }
  }
}

TEST(Backend, KernelTableIsCompleteForEveryAvailableBackend) {
  for (Backend b : available_backends()) {
    const KernelTable& table = kernel_table(b);
    EXPECT_NE(table.striped8, nullptr) << backend_name(b);
    EXPECT_NE(table.striped, nullptr) << backend_name(b);
    EXPECT_NE(table.interseq, nullptr) << backend_name(b);
  }
}

TEST(Backend, KernelTablesAreDistinctPerBackend) {
  const std::vector<Backend> avail = available_backends();
  for (std::size_t i = 0; i < avail.size(); ++i) {
    for (std::size_t j = i + 1; j < avail.size(); ++j) {
      EXPECT_NE(&kernel_table(avail[i]), &kernel_table(avail[j]))
          << backend_name(avail[i]) << " vs " << backend_name(avail[j]);
    }
  }
}

}  // namespace
}  // namespace swdual::align
