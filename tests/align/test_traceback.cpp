// Unit tests for full-traceback alignments, including the paper's Fig. 1
// worked example.
#include <gtest/gtest.h>

#include "align/scalar.h"
#include "align/traceback.h"
#include "seq/sequence.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

using seq::Alphabet;
using seq::AlphabetKind;

std::vector<std::uint8_t> dna(const std::string& text) {
  return Alphabet::dna().encode(text);
}
std::vector<std::uint8_t> protein(const std::string& text) {
  return Alphabet::protein().encode(text);
}

TEST(NwLinear, ReproducesFigure1) {
  // Fig. 1: ACTTGTCCG vs ATTGTCAG with ma=+1, mi=-1, g=-2 scores 4, with
  // alignment  A C T T G T C C G
  //            A - T T G T C A G
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 1, -1);
  const Alignment a = nw_align_linear(dna("ACTTGTCCG"), dna("ATTGTCAG"), m, -2);
  EXPECT_EQ(a.score, 4);
  // Co-optimal alignments exist; whatever the traceback picks, removing the
  // gaps must reproduce the inputs and the columns must re-score to 4.
  std::string q_nogap, d_nogap;
  int recomputed = 0;
  for (std::size_t c = 0; c < a.length(); ++c) {
    const char qc = a.aligned_query[c], dc = a.aligned_db[c];
    if (qc != '-') q_nogap += qc;
    if (dc != '-') d_nogap += dc;
    recomputed += (qc == '-' || dc == '-') ? -2 : (qc == dc ? 1 : -1);
  }
  EXPECT_EQ(q_nogap, "ACTTGTCCG");
  EXPECT_EQ(d_nogap, "ATTGTCAG");
  EXPECT_EQ(recomputed, 4);
}

TEST(NwLinear, ScoreConsistentWithColumns) {
  // Recomputing the score from the alignment columns must reproduce it.
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 1, -1);
  const int g = -2;
  const Alignment a = nw_align_linear(dna("GATTACA"), dna("GCATGCA"), m, g);
  int recomputed = 0;
  for (std::size_t c = 0; c < a.length(); ++c) {
    const char q = a.aligned_query[c];
    const char d = a.aligned_db[c];
    if (q == '-' || d == '-') {
      recomputed += g;
    } else {
      recomputed += (q == d) ? 1 : -1;
    }
  }
  EXPECT_EQ(recomputed, a.score);
}

TEST(NwLinear, EmptyVsNonEmptyIsAllGaps) {
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 1, -1);
  const Alignment a = nw_align_linear({}, dna("ACGT"), m, -2);
  EXPECT_EQ(a.aligned_query, "----");
  EXPECT_EQ(a.aligned_db, "ACGT");
  EXPECT_EQ(a.score, -8);
}

TEST(NwAffine, PerfectMatchSumsDiagonal) {
  ScoringScheme scheme;
  const auto q = protein("MKVLAWERT");
  const Alignment a = nw_align_affine(q, q, scheme);
  int expected = 0;
  for (std::uint8_t code : q) expected += scheme.matrix->score(code, code);
  EXPECT_EQ(a.score, expected);
  EXPECT_EQ(a.aligned_query, a.aligned_db);
  EXPECT_EQ(a.gaps(), 0u);
}

TEST(NwAffine, LeadingAndTrailingGapsCharged) {
  // Empty query vs db of length 4: one gap run of 4 → -(Gs + 4·Ge).
  ScoringScheme scheme;  // Gs=10, Ge=2
  const Alignment a = nw_align_affine({}, protein("ARND"), scheme);
  EXPECT_EQ(a.score, -(10 + 4 * 2));
  EXPECT_EQ(a.aligned_query, "----");
}

TEST(NwAffine, ColumnsReproduceScoreOnRandomPairs) {
  ScoringScheme scheme;
  const Alphabet& alpha = Alphabet::protein();
  Rng rng(991);
  for (int rep = 0; rep < 25; ++rep) {
    std::vector<std::uint8_t> q(static_cast<std::size_t>(rng.between(1, 60)));
    std::vector<std::uint8_t> d(static_cast<std::size_t>(rng.between(1, 60)));
    for (auto& c : q) c = static_cast<std::uint8_t>(rng.below(20));
    for (auto& c : d) c = static_cast<std::uint8_t>(rng.below(20));
    const Alignment a = nw_align_affine(q, d, scheme);
    int recomputed = 0;
    bool in_gap_q = false, in_gap_d = false;
    for (std::size_t c = 0; c < a.length(); ++c) {
      const char qc = a.aligned_query[c];
      const char dc = a.aligned_db[c];
      if (qc == '-') {
        recomputed -= scheme.gap.extend + (in_gap_q ? 0 : scheme.gap.open);
        in_gap_q = true;
        in_gap_d = false;
      } else if (dc == '-') {
        recomputed -= scheme.gap.extend + (in_gap_d ? 0 : scheme.gap.open);
        in_gap_d = true;
        in_gap_q = false;
      } else {
        recomputed += scheme.matrix->score(alpha.encode(qc), alpha.encode(dc));
        in_gap_q = in_gap_d = false;
      }
    }
    ASSERT_EQ(recomputed, a.score) << "rep " << rep;
    // Gap-stripped strings reproduce the inputs (global alignment).
    std::string q_nogap, d_nogap;
    for (char ch : a.aligned_query) {
      if (ch != '-') q_nogap += ch;
    }
    for (char ch : a.aligned_db) {
      if (ch != '-') d_nogap += ch;
    }
    EXPECT_EQ(q_nogap, alpha.decode(q));
    EXPECT_EQ(d_nogap, alpha.decode(d));
  }
}

TEST(NwAffine, GlobalScoreNeverAboveLocal) {
  // A local alignment may skip bad flanks; global must pay for them.
  ScoringScheme scheme;
  Rng rng(997);
  for (int rep = 0; rep < 15; ++rep) {
    std::vector<std::uint8_t> q(30), d(50);
    for (auto& c : q) c = static_cast<std::uint8_t>(rng.below(20));
    for (auto& c : d) c = static_cast<std::uint8_t>(rng.below(20));
    EXPECT_LE(nw_align_affine(q, d, scheme).score,
              gotoh_score(q, d, scheme).score);
  }
}

TEST(SwAffine, ScoreAgreesWithScoreOnlyOracle) {
  ScoringScheme scheme;
  Rng rng(1234);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<std::uint8_t> q(static_cast<std::size_t>(rng.between(1, 80)));
    std::vector<std::uint8_t> d(static_cast<std::size_t>(rng.between(1, 80)));
    for (auto& c : q) c = static_cast<std::uint8_t>(rng.below(20));
    for (auto& c : d) c = static_cast<std::uint8_t>(rng.below(20));
    const Alignment a = sw_align_affine(q, d, scheme);
    EXPECT_EQ(a.score, gotoh_score(q, d, scheme).score) << "rep " << rep;
  }
}

TEST(SwAffine, AlignmentColumnsReproduceScore) {
  ScoringScheme scheme;
  const Alphabet& alpha = Alphabet::protein();
  Rng rng(77);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<std::uint8_t> q(static_cast<std::size_t>(rng.between(5, 60)));
    std::vector<std::uint8_t> d(static_cast<std::size_t>(rng.between(5, 60)));
    for (auto& c : q) c = static_cast<std::uint8_t>(rng.below(20));
    for (auto& c : d) c = static_cast<std::uint8_t>(rng.below(20));
    const Alignment a = sw_align_affine(q, d, scheme);
    // Recompute: substitution scores for residue columns; affine charges for
    // each maximal gap run.
    int recomputed = 0;
    bool in_gap_q = false, in_gap_d = false;
    for (std::size_t c = 0; c < a.length(); ++c) {
      const char qc = a.aligned_query[c];
      const char dc = a.aligned_db[c];
      if (qc == '-') {
        recomputed -= scheme.gap.extend + (in_gap_q ? 0 : scheme.gap.open);
        in_gap_q = true;
        in_gap_d = false;
      } else if (dc == '-') {
        recomputed -= scheme.gap.extend + (in_gap_d ? 0 : scheme.gap.open);
        in_gap_d = true;
        in_gap_q = false;
      } else {
        recomputed +=
            scheme.matrix->score(alpha.encode(qc), alpha.encode(dc));
        in_gap_q = in_gap_d = false;
      }
    }
    EXPECT_EQ(recomputed, a.score) << "rep " << rep;
  }
}

TEST(SwAffine, LocalCoordinatesDelimitTheRegion) {
  ScoringScheme scheme;
  const auto q = protein("WWWWW");
  const auto d = protein("AAAWWWWWAAA");
  const Alignment a = sw_align_affine(q, d, scheme);
  EXPECT_EQ(a.query_begin, 1u);
  EXPECT_EQ(a.query_end, 5u);
  EXPECT_EQ(a.db_begin, 4u);
  EXPECT_EQ(a.db_end, 8u);
  EXPECT_EQ(a.aligned_query, "WWWWW");
  EXPECT_EQ(a.aligned_db, "WWWWW");
}

TEST(SwAffine, AllMismatchGivesEmptyAlignment) {
  const ScoreMatrix m = ScoreMatrix::uniform(AlphabetKind::kDna, 1, -2);
  ScoringScheme scheme{&m, {5, 2}};
  const Alignment a = sw_align_affine(dna("AAAA"), dna("TTTT"), scheme);
  EXPECT_EQ(a.score, 0);
  EXPECT_TRUE(a.aligned_query.empty());
}

TEST(AlignmentStats, CountsMatchesMismatchesGaps) {
  Alignment a;
  a.aligned_query = "AC-TG";
  a.aligned_db = "ACCTA";
  EXPECT_EQ(a.matches(), 3u);    // A, C, T
  EXPECT_EQ(a.mismatches(), 1u); // G vs A
  EXPECT_EQ(a.gaps(), 1u);
  EXPECT_DOUBLE_EQ(a.identity(), 60.0);
}

TEST(RenderAlignment, ShowsMidlineAndScore) {
  Alignment a;
  a.aligned_query = "ACTTGTCCG";
  a.aligned_db = "A-TTGTCAG";
  a.score = 4;
  const std::string text = render_alignment(a);
  EXPECT_NE(text.find("ACTTGTCCG"), std::string::npos);
  EXPECT_NE(text.find("A-TTGTCAG"), std::string::npos);
  EXPECT_NE(text.find("score = 4"), std::string::npos);
  EXPECT_NE(text.find("| |||||.|"), std::string::npos);
}

TEST(RenderAlignment, WrapsLongAlignments) {
  Alignment a;
  a.aligned_query = std::string(150, 'A');
  a.aligned_db = std::string(150, 'A');
  a.score = 600;
  const std::string text = render_alignment(a, 60);
  // 3 blocks of query/midline/db.
  std::size_t count = 0, pos = 0;
  while ((pos = text.find("query: ", pos)) != std::string::npos) {
    ++count;
    pos += 7;
  }
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace swdual::align
