// Property tests for the fine-grained wavefront kernel (Fig. 2): exactness
// against the scalar oracle for every tiling and pool size.
#include <gtest/gtest.h>

#include <tuple>

#include "align/scalar.h"
#include "align/wavefront.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& c : out) c = static_cast<std::uint8_t>(rng.below(20));
  return out;
}

class WavefrontTilings
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(WavefrontTilings, MatchesOracleOnRandomPairs) {
  const auto [row_chunk, col_blocks] = GetParam();
  ThreadPool pool(3);
  ScoringScheme scheme;
  Rng rng(row_chunk * 131 + col_blocks);
  for (int rep = 0; rep < 8; ++rep) {
    const auto q = random_codes(rng, 1 + rng.below(300));
    const auto d = random_codes(rng, 1 + rng.below(300));
    const ScoreResult oracle = gotoh_score(q, d, scheme);
    const ScoreResult wave = wavefront_gotoh_score(
        q, d, scheme, pool, {row_chunk, col_blocks});
    ASSERT_EQ(wave.score, oracle.score)
        << "chunk=" << row_chunk << " blocks=" << col_blocks
        << " rep=" << rep << " qlen=" << q.size() << " dlen=" << d.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tilings, WavefrontTilings,
    ::testing::Combine(::testing::Values(1u, 7u, 64u, 500u),
                       ::testing::Values(1u, 2u, 4u, 13u)));

TEST(Wavefront, BestCellCoordinatesMatchOracle) {
  ThreadPool pool(2);
  ScoringScheme scheme;
  Rng rng(5);
  const auto q = random_codes(rng, 120);
  auto d = q;  // self-alignment: unique maximum at the bottom-right
  const ScoreResult oracle = gotoh_score(q, d, scheme);
  const ScoreResult wave =
      wavefront_gotoh_score(q, d, scheme, pool, {16, 4});
  EXPECT_EQ(wave.score, oracle.score);
  EXPECT_EQ(wave.end_query, oracle.end_query);
  EXPECT_EQ(wave.end_db, oracle.end_db);
}

TEST(Wavefront, EmptyInputs) {
  ThreadPool pool(1);
  ScoringScheme scheme;
  EXPECT_EQ(wavefront_gotoh_score({}, {}, scheme, pool).score, 0);
}

TEST(Wavefront, MoreBlocksThanColumns) {
  ThreadPool pool(2);
  ScoringScheme scheme;
  Rng rng(6);
  const auto q = random_codes(rng, 40);
  const auto d = random_codes(rng, 3);  // 3 columns, 8 requested blocks
  EXPECT_EQ(wavefront_gotoh_score(q, d, scheme, pool, {8, 8}).score,
            gotoh_score(q, d, scheme).score);
}

TEST(Wavefront, InvalidConfigRejected) {
  ThreadPool pool(1);
  ScoringScheme scheme;
  const std::vector<std::uint8_t> q = {0};
  EXPECT_THROW(wavefront_gotoh_score(q, q, scheme, pool, {0, 1}),
               InvalidArgument);
  EXPECT_THROW(wavefront_gotoh_score(q, q, scheme, pool, {1, 0}),
               InvalidArgument);
}

TEST(Wavefront, CellsCounted) {
  ThreadPool pool(1);
  ScoringScheme scheme;
  Rng rng(7);
  const auto q = random_codes(rng, 50);
  const auto d = random_codes(rng, 70);
  EXPECT_EQ(wavefront_gotoh_score(q, d, scheme, pool).cells, 3500u);
}

}  // namespace
}  // namespace swdual::align
