// Two-stage filtered-search battery (ctest label: filter).
//
// Layer 1 — the vectorized banded screen kernel must be bit-identical to
// the scalar banded_gotoh_score on every backend, including the 8→16-bit
// escalation and overflow decisions. Layer 2 — the filter pipeline: mode
// `off` is bit-identical to the unfiltered search across kernels, backends
// and shard counts; heuristic mode reaches perfect recall on a
// homolog-planted corpus and near-perfect recall on random ones, measured
// against the exact top-k oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "align/backend.h"
#include "align/banded.h"
#include "align/kernel_banded.h"
#include "align/parallel_search.h"
#include "align/scalar.h"
#include "align/search.h"
#include "align/sharded_search.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& c : out) c = static_cast<std::uint8_t>(rng.below(20));
  return out;
}

struct Corpus {
  std::vector<std::uint8_t> query;
  std::vector<std::vector<std::uint8_t>> records;

  DbView view() const {
    DbView v;
    for (const auto& r : records) v.emplace_back(r.data(), r.size());
    return v;
  }
  SequenceViews seq_views() const {
    SequenceViews v;
    for (const auto& r : records) v.emplace_back(r.data(), r.size());
    return v;
  }
};

/// Random corpus with batching edge cases: an empty record, a 1-residue
/// record, a lane-multiple record, and one long outlier.
Corpus make_corpus(std::uint64_t seed, std::size_t n, std::size_t query_len,
                   std::size_t max_len) {
  Rng rng(seed);
  Corpus c;
  c.query = random_codes(rng, query_len);
  for (std::size_t i = 0; i < n; ++i) {
    c.records.push_back(random_codes(
        rng,
        static_cast<std::size_t>(rng.between(1, static_cast<int>(max_len)))));
  }
  if (n >= 4) {
    c.records[0] = {};
    c.records[1] = random_codes(rng, 1);
    c.records[2] = random_codes(rng, 64);
    c.records[3] = random_codes(rng, max_len + 700);
  }
  return c;
}

/// Homolog-planted corpus: mostly random records plus `planted` mutated
/// copies of the query — the top-k mass the filter must not lose.
Corpus make_planted(std::uint64_t seed, std::size_t n, std::size_t planted,
                    std::size_t query_len) {
  Rng rng(seed);
  Corpus c;
  c.query = random_codes(rng, query_len);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < planted) {
      auto h = c.query;
      for (std::size_t p = 0; p < h.size(); p += 17 + i % 5) {
        h[p] = static_cast<std::uint8_t>(rng.below(20));
      }
      c.records.push_back(std::move(h));
    } else {
      c.records.push_back(random_codes(
          rng, static_cast<std::size_t>(rng.between(40, 200))));
    }
  }
  return c;
}

class FilterBackends : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (const char* old = std::getenv("SWDUAL_FORCE_BACKEND")) saved_ = old;
    if (!backend_available(GetParam())) {
      GTEST_SKIP() << backend_name(GetParam())
                   << " backend not available on this host";
    }
  }
  void TearDown() override {
    if (saved_.empty()) {
      ::unsetenv("SWDUAL_FORCE_BACKEND");
    } else {
      ::setenv("SWDUAL_FORCE_BACKEND", saved_.c_str(), 1);
    }
  }
  static void force(Backend backend) {
    ::setenv("SWDUAL_FORCE_BACKEND", backend_name(backend), 1);
  }

 private:
  std::string saved_;
};

TEST_P(FilterBackends, ScreenKernelMatchesScalarBanded) {
  const ScoringScheme scheme;
  for (std::uint64_t seed : {0xabcdULL, 0x1234ULL}) {
    const Corpus corpus = make_corpus(seed, 53, 150, 300);
    const SequenceViews views = corpus.seq_views();
    for (std::size_t band : {1u, 8u, 32u, 512u}) {
      force(GetParam());
      const BandedBatchResult got =
          banded_screen(corpus.query, views, scheme, band);
      ASSERT_EQ(got.scores.size(), views.size());
      std::uint64_t want_cells = 0;
      for (std::size_t i = 0; i < views.size(); ++i) {
        const BandedResult want =
            banded_gotoh_score(corpus.query, views[i], scheme, band);
        ASSERT_FALSE(got.overflow[i]) << "no overflow expected at these sizes";
        ASSERT_EQ(got.scores[i], want.score)
            << "record " << i << " band " << band << " len "
            << views[i].size();
        ASSERT_EQ(got.edge_hit[i], want.edge_hit)
            << "record " << i << " band " << band;
        want_cells += want.cells;
      }
      ASSERT_EQ(got.cells, want_cells)
          << "padding or masked rows billed as cells, band " << band;
    }
  }
}

TEST_P(FilterBackends, ScreenMatchesScalarBackendBitwise) {
  const ScoringScheme scheme;
  const Corpus corpus = make_corpus(0xbeefULL, 70, 180, 400);
  const SequenceViews views = corpus.seq_views();
  for (std::size_t band : {4u, 24u}) {
    force(Backend::kScalar);
    const BandedBatchResult ref =
        banded_screen(corpus.query, views, scheme, band);
    force(GetParam());
    const BandedBatchResult got =
        banded_screen(corpus.query, views, scheme, band);
    ASSERT_EQ(got.scores, ref.scores) << "band " << band;
    ASSERT_EQ(got.overflow, ref.overflow) << "band " << band;
    ASSERT_EQ(got.edge_hit, ref.edge_hit) << "band " << band;
    ASSERT_EQ(got.cells, ref.cells) << "band " << band;
  }
}

TEST_P(FilterBackends, ScreenEscalatesAndFlagsOverflowLikeScalar) {
  // Poly-tryptophan homologs saturate the byte tier (11/residue); the
  // longest one saturates even 16 bits and must come back overflow-flagged.
  const ScoringScheme scheme;
  Rng rng(0xf10a);
  std::vector<std::uint8_t> query(3200, 17);
  std::vector<std::vector<std::uint8_t>> records;
  records.push_back(std::vector<std::uint8_t>(3100, 17));  // 16-bit overflow
  records.push_back(std::vector<std::uint8_t>(40, 17));    // u8-escalated
  records.push_back(std::vector<std::uint8_t>(400, 17));   // u8-escalated
  for (int i = 0; i < 13; ++i) records.push_back(random_codes(rng, 120));
  SequenceViews views;
  for (const auto& r : records) views.emplace_back(r.data(), r.size());
  for (std::size_t band : {6u, 64u}) {
    force(GetParam());
    const BandedBatchResult got = banded_screen(query, views, scheme, band);
    EXPECT_TRUE(got.overflow[0]) << "band " << band;
    for (std::size_t i = 1; i < views.size(); ++i) {
      const BandedResult want =
          banded_gotoh_score(query, views[i], scheme, band);
      ASSERT_FALSE(got.overflow[i]) << "record " << i << " band " << band;
      ASSERT_EQ(got.scores[i], want.score)
          << "record " << i << " band " << band;
      ASSERT_EQ(got.edge_hit[i], want.edge_hit)
          << "record " << i << " band " << band;
    }
  }
}

// --- Layer 2: the filter pipeline ----------------------------------------

void expect_same_hits(const std::vector<SearchHit>& got,
                      const std::vector<SearchHit>& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].db_index, want[i].db_index) << what << " hit " << i;
    EXPECT_EQ(got[i].score, want[i].score) << what << " hit " << i;
  }
}

/// Recall of `got` against the exact top-k `want`: a hit counts as recalled
/// when its record is present, or when a same-scored record is (tied ranks
/// are interchangeable under the ranking's db-order tiebreak).
double recall_against(const std::vector<SearchHit>& got,
                      const std::vector<SearchHit>& want) {
  if (want.empty()) return 1.0;
  std::size_t found = 0;
  for (const SearchHit& w : want) {
    for (const SearchHit& g : got) {
      if (g.db_index == w.db_index || g.score == w.score) {
        ++found;
        break;
      }
    }
  }
  return static_cast<double>(found) / static_cast<double>(want.size());
}

TEST(FilterConfigTest, ValidateRejectsBadParameters) {
  FilterConfig config;
  config.mode = FilterMode::kHeuristic;
  EXPECT_NO_THROW(config.validate());
  config.band = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.band = 16;
  config.keep_factor = 0.5;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.keep_factor = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.keep_factor = std::numeric_limits<double>::infinity();
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.keep_factor = 4.0;
  EXPECT_NO_THROW(config.validate());
}

TEST(FilterConfigTest, ModeNamesRoundTrip) {
  FilterMode mode = FilterMode::kHeuristic;
  EXPECT_TRUE(parse_filter_mode("off", mode));
  EXPECT_EQ(mode, FilterMode::kOff);
  EXPECT_TRUE(parse_filter_mode("heuristic", mode));
  EXPECT_EQ(mode, FilterMode::kHeuristic);
  EXPECT_FALSE(parse_filter_mode("exact-ish", mode));
  EXPECT_STREQ(filter_mode_name(FilterMode::kOff), "off");
  EXPECT_STREQ(filter_mode_name(FilterMode::kHeuristic), "heuristic");
}

TEST_P(FilterBackends, OffModeBitIdenticalAcrossEngines) {
  const ScoringScheme scheme;
  const Corpus corpus = make_corpus(0x0ffULL, 90, 120, 260);
  const DbView db = corpus.view();
  const std::size_t k = 8;
  FilterConfig off;
  off.mode = FilterMode::kOff;
  force(GetParam());

  const SearchResult exact = search_database(
      corpus.query, db, scheme, KernelKind::kInterSeq, GetParam());
  const std::vector<SearchHit> exact_top = exact.top(k);

  const FilteredSearchResult serial = search_database_filtered(
      corpus.query, db, scheme, KernelKind::kInterSeq, k, off, GetParam());
  EXPECT_EQ(serial.result.scores, exact.scores);
  expect_same_hits(serial.hits, exact_top, "serial off");

  for (std::size_t threads : {1u, 3u}) {
    ParallelSearchOptions options;
    options.threads = threads;
    const ParallelSearchEngine engine(db, options);
    const FilteredSearchResult par = engine.search_filtered(
        corpus.query, scheme, KernelKind::kInterSeq, k, off, GetParam());
    EXPECT_EQ(par.result.scores, exact.scores) << threads << " threads";
    expect_same_hits(par.hits, exact_top,
                     "parallel off x" + std::to_string(threads));
  }

  for (std::size_t shards : {1u, 3u}) {
    ShardedSearchOptions options;
    options.num_shards = shards;
    const ShardedSearchEngine engine(db, options);
    const std::span<const std::uint8_t> q(corpus.query.data(),
                                          corpus.query.size());
    const std::vector<std::span<const std::uint8_t>> queries{q};
    const auto many = engine.search_many_filtered(
        queries, scheme, KernelKind::kInterSeq, k, off, GetParam());
    ASSERT_EQ(many.size(), 1u);
    ASSERT_TRUE(many[0].complete);
    EXPECT_FALSE(many[0].filtered);
    EXPECT_EQ(many[0].ranked.result.scores, exact.scores)
        << shards << " shards";
    expect_same_hits(many[0].ranked.hits, exact_top,
                     "sharded off x" + std::to_string(shards));
  }
}

TEST_P(FilterBackends, HeuristicIdenticalAcrossEnginesAndShards) {
  // Heuristic selection is global and deterministic, so serial, parallel
  // and sharded engines must agree hit-for-hit at any topology.
  const ScoringScheme scheme;
  const Corpus corpus = make_planted(0x5e1ecULL, 160, 6, 110);
  const DbView db = corpus.view();
  const std::size_t k = 6;
  FilterConfig config;
  config.mode = FilterMode::kHeuristic;
  config.band = 12;
  config.keep_factor = 3.0;
  force(GetParam());

  const FilteredSearchResult serial = search_database_filtered(
      corpus.query, db, scheme, KernelKind::kInterSeq, k, config, GetParam());
  ASSERT_EQ(serial.hits.size(), k);
  EXPECT_GE(serial.stats.candidates, k);
  EXPECT_EQ(serial.stats.rescans, serial.stats.candidates);

  for (std::size_t threads : {1u, 3u}) {
    ParallelSearchOptions options;
    options.threads = threads;
    const ParallelSearchEngine engine(db, options);
    const FilteredSearchResult par = engine.search_filtered(
        corpus.query, scheme, KernelKind::kInterSeq, k, config, GetParam());
    EXPECT_EQ(par.result.scores, serial.result.scores) << threads;
    expect_same_hits(par.hits, serial.hits,
                     "parallel heuristic x" + std::to_string(threads));
    EXPECT_EQ(par.stats.candidates, serial.stats.candidates) << threads;
  }

  for (std::size_t shards : {1u, 2u, 5u}) {
    ShardedSearchOptions options;
    options.num_shards = shards;
    options.threads_per_shard = 2;
    const ShardedSearchEngine engine(db, options);
    const std::span<const std::uint8_t> q(corpus.query.data(),
                                          corpus.query.size());
    const std::vector<std::span<const std::uint8_t>> queries{q};
    const auto many = engine.search_many_filtered(
        queries, scheme, KernelKind::kInterSeq, k, config, GetParam());
    ASSERT_EQ(many.size(), 1u);
    ASSERT_TRUE(many[0].complete);
    EXPECT_TRUE(many[0].filtered);
    expect_same_hits(many[0].ranked.hits, serial.hits,
                     "sharded heuristic x" + std::to_string(shards));
    EXPECT_EQ(many[0].filter.candidates, serial.stats.candidates) << shards;
  }
}

TEST(FilterPipeline, HeuristicPerfectRecallOnPlantedCorpus) {
  // Every top-k slot is held by a planted homolog (plant > k), so the
  // screen's banded lower bound ranks them far above the noise — recall
  // must be exactly 1.0, the property bench_serve's oracle gates on.
  const ScoringScheme scheme;
  FilterConfig config;
  config.mode = FilterMode::kHeuristic;
  config.band = 16;
  config.keep_factor = 4.0;
  const std::size_t k = 10;
  for (std::uint64_t seed : {0x9a0ULL, 0x9a1ULL, 0x9a2ULL}) {
    const Corpus corpus = make_planted(seed, 320, 12, 150);
    const DbView db = corpus.view();
    const SearchResult exact =
        search_database(corpus.query, db, scheme, KernelKind::kInterSeq);
    const FilteredSearchResult got = search_database_filtered(
        corpus.query, db, scheme, KernelKind::kInterSeq, k, config);
    EXPECT_EQ(recall_against(got.hits, exact.top(k)), 1.0)
        << "seed " << seed;
    EXPECT_LT(got.stats.rescans, db.size())
        << "filter rescanned everything; screen did no work";
  }
}

TEST(FilterPipeline, HeuristicHighRecallOnRandomCorpus) {
  // Random corpora are the filter's worst case: with no homolog mass the
  // top-k is weak off-diagonal noise, invisible to a narrow diagonal band
  // (the documented miss class, DESIGN.md). Heuristic mode must still
  // clear 0.99 aggregate recall — it takes a wide band (most records are
  // then fully covered and carry the exactness certificate) and a generous
  // keep factor, the configuration recommended for non-homolog workloads.
  const ScoringScheme scheme;
  FilterConfig config;
  config.mode = FilterMode::kHeuristic;
  config.band = 128;
  config.keep_factor = 12.0;
  const std::size_t k = 10;
  double recalled = 0.0;
  int trials = 0;
  for (std::uint64_t seed : {0x7a0ULL, 0x7a1ULL, 0x7a2ULL, 0x7a3ULL}) {
    const Corpus corpus = make_corpus(seed, 400, 130, 250);
    const DbView db = corpus.view();
    const SearchResult exact =
        search_database(corpus.query, db, scheme, KernelKind::kInterSeq);
    const FilteredSearchResult got = search_database_filtered(
        corpus.query, db, scheme, KernelKind::kInterSeq, k, config);
    recalled += recall_against(got.hits, exact.top(k));
    ++trials;
  }
  EXPECT_GE(recalled / trials, 0.99);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FilterBackends,
                         ::testing::Values(Backend::kScalar, Backend::kSSE2,
                                           Backend::kAVX2, Backend::kAVX512),
                         [](const ::testing::TestParamInfo<Backend>& pi) {
                           return std::string(backend_name(pi.param));
                         });

}  // namespace
}  // namespace swdual::align
