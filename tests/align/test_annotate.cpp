// Annotated-results battery (ctest label: annotate).
//
// Three layers. (1) The CIGAR machinery: Alignment::cigar() emission and
// validation, and cigar_score() as an independent score oracle — every
// CIGAR an annotated search reports must re-derive the hit's exact Gotoh
// score from the raw residues. (2) annotate_hits(): stats/cigar decoration,
// the post-ranking e-value cutoff, and bit-identity of annotated vs.
// unannotated hit lists across kernels, backends, thread counts, and shard
// topologies {1, 2, 5}. (3) StatsCache: deterministic calibration, LRU
// accounting, and first-writer-wins under concurrent acquire.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "align/alignment.h"
#include "align/annotate.h"
#include "align/backend.h"
#include "align/parallel_search.h"
#include "align/search.h"
#include "align/sharded_search.h"
#include "align/statistics.h"
#include "align/traceback.h"
#include "seq/alphabet.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::align {
namespace {

std::vector<std::uint8_t> random_codes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& c : out) c = static_cast<std::uint8_t>(rng.below(20));
  return out;
}

struct Corpus {
  std::vector<std::uint8_t> query;
  std::vector<std::vector<std::uint8_t>> records;

  DbView view() const {
    DbView v;
    for (const auto& r : records) v.emplace_back(r.data(), r.size());
    return v;
  }
};

/// Random corpus with edge cases (empty record, 1-residue record, long
/// outlier) plus a few planted homologs so the top-k has real alignments
/// with gaps, not just noise-level diagonals.
Corpus make_corpus(std::uint64_t seed, std::size_t n, std::size_t query_len) {
  Rng rng(seed);
  Corpus c;
  c.query = random_codes(rng, query_len);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < 4) {
      auto h = c.query;
      for (std::size_t p = 0; p < h.size(); p += 13 + i * 3) {
        h[p] = static_cast<std::uint8_t>(rng.below(20));
      }
      if (i % 2 == 1 && h.size() > 20) {
        h.erase(h.begin() + 10, h.begin() + 10 + 2 + i);  // force gaps
      }
      c.records.push_back(std::move(h));
    } else {
      c.records.push_back(random_codes(
          rng, static_cast<std::size_t>(rng.between(1, 240))));
    }
  }
  if (n >= 8) {
    c.records[n - 3] = {};
    c.records[n - 2] = random_codes(rng, 1);
    c.records[n - 1] = random_codes(rng, 700);
  }
  return c;
}

KarlinAltschulParams test_params() {
  // Small calibration — the tests only need valid positive (λ, K).
  return calibrate_gapped_params(ScoringScheme{},
                                 std::vector<double>(20, 0.05), 60, 60, 40, 3);
}

// --- Layer 1: CIGAR emission + score oracle ------------------------------

TEST(Cigar, EmitsSamOpsAndRoundTripsScore) {
  // ACGT-style hand alignment over the protein alphabet codes: 2 matched
  // columns, a query insertion, 2 more columns, a db deletion run of 2.
  Alignment a;
  a.aligned_query = "AC" "W" "DE" "--";
  a.aligned_db = "AC" "-" "DE" "KL";
  a.score = 37;  // not validated by cigar(); only geometry is
  a.query_begin = 3;
  a.query_end = 7;
  a.db_begin = 11;
  a.db_end = 16;
  EXPECT_EQ(a.cigar(), "2M1I2M2D");
}

TEST(Cigar, EmptyAlignmentYieldsEmptyCigar) {
  Alignment a;
  EXPECT_EQ(a.cigar(), "");
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(cigar_score("", {empty.data(), 0}, {empty.data(), 0}, 0, 0,
                        ScoringScheme{}),
            0);
}

TEST(Cigar, EmissionValidatesCoordinateConsumption) {
  Alignment a;
  a.aligned_query = "AC";
  a.aligned_db = "AC";
  a.query_begin = 1;
  a.query_end = 3;  // claims 3 query residues, columns consume 2
  a.db_begin = 1;
  a.db_end = 2;
  EXPECT_THROW(a.cigar(), Error);
  a.query_end = 2;
  EXPECT_EQ(a.cigar(), "2M");
}

TEST(Cigar, ScoreOracleRejectsMalformedStrings) {
  Rng rng(42);
  const auto q = random_codes(rng, 30);
  const auto d = random_codes(rng, 30);
  const std::span<const std::uint8_t> qs{q.data(), q.size()};
  const std::span<const std::uint8_t> ds{d.data(), d.size()};
  const ScoringScheme scheme;
  EXPECT_THROW(cigar_score("M", qs, ds, 1, 1, scheme), InvalidArgument);
  EXPECT_THROW(cigar_score("0M", qs, ds, 1, 1, scheme), InvalidArgument);
  EXPECT_THROW(cigar_score("3", qs, ds, 1, 1, scheme), InvalidArgument);
  EXPECT_THROW(cigar_score("3X", qs, ds, 1, 1, scheme), InvalidArgument);
  EXPECT_THROW(cigar_score("99M", qs, ds, 1, 1, scheme), InvalidArgument);
  EXPECT_THROW(cigar_score("2M", qs, ds, 0, 1, scheme), InvalidArgument);
}

TEST(Cigar, TracebackCigarRederivesGotohScore) {
  // Property: for random pairs, sw_align_affine's CIGAR re-derives the
  // alignment's own score through the independent cigar_score() walk.
  Rng rng(0xc16a);
  const ScoringScheme scheme;
  for (int trial = 0; trial < 24; ++trial) {
    const auto q = random_codes(rng, 20 + trial * 7);
    auto d = q;
    for (std::size_t p = 0; p < d.size(); p += 11) {
      d[p] = static_cast<std::uint8_t>(rng.below(20));
    }
    if (trial % 3 == 0 && d.size() > 12) d.erase(d.begin() + 5, d.begin() + 9);
    const Alignment a =
        sw_align_affine({q.data(), q.size()}, {d.data(), d.size()}, scheme);
    EXPECT_EQ(cigar_score(a.cigar(), {q.data(), q.size()},
                          {d.data(), d.size()}, a.query_begin, a.db_begin,
                          scheme),
              a.score)
        << "trial " << trial;
  }
}

// --- Layer 2: annotate_hits + engine plumbing ----------------------------

TEST(AnnotateConfigTest, ValidateRejectsBadCutoffs) {
  AnnotateConfig config;
  config.mode = AnnotateMode::kStats;
  EXPECT_NO_THROW(config.validate());  // default +inf is valid
  config.evalue_cutoff = 10.0;
  EXPECT_NO_THROW(config.validate());
  config.evalue_cutoff = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.evalue_cutoff = -1.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.evalue_cutoff = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(AnnotateConfigTest, ModeNamesRoundTrip) {
  AnnotateMode mode = AnnotateMode::kStats;
  EXPECT_TRUE(parse_annotate_mode("off", mode));
  EXPECT_EQ(mode, AnnotateMode::kOff);
  EXPECT_TRUE(parse_annotate_mode("stats", mode));
  EXPECT_EQ(mode, AnnotateMode::kStats);
  EXPECT_TRUE(parse_annotate_mode("stats+cigar", mode));
  EXPECT_EQ(mode, AnnotateMode::kStatsCigar);
  EXPECT_FALSE(parse_annotate_mode("cigar", mode));
  EXPECT_STREQ(annotate_mode_name(AnnotateMode::kOff), "off");
  EXPECT_STREQ(annotate_mode_name(AnnotateMode::kStats), "stats");
  EXPECT_STREQ(annotate_mode_name(AnnotateMode::kStatsCigar), "stats+cigar");
}

TEST(AnnotateHits, OffModeLeavesHitsUntouched) {
  const Corpus corpus = make_corpus(0xa0, 30, 100);
  const DbView db = corpus.view();
  const KarlinAltschulParams params = test_params();
  std::vector<SearchHit> hits = search_database(corpus.query, db,
                                                ScoringScheme{},
                                                KernelKind::kInterSeq)
                                    .top(5);
  const std::vector<SearchHit> before = hits;
  annotate_hits(hits, corpus.query, db, ScoringScheme{}, AnnotateConfig{},
                params, db_residue_count(db));
  ASSERT_EQ(hits.size(), before.size());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].db_index, before[i].db_index);
    EXPECT_EQ(hits[i].score, before[i].score);
    EXPECT_EQ(hits[i].annotation, nullptr);
  }
}

TEST(AnnotateHits, StatsModeAttachesEvalueAndBitsOnly) {
  const Corpus corpus = make_corpus(0xa1, 40, 120);
  const DbView db = corpus.view();
  const KarlinAltschulParams params = test_params();
  const ScoringScheme scheme;
  std::vector<SearchHit> hits =
      search_database(corpus.query, db, scheme, KernelKind::kInterSeq).top(6);
  AnnotateConfig config;
  config.mode = AnnotateMode::kStats;
  annotate_hits(hits, corpus.query, db, scheme, config, params,
                db_residue_count(db));
  ASSERT_FALSE(hits.empty());
  for (const SearchHit& hit : hits) {
    ASSERT_NE(hit.annotation, nullptr);
    EXPECT_GT(hit.annotation->evalue, 0.0);
    EXPECT_DOUBLE_EQ(hit.annotation->evalue,
                     evalue(params, hit.score, corpus.query.size(),
                            db_residue_count(db)));
    EXPECT_DOUBLE_EQ(hit.annotation->bits, bit_score(params, hit.score));
    EXPECT_TRUE(hit.annotation->cigar.empty());
    EXPECT_EQ(hit.annotation->query_begin, 0u);
  }
  // Ranking is by descending score, so e-values are ascending-monotone.
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].annotation->evalue, hits[i].annotation->evalue);
  }
}

TEST(AnnotateHits, EvalueGrowsWithSearchSpace) {
  const Corpus corpus = make_corpus(0xa2, 30, 100);
  const DbView db = corpus.view();
  const KarlinAltschulParams params = test_params();
  const ScoringScheme scheme;
  AnnotateConfig config;
  config.mode = AnnotateMode::kStats;
  std::vector<SearchHit> small =
      search_database(corpus.query, db, scheme, KernelKind::kInterSeq).top(3);
  std::vector<SearchHit> large = small;
  const std::uint64_t n = db_residue_count(db);
  annotate_hits(small, corpus.query, db, scheme, config, params, n);
  annotate_hits(large, corpus.query, db, scheme, config, params, 10 * n);
  ASSERT_EQ(small.size(), large.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_NEAR(large[i].annotation->evalue / small[i].annotation->evalue,
                10.0, 1e-9);
  }
}

TEST(AnnotateHits, CutoffDropsExactlyTheInsignificantSuffix) {
  const Corpus corpus = make_corpus(0xa3, 60, 130);
  const DbView db = corpus.view();
  const KarlinAltschulParams params = test_params();
  const ScoringScheme scheme;
  std::vector<SearchHit> all =
      search_database(corpus.query, db, scheme, KernelKind::kInterSeq).top(10);
  AnnotateConfig config;
  config.mode = AnnotateMode::kStats;
  std::vector<SearchHit> reference = all;
  annotate_hits(reference, corpus.query, db, scheme, config, params,
                db_residue_count(db));
  ASSERT_GE(reference.size(), 3u);
  // Cut between two distinct e-values so the expectation is unambiguous.
  const double cutoff = reference[1].annotation->evalue;
  std::size_t expected_kept = 0;
  while (expected_kept < reference.size() &&
         reference[expected_kept].annotation->evalue <= cutoff) {
    ++expected_kept;
  }
  ASSERT_LT(expected_kept, reference.size()) << "cutoff dropped nothing";
  config.evalue_cutoff = cutoff;
  std::vector<SearchHit> cut = all;
  annotate_hits(cut, corpus.query, db, scheme, config, params,
                db_residue_count(db));
  ASSERT_EQ(cut.size(), expected_kept);
  for (std::size_t i = 0; i < cut.size(); ++i) {
    EXPECT_EQ(cut[i].db_index, reference[i].db_index) << "not a prefix";
    EXPECT_EQ(cut[i].score, reference[i].score);
  }
}

class AnnotateBackends : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (const char* old = std::getenv("SWDUAL_FORCE_BACKEND")) saved_ = old;
    if (!backend_available(GetParam())) {
      GTEST_SKIP() << backend_name(GetParam())
                   << " backend not available on this host";
    }
  }
  void TearDown() override {
    if (saved_.empty()) {
      ::unsetenv("SWDUAL_FORCE_BACKEND");
    } else {
      ::setenv("SWDUAL_FORCE_BACKEND", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

/// Every hit of an annotated result must (a) carry a CIGAR that re-derives
/// its exact search score from the raw residues, and (b) match the
/// unannotated ranking hit-for-hit (cutoff = +inf).
void check_annotated(const std::vector<SearchHit>& annotated,
                     const std::vector<SearchHit>& plain, const Corpus& corpus,
                     const DbView& db, const ScoringScheme& scheme,
                     const KarlinAltschulParams& params, std::uint64_t n,
                     const std::string& what) {
  ASSERT_EQ(annotated.size(), plain.size()) << what;
  for (std::size_t i = 0; i < annotated.size(); ++i) {
    EXPECT_EQ(annotated[i].db_index, plain[i].db_index) << what << " #" << i;
    EXPECT_EQ(annotated[i].score, plain[i].score) << what << " #" << i;
    ASSERT_NE(annotated[i].annotation, nullptr) << what << " #" << i;
    const HitAnnotation& note = *annotated[i].annotation;
    EXPECT_DOUBLE_EQ(
        note.evalue,
        evalue(params, annotated[i].score, corpus.query.size(), n))
        << what << " #" << i;
    const std::span<const std::uint8_t> record = db[annotated[i].db_index];
    EXPECT_EQ(cigar_score(note.cigar, {corpus.query.data(),
                                       corpus.query.size()},
                          record, note.query_begin, note.db_begin, scheme),
              annotated[i].score)
        << what << " hit " << i << " cigar " << note.cigar;
    if (annotated[i].score > 0) {
      EXPECT_FALSE(note.cigar.empty()) << what << " #" << i;
    }
  }
}

TEST_P(AnnotateBackends, CigarOracleAcrossKernelsEnginesAndShards) {
  const ScoringScheme scheme;
  const Corpus corpus = make_corpus(0x51ca, 80, 140);
  const DbView db = corpus.view();
  const KarlinAltschulParams params = test_params();
  const std::uint64_t n = db_residue_count(db);
  const std::size_t k = 8;
  AnnotateConfig config;
  config.mode = AnnotateMode::kStatsCigar;

  for (KernelKind kernel : {KernelKind::kInterSeq, KernelKind::kStriped}) {
    const std::vector<SearchHit> plain =
        search_database(corpus.query, db, scheme, kernel, GetParam()).top(k);

    const RankedSearchResult serial = search_database_annotated(
        corpus.query, db, scheme, kernel, k, config, params, GetParam());
    check_annotated(serial.hits, plain, corpus, db, scheme, params, n,
                    std::string("serial ") + kernel_name(kernel));

    const SearchProfiles profiles(
        {corpus.query.data(), corpus.query.size()}, scheme, kernel,
        GetParam());
    for (std::size_t threads : {1u, 3u}) {
      ParallelSearchOptions options;
      options.threads = threads;
      const ParallelSearchEngine engine(db, options);
      const RankedSearchResult par =
          engine.search_ranked(profiles, k, config, params);
      check_annotated(par.hits, plain, corpus, db, scheme, params, n,
                      std::string("parallel x") + std::to_string(threads) +
                          " " + kernel_name(kernel));
    }

    for (std::size_t shard_count : {1u, 2u, 5u}) {
      ShardedSearchOptions options;
      options.num_shards = shard_count;
      const ShardedSearchEngine engine(db, options);
      const std::span<const std::uint8_t> q(corpus.query.data(),
                                            corpus.query.size());
      const std::vector<std::span<const std::uint8_t>> queries{q};
      const auto many = engine.search_many_filtered(
          queries, scheme, kernel, k, FilterConfig{}, config, params,
          GetParam());
      ASSERT_EQ(many.size(), 1u);
      ASSERT_TRUE(many[0].complete);
      check_annotated(many[0].ranked.hits, plain, corpus, db, scheme, params,
                      n,
                      std::string("sharded x") + std::to_string(shard_count) +
                          " " + kernel_name(kernel));
    }
  }
}

TEST_P(AnnotateBackends, FilteredAnnotatedMatchesFilteredPlain) {
  const ScoringScheme scheme;
  const Corpus corpus = make_corpus(0xf11e, 90, 120);
  const DbView db = corpus.view();
  const KarlinAltschulParams params = test_params();
  const std::uint64_t n = db_residue_count(db);
  const std::size_t k = 6;
  FilterConfig filter;
  filter.mode = FilterMode::kHeuristic;
  filter.band = 16;
  filter.keep_factor = 4.0;
  AnnotateConfig config;
  config.mode = AnnotateMode::kStatsCigar;

  const FilteredSearchResult plain = search_database_filtered(
      corpus.query, db, scheme, KernelKind::kInterSeq, k, filter, GetParam());
  const FilteredSearchResult annotated = search_database_filtered_annotated(
      corpus.query, db, scheme, KernelKind::kInterSeq, k, filter, config,
      params, GetParam());
  check_annotated(annotated.hits, plain.hits, corpus, db, scheme, params, n,
                  "filtered serial");
  EXPECT_EQ(annotated.stats.candidates, plain.stats.candidates);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AnnotateBackends,
                         ::testing::Values(Backend::kScalar, Backend::kSSE2,
                                           Backend::kAVX2, Backend::kAVX512),
                         [](const ::testing::TestParamInfo<Backend>& pi) {
                           return std::string(backend_name(pi.param));
                         });

// --- Layer 3: StatsCache --------------------------------------------------

TEST(StatsCacheTest, MissCalibratesThenHitsShareTheObject) {
  StatsCache cache(4);
  const auto a = cache.acquire(ScoringScheme{}, seq::Alphabet::protein(),
                               "db1");
  ASSERT_NE(a, nullptr);
  EXPECT_GT(a->lambda, 0.0);
  EXPECT_GT(a->k, 0.0);
  const auto b = cache.acquire(ScoringScheme{}, seq::Alphabet::protein(),
                               "db1");
  EXPECT_EQ(a.get(), b.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(StatsCacheTest, KeySeparatesSchemeAlphabetAndDb) {
  StatsCache cache(8);
  const auto base = cache.acquire(ScoringScheme{}, seq::Alphabet::protein(),
                                  "db1");
  ScoringScheme pricier;
  pricier.gap.open += 2;
  EXPECT_NE(base.get(),
            cache.acquire(pricier, seq::Alphabet::protein(), "db1").get());
  EXPECT_NE(base.get(),
            cache.acquire(ScoringScheme{}, seq::Alphabet::protein(), "db2")
                .get());
  // Same inputs calibrate to identical values even via separate caches —
  // the fixed seed and alphabet-derived background make it deterministic.
  StatsCache other(8);
  const auto twin = other.acquire(ScoringScheme{}, seq::Alphabet::protein(),
                                  "db1");
  EXPECT_DOUBLE_EQ(base->lambda, twin->lambda);
  EXPECT_DOUBLE_EQ(base->k, twin->k);
}

TEST(StatsCacheTest, EvictsLeastRecentlyUsed) {
  StatsCache cache(2);
  const auto a = cache.acquire(ScoringScheme{}, seq::Alphabet::protein(),
                               "a");
  cache.acquire(ScoringScheme{}, seq::Alphabet::protein(), "b");
  cache.acquire(ScoringScheme{}, seq::Alphabet::protein(), "a");  // refresh
  cache.acquire(ScoringScheme{}, seq::Alphabet::protein(), "c");  // evict b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);
  // "a" survived the eviction; re-acquiring is a hit on the same object.
  EXPECT_EQ(cache.acquire(ScoringScheme{}, seq::Alphabet::protein(), "a")
                .get(),
            a.get());
}

TEST(StatsCacheTest, ConcurrentAcquireConvergesToOneObject) {
  StatsCache cache(4);
  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const KarlinAltschulParams>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t] = cache.acquire(ScoringScheme{}, seq::Alphabet::protein(),
                              "race");
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t].get(), seen[0].get()) << "thread " << t;
  }
  EXPECT_EQ(cache.stats().size, 1u);
}

}  // namespace
}  // namespace swdual::align
