// Fuzz harness for the SWDB container parsers (SwdbReader + MappedSwdb).
//
// The parsers promise exactly one failure mode for hostile bytes: a thrown
// swdual::Error (IoError for structural problems, InvalidArgument for bad
// parameters). Anything else — a crash, an ASan/UBSan report, an unexpected
// exception type — is a finding. On a successful open the harness walks the
// whole surface (lengths, lane order, every record via both readers) so an
// index that validates but points outside the file is caught too.
//
// Two build modes, one source file:
//   - SWDUAL_HAVE_LIBFUZZER (fuzz preset: clang + -fsanitize=fuzzer):
//     exports LLVMFuzzerTestOneInput for open-ended fuzzing.
//   - standalone (every other build, incl. GCC): a driver main() with
//     --make-seeds <dir>  write the seed corpus (valid v1/v2 + edge cases)
//     --smoke <dir>       replay the corpus plus bounded deterministic
//                         mutations (truncations, byte flips) — the ctest
//                         `fuzz` label runs this everywhere, so the corpus
//                         never rots and the parser contract is exercised
//                         even on hosts without libFuzzer.
//
// The input arrives as a byte buffer but both parsers take paths, so each
// iteration round-trips through one reused temp file.
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "seq/alphabet.h"
#include "seq/sequence.h"
#include "seq/swdb.h"
#include "util/error.h"

namespace {

namespace fs = std::filesystem;

/// One temp path per process, reused every iteration (fuzzers are
/// single-threaded; recreating the file is the per-iteration cost anyway).
const std::string& scratch_path() {
  static const std::string path = [] {
    const char* tmp = std::getenv("TMPDIR");
    fs::path dir = (tmp != nullptr && *tmp != '\0') ? fs::path(tmp)
                                                    : fs::temp_directory_path();
    return (dir / ("fuzz_swdb_" + std::to_string(::getpid()) + ".swdb"))
        .string();
  }();
  return path;
}

void write_bytes(const std::string& path, const std::uint8_t* data,
                 std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

/// Walk every accessor of an open reader pair; the return value only exists
/// so the reads cannot be optimized away.
std::uint64_t exercise(const std::string& path) {
  std::uint64_t checksum = 0;

  swdual::seq::SwdbReader reader(path);
  checksum += reader.total_residues() + reader.version();
  for (std::uint32_t lane : reader.lane_order()) checksum += lane;
  for (std::size_t i = 0; i < reader.size(); ++i) {
    checksum += reader.length(i);
    const swdual::seq::Sequence record = reader.read(i);
    for (std::uint8_t code : record.residues) checksum += code;
    checksum += record.id.size() + record.description.size();
  }

  swdual::seq::MappedSwdb mapped(path);
  checksum += mapped.total_residues() + mapped.version();
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    for (std::uint8_t code : mapped.residues(i)) checksum += code;
    checksum += mapped.id(i).size() + mapped.description(i).size();
  }
  return checksum;
}

int run_one(const std::uint8_t* data, std::size_t size) {
  write_bytes(scratch_path(), data, size);
  try {
    exercise(scratch_path());
  } catch (const swdual::Error&) {
    // The contract: hostile bytes are rejected with the library's own error
    // hierarchy. Any other escape path aborts below and is a finding.
  }
  return 0;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return run_one(data, size);
}

#ifndef SWDUAL_HAVE_LIBFUZZER

namespace {

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void dump(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  write_bytes(path.string(), bytes.data(), bytes.size());
}

/// Seed corpus: structurally valid files of both container versions plus
/// the classic parser edge cases. Everything past these is the mutator's
/// job (libFuzzer when available, the deterministic smoke otherwise).
void make_seeds(const fs::path& dir) {
  fs::create_directories(dir);

  std::vector<swdual::seq::Sequence> records;
  records.emplace_back(swdual::seq::Sequence::from_text(
      "sp|P1", "short test record", swdual::seq::AlphabetKind::kProtein,
      "MKTAYIAKQR"));
  records.emplace_back(swdual::seq::Sequence::from_text(
      "sp|P2", "", swdual::seq::AlphabetKind::kProtein,
      "ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY"));
  records.emplace_back(swdual::seq::Sequence::from_text(
      "sp|P3", "empty record", swdual::seq::AlphabetKind::kProtein, ""));

  swdual::seq::write_swdb((dir / "valid_v1.swdb").string(), records,
                          swdual::seq::AlphabetKind::kProtein,
                          swdual::seq::kSwdbVersion1);
  swdual::seq::write_swdb((dir / "valid_v2.swdb").string(), records,
                          swdual::seq::AlphabetKind::kProtein,
                          swdual::seq::kSwdbVersion2);
  swdual::seq::write_swdb((dir / "empty_db.swdb").string(), {},
                          swdual::seq::AlphabetKind::kProtein);

  dump(dir / "empty_file.swdb", {});
  dump(dir / "bad_magic.swdb", {'N', 'O', 'P', 'E', 1, 0, 0, 0});
  const std::vector<std::uint8_t> v2 = slurp(dir / "valid_v2.swdb");
  dump(dir / "truncated_header.swdb",
       std::vector<std::uint8_t>(v2.begin(),
                                 v2.begin() + std::min<std::size_t>(10,
                                                                    v2.size())));
  dump(dir / "truncated_half.swdb",
       std::vector<std::uint8_t>(v2.begin(), v2.begin() + v2.size() / 2));
}

/// Bounded deterministic smoke: replay every corpus file verbatim, then at
/// every truncation length and with every single-byte flip in the first
/// 256 bytes (the header/index region where parsing decisions live).
int smoke(const fs::path& dir) {
  std::size_t iterations = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::vector<std::uint8_t> bytes = slurp(entry.path());
    run_one(bytes.data(), bytes.size());
    ++iterations;

    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      run_one(bytes.data(), cut);
      ++iterations;
    }
    const std::size_t flip_span = std::min<std::size_t>(bytes.size(), 256);
    for (std::size_t i = 0; i < flip_span; ++i) {
      std::vector<std::uint8_t> mutated = bytes;
      mutated[i] ^= 0xFF;
      run_one(mutated.data(), mutated.size());
      ++iterations;
    }
  }
  std::cout << "fuzz_swdb smoke: " << iterations
            << " inputs, no parser contract violation\n";
  return iterations == 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 3 && std::string(argv[1]) == "--make-seeds") {
      make_seeds(argv[2]);
      return 0;
    }
    if (argc == 3 && std::string(argv[1]) == "--smoke") {
      return smoke(argv[2]);
    }
    if (argc > 1) {
      // libFuzzer-style replay: each argument is one input file.
      for (int i = 1; i < argc; ++i) {
        const std::vector<std::uint8_t> bytes = slurp(argv[i]);
        run_one(bytes.data(), bytes.size());
      }
      return 0;
    }
  } catch (const std::exception& error) {
    std::cerr << "fuzz_swdb: " << error.what() << "\n";
    return 1;
  }
  std::cerr << "usage: fuzz_swdb --make-seeds <dir> | --smoke <dir> | "
               "<input>...\n";
  return 2;
}

#endif  // !SWDUAL_HAVE_LIBFUZZER
