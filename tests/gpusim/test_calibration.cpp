// Pins the GCUPS calibration so the performance model, the virtual GPU
// default, and DESIGN.md's documented numbers cannot drift apart again
// (they once disagreed: DESIGN.md quoted the ~17 GCUPS CUDASW++ headline
// while the model used Table II's implied 24.9).
#include <gtest/gtest.h>

#include "gpusim/virtual_gpu.h"
#include "platform/perf_model.h"

namespace swdual {
namespace {

// The paper's single-worker workload: 40 queries averaging ≈2550 aa
// against UniProt's ≈1.92e8 residues ⇒ ≈1.96e13 DP cells.
constexpr double kTableIICells = 1.96e13;

TEST(Calibration, PerfModelMatchesTableIIDerivation) {
  const platform::PerfModel model;
  EXPECT_DOUBLE_EQ(model.swps3_cpu.gcups, 0.28);
  EXPECT_DOUBLE_EQ(model.striped_cpu.gcups, 2.7);
  EXPECT_DOUBLE_EQ(model.swipe_cpu.gcups, 8.3);
  EXPECT_DOUBLE_EQ(model.cudasw_gpu.gcups, 24.9);
}

TEST(Calibration, VirtualGpuDefaultMatchesPerfModel) {
  const gpusim::DeviceSpec spec;
  const platform::PerfModel model;
  EXPECT_DOUBLE_EQ(spec.gcups, model.cudasw_gpu.gcups);
}

TEST(Calibration, ClassesReproduceTableIISingleWorkerColumn) {
  const platform::PerfModel model;
  // Within 1%: the derivation rounds GCUPS to 2-3 significant digits.
  EXPECT_NEAR(model.swps3_cpu.gcups * 1e9 * 69208.2, kTableIICells,
              0.02 * kTableIICells);
  EXPECT_NEAR(model.striped_cpu.gcups * 1e9 * 7190.0, kTableIICells,
              0.02 * kTableIICells);
  EXPECT_NEAR(model.swipe_cpu.gcups * 1e9 * 2367.2, kTableIICells,
              0.02 * kTableIICells);
  EXPECT_NEAR(model.cudasw_gpu.gcups * 1e9 * 785.3, kTableIICells,
              0.02 * kTableIICells);
}

TEST(Calibration, SwdualWorkerClassesAreSwipeAndCudasw) {
  const platform::PerfModel model;
  EXPECT_DOUBLE_EQ(model.cpu_worker().gcups, model.swipe_cpu.gcups);
  EXPECT_DOUBLE_EQ(model.gpu_worker().gcups, model.cudasw_gpu.gcups);
}

}  // namespace
}  // namespace swdual
