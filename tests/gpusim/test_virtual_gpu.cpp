// Unit tests for the virtual GPU device.
#include <gtest/gtest.h>

#include "align/scalar.h"
#include "gpusim/virtual_gpu.h"
#include "seq/dbgen.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::gpusim {
namespace {

align::DbView make_views(const std::vector<seq::Sequence>& records) {
  return align::make_db_view(records);
}

std::vector<seq::Sequence> tiny_db(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<seq::Sequence> db;
  for (std::size_t i = 0; i < n; ++i) {
    db.push_back(seq::random_protein(
        rng, "d" + std::to_string(i),
        static_cast<std::size_t>(rng.between(30, 200))));
  }
  return db;
}

TEST(VirtualGpu, ScoresAreExact) {
  VirtualGpu gpu;
  Rng rng(1);
  const seq::Sequence query = seq::random_protein(rng, "q", 80);
  const auto db = tiny_db(20, 2);
  const align::DbView views = make_views(db);
  const align::ScoringScheme scheme;
  const BatchResult batch = gpu.run_batch(
      {query.residues.data(), query.residues.size()}, views, scheme);
  ASSERT_EQ(batch.scores.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(batch.scores[i],
              align::gotoh_score({query.residues.data(), query.residues.size()},
                                 views[i], scheme)
                  .score)
        << "record " << i;
  }
}

TEST(VirtualGpu, VirtualTimeTracksCellCount) {
  VirtualGpu gpu;
  Rng rng(3);
  const seq::Sequence q1 = seq::random_protein(rng, "q1", 50);
  const seq::Sequence q2 = seq::random_protein(rng, "q2", 500);
  const auto db = tiny_db(30, 4);
  const align::DbView views = make_views(db);
  const align::ScoringScheme scheme;
  const BatchResult small = gpu.run_batch(
      {q1.residues.data(), q1.residues.size()}, views, scheme);
  const BatchResult large = gpu.run_batch(
      {q2.residues.data(), q2.residues.size()}, views, scheme);
  EXPECT_GT(large.cells, small.cells);
  EXPECT_GT(large.virtual_seconds, small.virtual_seconds);
}

TEST(VirtualGpu, ModeledGcupsBelowPeak) {
  VirtualGpu gpu;
  Rng rng(5);
  const seq::Sequence query = seq::random_protein(rng, "q", 200);
  const auto db = tiny_db(64, 6);
  const align::ScoringScheme scheme;
  const BatchResult batch = gpu.run_batch(
      {query.residues.data(), query.residues.size()}, make_views(db), scheme);
  EXPECT_GT(batch.modeled_gcups(), 0.0);
  EXPECT_LE(batch.modeled_gcups(), gpu.spec().gcups * (1 + 1e-9));
}

TEST(VirtualGpu, SmallBatchesLoseOccupancy) {
  // 8 alignments cannot fill 14 SMs x 1024 threads: modeled GCUPS must be
  // far below peak (the CUDASW++ small-database effect).
  VirtualGpu gpu;
  Rng rng(7);
  const seq::Sequence query = seq::random_protein(rng, "q", 200);
  const auto db = tiny_db(8, 8);
  const align::ScoringScheme scheme;
  const BatchResult batch = gpu.run_batch(
      {query.residues.data(), query.residues.size()}, make_views(db), scheme);
  EXPECT_LT(batch.modeled_gcups(), gpu.spec().gcups * 0.01);
}

TEST(VirtualGpu, MemoryPartitioningSplitsBatches) {
  DeviceSpec spec;
  spec.memory_bytes = 2000;  // residue budget 1000 bytes
  VirtualGpu gpu(spec);
  Rng rng(9);
  const seq::Sequence query = seq::random_protein(rng, "q", 40);
  std::vector<seq::Sequence> db;
  for (int i = 0; i < 10; ++i) {
    db.push_back(seq::random_protein(rng, "d", 300));  // 3000 bytes total
  }
  const align::ScoringScheme scheme;
  const BatchResult batch = gpu.run_batch(
      {query.residues.data(), query.residues.size()}, make_views(db), scheme);
  EXPECT_GE(batch.sub_batches, 3u);
  // Scores still exact despite the splits.
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(batch.scores[i],
              align::gotoh_score(
                  {query.residues.data(), query.residues.size()},
                  {db[i].residues.data(), db[i].residues.size()}, scheme)
                  .score);
  }
}

TEST(VirtualGpu, AccumulatesBusyTime) {
  VirtualGpu gpu;
  Rng rng(11);
  const seq::Sequence query = seq::random_protein(rng, "q", 60);
  const auto db = tiny_db(10, 12);
  const align::ScoringScheme scheme;
  EXPECT_EQ(gpu.batches_run(), 0u);
  gpu.run_batch({query.residues.data(), query.residues.size()},
                make_views(db), scheme);
  gpu.run_batch({query.residues.data(), query.residues.size()},
                make_views(db), scheme);
  EXPECT_EQ(gpu.batches_run(), 2u);
  EXPECT_GT(gpu.total_virtual_seconds(), 0.0);
}

TEST(VirtualGpu, EmptyBatchHandled) {
  VirtualGpu gpu;
  const align::ScoringScheme scheme;
  const BatchResult batch = gpu.run_batch({}, {}, scheme);
  EXPECT_TRUE(batch.scores.empty());
  EXPECT_EQ(batch.virtual_seconds, 0.0);
}

TEST(VirtualGpu, InvalidSpecRejected) {
  DeviceSpec spec;
  spec.gcups = 0;
  EXPECT_THROW(VirtualGpu{spec}, InvalidArgument);
}

}  // namespace
}  // namespace swdual::gpusim
