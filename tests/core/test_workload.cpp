// Unit tests for paper-scale workload construction.
#include <gtest/gtest.h>

#include "core/workload.h"
#include "util/error.h"

namespace swdual::core {
namespace {

TEST(Workload, CellsArePerQueryTimesDbResidues) {
  Workload w;
  w.query_lengths = {100, 200};
  w.db_residues = 1000;
  EXPECT_EQ(w.cells(0), 100'000u);
  EXPECT_EQ(w.cells(1), 200'000u);
  EXPECT_EQ(w.total_cells(), 300'000u);
}

TEST(MakeWorkload, PaperQuerySetBounds) {
  const Workload w = make_workload("uniprot", seq::QuerySetKind::kPaper, 100);
  EXPECT_EQ(w.query_lengths.size(), seq::kPaperQueryCount);
  EXPECT_EQ(*std::min_element(w.query_lengths.begin(), w.query_lengths.end()),
            100u);
  EXPECT_EQ(*std::max_element(w.query_lengths.begin(), w.query_lengths.end()),
            5000u);
  EXPECT_GT(w.db_residues, 0u);
  EXPECT_EQ(w.db_sequences, 5375u);
}

TEST(MakeWorkload, HeterogeneousSpansFullRange) {
  const Workload w =
      make_workload("uniprot", seq::QuerySetKind::kHeterogeneous, 100);
  EXPECT_EQ(*std::min_element(w.query_lengths.begin(), w.query_lengths.end()),
            4u);
  EXPECT_EQ(*std::max_element(w.query_lengths.begin(), w.query_lengths.end()),
            35213u);
}

TEST(MakeWorkload, HomogeneousIsNarrow) {
  const Workload w =
      make_workload("uniprot", seq::QuerySetKind::kHomogeneous, 100);
  for (std::size_t len : w.query_lengths) {
    EXPECT_GE(len, 4500u);
    EXPECT_LE(len, 5000u);
  }
}

TEST(MakeWorkload, FullScaleUniprotMatchesTable3) {
  const Workload w = make_workload("uniprot", seq::QuerySetKind::kPaper, 1);
  EXPECT_EQ(w.db_sequences, 537505u);
}

TEST(MakeWorkload, DeterministicInSeed) {
  const Workload a = make_workload("ensembl_dog", seq::QuerySetKind::kPaper,
                                   10, 7);
  const Workload b = make_workload("ensembl_dog", seq::QuerySetKind::kPaper,
                                   10, 7);
  EXPECT_EQ(a.query_lengths, b.query_lengths);
  EXPECT_EQ(a.db_residues, b.db_residues);
}

TEST(MakeTasks, UsesWorkerClasses) {
  Workload w;
  w.query_lengths = {100};
  w.db_residues = 1'000'000'000ULL;  // 1e11 cells
  const platform::WorkerClass cpu{10.0, 0.0};
  const platform::WorkerClass gpu{100.0, 0.0};
  const auto tasks = make_tasks(w, cpu, gpu);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_NEAR(tasks[0].cpu_time, 10.0, 1e-9);
  EXPECT_NEAR(tasks[0].gpu_time, 1.0, 1e-9);
}

TEST(SplitWorkers, MatchesPaperRule) {
  EXPECT_EQ(split_workers(2).num_gpus, 1u);
  EXPECT_EQ(split_workers(2).num_cpus, 1u);
  EXPECT_EQ(split_workers(3).num_gpus, 2u);
  EXPECT_EQ(split_workers(3).num_cpus, 1u);
  EXPECT_EQ(split_workers(4).num_gpus, 3u);
  EXPECT_EQ(split_workers(4).num_cpus, 1u);
  EXPECT_EQ(split_workers(5).num_gpus, 4u);
  EXPECT_EQ(split_workers(5).num_cpus, 1u);
  EXPECT_EQ(split_workers(8).num_gpus, 4u);
  EXPECT_EQ(split_workers(8).num_cpus, 4u);
}

TEST(SplitWorkers, RejectsSingleWorker) {
  EXPECT_THROW(split_workers(1), InvalidArgument);
}

TEST(MakeWorkload, UnknownDatabaseThrows) {
  EXPECT_THROW(make_workload("nr", seq::QuerySetKind::kPaper, 1),
               InvalidArgument);
}

}  // namespace
}  // namespace swdual::core
