// Tests for the virtual application drivers: the Table II / Fig. 7 ordering
// and scaling properties must hold.
#include <gtest/gtest.h>

#include "core/apps.h"

namespace swdual::core {
namespace {

Workload small_uniprot() {
  // Full paper scale: the workload is cells-only, so even 537,505 database
  // sequences cost only a lengths pass. Small scales distort the experiment
  // (fixed per-task GPU overheads and the longest task dominate).
  return make_workload("uniprot", seq::QuerySetKind::kPaper, 1);
}

TEST(Apps, SingleWorkerOrderingMatchesTable2) {
  const Workload w = small_uniprot();
  const double swps3 = run_app_virtual(AppKind::kSwps3, w, 1).virtual_seconds;
  const double striped =
      run_app_virtual(AppKind::kStriped, w, 1).virtual_seconds;
  const double swipe = run_app_virtual(AppKind::kSwipe, w, 1).virtual_seconds;
  const double cudasw =
      run_app_virtual(AppKind::kCudasw, w, 1).virtual_seconds;
  EXPECT_GT(swps3, striped);
  EXPECT_GT(striped, swipe);
  EXPECT_GT(swipe, cudasw);
}

TEST(Apps, WorkersReduceTime) {
  const Workload w = small_uniprot();
  for (const AppKind app : {AppKind::kSwps3, AppKind::kStriped,
                            AppKind::kSwipe, AppKind::kCudasw}) {
    double prev = run_app_virtual(app, w, 1).virtual_seconds;
    for (std::size_t workers = 2; workers <= 4; ++workers) {
      const double now = run_app_virtual(app, w, workers).virtual_seconds;
      EXPECT_LT(now, prev) << app_name(app) << " workers=" << workers;
      prev = now;
    }
  }
}

TEST(Apps, SwdualBeatsCudaswAtEqualWorkerCount) {
  // The headline Table II result: SWDUAL (mixed) beats CUDASW++ (GPU-only)
  // at 4 workers — 3 GPUs + 1 SWIPE-class CPU outperform 4 plain GPU runs
  // only when scheduling is good; at minimum it must beat the CPU-only apps
  // and be competitive with CUDASW++.
  const Workload w = small_uniprot();
  const double swdual = run_app_virtual(AppKind::kSwdual, w, 4).virtual_seconds;
  const double swipe = run_app_virtual(AppKind::kSwipe, w, 4).virtual_seconds;
  EXPECT_LT(swdual, swipe);
}

TEST(Apps, SwdualScalesTo8Workers) {
  const Workload w = small_uniprot();
  const double two = run_app_virtual(AppKind::kSwdual, w, 2).virtual_seconds;
  const double four = run_app_virtual(AppKind::kSwdual, w, 4).virtual_seconds;
  const double eight = run_app_virtual(AppKind::kSwdual, w, 8).virtual_seconds;
  EXPECT_LT(four, two);
  EXPECT_LT(eight, four);
  // Table IV shape: 2→4 workers roughly halves, 4→8 roughly halves.
  EXPECT_NEAR(two / four, 2.0, 0.8);
  EXPECT_NEAR(four / eight, 2.0, 0.8);
}

TEST(Apps, SwdualLowIdleFraction) {
  // §V: "the execution on each of the processing elements finished with
  // almost no idle time".
  const Workload w = small_uniprot();
  const AppRunResult r = run_app_virtual(AppKind::kSwdual, w, 8);
  EXPECT_LT(r.idle_fraction, 0.15);
}

TEST(Apps, RefinedNeverWorse) {
  const Workload w = small_uniprot();
  for (std::size_t workers : {2u, 4u, 8u}) {
    const double base =
        run_app_virtual(AppKind::kSwdual, w, workers).virtual_seconds;
    const double refined =
        run_app_virtual(AppKind::kSwdualRefined, w, workers).virtual_seconds;
    EXPECT_LE(refined, base + 1e-9) << "workers " << workers;
  }
}

TEST(Apps, GcupsConsistentWithTime) {
  const Workload w = small_uniprot();
  const AppRunResult r = run_app_virtual(AppKind::kSwipe, w, 2);
  EXPECT_NEAR(r.gcups,
              static_cast<double>(w.total_cells()) / r.virtual_seconds / 1e9,
              1e-6);
}

TEST(Apps, ExplicitPlatformExtension) {
  // The paper's conclusion: 8 CPUs + 8 GPUs reduce UniProt from 543 s to
  // 86 s — with our calibration the 8+8 run must beat the 4+4 run by ~2x.
  const Workload w = small_uniprot();
  const double four_four =
      run_swdual_virtual(w, {4, 4}).virtual_seconds;
  const double eight_eight =
      run_swdual_virtual(w, {8, 8}).virtual_seconds;
  EXPECT_NEAR(four_four / eight_eight, 2.0, 0.5);
}

}  // namespace
}  // namespace swdual::core
