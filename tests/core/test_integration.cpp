// End-to-end integration: FASTA → SWDB → master–slave search → results,
// exercising the whole public API surface the way examples do.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "align/scalar.h"
#include "align/traceback.h"
#include "core/apps.h"
#include "master/master.h"
#include "sched/dual_approx.h"
#include "seq/dbgen.h"
#include "seq/fasta.h"
#include "seq/queryset.h"
#include "seq/swdb.h"
#include "util/rng.h"

namespace swdual {
namespace {

TEST(EndToEnd, FastaToSwdbToSearch) {
  const std::string fasta_path = ::testing::TempDir() + "/e2e.fa";
  const std::string swdb_path = ::testing::TempDir() + "/e2e.swdb";

  // 1. Write a small database as FASTA (the user's input format).
  seq::DatabaseProfile profile{"e2e", 30, 20, 200, 4.5, 0.4, 77};
  const auto records = seq::generate_database(profile);
  seq::write_fasta_file(fasta_path, records);

  // 2. Convert to the binary random-access format (paper §IV).
  const std::size_t n = seq::convert_fasta_to_swdb(
      fasta_path, swdb_path, seq::AlphabetKind::kProtein);
  EXPECT_EQ(n, records.size());

  // 3. Load through the SWDB reader, as master and workers do.
  const seq::SwdbReader reader(swdb_path);
  const auto db = reader.read_all();

  // 4. Sample queries and run the hybrid search.
  const auto queries = seq::sample_query_set(db, 4, 20, 200, 5);
  master::MasterConfig config;
  config.cpu_workers = 1;
  config.gpu_workers = 1;
  config.top_hits = 3;
  const auto report = master::run_search(queries, db, config);
  ASSERT_EQ(report.results.size(), 4u);

  // 5. Verify the top hit of query 0 against the oracle, and that a full
  //    alignment of that pair can be produced.
  const align::ScoringScheme scheme;
  int expected_best = 0;
  std::size_t expected_index = 0;
  for (std::size_t d = 0; d < db.size(); ++d) {
    const int score =
        align::gotoh_score(
            {queries[0].residues.data(), queries[0].residues.size()},
            {db[d].residues.data(), db[d].residues.size()}, scheme)
            .score;
    if (score > expected_best) {
      expected_best = score;
      expected_index = d;
    }
  }
  EXPECT_EQ(report.results[0].hits[0].score, expected_best);
  EXPECT_EQ(report.results[0].hits[0].db_index, expected_index);

  const align::Alignment alignment = align::sw_align_affine(
      {queries[0].residues.data(), queries[0].residues.size()},
      {db[expected_index].residues.data(), db[expected_index].residues.size()},
      scheme);
  EXPECT_EQ(alignment.score, expected_best);

  std::remove(fasta_path.c_str());
  std::remove(swdb_path.c_str());
}

TEST(EndToEnd, PaperPipelineVirtualAndRealAgreeOnStructure) {
  // The same allocation logic drives both the real master–slave runtime and
  // the virtual DES driver; on a common workload their CPU/GPU task splits
  // must agree.
  Rng rng(3);
  std::vector<seq::Sequence> db, queries;
  for (int i = 0; i < 50; ++i) {
    db.push_back(seq::random_protein(rng, "d", 100));
  }
  for (int i = 0; i < 8; ++i) {
    queries.push_back(
        seq::random_protein(rng, "q", 50 + static_cast<std::size_t>(i) * 30));
  }

  master::MasterConfig config;
  config.cpu_workers = 2;
  config.gpu_workers = 2;
  const auto report = master::run_search(queries, db, config);

  // Build the equivalent workload and schedule it directly.
  core::Workload workload;
  workload.name = "adhoc";
  for (const auto& q : queries) workload.query_lengths.push_back(q.length());
  workload.db_sequences = db.size();
  for (const auto& d : db) workload.db_residues += d.length();

  platform::PerfModel model;
  const auto tasks =
      core::make_tasks(workload, model.cpu_worker(), model.gpu_worker());
  const auto plan = sched::swdual_schedule(tasks, {2, 2});

  for (const auto& task : tasks) {
    const auto in_master = report.planned.find_task(task.id);
    const auto in_direct = plan.find_task(task.id);
    ASSERT_TRUE(in_master.has_value());
    ASSERT_TRUE(in_direct.has_value());
    EXPECT_EQ(static_cast<int>(in_master->pe.type),
              static_cast<int>(in_direct->pe.type))
        << "task " << task.id;
  }
}

TEST(EndToEnd, Table4ShapeAtReducedScale) {
  // Table IV: adding workers keeps reducing time, GCUPS grows ~linearly.
  const core::Workload w =
      core::make_workload("ensembl_dog", seq::QuerySetKind::kPaper, 20);
  const auto two = core::run_app_virtual(core::AppKind::kSwdual, w, 2);
  const auto four = core::run_app_virtual(core::AppKind::kSwdual, w, 4);
  const auto eight = core::run_app_virtual(core::AppKind::kSwdual, w, 8);
  EXPECT_LT(four.virtual_seconds, two.virtual_seconds);
  EXPECT_LT(eight.virtual_seconds, four.virtual_seconds);
  EXPECT_GT(four.gcups, two.gcups);
  EXPECT_GT(eight.gcups, four.gcups);
}

TEST(EndToEnd, Table5ShapeHomogeneousVsHeterogeneous) {
  // Table V: both query sets achieve similar GCUPS at 8 workers (the
  // allocator handles similar and dissimilar task sizes equally well).
  const core::Workload homo =
      core::make_workload("uniprot", seq::QuerySetKind::kHomogeneous, 1);
  const core::Workload hetero =
      core::make_workload("uniprot", seq::QuerySetKind::kHeterogeneous, 1);
  const auto homo_run = core::run_app_virtual(core::AppKind::kSwdual, homo, 8);
  const auto hetero_run =
      core::run_app_virtual(core::AppKind::kSwdual, hetero, 8);
  EXPECT_GT(homo_run.gcups, 0.0);
  EXPECT_GT(hetero_run.gcups, 0.0);
  // Paper: 145.14 vs 146.92 GCUPS — within a few percent of each other.
  EXPECT_NEAR(homo_run.gcups / hetero_run.gcups, 1.0, 0.35);
}

}  // namespace
}  // namespace swdual
