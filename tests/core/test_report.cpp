// Tests for search-report annotation and rendering.
#include <gtest/gtest.h>

#include "core/report.h"
#include "seq/dbgen.h"
#include "util/error.h"
#include "util/rng.h"

namespace swdual::core {
namespace {

align::KarlinAltschulParams test_params() { return {0.3, 0.1}; }

TEST(AnnotateHits, BitsAndEvaluesComputed) {
  master::QueryResult result;
  result.query_index = 0;
  result.hits = {{3, 100}, {7, 40}};
  const auto hits = annotate_hits(result, test_params(), 200, 1'000'000);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].db_index, 3u);
  EXPECT_GT(hits[0].bits, hits[1].bits);
  EXPECT_LT(hits[0].evalue, hits[1].evalue);
  EXPECT_NEAR(hits[0].evalue,
              0.1 * 200.0 * 1e6 * std::exp(-0.3 * 100), 1e-9);
}

TEST(RenderReport, ShowsSignificantHitsOnly) {
  Rng rng(11);
  std::vector<seq::Sequence> db, queries;
  for (int i = 0; i < 10; ++i) {
    db.push_back(seq::random_protein(rng, "ref" + std::to_string(i), 100));
  }
  queries.push_back(db[4]);  // exact copy: extremely significant
  queries[0].id = "probe";

  master::MasterConfig config;
  config.cpu_workers = 1;
  config.gpu_workers = 1;
  config.top_hits = 3;
  const auto report = master::run_search(queries, db, config);

  const std::string text =
      render_search_report(queries, db, report, test_params(), 1e-3);
  EXPECT_NE(text.find("Query: probe"), std::string::npos);
  EXPECT_NE(text.find("ref4"), std::string::npos);  // the self hit survives
  EXPECT_NE(text.find("GCUPS"), std::string::npos);
}

TEST(RenderReport, SuppressesInsignificantQueries) {
  Rng rng(13);
  std::vector<seq::Sequence> db, queries;
  for (int i = 0; i < 10; ++i) {
    db.push_back(seq::random_protein(rng, "ref" + std::to_string(i), 100));
  }
  queries.push_back(seq::random_protein(rng, "orphan", 100));
  master::MasterConfig config;
  config.cpu_workers = 1;
  config.gpu_workers = 1;
  const auto report = master::run_search(queries, db, config);
  // Absurdly strict cutoff: nothing qualifies.
  const std::string text =
      render_search_report(queries, db, report, test_params(), 1e-30);
  EXPECT_NE(text.find("no hits below"), std::string::npos);
}

TEST(RenderReport, RejectsNonPositiveCutoff) {
  const master::SearchReport report;
  EXPECT_THROW(
      render_search_report({}, {}, report, test_params(), 0.0),
      InvalidArgument);
}

}  // namespace
}  // namespace swdual::core
