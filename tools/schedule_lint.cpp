// schedule_lint: contract linter for allocation policies.
//
// Generates a synthetic heterogeneous workload, runs every allocation policy
// the master supports, and holds each result to the full contract stack:
// structural validity (validate_schedule), the certified approximation bound
// (check_approximation_bound — 2x for swdual, 3/2 for the refined variant),
// and exact DES replay (cross_validate_trace). The dynamic self-scheduling
// policy is linted through its simulated trace (validate_trace). Violations
// print the diagnostic plus a Gantt snippet of the offending schedule and
// exit nonzero, so the tool doubles as a CI tripwire.
//
//   ./schedule_lint --tasks 64 --cpus 4 --gpus 4 --seed 7
//
// --tamper injects a deliberate corruption into the swdual schedule before
// checking; the run must then FAIL. CI registers one tampered invocation
// with WILL_FAIL to prove the linter actually bites.
#include <iostream>
#include <string>
#include <vector>

#include "check/bounds.h"
#include "check/trace_check.h"
#include "platform/des.h"
#include "sched/baselines.h"
#include "sched/dual_approx.h"
#include "sched/schedule.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace swdual;

std::vector<sched::Task> make_workload(std::size_t n, std::uint64_t seed,
                                       double accel_lo, double accel_hi) {
  Rng rng(seed);
  std::vector<sched::Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double cpu = 1.0 + rng.uniform() * 199.0;
    const double accel = accel_lo + rng.uniform() * (accel_hi - accel_lo);
    tasks.push_back({i, cpu, cpu / accel});
  }
  return tasks;
}

/// Rebuild `schedule` with one deliberate corruption. Every mode must be
/// caught by at least one checker in lint_static.
sched::Schedule tamper_schedule(const sched::Schedule& schedule,
                                const std::string& mode) {
  SWDUAL_REQUIRE(!schedule.empty(), "nothing to tamper with");
  SWDUAL_REQUIRE(mode == "drop" || mode == "stretch" || mode == "overlap" ||
                     mode == "misplace" || mode == "duplicate",
                 "unknown --tamper mode '" + mode + "'");
  std::vector<sched::Assignment> all = schedule.assignments();
  if (mode == "drop") {
    all.erase(all.begin());                  // task vanishes from the plan
  } else if (mode == "duplicate") {
    all.push_back(all.front());              // placed twice
  } else if (mode == "stretch") {
    all.front().end += 1.0;                  // wrong duration for its PE
  } else if (mode == "misplace") {           // other PE class, old duration
    sched::Assignment& a = all.front();
    a.pe.type = a.pe.type == sched::PeType::kCpu ? sched::PeType::kGpu
                                                 : sched::PeType::kCpu;
    a.pe.index = 0;
  } else {  // overlap: slide a task midway into its PE predecessor. A blind
            // shift of assignment 0 can land in free space and lint clean,
            // so find a PE that actually holds two tasks.
    sched::Assignment* victim = nullptr;
    const sched::Assignment* neighbour = nullptr;
    for (sched::Assignment& a : all) {
      for (const sched::Assignment& b : all) {
        if (&a != &b && a.pe.type == b.pe.type && a.pe.index == b.pe.index &&
            b.start < a.start) {
          victim = &a;
          neighbour = &b;
        }
      }
    }
    SWDUAL_REQUIRE(victim != nullptr,
                   "no PE holds two tasks; cannot build an overlap");
    const double duration = victim->duration();
    victim->start = neighbour->start + 0.5 * neighbour->duration();
    victim->end = victim->start + duration;
  }
  sched::Schedule out;
  for (const sched::Assignment& a : all) out.add(a);
  return out;
}

struct LintStats {
  int checked = 0;
  int violations = 0;
};

void report_violation(LintStats& stats, const std::string& policy,
                      const std::string& what, const sched::Schedule& schedule,
                      const sched::HybridPlatform& platform) {
  ++stats.violations;
  std::cout << "FAIL  " << policy << ": " << what << '\n';
  if (!schedule.empty()) {
    std::cout << render_gantt(schedule, platform);
  }
}

void lint_static(LintStats& stats, const std::string& policy,
                 const sched::Schedule& schedule,
                 const std::vector<sched::Task>& tasks,
                 const sched::HybridPlatform& platform, double bound_factor) {
  ++stats.checked;
  try {
    sched::validate_schedule(schedule, tasks, platform);
    if (bound_factor > 0) {
      const check::BoundCheckReport report = check::check_approximation_bound(
          schedule, tasks, platform, bound_factor);
      std::cout << "ok    " << policy << ": makespan " << report.makespan
                << ", ratio " << report.ratio << " <= " << report.factor
                << " of certified LB " << report.bounds.certified << '\n';
    } else {
      std::cout << "ok    " << policy << ": makespan " << schedule.makespan()
                << " (no approximation guarantee to check)\n";
    }
    check::cross_validate_trace(
        platform::simulate_static(schedule, tasks, platform), schedule, tasks,
        platform);
  } catch (const Error& e) {
    report_violation(stats, policy, e.what(), schedule, platform);
  }
}

void lint_dynamic(LintStats& stats, const std::vector<sched::Task>& tasks,
                  const sched::HybridPlatform& platform) {
  ++stats.checked;
  try {
    const platform::ExecutionTrace trace =
        platform::simulate_self_scheduling(tasks, platform);
    check::validate_trace(trace, tasks, platform);
    std::cout << "ok    self-scheduling: simulated makespan " << trace.makespan
              << ", idle " << trace.idle_fraction(platform) * 100 << "%\n";
  } catch (const Error& e) {
    report_violation(stats, "self-scheduling", e.what(), {}, platform);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("schedule_lint",
                "run every allocation policy and report contract violations");
  cli.add_option("tasks", "number of synthetic tasks", "64");
  cli.add_option("cpus", "CPUs (m)", "4");
  cli.add_option("gpus", "GPUs (k)", "4");
  cli.add_option("seed", "workload seed", "7");
  cli.add_option("accel-lo", "minimum GPU acceleration", "1.0");
  cli.add_option("accel-hi", "maximum GPU acceleration", "30.0");
  cli.add_option("epsilon", "binary-search epsilon", "1e-4");
  cli.add_option("tamper",
                 "corrupt the swdual plan: none|drop|duplicate|stretch|"
                 "overlap|misplace",
                 "none");
  try {
    cli.parse(argc, argv);
    if (cli.help_requested()) {
      std::cout << cli.usage();
      return 0;
    }

    const auto tasks = make_workload(
        cli.option_uint("tasks"),
        static_cast<std::uint64_t>(cli.option_uint("seed")),
        cli.option_double("accel-lo"), cli.option_double("accel-hi"));
    const sched::HybridPlatform platform{
        cli.option_uint("cpus"),
        cli.option_uint("gpus")};
    const double epsilon = cli.option_double("epsilon");
    const std::string tamper = cli.option("tamper");

    LintStats stats;
    sched::Schedule dual = sched::swdual_schedule(tasks, platform, epsilon);
    if (tamper != "none") dual = tamper_schedule(dual, tamper);
    lint_static(stats, "swdual", dual, tasks, platform,
                check::kDualApproxFactor);
    lint_static(stats, "swdual-refined",
                sched::swdual_schedule_refined(tasks, platform, epsilon),
                tasks, platform, check::kRefinedApproxFactor);
    lint_static(stats, "equal-power", sched::equal_power(tasks, platform),
                tasks, platform, 0.0);
    lint_static(stats, "proportional",
                sched::proportional_static(tasks, platform), tasks, platform,
                0.0);
    lint_static(stats, "lpt", sched::lpt_hybrid(tasks, platform), tasks,
                platform, 0.0);
    lint_dynamic(stats, tasks, platform);

    std::cout << stats.checked << " polic" << (stats.checked == 1 ? "y" : "ies")
              << " checked, " << stats.violations << " violation(s)\n";
    return stats.violations == 0 ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "schedule_lint: " << e.what() << '\n';
    return 2;
  }
}
