#!/usr/bin/env python3
"""Project-rule linter for the SWDUAL source tree.

Enforces conventions clang-tidy cannot express:

  * every header starts with ``#pragma once``
  * banned unsafe/stateful C functions (rand, strtok, sprintf, atoi) —
    the project uses util/rng.h and iostreams instead
  * no wall-clock reads in the DES or scheduler (virtual-time code paths
    must stay deterministic and reproducible)
  * no unordered-container iteration in the observability exporters
    (trace/metrics output order must be deterministic for golden tests)
  * no raw stream/stdio reads of SWDB record payloads outside seq/swdb.cpp
    (every consumer goes through SwdbReader or the zero-copy MappedSwdb so
    format evolution stays in one translation unit)
  * lock hygiene: raw standard lockables (std::mutex, std::lock_guard,
    std::condition_variable, ...) are banned outside src/util/mutex.h —
    they are invisible to Clang's thread-safety analysis; use the annotated
    util::Mutex / util::MutexLock / util::CondVar wrappers. std::once_flag
    and std::call_once stay allowed (no guarded state to annotate).
  * bare .lock()/.unlock()/... calls are banned outside src/util/ — manual
    lock management defeats both the RAII discipline and the static
    analysis; use the scoped util::*MutexLock types
  * no ``banded_gotoh_score`` calls outside src/align/ — the scalar banded
    kernel is the screen's reference oracle, not a search primitive; other
    layers go through the two-stage filter pipeline (search_database_filtered
    / banded_screen), which keeps band semantics and escalation in one place
  * no ``calibrate_gapped_params`` / ``sw_align_affine`` calls outside
    src/align/ and src/core/ — statistics calibration is StatsCache's job
    (deterministic, shared, cached per database) and the O(m·n) traceback
    must not leak into service layers; annotation goes through
    AnnotateConfig + annotate_hits
  * optionally (--cxx), every header under src/ compiles standalone

Exit status 0 when clean, 1 with one ``file:line: message`` per violation
otherwise. Run from anywhere: paths resolve relative to the repo root.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

BANNED_CALLS = re.compile(r"(?<![\w:])(?:std::)?(rand|strtok|sprintf|atoi)\s*\(")
WALL_CLOCK = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
)
UNORDERED = re.compile(r"std::unordered_(map|set|multimap|multiset)")

# Virtual-time code: progress is driven by modeled task durations, never by
# the host clock. util/timer.h (wall time) is for the outermost reports and
# perf-model calibration only.
VIRTUAL_TIME_PREFIXES = ("src/platform/des", "src/sched/")
WALL_CLOCK_HEADERS = re.compile(r'#include\s+"util/timer\.h"')

# Exporters whose output order golden tests depend on.
DETERMINISTIC_DIRS = ("obs",)

# Compile-time lock discipline (util/thread_annotations.h): raw standard
# lockables are opaque to Clang's -Wthread-safety, so every concurrent layer
# must hold its state under the annotated wrappers from util/mutex.h — the
# one file allowed to name the std types. std::once_flag / std::call_once
# are deliberately NOT banned: one-shot initialization has no guarded member
# to annotate and no ordering to declare.
RAW_LOCKABLE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
RAW_LOCKABLE_ALLOWED = ("src/util/mutex.h",)

# Manual lock()/unlock() calls defeat both RAII and the static analysis
# (an early return or throw leaks the capability). src/util/ implements the
# wrappers, so only it may touch the primitive operations.
BARE_LOCK_CALL = re.compile(
    r"\.\s*(lock|unlock|try_lock|lock_shared|unlock_shared|"
    r"try_lock_shared)\s*\("
)
BARE_LOCK_ALLOWED_PREFIX = "src/util/"

# Raw byte-level input: .read(...) on a stream or C stdio fread. Database
# payload parsing is SwdbReader/MappedSwdb's job; any other TU doing its own
# reads would fork the format knowledge (and silently miss v2 sections).
RAW_PAYLOAD_READ = re.compile(r"(?:\.read\s*\(|(?<![\w:])fread\s*\()")
RAW_READ_ALLOWED = ("src/seq/swdb.cpp",)

# The scalar banded kernel is align-internal: it is the bit-identity oracle
# for the vectorized screen and the overflow fallback of the filter stage.
# Any other layer calling it directly would fork band/escalation semantics
# away from the pipeline (FilterConfig validation, edge_hit handling, the
# 8->16->32-bit ladder), so everything outside src/align/ must go through
# search_database_filtered / the engines' *_filtered entry points.
BANDED_ORACLE_CALL = re.compile(r"\bbanded_gotoh_score\s*\(")
BANDED_ORACLE_ALLOWED_PREFIX = "src/align/"

# Statistics calibration and the full-matrix traceback are annotation
# internals: calibrate_gapped_params must go through align::StatsCache (one
# deterministic calibration per (scheme, alphabet, db), shared), and
# sw_align_affine's O(m·n) matrix must not leak into service layers — the
# annotate pipeline uses the frugal wrapper on located regions. Other
# layers request annotation via AnnotateConfig / annotate_hits instead.
STATS_INTERNAL_CALL = re.compile(
    r"\b(calibrate_gapped_params|sw_align_affine)\s*\("
)
STATS_INTERNAL_ALLOWED_PREFIXES = ("src/align/", "src/core/")


def strip_comments(text: str) -> str:
    """Blank out comments and string literals, preserving line numbers."""
    out: list[str] = []
    i, n = 0, len(text)
    mode = None  # None | "line" | "block" | "str" | "char"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
            elif c == "'":
                mode = "char"
            out.append(c)
        else:
            if mode == "line" and c == "\n":
                mode = None
            elif mode == "block" and c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            elif mode in ("str", "char") and c == "\\":
                out.append("  ")
                i += 2
                continue
            elif (mode == "str" and c == '"') or (mode == "char" and c == "'"):
                mode = None
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def iter_sources():
    for path in sorted(SRC.rglob("*")):
        if path.suffix in (".h", ".cpp") and path.is_file():
            yield path


def lint_file(path: pathlib.Path) -> list[str]:
    raw = path.read_text(encoding="utf-8")
    code = strip_comments(raw)
    rel = path.relative_to(REPO)
    problems = []

    def report(lineno: int, message: str) -> None:
        problems.append(f"{rel}:{lineno}: {message}")

    if path.suffix == ".h":
        first_code_line = next(
            (l for l in raw.splitlines() if l.strip() and not l.lstrip().startswith("//")),
            "",
        )
        if first_code_line.strip() != "#pragma once":
            report(1, "header must open with '#pragma once' after the file comment")

    for match in BANNED_CALLS.finditer(code):
        lineno = code.count("\n", 0, match.start()) + 1
        report(
            lineno,
            f"banned call '{match.group(1)}' — use util/rng.h / iostreams "
            "/ std::sto* instead",
        )

    top_dir = rel.parts[1] if len(rel.parts) > 1 else ""
    if rel.as_posix().startswith(VIRTUAL_TIME_PREFIXES):
        for pattern, message in (
            (WALL_CLOCK, "wall-clock read in virtual-time code"),
            (WALL_CLOCK_HEADERS, "util/timer.h (wall time) in virtual-time code"),
        ):
            for match in pattern.finditer(code):
                lineno = code.count("\n", 0, match.start()) + 1
                report(lineno, f"{message} — the DES and schedulers must be "
                               "deterministic in virtual time")

    if rel.as_posix() not in RAW_LOCKABLE_ALLOWED:
        for match in RAW_LOCKABLE.finditer(code):
            lineno = code.count("\n", 0, match.start()) + 1
            report(
                lineno,
                f"raw std::{match.group(1)} — invisible to the thread-safety "
                "analysis; use the annotated util::Mutex / util::MutexLock / "
                "util::CondVar wrappers (util/mutex.h)",
            )

    if not rel.as_posix().startswith(BARE_LOCK_ALLOWED_PREFIX):
        for match in BARE_LOCK_CALL.finditer(code):
            lineno = code.count("\n", 0, match.start()) + 1
            report(
                lineno,
                f"bare .{match.group(1)}() outside src/util/ — manual lock "
                "management leaks on early exit; use a scoped "
                "util::*MutexLock",
            )

    if rel.as_posix() not in RAW_READ_ALLOWED:
        for match in RAW_PAYLOAD_READ.finditer(code):
            lineno = code.count("\n", 0, match.start()) + 1
            report(
                lineno,
                "raw stream/fread outside seq/swdb.cpp — read database "
                "records via SwdbReader or MappedSwdb",
            )

    if not rel.as_posix().startswith(BANDED_ORACLE_ALLOWED_PREFIX):
        for match in BANDED_ORACLE_CALL.finditer(code):
            lineno = code.count("\n", 0, match.start()) + 1
            report(
                lineno,
                "banded_gotoh_score outside src/align/ — the scalar banded "
                "oracle is align-internal; use search_database_filtered / "
                "the *_filtered engine entry points",
            )

    if not rel.as_posix().startswith(STATS_INTERNAL_ALLOWED_PREFIXES):
        for match in STATS_INTERNAL_CALL.finditer(code):
            lineno = code.count("\n", 0, match.start()) + 1
            report(
                lineno,
                f"{match.group(1)} outside src/align//src/core/ — "
                "calibration goes through align::StatsCache and tracebacks "
                "through the annotate pipeline (AnnotateConfig + "
                "annotate_hits)",
            )

    if top_dir in DETERMINISTIC_DIRS:
        for match in UNORDERED.finditer(code):
            lineno = code.count("\n", 0, match.start()) + 1
            report(
                lineno,
                f"std::unordered_{match.group(1)} in an exporter — iteration "
                "order feeds trace/metrics output; use std::map/std::set",
            )

    return problems


def check_self_contained(cxx: str) -> list[str]:
    """Compile each header alone: it must pull in everything it needs."""
    problems = []
    with tempfile.TemporaryDirectory() as tmp:
        tu = pathlib.Path(tmp) / "self_contained.cpp"
        for header in sorted(SRC.rglob("*.h")):
            rel = header.relative_to(SRC)
            tu.write_text(f'#include "{rel.as_posix()}"\n', encoding="utf-8")
            proc = subprocess.run(
                [cxx, "-std=c++20", "-fsyntax-only", "-I", str(SRC), str(tu)],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                first = (proc.stderr.strip() or "compile failed").splitlines()[0]
                problems.append(
                    f"src/{rel.as_posix()}:1: header is not self-contained: {first}"
                )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cxx",
        help="compiler for the header self-containment check (skipped if unset)",
    )
    args = parser.parse_args()

    problems: list[str] = []
    for path in iter_sources():
        problems.extend(lint_file(path))
    if args.cxx:
        problems.extend(check_self_contained(args.cxx))

    for problem in problems:
        print(problem)
    count = len(list(iter_sources()))
    if problems:
        print(f"swdual_lint: {len(problems)} problem(s) in {count} files")
        return 1
    print(f"swdual_lint: {count} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
