// Ablation — fine-grained vs very coarse-grained parallelization (Figs. 2/3).
//
// The paper's §II-C describes two ways to parallelize SW across PEs:
//   fine-grained   — one DP matrix split into column blocks, wavefront
//                    parallel (Fig. 2): pipeline fill/drain leaves PEs idle
//                    at the edges, speedup = m·P / (m + P - 1) for m block
//                    rows on P PEs;
//   coarse-grained — one whole query-vs-database task per PE (Fig. 3):
//                    perfect within a task but prone to load imbalance.
// SWDUAL combines both: coarse across tasks, fine inside each worker.
// This harness quantifies the trade-off in virtual time.
#include <cstdio>

#include "align/scalar.h"
#include "align/wavefront.h"
#include "bench_common.h"
#include "core/workload.h"
#include "platform/des.h"
#include "sched/baselines.h"
#include "seq/dbgen.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace swdual;

/// Wavefront pipeline model of Fig. 2: m block-rows streamed over P PEs.
double fine_grained_seconds(double serial_seconds, std::size_t block_rows,
                            std::size_t pes) {
  const double per_row = serial_seconds / static_cast<double>(block_rows);
  // PE p starts after p pipeline steps; total steps = block_rows + P - 1,
  // each step computing one block of 1/P of a row per PE.
  return per_row / static_cast<double>(pes) *
         static_cast<double>(block_rows + pes - 1);
}

}  // namespace

int main() {
  bench::banner("Ablation: fine-grained (Fig. 2) vs coarse-grained (Fig. 3)",
                "40-query UniProt workload, SWIPE-class CPU workers");

  const core::Workload workload =
      core::make_workload("uniprot", seq::QuerySetKind::kPaper, 1);
  platform::PerfModel model;

  TextTable table;
  table.set_header({"PEs", "fine-grained (s)", "coarse self-sched (s)",
                    "coarse LPT (s)", "fine speedup", "coarse speedup"});

  // Serial baseline: whole workload on one SWIPE-class CPU.
  double serial = 0.0;
  std::vector<sched::Task> tasks;
  for (std::size_t q = 0; q < workload.query_lengths.size(); ++q) {
    const double seconds =
        model.swipe_cpu.seconds_for(workload.cells(q));
    serial += seconds;
    tasks.push_back({q, seconds, seconds});
  }

  for (const std::size_t pes : {2u, 4u, 8u, 16u, 32u}) {
    // Fine-grained: every task individually wavefront-parallelized over all
    // PEs (block rows ≈ query length / 64-row blocks), tasks in sequence.
    double fine = 0.0;
    for (std::size_t q = 0; q < workload.query_lengths.size(); ++q) {
      const std::size_t block_rows =
          std::max<std::size_t>(1, workload.query_lengths[q] / 64);
      fine += fine_grained_seconds(
          model.swipe_cpu.seconds_for(workload.cells(q)), block_rows, pes);
    }
    // Coarse-grained: task-level distribution (Fig. 3), no intra-task split.
    const sched::HybridPlatform platform{pes, 0};
    const double coarse_ss =
        platform::simulate_self_scheduling(tasks, platform).makespan;
    const double coarse_lpt =
        sched::lpt_hybrid(tasks, platform).makespan();
    table.add_row({std::to_string(pes), TextTable::fmt(fine, 1),
                   TextTable::fmt(coarse_ss, 1), TextTable::fmt(coarse_lpt, 1),
                   TextTable::fmt(serial / fine, 2),
                   TextTable::fmt(serial / coarse_ss, 2)});
  }
  std::printf("serial reference: %.1f s\n\n%s", serial,
              table.render().c_str());
  std::printf(
      "\nfine-grained scales inside one comparison but pays pipeline "
      "fill/drain;\ncoarse-grained scales across tasks but the longest task "
      "bounds the tail\n— with 40 tasks both saturate near the task count, "
      "which is why SWDUAL\nuses coarse scheduling across workers and "
      "fine-grained SIMD inside each.\n");
  bench::emit_csv(table, "ablation_granularity.csv");

  // Real Fig. 2 kernel on this host: the tile-wavefront implementation run
  // at several block counts, verified against the scalar oracle (on one
  // core this measures tiling overhead; on a multi-core host it measures
  // the fine-grained speedup directly).
  std::printf("\nreal wavefront kernel (2000x2000 cells, this host):\n");
  Rng rng(5);
  const seq::Sequence q = seq::random_protein(rng, "q", 2000);
  const seq::Sequence d = seq::random_protein(rng, "d", 2000);
  const align::ScoringScheme scheme;
  const std::span<const std::uint8_t> qv(q.residues.data(),
                                         q.residues.size());
  const std::span<const std::uint8_t> dv(d.residues.data(),
                                         d.residues.size());
  const int oracle = align::gotoh_score(qv, dv, scheme).score;
  TextTable real_table;
  real_table.set_header({"col blocks", "time (ms)", "score ok"});
  ThreadPool pool(4);
  for (const std::size_t blocks : {1u, 2u, 4u, 8u}) {
    WallTimer timer;
    const auto r =
        align::wavefront_gotoh_score(qv, dv, scheme, pool, {64, blocks});
    real_table.add_row({std::to_string(blocks),
                        TextTable::fmt(timer.millis(), 1),
                        r.score == oracle ? "yes" : "NO"});
  }
  std::printf("%s", real_table.render().c_str());
  return 0;
}
