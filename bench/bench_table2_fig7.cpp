// Table II + Fig. 7 — execution time vs number of workers, UniProt database,
// 40 query sequences (100..5000 aa).
//
// Baselines run with 1..4 workers of their own PE type; SWDUAL runs with 2..8
// mixed workers split per §V-A (GPUs first). Times are virtual (modeled on
// the paper's hardware classes; see DESIGN.md calibration) at the paper's
// full database scale. The paper's measured values are printed alongside.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "core/apps.h"

int main(int argc, char** argv) {
  using namespace swdual;
  using core::AppKind;

  // Full paper scale by default; pass a denominator to shrink.
  const std::size_t scale = argc > 1 ? std::stoul(argv[1]) : 1;
  bench::banner(
      "Table II + Fig. 7: execution times vs workers (UniProt, 40 queries)",
      scale == 1 ? "database at full paper scale (537,505 sequences), "
                   "virtual-time model"
                 : "database scaled down by 1/" + std::to_string(scale));

  const core::Workload workload =
      core::make_workload("uniprot", seq::QuerySetKind::kPaper, scale);
  std::printf("workload: %zu queries, %zu db sequences, %.3e cells\n\n",
              workload.query_lengths.size(), workload.db_sequences,
              static_cast<double>(workload.total_cells()));

  // Paper Table II values for side-by-side comparison (full scale only).
  const std::map<std::string, std::vector<double>> paper = {
      {"SWPS3", {69208.2, 36174.09, 25206.563, 18904.31}},
      {"STRIPED", {7190, 3615.38, 1369.33, 1027.28}},
      {"SWIPE", {2367.24, 1199.47, 816.61, 610.23}},
      {"CUDASW++", {785.26, 445.611, 350.09, 292.157}},
      {"SWDUAL", {543.28, 472.84, 271.98, 266.69, 239.04, 183.12, 142.98}},
  };

  TextTable table;
  table.set_header({"application", "workers", "time (s, reproduced)",
                    "time (s, paper)", "GCUPS", "idle %"});
  const auto emit = [&](AppKind app, std::size_t workers,
                        std::size_t paper_index) {
    const core::AppRunResult run =
        core::run_app_virtual(app, workload, workers);
    const auto& paper_row = paper.at(core::app_name(app));
    const std::string paper_value =
        scale == 1 && paper_index < paper_row.size()
            ? TextTable::fmt(paper_row[paper_index], 2)
            : "-";
    table.add_row({core::app_name(app), std::to_string(workers),
                   TextTable::fmt(run.virtual_seconds, 2), paper_value,
                   TextTable::fmt(run.gcups, 2),
                   TextTable::fmt(run.idle_fraction * 100, 1)});
  };

  for (const AppKind app : {AppKind::kSwps3, AppKind::kStriped,
                            AppKind::kSwipe, AppKind::kCudasw}) {
    for (std::size_t workers = 1; workers <= 4; ++workers) {
      emit(app, workers, workers - 1);
    }
  }
  // SWDUAL: workers 2..8 (paper's Table II bottom block).
  for (std::size_t workers = 2; workers <= 8; ++workers) {
    emit(AppKind::kSwdual, workers, workers - 2);
  }

  std::printf("%s", table.render().c_str());
  bench::emit_csv(table, "table2_fig7.csv");

  // Fig. 7 headline checks from §V-A.
  const double swdual2 =
      core::run_app_virtual(AppKind::kSwdual, workload, 2).virtual_seconds;
  const double swipe2 =
      core::run_app_virtual(AppKind::kSwipe, workload, 2).virtual_seconds;
  const double striped2 =
      core::run_app_virtual(AppKind::kStriped, workload, 2).virtual_seconds;
  const double swps3_2 =
      core::run_app_virtual(AppKind::kSwps3, workload, 2).virtual_seconds;
  std::printf(
      "2-worker reductions vs SWDUAL (paper: 54.7%% / 85%% / 98%%):\n"
      "  vs SWIPE   %.1f%%\n  vs STRIPED %.1f%%\n  vs SWPS3   %.1f%%\n",
      100.0 * (1.0 - swdual2 / swipe2), 100.0 * (1.0 - swdual2 / striped2),
      100.0 * (1.0 - swdual2 / swps3_2));
  return 0;
}
