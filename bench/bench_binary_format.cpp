// §IV — the binary random-access format vs FASTA.
//
// The paper motivates SWDB with two properties: direct reads of sequences
// "in any position inside the file" and simplified memory allocation from
// known lengths. This harness measures both against FASTA on a synthetic
// database: full-scan parse time, k random record reads, and length-only
// index access.
#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "seq/dbgen.h"
#include "seq/fasta.h"
#include "seq/fasta_index.h"
#include "seq/swdb.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace swdual;
  const std::size_t num_records = argc > 1 ? std::stoul(argv[1]) : 20000;
  bench::banner("§IV: binary random-access format (SWDB) vs FASTA",
                std::to_string(num_records) + " synthetic records");

  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string fasta_path = dir + "/swdual_bench_db.fa";
  const std::string swdb_path = dir + "/swdual_bench_db.swdb";

  seq::DatabaseProfile profile{"bench", num_records, 50, 2000, 5.7, 0.65, 5};
  const auto records = seq::generate_database(profile);
  seq::write_fasta_file(fasta_path, records);
  seq::write_swdb(swdb_path, records, seq::AlphabetKind::kProtein);

  TextTable table;
  table.set_header(
      {"operation", "FASTA (parse)", "FASTA (indexed)", "SWDB",
       "SWDB speedup vs parse"});

  // Full sequential load.
  WallTimer timer;
  const auto fasta_all =
      seq::read_fasta_file(fasta_path, seq::AlphabetKind::kProtein);
  const double fasta_scan = timer.seconds();
  timer.reset();
  const seq::FastaIndex fai(fasta_path, seq::AlphabetKind::kProtein);
  const double fai_build = timer.seconds();
  timer.reset();
  const seq::SwdbReader reader(swdb_path);
  const auto swdb_all = reader.read_all();
  const double swdb_scan = timer.seconds();
  table.add_row({"full scan / index build (s)", TextTable::fmt(fasta_scan, 3),
                 TextTable::fmt(fai_build, 3), TextTable::fmt(swdb_scan, 3),
                 TextTable::fmt(fasta_scan / swdb_scan, 1) + "x"});

  // 1000 random record reads: plain FASTA must re-parse; the index and SWDB
  // seek directly.
  Rng rng(17);
  std::vector<std::size_t> picks;
  for (int i = 0; i < 1000; ++i) picks.push_back(rng.below(records.size()));

  timer.reset();
  {
    const auto parsed =
        seq::read_fasta_file(fasta_path, seq::AlphabetKind::kProtein);
    std::size_t checksum = 0;
    for (std::size_t pick : picks) checksum += parsed[pick].length();
    std::printf("(fasta checksum %zu)\n", checksum);
  }
  const double fasta_random = timer.seconds();
  timer.reset();
  {
    std::size_t checksum = 0;
    for (std::size_t pick : picks) checksum += fai.read(pick).length();
    std::printf("(fai checksum %zu)\n", checksum);
  }
  const double fai_random = timer.seconds();
  timer.reset();
  {
    std::size_t checksum = 0;
    for (std::size_t pick : picks) checksum += reader.read(pick).length();
    std::printf("(swdb checksum %zu)\n", checksum);
  }
  const double swdb_random = timer.seconds();
  table.add_row({"1000 random reads (s)", TextTable::fmt(fasta_random, 3),
                 TextTable::fmt(fai_random, 3),
                 TextTable::fmt(swdb_random, 3),
                 TextTable::fmt(fasta_random / swdb_random, 1) + "x"});

  // Length-only access (the scheduler's task-cost estimation path).
  timer.reset();
  {
    const auto parsed =
        seq::read_fasta_file(fasta_path, seq::AlphabetKind::kProtein);
    std::uint64_t total = 0;
    for (const auto& r : parsed) total += r.length();
    std::printf("(fasta residues %llu)\n",
                static_cast<unsigned long long>(total));
  }
  const double fasta_lengths = timer.seconds();
  timer.reset();
  {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < fai.size(); ++i) total += fai.length(i);
    std::printf("(fai residues %llu)\n",
                static_cast<unsigned long long>(total));
  }
  const double fai_lengths = std::max(timer.seconds(), 1e-7);
  timer.reset();
  {
    std::uint64_t total = reader.total_residues();
    std::printf("(swdb residues %llu)\n",
                static_cast<unsigned long long>(total));
  }
  const double swdb_lengths = std::max(timer.seconds(), 1e-7);
  table.add_row({"length sweep (s)", TextTable::fmt(fasta_lengths, 4),
                 TextTable::fmt(fai_lengths, 4),
                 TextTable::fmt(swdb_lengths, 4),
                 TextTable::fmt(fasta_lengths / swdb_lengths, 1) + "x"});

  std::printf("%s", table.render().c_str());
  bench::emit_csv(table, "binary_format.csv");
  std::filesystem::remove(fasta_path);
  std::filesystem::remove(swdb_path);
  return 0;
}
