// Closed-loop traffic driver for the concurrent query service (src/serve).
//
// Simulates a deployment day-in-the-life: N client threads submit queries
// drawn Zipf-skewed from a fixed pool (real annotation traffic repeats hot
// queries), each waiting for its answer before submitting the next (closed
// loop, so admission backpressure throttles clients instead of dropping
// work). Reports sustained throughput, end-to-end latency percentiles
// (p50/p95/p99 from the service's own serve_latency_seconds histogram),
// result-cache hit rate, batching effectiveness, and a bit-identity check of
// every response against the direct align::search_database path.
//
// With --shards N the service runs the sharded scatter-gather engine
// (src/align/sharded_search.h): N residue-balanced shards, each batch's
// distinct queries sharing ONE pass over every shard chunk. The JSON output
// (--json) records the amortized per-query DB scan cost
// (db_passes_per_query = shard group passes / distinct searches — below 1.0
// whenever micro-batching collapses concurrent queries into shared passes)
// plus the planner's residue imbalance, which --db-zipf-s stresses with a
// Zipf-skewed record-length distribution (the hot-shard scenario).
//
//   ./bench_serve [--records N] [--len L] [--db-zipf-s S] [--pool P]
//                 [--query-len Q] [--requests R] [--clients C] [--zipf-s S]
//                 [--max-batch B] [--admission A] [--cache K]
//                 [--cpu-workers M] [--gpu-workers G] [--shards N]
//                 [--threads-per-shard T] [--annotate MODE] [--evalue E]
//                 [--seed S] [--out CSV] [--json PATH] [--scenario NAME]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "align/annotate.h"
#include "align/search.h"
#include "align/sharded_search.h"
#include "bench_common.h"
#include "obs/metrics.h"
#include "seq/dbgen.h"
#include "serve/service.h"
#include "util/cli.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace swdual;

/// Sample an index in [0, weights.size()) from the precomputed Zipf CDF.
std::size_t sample_cdf(Rng& rng, const std::vector<double>& cdf) {
  const double u = rng.uniform() * cdf.back();
  for (std::size_t i = 0; i < cdf.size(); ++i) {
    if (u < cdf[i]) return i;
  }
  return cdf.size() - 1;
}

/// Minimal JSON string escaping (quotes and backslashes; bench strings
/// contain nothing fancier).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_serve",
                "closed-loop Zipf traffic against the query service");
  cli.add_option("records", "database records", "400");
  cli.add_option("len", "residues per record", "150");
  cli.add_option("db-zipf-s",
                 "Zipf skew of DB record lengths (0 = uniform jitter)", "0");
  cli.add_option("pool", "distinct queries in the traffic pool", "24");
  cli.add_option("query-len", "query length", "120");
  cli.add_option("requests", "total requests across all clients", "600");
  cli.add_option("clients", "closed-loop client threads", "6");
  cli.add_option("zipf-s", "Zipf skew exponent (0 = uniform)", "1.1");
  cli.add_option("max-batch", "service micro-batch limit", "8");
  cli.add_option("admission", "admission queue capacity", "64");
  cli.add_option("cache", "result cache capacity", "256");
  cli.add_option("cpu-workers", "CPU workers", "2");
  cli.add_option("gpu-workers", "GPU workers", "1");
  cli.add_option("shards", "scatter-gather shards (0 = master path)", "0");
  cli.add_option("threads-per-shard", "scan threads inside each shard", "1");
  cli.add_option("filter-mode",
                 "two-stage search filter: off (exact full scan) | heuristic "
                 "(banded screen + exact candidate rescan)",
                 "off");
  cli.add_option("band", "screening band half-width (heuristic filter)",
                 "32");
  cli.add_option("keep-factor",
                 "screened candidates kept per requested hit (heuristic "
                 "filter)",
                 "4.0");
  cli.add_option("annotate",
                 "per-hit annotation: off | stats (e-value + bit score) | "
                 "stats+cigar (adds a traceback CIGAR)",
                 "off");
  cli.add_option("evalue",
                 "drop hits with e-value above this cutoff (--annotate; "
                 "inf = keep all, preserving the bit-identity oracle)",
                 "inf");
  cli.add_option("plant",
                 "homologs planted per pool query (mutated query copies "
                 "appended to the database; enables the recall oracle's "
                 "hard targets)",
                 "0");
  cli.add_option("seed", "traffic RNG seed", "7");
  cli.add_option("out", "CSV output path", "serve_bench.csv");
  cli.add_option("json", "JSON scenario output path (empty = none)", "");
  cli.add_option("scenario", "scenario label for the JSON record", "default");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  std::size_t records = 0, len = 0, pool_size = 0, query_len = 0;
  std::size_t requests = 0, clients = 0, plant = 0;
  double zipf_s = 0.0, db_zipf_s = 0.0;
  serve::ServiceConfig config;
  std::uint64_t seed = 0;
  try {
    records = cli.option_uint("records");
    len = cli.option_uint("len");
    db_zipf_s = cli.option_double("db-zipf-s");
    pool_size = cli.option_uint("pool");
    query_len = cli.option_uint("query-len");
    requests = cli.option_uint("requests");
    clients = cli.option_uint("clients");
    zipf_s = cli.option_double("zipf-s");
    config.max_batch = cli.option_uint("max-batch");
    config.admission_capacity = cli.option_uint("admission");
    config.result_cache_capacity = cli.option_uint("cache");
    config.master.cpu_workers = cli.option_uint("cpu-workers");
    config.master.gpu_workers = cli.option_uint("gpu-workers");
    config.shards = cli.option_uint("shards");
    config.threads_per_shard =
        std::max<std::size_t>(1, cli.option_uint("threads-per-shard"));
    if (!align::parse_filter_mode(cli.option("filter-mode"),
                                  config.master.filter.mode)) {
      throw InvalidArgument("unknown filter mode: " +
                            cli.option("filter-mode") +
                            " (want off|heuristic)");
    }
    config.master.filter.band = cli.option_uint("band");
    config.master.filter.keep_factor = cli.option_double("keep-factor");
    config.master.filter.validate();
    if (!align::parse_annotate_mode(cli.option("annotate"),
                                    config.master.annotate.mode)) {
      throw InvalidArgument("unknown annotate mode: " + cli.option("annotate") +
                            " (want off|stats|stats+cigar)");
    }
    config.master.annotate.evalue_cutoff = cli.option_positive_double("evalue");
    config.master.annotate.validate();
    plant = cli.option_uint("plant");
    seed = static_cast<std::uint64_t>(cli.option_uint("seed"));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }

  bench::banner(
      "query service under closed-loop Zipf traffic",
      std::to_string(clients) + " clients, " + std::to_string(requests) +
          " requests, pool " + std::to_string(pool_size) + ", zipf-s " +
          cli.option("zipf-s"));

  Rng rng(seed);
  std::vector<seq::Sequence> db;
  db.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    std::size_t record_len;
    if (db_zipf_s > 0.0) {
      // Hot-shard skew: record lengths follow a Zipf rank distribution (a
      // few giant records, a long tail of short ones), the worst case for a
      // residue-balancing shard planner. Ranks are assigned by shuffled
      // index so the giants land at arbitrary database positions.
      const std::size_t rank = (i * 0x9e3779b9u) % records;
      record_len = std::max<std::size_t>(
          24, static_cast<std::size_t>(
                  3.0 * static_cast<double>(len) /
                  std::pow(static_cast<double>(rank + 1), db_zipf_s)));
    } else {
      record_len = len / 2 + rng.below(len);
    }
    db.push_back(
        seq::random_protein(rng, "d" + std::to_string(i), record_len));
  }

  std::vector<seq::Sequence> pool;
  pool.reserve(pool_size);
  for (std::size_t q = 0; q < pool_size; ++q) {
    pool.push_back(
        seq::random_protein(rng, "q" + std::to_string(q), query_len));
  }

  // Homolog planting: append `plant` mutated copies of every pool query to
  // the database (point substitutions every ~20 residues). The planted
  // records dominate their query's exact top-k, so the recall oracle below
  // measures whether the two-stage filter keeps precisely the hits that
  // matter in a homology workload.
  for (std::size_t q = 0; q < pool.size() && plant > 0; ++q) {
    for (std::size_t p = 0; p < plant; ++p) {
      std::vector<std::uint8_t> h = pool[q].residues;
      for (std::size_t i = 0; i < h.size(); i += 17 + p % 5) {
        h[i] = static_cast<std::uint8_t>(rng.below(20));
      }
      db.emplace_back("h" + std::to_string(q) + "_" + std::to_string(p), "",
                      seq::AlphabetKind::kProtein, std::move(h));
    }
  }

  // Shard plan diagnostics (the service builds the same plan internally —
  // align::plan_shards is deterministic on the record lengths).
  double plan_imbalance = 0.0;
  std::uint64_t plan_residues = 0;
  if (config.shards > 0) {
    std::vector<std::uint32_t> lengths;
    lengths.reserve(db.size());
    for (const seq::Sequence& record : db) {
      lengths.push_back(static_cast<std::uint32_t>(record.residues.size()));
    }
    const align::ShardPlan plan = align::plan_shards(
        std::span<const std::uint32_t>(lengths), config.shards);
    plan_imbalance = plan.imbalance();
    plan_residues = plan.total_residues;
  }

  // Zipf CDF over the pool: weight(rank i) = 1 / (i+1)^s.
  std::vector<double> cdf(pool.size());
  double cumulative = 0.0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    cumulative += 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
    cdf[i] = cumulative;
  }

  // Ground truth per pool query: the exact top-k, used as the bit-identity
  // oracle when the filter is off and as the recall@k oracle when it is on.
  config.db_id = "bench";
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  const std::size_t top = config.master.top_hits;
  const align::ScoringScheme scheme = config.master.scheme;
  const align::KernelKind kernel = config.master.cpu_kernel;
  std::vector<std::vector<align::SearchHit>> expected(pool.size());
  for (std::size_t q = 0; q < pool.size(); ++q) {
    expected[q] = align::search_database(pool[q], db, scheme, kernel).top(top);
  }

  const std::size_t shards = config.shards;
  const std::size_t threads_per_shard = config.threads_per_shard;
  const align::FilterConfig filter_config = config.master.filter;
  const align::AnnotateConfig annotate_config = config.master.annotate;
  serve::QueryService service(db, std::move(config));

  util::Mutex stats_mutex;
  std::uint64_t mismatches = 0;
  std::uint64_t backpressure_retries = 0;
  double recall_sum = 0.0;
  double recall_min = 1.0;
  std::uint64_t recall_count = 0;
  const std::size_t per_client = requests / clients;

  WallTimer wall;
  std::vector<std::thread> client_threads;
  for (std::size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      Rng traffic(seed ^ (0x9e3779b97f4a7c15ull * (c + 1)));
      std::uint64_t local_retries = 0;
      std::uint64_t local_mismatches = 0;
      double local_recall_sum = 0.0;
      double local_recall_min = 1.0;
      std::uint64_t local_recall_count = 0;
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t pick = sample_cdf(traffic, cdf);
        serve::Submission ticket;
        for (;;) {
          ticket = service.submit(pool[pick]);
          if (ticket.accepted()) break;
          ++local_retries;  // closed loop: back off and retry on full queue
          std::this_thread::yield();
        }
        const serve::QueryResponse response = ticket.result.get();
        if (filter_config.enabled()) {
          // Recall@k against the exact oracle. An expected hit counts as
          // recalled on an index match or a score match: under score ties
          // the exact top-k set is not unique, and a tie-equivalent record
          // is exactly as good an answer.
          std::size_t recalled = 0;
          for (const align::SearchHit& want : expected[pick]) {
            for (const align::SearchHit& got : response.hits) {
              if (got.db_index == want.db_index || got.score == want.score) {
                ++recalled;
                break;
              }
            }
          }
          const double recall =
              expected[pick].empty()
                  ? 1.0
                  : static_cast<double>(recalled) /
                        static_cast<double>(expected[pick].size());
          local_recall_sum += recall;
          local_recall_min = std::min(local_recall_min, recall);
          ++local_recall_count;
          continue;
        }
        if (annotate_config.enabled() &&
            std::isfinite(annotate_config.evalue_cutoff)) {
          // A finite cutoff legitimately drops hits, so the bit-identity
          // oracle (computed without annotation) no longer applies.
          continue;
        }
        if (response.hits.size() != expected[pick].size()) {
          ++local_mismatches;
          continue;
        }
        for (std::size_t h = 0; h < response.hits.size(); ++h) {
          if (response.hits[h].db_index != expected[pick][h].db_index ||
              response.hits[h].score != expected[pick][h].score) {
            ++local_mismatches;
            break;
          }
        }
      }
      util::MutexLock lock(stats_mutex);
      backpressure_retries += local_retries;
      mismatches += local_mismatches;
      recall_sum += local_recall_sum;
      recall_min = std::min(recall_min, local_recall_min);
      recall_count += local_recall_count;
    });
  }
  for (auto& thread : client_threads) thread.join();
  const double elapsed = wall.seconds();
  service.shutdown();

  const std::uint64_t completed = per_client * clients;
  const auto stats = service.stats();
  const double hit_rate =
      stats.results.hits + stats.results.misses > 0
          ? static_cast<double>(stats.results.hits) /
                static_cast<double>(stats.results.hits + stats.results.misses)
          : 0.0;
  const double throughput =
      elapsed > 0 ? static_cast<double>(completed) / elapsed : 0.0;
  const double p50 = metrics.percentile("serve_latency_seconds", 0.50) * 1e3;
  const double p95 = metrics.percentile("serve_latency_seconds", 0.95) * 1e3;
  const double p99 = metrics.percentile("serve_latency_seconds", 0.99) * 1e3;
  const double mean_batch =
      metrics.histogram("serve_batch_size").mean();

  TextTable table;
  table.set_header({"metric", "value"});
  table.add_row({"requests completed", std::to_string(completed)});
  table.add_row({"wall seconds", TextTable::fmt(elapsed, 3)});
  table.add_row({"throughput (req/s)", TextTable::fmt(throughput, 1)});
  table.add_row({"latency p50 (ms)", TextTable::fmt(p50, 3)});
  table.add_row({"latency p95 (ms)", TextTable::fmt(p95, 3)});
  table.add_row({"latency p99 (ms)", TextTable::fmt(p99, 3)});
  table.add_row({"cache hit rate", TextTable::fmt(hit_rate, 3)});
  table.add_row({"distinct searches", std::to_string(stats.searches)});
  table.add_row({"batches", std::to_string(stats.batches)});
  table.add_row({"mean batch size", TextTable::fmt(mean_batch, 2)});
  table.add_row({"profile-cache hits", std::to_string(stats.profiles.hits)});
  table.add_row(
      {"backpressure retries", std::to_string(backpressure_retries)});
  // Amortized DB scan cost per distinct query: on the sharded path every
  // group pass scans the whole database once for ALL of a batch's distinct
  // queries, so this falls below 1.0 exactly when micro-batching collapses
  // concurrent traffic into shared passes.
  const double db_passes_per_query =
      stats.searches > 0
          ? static_cast<double>(stats.shards.group_passes) /
                static_cast<double>(stats.searches)
          : 0.0;
  if (shards > 0) {
    table.add_row({"shards", std::to_string(shards)});
    table.add_row({"plan imbalance", TextTable::fmt(plan_imbalance, 4)});
    table.add_row({"group passes",
                   std::to_string(stats.shards.group_passes)});
    table.add_row({"db passes / query", TextTable::fmt(db_passes_per_query,
                                                       3)});
    table.add_row({"shard scans", std::to_string(stats.shards.scans)});
    table.add_row({"shard retries", std::to_string(stats.shards.retries)});
    table.add_row(
        {"shard recoveries", std::to_string(stats.shard_recoveries)});
  }
  const double recall_mean =
      recall_count > 0 ? recall_sum / static_cast<double>(recall_count) : 1.0;
  if (filter_config.enabled()) {
    table.add_row({"filter mode",
                   align::filter_mode_name(filter_config.mode)});
    table.add_row({"filter band", std::to_string(filter_config.band)});
    table.add_row({"filter keep-factor",
                   TextTable::fmt(filter_config.keep_factor, 2)});
    table.add_row({"planted homologs / query", std::to_string(plant)});
    table.add_row({"filter candidates",
                   std::to_string(stats.filter.candidates)});
    table.add_row({"filter rescans", std::to_string(stats.filter.rescans)});
    table.add_row({"filter band-uncertain",
                   std::to_string(stats.filter.band_uncertain)});
    table.add_row({"recall@k mean", TextTable::fmt(recall_mean, 4)});
    table.add_row({"recall@k min", TextTable::fmt(recall_min, 4)});
  } else if (annotate_config.enabled() &&
             std::isfinite(annotate_config.evalue_cutoff)) {
    table.add_row({"scores==direct", "skipped (finite e-value cutoff)"});
  } else {
    table.add_row({"scores==direct", mismatches == 0 ? "yes" : "NO"});
  }
  if (annotate_config.enabled()) {
    table.add_row({"annotate mode",
                   align::annotate_mode_name(annotate_config.mode)});
    table.add_row({"annotate e-value cutoff", cli.option("evalue")});
  }
  std::printf("%s", table.render().c_str());
  bench::emit_csv(table, cli.option("out"));

  const std::string json_path = cli.option("json");
  if (!json_path.empty()) {
    std::FILE* json = std::fopen(json_path.c_str(), "w");
    if (json == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"scenario\": \"%s\",\n",
                 json_escape(cli.option("scenario")).c_str());
    std::fprintf(json,
                 "  \"config\": {\"records\": %zu, \"len\": %zu, "
                 "\"db_zipf_s\": %g, \"pool\": %zu, \"query_len\": %zu, "
                 "\"requests\": %llu, \"clients\": %zu, \"zipf_s\": %g, "
                 "\"max_batch\": %s, \"shards\": %zu, "
                 "\"threads_per_shard\": %zu},\n",
                 records, len, db_zipf_s, pool_size, query_len,
                 static_cast<unsigned long long>(completed), clients, zipf_s,
                 cli.option("max-batch").c_str(), shards, threads_per_shard);
    std::fprintf(json,
                 "  \"plan\": {\"shards\": %zu, \"imbalance\": %.4f, "
                 "\"total_residues\": %llu},\n",
                 shards, plan_imbalance,
                 static_cast<unsigned long long>(plan_residues));
    std::fprintf(
        json,
        "  \"filter\": {\"mode\": \"%s\", \"band\": %zu, "
        "\"keep_factor\": %g, \"plant\": %zu, \"candidates\": %llu, "
        "\"rescans\": %llu, \"band_uncertain\": %llu, "
        "\"recall_mean\": %.4f, \"recall_min\": %.4f},\n",
        align::filter_mode_name(filter_config.mode), filter_config.band,
        filter_config.keep_factor, plant,
        static_cast<unsigned long long>(stats.filter.candidates),
        static_cast<unsigned long long>(stats.filter.rescans),
        static_cast<unsigned long long>(stats.filter.band_uncertain),
        recall_mean, recall_min);
    std::fprintf(json,
                 "  \"annotate\": {\"mode\": \"%s\", "
                 "\"evalue_cutoff\": \"%s\"},\n",
                 align::annotate_mode_name(annotate_config.mode),
                 json_escape(cli.option("evalue")).c_str());
    std::fprintf(
        json,
        "  \"results\": {\"wall_seconds\": %.4f, \"throughput_rps\": %.1f, "
        "\"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}, "
        "\"cache_hit_rate\": %.4f, \"distinct_searches\": %llu, "
        "\"batches\": %llu, \"mean_batch\": %.2f, "
        "\"group_passes\": %llu, \"db_passes_per_query\": %.4f, "
        "\"shard_scans\": %llu, \"shard_retries\": %llu, "
        "\"shard_recoveries\": %llu, \"partial_responses\": %llu, "
        "\"backpressure_retries\": %llu, \"scores_identical\": %s}\n",
        elapsed, throughput, p50, p95, p99, hit_rate,
        static_cast<unsigned long long>(stats.searches),
        static_cast<unsigned long long>(stats.batches), mean_batch,
        static_cast<unsigned long long>(stats.shards.group_passes),
        db_passes_per_query,
        static_cast<unsigned long long>(stats.shards.scans),
        static_cast<unsigned long long>(stats.shards.retries),
        static_cast<unsigned long long>(stats.shard_recoveries),
        static_cast<unsigned long long>(stats.partial_responses),
        static_cast<unsigned long long>(backpressure_retries),
        mismatches == 0 ? "true" : "false");
    std::fprintf(json, "}\n");
    std::fclose(json);
  }

  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: %llu responses differed from direct search\n",
                 static_cast<unsigned long long>(mismatches));
    return 1;
  }
  // Planted homologs are unambiguous top-k mass; losing any of them means
  // the filter is misconfigured for the workload, so fail loudly.
  if (filter_config.enabled() && plant > 0 && recall_min < 1.0) {
    std::fprintf(stderr,
                 "FAIL: recall@k fell below 1.0 on the planted corpus "
                 "(min %.4f, mean %.4f)\n",
                 recall_min, recall_mean);
    return 1;
  }
  return 0;
}
