// Ablation — allocation policies head to head (Figs. 4/5 in action).
//
// Sweeps task heterogeneity (GPU acceleration spread) and platform shapes,
// reporting each policy's makespan as a ratio to the certified lower bound.
// This isolates the paper's contribution: the dual-approximation allocation
// against self-scheduling [10], equal-power [11], proportional [12], LPT,
// and our local-search refinement.
#include <cstdio>

#include "bench_common.h"
#include "sched/baselines.h"
#include "sched/dual_approx.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace swdual;
  using namespace swdual::sched;
  bench::banner("Ablation: allocation policies vs certified lower bound",
                "mean makespan / lower-bound over 20 random instances each");

  struct Family {
    const char* label;
    double accel_lo, accel_hi;
  };
  const Family families[] = {
      {"uniform accel ~3x", 2.9, 3.1},
      {"moderate accel 2..10x", 2.0, 10.0},
      {"extreme accel 1..40x", 1.0, 40.0},
      {"mixed decel 0.5..20x", 0.5, 20.0},  // some tasks slower on GPU
  };
  const HybridPlatform platforms[] = {{4, 1}, {4, 4}, {1, 4}, {8, 8}};

  TextTable table;
  table.set_header({"instance family", "platform", "swdual", "refined",
                    "self-sched", "equal-power", "proportional", "lpt"});

  Rng rng(2014);
  for (const Family& family : families) {
    for (const HybridPlatform& platform : platforms) {
      RunningStats dual, refined, ss, ep, prop, lpt;
      for (int rep = 0; rep < 20; ++rep) {
        std::vector<Task> tasks;
        const std::size_t n = 30 + rng.below(70);
        for (std::size_t i = 0; i < n; ++i) {
          const double cpu = 1.0 + rng.uniform() * 199.0;
          const double accel =
              family.accel_lo +
              rng.uniform() * (family.accel_hi - family.accel_lo);
          tasks.push_back({i, cpu, cpu / accel});
        }
        const double lb = makespan_lower_bound(tasks, platform);
        dual.add(swdual_schedule(tasks, platform).makespan() / lb);
        refined.add(swdual_schedule_refined(tasks, platform).makespan() / lb);
        ss.add(self_scheduling(tasks, platform).makespan() / lb);
        ep.add(equal_power(tasks, platform).makespan() / lb);
        prop.add(proportional_static(tasks, platform).makespan() / lb);
        lpt.add(lpt_hybrid(tasks, platform).makespan() / lb);
      }
      const std::string shape = std::to_string(platform.num_cpus) + "C+" +
                                std::to_string(platform.num_gpus) + "G";
      table.add_row({family.label, shape, TextTable::fmt(dual.mean(), 3),
                     TextTable::fmt(refined.mean(), 3),
                     TextTable::fmt(ss.mean(), 3),
                     TextTable::fmt(ep.mean(), 3),
                     TextTable::fmt(prop.mean(), 3),
                     TextTable::fmt(lpt.mean(), 3)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\n(1.000 = optimal; the dual-approximation guarantee caps swdual at "
      "2.000)\n");
  bench::emit_csv(table, "ablation_scheduler.csv");
  return 0;
}
