// §III cost analysis — O(n log n) per dual-approximation step and bounded
// binary-search iteration counts.
//
// Measures wall-clock per step across n, fits the growth rate, and reports
// binary-search iterations (paper: bounded by log(Bmax - Bmin)).
#include <cstdio>

#include "bench_common.h"
#include "sched/dual_approx.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace swdual;
  using namespace swdual::sched;
  bench::banner("§III cost analysis: step complexity and search iterations",
                "wall-clock per dual_approx_step; growth vs n log n");

  Rng rng(99);
  const HybridPlatform platform{8, 8};

  TextTable table;
  table.set_header({"n", "step time (us)", "time / (n log2 n) (ns)",
                    "search iterations", "final makespan / LB"});

  double first_ratio = 0.0;
  for (const std::size_t n :
       {100u, 1000u, 10000u, 100000u, 400000u}) {
    std::vector<Task> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double cpu = 1.0 + rng.uniform() * 99.0;
      tasks.push_back({i, cpu, cpu / (2.0 + rng.uniform() * 18.0)});
    }
    const double lb = makespan_lower_bound(tasks, platform);

    // Time several steps at a feasible guess.
    WallTimer timer;
    const int reps = n <= 10000 ? 20 : 3;
    for (int rep = 0; rep < reps; ++rep) {
      dual_approx_step(tasks, platform, 2.0 * lb);
    }
    const double step_us = timer.seconds() / reps * 1e6;
    const double per_nlogn =
        step_us * 1e3 /
        (static_cast<double>(n) * std::log2(static_cast<double>(n)));
    if (first_ratio == 0.0) first_ratio = per_nlogn;

    DualSearchStats stats;
    const Schedule schedule = swdual_schedule(tasks, platform, 1e-4, &stats);
    table.add_row({std::to_string(n), TextTable::fmt(step_us, 1),
                   TextTable::fmt(per_nlogn, 2),
                   std::to_string(stats.iterations),
                   TextTable::fmt(schedule.makespan() / lb, 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nthe time/(n log n) column should stay within a small constant "
      "factor\nacross three decades of n if the step is O(n log n), as "
      "§III claims.\n");
  bench::emit_csv(table, "sched_complexity.csv");
  return 0;
}
