// Kernel microbenchmarks (google-benchmark): real measured GCUPS on this
// host for every alignment kernel, across query lengths and across every
// available SIMD backend (scalar/sse2/avx2/avx512 — registered at runtime
// from CPUID, reported with their lane counts). These are the numbers
// behind the --calibrate path of the performance model.
#include <benchmark/benchmark.h>

#include <string>

#include "align/backend.h"
#include "align/banded.h"
#include "align/kernel_interseq.h"
#include "align/kernel_striped.h"
#include "align/kernel_striped8.h"
#include "align/scalar.h"
#include "align/search.h"
#include "seq/dbgen.h"
#include "util/rng.h"

namespace {

using namespace swdual;

struct KernelFixtureData {
  seq::Sequence query;
  std::vector<seq::Sequence> db;
  align::DbView views;
  align::ScoringScheme scheme;
  std::uint64_t cells = 0;

  KernelFixtureData(std::size_t query_len, std::size_t db_count,
                    std::size_t db_len) {
    Rng rng(1234);
    query = seq::random_protein(rng, "q", query_len);
    for (std::size_t i = 0; i < db_count; ++i) {
      db.push_back(seq::random_protein(rng, "d", db_len));
    }
    views = align::make_db_view(db);
    cells = static_cast<std::uint64_t>(query_len) * db_count * db_len;
  }
};

void report_gcups(benchmark::State& state, std::uint64_t cells_per_iter) {
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(cells_per_iter) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_ScalarGotoh(benchmark::State& state) {
  const KernelFixtureData data(static_cast<std::size_t>(state.range(0)), 16,
                               256);
  for (auto _ : state) {
    int total = 0;
    for (const auto& view : data.views) {
      total += align::gotoh_score({data.query.residues.data(),
                                   data.query.residues.size()},
                                  view, data.scheme)
                   .score;
    }
    benchmark::DoNotOptimize(total);
  }
  report_gcups(state, data.cells);
}
BENCHMARK(BM_ScalarGotoh)->Arg(64)->Arg(256)->Arg(1024);

void BM_StripedKernel(benchmark::State& state) {
  const KernelFixtureData data(static_cast<std::size_t>(state.range(0)), 16,
                               256);
  const align::StripedProfile profile(
      {data.query.residues.data(), data.query.residues.size()},
      *data.scheme.matrix);
  for (auto _ : state) {
    int total = 0;
    for (const auto& view : data.views) {
      total += align::striped_score(profile, view, data.scheme.gap).score;
    }
    benchmark::DoNotOptimize(total);
  }
  report_gcups(state, data.cells);
}
BENCHMARK(BM_StripedKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_InterSeqKernel(benchmark::State& state) {
  const KernelFixtureData data(static_cast<std::size_t>(state.range(0)), 64,
                               256);
  align::SequenceViews views;
  for (const auto& v : data.views) views.push_back(v);
  for (auto _ : state) {
    const auto result = align::interseq_scores(
        {data.query.residues.data(), data.query.residues.size()}, views,
        data.scheme);
    benchmark::DoNotOptimize(result.scores.data());
  }
  report_gcups(state, data.cells);
}
BENCHMARK(BM_InterSeqKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_BandedKernel(benchmark::State& state) {
  const KernelFixtureData data(256, 16, 256);
  const auto band = static_cast<std::size_t>(state.range(0));
  std::uint64_t cells = 0;
  for (auto _ : state) {
    std::uint64_t iter_cells = 0;
    for (const auto& view : data.views) {
      const auto r = align::banded_gotoh_score(
          {data.query.residues.data(), data.query.residues.size()}, view,
          data.scheme, band);
      iter_cells += r.cells;
    }
    cells = iter_cells;
    benchmark::DoNotOptimize(cells);
  }
  report_gcups(state, cells);
}
BENCHMARK(BM_BandedKernel)->Arg(8)->Arg(32)->Arg(128);

void BM_QueryProfileBuild(benchmark::State& state) {
  const KernelFixtureData data(static_cast<std::size_t>(state.range(0)), 1, 1);
  for (auto _ : state) {
    const align::StripedProfile profile(
        {data.query.residues.data(), data.query.residues.size()},
        *data.scheme.matrix);
    benchmark::DoNotOptimize(profile.segment_length());
  }
}
BENCHMARK(BM_QueryProfileBuild)->Arg(256)->Arg(4096);

// --- Per-backend kernel benchmarks --------------------------------------
// One registration per (kernel, available backend), going straight through
// the backend's kernel table so dispatch overhead is excluded and each ISA
// is measured in isolation. The "lanes" counter records the vector width.

void backend_striped8(benchmark::State& state, align::Backend backend) {
  const KernelFixtureData data(360, 64, 256);
  const std::span<const std::uint8_t> query(data.query.residues.data(),
                                            data.query.residues.size());
  const align::StripedProfileU8 profile(query, *data.scheme.matrix,
                                        align::backend_lanes8(backend));
  const align::KernelTable& kt = align::kernel_table(backend);
  for (auto _ : state) {
    int total = 0;
    for (const auto& view : data.views) {
      total += kt.striped8(profile, view, data.scheme.gap).score;
    }
    benchmark::DoNotOptimize(total);
  }
  report_gcups(state, data.cells);
  state.counters["lanes"] =
      static_cast<double>(align::backend_lanes8(backend));
}

void backend_striped(benchmark::State& state, align::Backend backend) {
  const KernelFixtureData data(360, 64, 256);
  const std::span<const std::uint8_t> query(data.query.residues.data(),
                                            data.query.residues.size());
  const align::StripedProfile profile(query, *data.scheme.matrix,
                                      align::backend_lanes16(backend));
  const align::KernelTable& kt = align::kernel_table(backend);
  for (auto _ : state) {
    int total = 0;
    for (const auto& view : data.views) {
      total += kt.striped(profile, view, data.scheme.gap).score;
    }
    benchmark::DoNotOptimize(total);
  }
  report_gcups(state, data.cells);
  state.counters["lanes"] =
      static_cast<double>(align::backend_lanes16(backend));
}

void backend_interseq(benchmark::State& state, align::Backend backend) {
  const KernelFixtureData data(360, 64, 256);
  const std::span<const std::uint8_t> query(data.query.residues.data(),
                                            data.query.residues.size());
  align::SequenceViews views;
  for (const auto& v : data.views) views.push_back(v);
  const align::KernelTable& kt = align::kernel_table(backend);
  for (auto _ : state) {
    const auto result = kt.interseq(query, views, data.scheme);
    benchmark::DoNotOptimize(result.scores.data());
  }
  report_gcups(state, data.cells);
  state.counters["lanes"] =
      static_cast<double>(align::backend_lanes16(backend));
}

void backend_banded_screen(benchmark::State& state, align::Backend backend) {
  // The two-stage filter's screening shape: many medium-length records, a
  // band much narrower than the record. GCUPS counts the band cells the
  // screen actually computes (BandedBatchResult.cells), so the number is
  // comparable with the full-matrix kernels per unit of work — the screen's
  // end-to-end advantage is that it has ~len/(2·band+1)× fewer cells.
  const KernelFixtureData data(300, 256, 600);
  const std::size_t band = 16;
  const std::span<const std::uint8_t> query(data.query.residues.data(),
                                            data.query.residues.size());
  align::SequenceViews views;
  for (const auto& v : data.views) views.push_back(v);
  const align::KernelTable& kt = align::kernel_table(backend);
  std::uint64_t cells = 0;
  for (auto _ : state) {
    const auto result = kt.banded(query, views, data.scheme, band);
    cells = result.cells;
    benchmark::DoNotOptimize(result.scores.data());
  }
  report_gcups(state, cells);
  state.counters["lanes"] =
      static_cast<double>(align::backend_lanes8(backend));
}

void register_backend_benchmarks() {
  for (const align::Backend backend : align::available_backends()) {
    const std::string suffix = align::backend_name(backend);
    benchmark::RegisterBenchmark(
        ("BM_Striped8Backend/" + suffix).c_str(),
        [backend](benchmark::State& s) { backend_striped8(s, backend); });
    benchmark::RegisterBenchmark(
        ("BM_StripedBackend/" + suffix).c_str(),
        [backend](benchmark::State& s) { backend_striped(s, backend); });
    benchmark::RegisterBenchmark(
        ("BM_InterSeqBackend/" + suffix).c_str(),
        [backend](benchmark::State& s) { backend_interseq(s, backend); });
    benchmark::RegisterBenchmark(
        ("BM_BandedScreenBackend/" + suffix).c_str(),
        [backend](benchmark::State& s) {
          backend_banded_screen(s, backend);
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_backend_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
