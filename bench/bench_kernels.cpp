// Kernel microbenchmarks (google-benchmark): real measured GCUPS on this
// host for every alignment kernel, across query lengths. These are the
// numbers behind the --calibrate path of the performance model.
#include <benchmark/benchmark.h>

#include "align/banded.h"
#include "align/kernel_interseq.h"
#include "align/kernel_striped.h"
#include "align/scalar.h"
#include "align/search.h"
#include "seq/dbgen.h"
#include "util/rng.h"

namespace {

using namespace swdual;

struct KernelFixtureData {
  seq::Sequence query;
  std::vector<seq::Sequence> db;
  align::DbView views;
  align::ScoringScheme scheme;
  std::uint64_t cells = 0;

  KernelFixtureData(std::size_t query_len, std::size_t db_count,
                    std::size_t db_len) {
    Rng rng(1234);
    query = seq::random_protein(rng, "q", query_len);
    for (std::size_t i = 0; i < db_count; ++i) {
      db.push_back(seq::random_protein(rng, "d", db_len));
    }
    views = align::make_db_view(db);
    cells = static_cast<std::uint64_t>(query_len) * db_count * db_len;
  }
};

void report_gcups(benchmark::State& state, std::uint64_t cells_per_iter) {
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(cells_per_iter) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_ScalarGotoh(benchmark::State& state) {
  const KernelFixtureData data(static_cast<std::size_t>(state.range(0)), 16,
                               256);
  for (auto _ : state) {
    int total = 0;
    for (const auto& view : data.views) {
      total += align::gotoh_score({data.query.residues.data(),
                                   data.query.residues.size()},
                                  view, data.scheme)
                   .score;
    }
    benchmark::DoNotOptimize(total);
  }
  report_gcups(state, data.cells);
}
BENCHMARK(BM_ScalarGotoh)->Arg(64)->Arg(256)->Arg(1024);

void BM_StripedKernel(benchmark::State& state) {
  const KernelFixtureData data(static_cast<std::size_t>(state.range(0)), 16,
                               256);
  const align::StripedProfile profile(
      {data.query.residues.data(), data.query.residues.size()},
      *data.scheme.matrix);
  for (auto _ : state) {
    int total = 0;
    for (const auto& view : data.views) {
      total += align::striped_score(profile, view, data.scheme.gap).score;
    }
    benchmark::DoNotOptimize(total);
  }
  report_gcups(state, data.cells);
}
BENCHMARK(BM_StripedKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_InterSeqKernel(benchmark::State& state) {
  const KernelFixtureData data(static_cast<std::size_t>(state.range(0)), 64,
                               256);
  align::SequenceViews views;
  for (const auto& v : data.views) views.push_back(v);
  for (auto _ : state) {
    const auto result = align::interseq_scores(
        {data.query.residues.data(), data.query.residues.size()}, views,
        data.scheme);
    benchmark::DoNotOptimize(result.scores.data());
  }
  report_gcups(state, data.cells);
}
BENCHMARK(BM_InterSeqKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_BandedKernel(benchmark::State& state) {
  const KernelFixtureData data(256, 16, 256);
  const auto band = static_cast<std::size_t>(state.range(0));
  std::uint64_t cells = 0;
  for (auto _ : state) {
    std::uint64_t iter_cells = 0;
    for (const auto& view : data.views) {
      const auto r = align::banded_gotoh_score(
          {data.query.residues.data(), data.query.residues.size()}, view,
          data.scheme, band);
      iter_cells += r.cells;
    }
    cells = iter_cells;
    benchmark::DoNotOptimize(cells);
  }
  report_gcups(state, cells);
}
BENCHMARK(BM_BandedKernel)->Arg(8)->Arg(32)->Arg(128);

void BM_QueryProfileBuild(benchmark::State& state) {
  const KernelFixtureData data(static_cast<std::size_t>(state.range(0)), 1, 1);
  for (auto _ : state) {
    const align::StripedProfile profile(
        {data.query.residues.data(), data.query.residues.size()},
        *data.scheme.matrix);
    benchmark::DoNotOptimize(profile.segment_length());
  }
}
BENCHMARK(BM_QueryProfileBuild)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
