// Table IV + Fig. 8 — SWDUAL on the five genomic databases, workers 2..8:
// execution time and GCUPS, plus the §VI extension to 8 CPUs + 8 GPUs.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "core/apps.h"

int main(int argc, char** argv) {
  using namespace swdual;
  const std::size_t scale = argc > 1 ? std::stoul(argv[1]) : 1;
  bench::banner(
      "Table IV + Fig. 8: SWDUAL on 5 databases (time & GCUPS)",
      "virtual-time model at paper scale; paper values in parentheses");

  // Paper Table IV: per database {time, gcups} for workers 2, 4, 8.
  struct PaperCell {
    double time;
    double gcups;
  };
  const std::map<std::string, std::array<PaperCell, 3>> paper = {
      {"ensembl_dog", {{{78.36, 18.91}, {39.63, 37.39}, {20.45, 72.45}}}},
      {"ensembl_rat", {{{75.85, 22.97}, {37.97, 45.89}, {20.17, 86.38}}}},
      {"refseq_mouse", {{{84.40, 18.99}, {46.25, 34.66}, {23.59, 67.95}}}},
      {"refseq_human", {{{95.09, 20.70}, {48.01, 41.00}, {24.82, 79.31}}}},
      {"uniprot", {{{543.28, 35.81}, {271.98, 71.53}, {142.98, 136.06}}}},
  };

  TextTable table;
  table.set_header({"database", "workers", "time (s)", "time (paper)",
                    "GCUPS", "GCUPS (paper)"});
  TextTable curve;  // Fig. 8: full 2..8 series
  curve.set_header({"database", "workers", "time (s)"});

  for (const auto& [db_name, paper_cells] : paper) {
    const core::Workload workload =
        core::make_workload(db_name, seq::QuerySetKind::kPaper, scale);
    for (std::size_t workers = 2; workers <= 8; ++workers) {
      const core::AppRunResult run =
          core::run_app_virtual(core::AppKind::kSwdual, workload, workers);
      curve.add_row({db_name, std::to_string(workers),
                     TextTable::fmt(run.virtual_seconds, 2)});
      const int paper_index =
          workers == 2 ? 0 : (workers == 4 ? 1 : (workers == 8 ? 2 : -1));
      if (paper_index >= 0) {
        const PaperCell& cell =
            paper_cells[static_cast<std::size_t>(paper_index)];
        table.add_row(
            {db_name, std::to_string(workers),
             TextTable::fmt(run.virtual_seconds, 2),
             scale == 1 ? TextTable::fmt(cell.time, 2) : "-",
             TextTable::fmt(run.gcups, 2),
             scale == 1 ? TextTable::fmt(cell.gcups, 2) : "-"});
      }
    }
  }
  std::printf("%s\nFig. 8 series (execution time, workers 2..8):\n%s",
              table.render().c_str(), curve.render().c_str());
  bench::emit_csv(table, "table4_fig8.csv");
  curve.write_csv("fig8_series.csv");

  // §VI extension: 8 CPUs + 8 GPUs on UniProt (543 s -> 86 s in the paper).
  const core::Workload uniprot =
      core::make_workload("uniprot", seq::QuerySetKind::kPaper, scale);
  const core::AppRunResult big =
      core::run_swdual_virtual(uniprot, {8, 8});
  std::printf(
      "\n8 CPUs + 8 GPUs on UniProt: %.2f s, %.2f GCUPS "
      "(paper: 86 s, 225 GCUPS)\n",
      big.virtual_seconds, big.gcups);
  return 0;
}
