// Table III — the five genomic databases used in the tests.
//
// Prints the synthetic stand-ins' statistics next to the paper's reported
// values: sequence counts match exactly at scale 1; the min/max query
// lengths are anchored by construction.
#include <cstdio>

#include "bench_common.h"
#include "seq/dbgen.h"
#include "seq/dbstats.h"

int main(int argc, char** argv) {
  using namespace swdual;
  const std::size_t scale = argc > 1 ? std::stoul(argv[1]) : 1;
  bench::banner("Table III: genomic databases used on the tests",
                "synthetic stand-ins with matched counts and length spans");

  struct PaperRow {
    const char* label;
    std::size_t seqs;
    std::size_t smallest;
    std::size_t longest;
  };
  const PaperRow paper[] = {
      {"Ensembl Dog Proteins", 25160, 100, 4996},
      {"Ensembl Rat Proteins", 32971, 100, 4992},
      {"RefSeq Human Proteins", 34705, 100, 4981},
      {"RefSeq Mouse Proteins", 29437, 100, 5000},
      {"UniProt", 537505, 100, 4998},
  };

  TextTable table;
  table.set_header({"database", "seqs (paper)", "seqs (ours)",
                    "min len (ours)", "max len (ours)", "mean len",
                    "residues"});
  const auto profiles = seq::table3_profiles(scale);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto lengths = seq::generate_lengths(profiles[i]);
    const seq::DatabaseStats stats = seq::compute_stats_from_lengths(lengths);
    table.add_row({paper[i].label, std::to_string(paper[i].seqs),
                   std::to_string(stats.num_sequences),
                   std::to_string(stats.min_length),
                   std::to_string(stats.max_length),
                   TextTable::fmt(stats.mean_length, 1),
                   std::to_string(stats.total_residues)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nnote: the paper's min/max columns describe its sampled *query*\n"
      "lengths; UniProt's stand-in keeps the full 4..35213 span needed by\n"
      "the heterogeneous query set of §V-C.\n");
  bench::emit_csv(table, "table3_databases.csv");
  return 0;
}
