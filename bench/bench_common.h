// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "util/table.h"

namespace swdual::bench {

/// Print a reproduction banner: which paper artifact this regenerates and
/// under what substitution.
inline void banner(const std::string& artifact, const std::string& note) {
  std::printf("==============================================================\n");
  std::printf("Reproduction of %s\n", artifact.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("==============================================================\n\n");
}

/// Write the CSV next to the binary's working directory and say so.
inline void emit_csv(const TextTable& table, const std::string& filename) {
  table.write_csv(filename);
  std::printf("\n[csv written to %s]\n\n", filename.c_str());
}

}  // namespace swdual::bench
