// Serial vs chunked-parallel database search: measured GCUPS per kernel,
// SIMD backend, and thread count on this host, with a scores-equality check
// against the serial scalar-free reference on every configuration. Emits
// BENCH_parallel_search.json so later changes have a recorded perf
// trajectory.
//
//   ./bench_parallel_search [--records N] [--len L] [--query-len Q]
//                           [--threads-list 1,2,4] [--backend-list all]
//                           [--reps R]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "align/backend.h"
#include "align/parallel_search.h"
#include "align/search.h"
#include "bench_common.h"
#include "seq/dbgen.h"
#include "seq/swdb.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/timer.h"

namespace {

using namespace swdual;

std::vector<std::size_t> parse_list(const std::string& csv) {
  std::vector<std::size_t> out;
  for (const std::string& item : split(csv, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const unsigned long value = std::strtoul(item.c_str(), &end, 10);
    SWDUAL_REQUIRE(end != nullptr && *end == '\0' && value > 0,
                   "--threads-list entry is not a positive integer: " + item);
    out.push_back(static_cast<std::size_t>(value));
  }
  return out;
}

struct Measurement {
  double gcups = 0.0;
  double seconds = 0.0;
};

/// One-line roofline characterization per kernel, recorded in the JSON so a
/// perf trajectory reader knows what bound each number sits against.
const char* roofline_note(swdual::align::KernelKind kernel) {
  switch (kernel) {
    case swdual::align::KernelKind::kStriped8:
      return "8-bit striped lazy-F: register-resident query profile, ~12 "
             "SIMD ops/cell, no per-cell memory traffic; compute-bound";
    case swdual::align::KernelKind::kStriped:
      return "16-bit striped lazy-F: same op mix at half the lanes; "
             "compute-bound";
    case swdual::align::KernelKind::kInterSeq:
      return "16-bit inter-sequence: dprofile rebuild is asize*lanes "
             "stores per DB column, inner loop one aligned load/cell; "
             "compute-bound at full lanes (longest-first batches remove "
             "tail idle)";
    default:
      return "scalar reference";
  }
}

/// "all" → every backend the host can run, otherwise a comma-separated list
/// of backend names, each validated as available.
std::vector<align::Backend> parse_backends(const std::string& csv) {
  if (csv == "all") return align::available_backends();
  std::vector<align::Backend> out;
  for (const std::string& item : split(csv, ',')) {
    if (item.empty()) continue;
    align::Backend backend = align::Backend::kAuto;
    SWDUAL_REQUIRE(align::parse_backend(item, backend) &&
                       backend != align::Backend::kAuto,
                   "--backend-list entry is not a backend name: " + item);
    SWDUAL_REQUIRE(align::backend_available(backend),
                   "backend not available on this host: " + item);
    out.push_back(backend);
  }
  SWDUAL_REQUIRE(!out.empty(), "--backend-list is empty");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_parallel_search",
                "serial vs chunked-parallel search GCUPS");
  cli.add_option("records", "database records", "1500");
  cli.add_option("len", "residues per record", "220");
  cli.add_option("query-len", "query length", "360");
  cli.add_option("threads-list", "thread counts to measure", "1,2,4");
  cli.add_option("backend-list",
                 "SIMD backends to measure ('all' = every available)", "all");
  cli.add_option("reps", "repetitions (best kept)", "3");
  cli.add_option("plant", "mutated query homologs planted in the database",
                 "12");
  cli.add_option("filter-band", "banded-screen half-width for the filtered "
                 "rows", "16");
  cli.add_option("top-k", "hits requested from the filtered search", "10");
  cli.add_option("out", "JSON output path", "BENCH_parallel_search.json");
  try {
    cli.parse(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  std::size_t records = 0, len = 0, query_len = 0, reps = 0;
  std::size_t plant = 0, filter_band = 0, top_k = 0;
  std::vector<std::size_t> thread_counts;
  std::vector<align::Backend> backends;
  try {
    records = cli.option_uint("records");
    len = cli.option_uint("len");
    query_len = cli.option_uint("query-len");
    reps = cli.option_uint("reps");
    plant = cli.option_uint("plant");
    filter_band = cli.option_uint("filter-band");
    top_k = cli.option_uint("top-k");
    SWDUAL_REQUIRE(filter_band > 0, "--filter-band must be >= 1");
    SWDUAL_REQUIRE(top_k > 0, "--top-k must be >= 1");
    thread_counts = parse_list(cli.option("threads-list"));
    backends = parse_backends(cli.option("backend-list"));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }

  bench::banner("parallel search engine: serial vs chunked multithreaded scan",
                "host threads: " +
                    std::to_string(std::thread::hardware_concurrency()));

  Rng rng(4242);
  std::vector<seq::Sequence> db;
  db.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    // Mild length skew so chunk balancing has something to balance.
    const std::size_t jitter = rng.below(len);
    db.push_back(seq::random_protein(rng, "d" + std::to_string(i),
                                     len / 2 + jitter));
  }
  const seq::Sequence query = seq::random_protein(rng, "q", query_len);
  const std::span<const std::uint8_t> query_view(query.residues.data(),
                                                 query.residues.size());
  // Planted homologs (point substitutions every ~20 residues) give the
  // filtered rows a realistic top-k: without them the exact top-k is
  // off-diagonal noise, the screen's documented miss class.
  for (std::size_t p = 0; p < plant; ++p) {
    seq::Sequence h = query;
    h.id = "plant" + std::to_string(p);
    for (std::size_t i = p % 7; i < h.residues.size(); i += 19 + p % 5) {
      h.residues[i] = static_cast<std::uint8_t>(rng.below(20));
    }
    db.push_back(std::move(h));
  }

  // Measure what production runs: an SWDB v2 pre-encoded database served
  // zero-copy out of one shared mapping. The serial reference and every
  // engine read the same 64-byte-aligned residue spans.
  const std::string swdb_path = cli.option("out") + ".tmp.swdb";
  seq::write_swdb(swdb_path, db, seq::AlphabetKind::kProtein,
                  seq::kSwdbVersion2);
  const seq::MappedSwdb mapped(swdb_path);
  const align::DbView views = mapped.residue_views();
  const align::ScoringScheme scheme;

  const auto measure = [&](const auto& search_fn) {
    Measurement best;
    for (std::size_t r = 0; r < reps; ++r) {
      WallTimer timer;
      const align::SearchResult result = search_fn();
      const double seconds = timer.seconds();
      const double gcups =
          seconds > 0 ? static_cast<double>(result.cells) / seconds / 1e9
                      : 0.0;
      if (gcups > best.gcups) best = {gcups, seconds};
    }
    return best;
  };

  const std::vector<align::KernelKind> kernels = {
      align::KernelKind::kStriped8, align::KernelKind::kStriped,
      align::KernelKind::kInterSeq};

  TextTable table;
  table.set_header({"kernel", "backend", "threads", "chunks", "GCUPS",
                    "speedup", "scores==ref"});

  std::string json = "{\n";
  json += "  \"bench\": \"parallel_search\",\n";
  json += "  \"host_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"records\": " + std::to_string(records) + ",\n";
  json += "  \"query_len\": " + std::to_string(query_len) + ",\n";
  json += "  \"db_format\": \"swdb v2 (pre-encoded, mmap zero-copy)\",\n";
  json += "  \"backends\": {\n";

  // Reference scores: the narrowest requested backend, serial. Every other
  // (backend, kernel, threads) cell must reproduce them bit for bit.
  std::vector<std::vector<int>> reference(kernels.size());
  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    reference[ki] = align::search_database(query_view, views, scheme,
                                           kernels[ki], backends.front())
                        .scores;
  }

  for (std::size_t bi = 0; bi < backends.size(); ++bi) {
    const align::Backend backend = backends[bi];
    const char* bname = align::backend_name(backend);
    json += std::string("    \"") + bname + "\": {\n";
    json += "      \"lanes8\": " +
            std::to_string(align::backend_lanes8(backend)) + ",\n";
    json += "      \"lanes16\": " +
            std::to_string(align::backend_lanes16(backend)) + ",\n";
    json += "      \"kernels\": {\n";

    for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
      const align::KernelKind kernel = kernels[ki];
      const align::SearchResult serial = align::search_database(
          query_view, views, scheme, kernel, backend);
      const bool serial_identical = serial.scores == reference[ki];
      const Measurement serial_best = measure([&] {
        return align::search_database(query_view, views, scheme, kernel,
                                      backend);
      });
      table.add_row({align::kernel_name(kernel), bname, "serial", "1",
                     TextTable::fmt(serial_best.gcups, 3), "1.00",
                     serial_identical ? "yes" : "NO"});
      json += std::string("        \"") + align::kernel_name(kernel) +
              "\": {\n";
      json += "          \"serial_gcups\": " +
              TextTable::fmt(serial_best.gcups, 4) + ",\n";
      json += std::string("          \"serial_scores_identical\": ") +
              (serial_identical ? "true" : "false") + ",\n";
      json += std::string("          \"roofline\": \"") +
              roofline_note(kernel) + "\",\n";
      json += "          \"parallel\": [\n";

      for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
        const std::size_t threads = thread_counts[ti];
        align::ParallelSearchOptions options;
        options.threads = threads;
        // Engines share the mapping and its precomputed lane-batch index.
        const align::ParallelSearchEngine engine(mapped, options);
        const bool identical =
            engine.search(query_view, scheme, kernel, backend).scores ==
            reference[ki];
        const Measurement parallel_best = measure(
            [&] { return engine.search(query_view, scheme, kernel, backend); });
        const double speedup = serial_best.gcups > 0
                                   ? parallel_best.gcups / serial_best.gcups
                                   : 0.0;
        table.add_row({align::kernel_name(kernel), bname,
                       std::to_string(threads),
                       std::to_string(engine.num_chunks()),
                       TextTable::fmt(parallel_best.gcups, 3),
                       TextTable::fmt(speedup, 2), identical ? "yes" : "NO"});
        json += "            {\"threads\": " + std::to_string(threads) +
                ", \"chunks\": " + std::to_string(engine.num_chunks()) +
                ", \"gcups\": " + TextTable::fmt(parallel_best.gcups, 4) +
                ", \"speedup\": " + TextTable::fmt(speedup, 3) +
                ", \"scores_identical\": " + (identical ? "true" : "false") +
                "}";
        json += ti + 1 < thread_counts.size() ? ",\n" : "\n";
      }
      json += "          ]\n";
      json += ki + 1 < kernels.size() ? "        },\n" : "        }\n";
    }
    json += "      },\n";

    // Two-stage filtered search at this backend: banded screen + interseq
    // candidate rescan, scored as *effective* GCUPS — exact-scan cells over
    // filtered wall time, so the speedup column reads "how much faster the
    // same question is answered", with recall@k against the exact top-k.
    const align::SearchResult exact = align::search_database(
        query_view, views, scheme, align::KernelKind::kInterSeq, backend);
    const std::vector<align::SearchHit> exact_top = exact.top(top_k);
    const double exact_cells = static_cast<double>(exact.cells);
    align::FilterConfig off_config;
    const align::FilteredSearchResult off_result =
        align::search_database_filtered(query_view, views, scheme,
                                        align::KernelKind::kInterSeq, top_k,
                                        off_config, backend);
    const bool off_identical = off_result.result.scores == exact.scores;
    align::FilterConfig heuristic;
    heuristic.mode = align::FilterMode::kHeuristic;
    heuristic.band = filter_band;
    const auto recall_of = [&](const std::vector<align::SearchHit>& hits) {
      std::size_t found = 0;
      for (const align::SearchHit& want : exact_top) {
        for (const align::SearchHit& hit : hits) {
          if (hit.db_index == want.db_index || hit.score == want.score) {
            ++found;
            break;
          }
        }
      }
      return exact_top.empty()
                 ? 1.0
                 : static_cast<double>(found) /
                       static_cast<double>(exact_top.size());
    };
    const auto measure_filtered = [&](const auto& filtered_fn) {
      Measurement best;
      double recall = 1.0;
      for (std::size_t r = 0; r < reps; ++r) {
        WallTimer timer;
        const align::FilteredSearchResult result = filtered_fn();
        const double seconds = timer.seconds();
        const double gcups = seconds > 0 ? exact_cells / seconds / 1e9 : 0.0;
        if (gcups > best.gcups) best = {gcups, seconds};
        recall = recall_of(result.hits);
      }
      return std::pair<Measurement, double>(best, recall);
    };
    const double serial_exact_gcups = [&] {
      const Measurement best = measure([&] {
        return align::search_database(query_view, views, scheme,
                                      align::KernelKind::kInterSeq, backend);
      });
      return best.gcups;
    }();
    const auto [filtered_serial, serial_recall] = measure_filtered([&] {
      return align::search_database_filtered(query_view, views, scheme,
                                             align::KernelKind::kInterSeq,
                                             top_k, heuristic, backend);
    });
    table.add_row({"filtered", bname, "serial", "1",
                   TextTable::fmt(filtered_serial.gcups, 3),
                   TextTable::fmt(serial_exact_gcups > 0
                                      ? filtered_serial.gcups /
                                            serial_exact_gcups
                                      : 0.0, 2),
                   off_identical ? "yes" : "NO"});
    json += "      \"filtered\": {\n";
    json += "        \"band\": " + std::to_string(filter_band) +
            ", \"keep_factor\": 4, \"top_k\": " + std::to_string(top_k) +
            ", \"plant\": " + std::to_string(plant) + ",\n";
    json += std::string("        \"off_scores_identical\": ") +
            (off_identical ? "true" : "false") + ",\n";
    json += "        \"roofline\": \"banded screen: len/(2*band+1)x fewer "
            "cells than the exact scan at a measured per-cell masking "
            "penalty (BM_BandedScreenBackend vs BM_InterSeqBackend); "
            "effective_gcups divides exact-scan cells by filtered wall "
            "time\",\n";
    json += "        \"serial\": {\"effective_gcups\": " +
            TextTable::fmt(filtered_serial.gcups, 4) +
            ", \"speedup_vs_exact\": " +
            TextTable::fmt(serial_exact_gcups > 0
                               ? filtered_serial.gcups / serial_exact_gcups
                               : 0.0, 3) +
            ", \"recall\": " + TextTable::fmt(serial_recall, 4) + "},\n";
    json += "        \"parallel\": [\n";
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
      const std::size_t threads = thread_counts[ti];
      align::ParallelSearchOptions options;
      options.threads = threads;
      const align::ParallelSearchEngine engine(mapped, options);
      const auto [best, recall] = measure_filtered([&] {
        return engine.search_filtered(query_view, scheme,
                                      align::KernelKind::kInterSeq, top_k,
                                      heuristic, backend);
      });
      table.add_row({"filtered", bname, std::to_string(threads),
                     std::to_string(engine.num_chunks()),
                     TextTable::fmt(best.gcups, 3),
                     TextTable::fmt(serial_exact_gcups > 0
                                        ? best.gcups / serial_exact_gcups
                                        : 0.0, 2),
                     recall == 1.0 ? "yes" : "NO"});
      json += "          {\"threads\": " + std::to_string(threads) +
              ", \"chunks\": " + std::to_string(engine.num_chunks()) +
              ", \"effective_gcups\": " + TextTable::fmt(best.gcups, 4) +
              ", \"speedup_vs_exact\": " +
              TextTable::fmt(serial_exact_gcups > 0
                                 ? best.gcups / serial_exact_gcups
                                 : 0.0, 3) +
              ", \"recall\": " + TextTable::fmt(recall, 4) + "}";
      json += ti + 1 < thread_counts.size() ? ",\n" : "\n";
    }
    json += "        ]\n";
    json += "      }\n";
    json += bi + 1 < backends.size() ? "    },\n" : "    }\n";
  }
  json += "  }\n}\n";

  std::printf("%s", table.render().c_str());

  std::FILE* out = std::fopen(cli.option("out").c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cli.option("out").c_str());
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::remove(swdb_path.c_str());
  std::printf("\n[json written to %s]\n", cli.option("out").c_str());
  return 0;
}
