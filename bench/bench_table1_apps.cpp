// Table I — applications included in the comparison.
//
// The paper's Table I lists the compared binaries with their versions and
// command lines. Our reproduction replaces each binary with a driver that
// re-implements its parallelization strategy over this library's kernels;
// this harness prints the mapping so every later table is interpretable.
#include <cstdio>

#include "bench_common.h"
#include "core/apps.h"

int main() {
  using namespace swdual;
  bench::banner("Table I: applications included in the comparison",
                "paper binaries -> this library's equivalent drivers");

  TextTable table;
  table.set_header({"application", "paper version", "paper command line",
                    "reproduction driver", "throughput class"});
  platform::PerfModel model;
  const auto gc = [](double gcups) {
    return TextTable::fmt(gcups, 2) + " GCUPS/worker";
  };
  table.add_row({"SWIPE", "1.0", "./swipe -a $T -i $Q -d $D",
                 "inter-sequence SIMD kernel, self-scheduled query tasks",
                 gc(model.swipe_cpu.gcups)});
  table.add_row({"STRIPED", "(Farrar)", "./striped -T $T $Q $D",
                 "striped SIMD kernel, self-scheduled query tasks",
                 gc(model.striped_cpu.gcups)});
  table.add_row({"SWPS3", "20080605", "./swps3 -j $T $Q $D",
                 "vectorized kernel class, self-scheduled query tasks",
                 gc(model.swps3_cpu.gcups)});
  table.add_row({"CUDASW++", "2.0", "./cudasw -use_gpus $T -query $Q -db $D",
                 "virtual GPU (SIMT batch over inter-sequence kernel)",
                 gc(model.cudasw_gpu.gcups)});
  table.add_row({"SWDUAL", "(this paper)", "(master-slave, see §IV)",
                 "dual-approximation scheduler + master-slave runtime",
                 "SWIPE-class CPUs + CUDASW++-class GPUs"});
  std::printf("%s", table.render().c_str());
  bench::emit_csv(table, "table1_apps.csv");
  return 0;
}
