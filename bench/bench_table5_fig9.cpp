// Table V + Fig. 9 — homogeneous (4500..5000 aa) vs heterogeneous
// (4..35213 aa) query sets against UniProt, workers 2..8.
#include <cstdio>

#include "bench_common.h"
#include "core/apps.h"

int main(int argc, char** argv) {
  using namespace swdual;
  const std::size_t scale = argc > 1 ? std::stoul(argv[1]) : 1;
  bench::banner(
      "Table V + Fig. 9: homogeneous vs heterogeneous query sets (UniProt)",
      "virtual-time model at paper scale; paper values in parentheses");

  struct PaperCell {
    double time;
    double gcups;
  };
  const struct {
    const char* label;
    seq::QuerySetKind kind;
    std::array<PaperCell, 3> paper;  // workers 2, 4, 8
  } sets[] = {
      {"Heterogeneous", seq::QuerySetKind::kHeterogeneous,
       {{{3554.36, 37.55}, {1785.73, 74.74}, {908.45, 146.92}}}},
      {"Homogeneous", seq::QuerySetKind::kHomogeneous,
       {{{998.27, 36.3}, {484.74, 74.76}, {249.69, 145.14}}}},
  };

  TextTable table;
  table.set_header({"set", "workers", "time (s)", "time (paper)", "GCUPS",
                    "GCUPS (paper)"});
  TextTable curve;
  curve.set_header({"set", "workers", "time (s)"});

  for (const auto& set : sets) {
    const core::Workload workload =
        core::make_workload("uniprot", set.kind, scale);
    std::printf("%s set: %.3e cells total\n", set.label,
                static_cast<double>(workload.total_cells()));
    for (std::size_t workers = 2; workers <= 8; ++workers) {
      const core::AppRunResult run =
          core::run_app_virtual(core::AppKind::kSwdual, workload, workers);
      curve.add_row({set.label, std::to_string(workers),
                     TextTable::fmt(run.virtual_seconds, 2)});
      const int paper_index =
          workers == 2 ? 0 : (workers == 4 ? 1 : (workers == 8 ? 2 : -1));
      if (paper_index >= 0) {
        const PaperCell& cell =
            set.paper[static_cast<std::size_t>(paper_index)];
        table.add_row({set.label, std::to_string(workers),
                       TextTable::fmt(run.virtual_seconds, 2),
                       scale == 1 ? TextTable::fmt(cell.time, 2) : "-",
                       TextTable::fmt(run.gcups, 2),
                       scale == 1 ? TextTable::fmt(cell.gcups, 2) : "-"});
      }
    }
  }
  std::printf("\n%s\nFig. 9 series:\n%s", table.render().c_str(),
              curve.render().c_str());
  bench::emit_csv(table, "table5_fig9.csv");
  curve.write_csv("fig9_series.csv");
  return 0;
}
