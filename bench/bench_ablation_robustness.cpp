// Ablation — sensitivity of the allocation policies to task-time
// misprediction.
//
// SWDUAL schedules from *predicted* processing times (cell counts over a
// GCUPS model); reality deviates. This harness plans each policy's schedule
// on noise-perturbed estimates and replays it against the true times in the
// discrete-event simulator, reporting the makespan degradation vs planning
// with perfect information. Dynamic self-scheduling needs no estimates and
// serves as the noise-immune reference.
#include <cstdio>

#include "bench_common.h"
#include "platform/des.h"
#include "sched/baselines.h"
#include "sched/dual_approx.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace swdual;
  using namespace swdual::sched;
  bench::banner("Ablation: robustness to task-time misprediction",
                "makespan vs perfect-information plan, 20 instances/cell");

  const HybridPlatform platform{4, 4};
  TextTable table;
  table.set_header({"noise sigma", "swdual", "swdual-refined", "proportional",
                    "lpt", "self-sched (dynamic)"});

  Rng rng(7777);
  for (const double sigma : {0.0, 0.05, 0.10, 0.25, 0.50}) {
    RunningStats dual, refined, prop, lpt_s, ss;
    for (int rep = 0; rep < 20; ++rep) {
      // True instance.
      std::vector<Task> truth;
      const std::size_t n = 40 + rng.below(40);
      for (std::size_t i = 0; i < n; ++i) {
        const double cpu = 1.0 + rng.uniform() * 99.0;
        truth.push_back({i, cpu, cpu / (2.0 + rng.uniform() * 18.0)});
      }
      // Perturbed estimates (multiplicative log-normal noise).
      std::vector<Task> estimate = truth;
      for (Task& task : estimate) {
        task.cpu_time *= rng.lognormal(0.0, sigma);
        task.gpu_time *= rng.lognormal(0.0, sigma);
      }
      // Plan on estimates, execute with the truth; normalize by the
      // perfect-information makespan of the same policy.
      const auto replay = [&](const Schedule& planned) {
        return platform::simulate_static(planned, truth, platform).makespan;
      };
      dual.add(replay(swdual_schedule(estimate, platform)) /
               replay(swdual_schedule(truth, platform)));
      refined.add(replay(swdual_schedule_refined(estimate, platform)) /
                  replay(swdual_schedule_refined(truth, platform)));
      prop.add(replay(proportional_static(estimate, platform)) /
               replay(proportional_static(truth, platform)));
      lpt_s.add(replay(lpt_hybrid(estimate, platform)) /
                replay(lpt_hybrid(truth, platform)));
      // Self-scheduling ignores estimates entirely.
      ss.add(1.0);
    }
    table.add_row({TextTable::fmt(sigma * 100, 0) + "%",
                   TextTable::fmt(dual.mean(), 3),
                   TextTable::fmt(refined.mean(), 3),
                   TextTable::fmt(prop.mean(), 3),
                   TextTable::fmt(lpt_s.mean(), 3),
                   TextTable::fmt(ss.mean(), 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nvalues are degradation factors (1.000 = unaffected by noise).\n"
      "Sequence-comparison task times are highly predictable (cells/GCUPS),\n"
      "which is why the paper's one-round static allocation is viable.\n");
  bench::emit_csv(table, "ablation_robustness.csv");
  return 0;
}
