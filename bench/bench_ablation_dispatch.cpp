// Ablation — one-round static dispatch vs per-task dynamic dispatch under
// master latency.
//
// The paper's master sends each worker its whole task list once ("one round
// master-slave approach"). The alternative — pulling one task at a time —
// pays a master round-trip per task. This harness sweeps that dispatch
// latency and shows where each strategy wins, justifying the design choice.
#include <cstdio>

#include "bench_common.h"
#include "platform/des.h"
#include "sched/dual_approx.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace swdual;
  using namespace swdual::sched;
  bench::banner("Ablation: one-round static vs dynamic dispatch latency",
                "makespans on a 4 CPU + 4 GPU platform, 20 instances/cell");

  const HybridPlatform platform{4, 4};
  TextTable table;
  table.set_header({"dispatch latency (s)", "swdual one-round (s)",
                    "self-scheduling (s)", "dynamic penalty"});

  Rng rng(2020);
  for (const double latency : {0.0, 0.01, 0.1, 0.5, 2.0}) {
    RunningStats one_round, dynamic_mode;
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<Task> tasks;
      const std::size_t n = 40 + rng.below(40);
      for (std::size_t i = 0; i < n; ++i) {
        const double cpu = 1.0 + rng.uniform() * 99.0;
        tasks.push_back({i, cpu, cpu / (2.0 + rng.uniform() * 18.0)});
      }
      // One-round static: a single dispatch round-trip per worker, paid once
      // and overlapped across workers — effectively `latency` added to the
      // start of every PE's timeline.
      const Schedule plan = swdual_schedule(tasks, platform);
      one_round.add(platform::simulate_static(plan, tasks, platform).makespan +
                    latency);
      // Dynamic: one round-trip per task pull.
      dynamic_mode.add(
          platform::simulate_self_scheduling(tasks, platform, latency)
              .makespan);
    }
    table.add_row({TextTable::fmt(latency, 2),
                   TextTable::fmt(one_round.mean(), 2),
                   TextTable::fmt(dynamic_mode.mean(), 2),
                   TextTable::fmt(dynamic_mode.mean() / one_round.mean(), 2) +
                       "x"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nwith negligible latency dynamic pulling is competitive; as the\n"
      "master round-trip grows (distributed workers, Fig. 6's registration\n"
      "protocol over a network) the one-round schedule's advantage grows —\n"
      "and it additionally exploits the CPU/GPU time heterogeneity that\n"
      "plain self-scheduling ignores.\n");
  bench::emit_csv(table, "ablation_dispatch.csv");
  return 0;
}
