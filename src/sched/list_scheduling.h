// List scheduling primitives (Graham-style), the placement layer under every
// allocation policy in this library.
#pragma once

#include <vector>

#include "sched/schedule.h"
#include "sched/task.h"

namespace swdual::sched {

/// Place `tasks`, in the given order, onto the given PEs: each task starts on
/// the PE that becomes available first (ties broken by PE order). Durations
/// follow each PE's type. All PEs must exist in `platform`-independent sense
/// (the caller chooses the pool). Appends to `schedule`.
void list_schedule_onto(const std::vector<Task>& tasks,
                        const std::vector<PeId>& pes, Schedule& schedule);

/// Convenience pool builders.
std::vector<PeId> cpu_pool(const HybridPlatform& platform);
std::vector<PeId> gpu_pool(const HybridPlatform& platform);
std::vector<PeId> all_pes(const HybridPlatform& platform);

/// Sort a copy of tasks by decreasing processing time on the given PE type
/// (Longest Processing Time first).
std::vector<Task> sorted_lpt(std::vector<Task> tasks, PeType type);

/// Schedule a two-sided allocation: `cpu_tasks` list-scheduled on the CPUs,
/// `gpu_tasks` on the GPUs, independently.
Schedule schedule_split(const std::vector<Task>& cpu_tasks,
                        const std::vector<Task>& gpu_tasks,
                        const HybridPlatform& platform);

}  // namespace swdual::sched
