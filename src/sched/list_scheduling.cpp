#include "sched/list_scheduling.h"

#include <algorithm>
#include <queue>

#include "util/error.h"

namespace swdual::sched {

void list_schedule_onto(const std::vector<Task>& tasks,
                        const std::vector<PeId>& pes, Schedule& schedule) {
  if (tasks.empty()) return;
  SWDUAL_REQUIRE(!pes.empty(), "list scheduling needs at least one PE");

  // Min-heap of (available time, pool position) — pool position breaks ties
  // deterministically.
  using Slot = std::pair<double, std::size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (std::size_t i = 0; i < pes.size(); ++i) {
    heap.emplace(schedule.pe_finish(pes[i]), i);
  }

  for (const Task& task : tasks) {
    const auto [available, position] = heap.top();
    heap.pop();
    const PeId pe = pes[position];
    Assignment a;
    a.task_id = task.id;
    a.pe = pe;
    a.start = available;
    a.end = available + task.time_on(pe.type);
    schedule.add(a);
    heap.emplace(a.end, position);
  }
}

std::vector<PeId> cpu_pool(const HybridPlatform& platform) {
  std::vector<PeId> pes;
  for (std::size_t i = 0; i < platform.num_cpus; ++i) {
    pes.push_back({PeType::kCpu, i});
  }
  return pes;
}

std::vector<PeId> gpu_pool(const HybridPlatform& platform) {
  std::vector<PeId> pes;
  for (std::size_t i = 0; i < platform.num_gpus; ++i) {
    pes.push_back({PeType::kGpu, i});
  }
  return pes;
}

std::vector<PeId> all_pes(const HybridPlatform& platform) {
  // GPUs first: with dynamic policies the fastest PEs should grab work first
  // (matches the paper's worker ordering "the first four workers were GPUs").
  std::vector<PeId> pes = gpu_pool(platform);
  const std::vector<PeId> cpus = cpu_pool(platform);
  pes.insert(pes.end(), cpus.begin(), cpus.end());
  return pes;
}

std::vector<Task> sorted_lpt(std::vector<Task> tasks, PeType type) {
  std::stable_sort(tasks.begin(), tasks.end(),
                   [type](const Task& a, const Task& b) {
                     return a.time_on(type) > b.time_on(type);
                   });
  return tasks;
}

Schedule schedule_split(const std::vector<Task>& cpu_tasks,
                        const std::vector<Task>& gpu_tasks,
                        const HybridPlatform& platform) {
  Schedule schedule;
  if (!cpu_tasks.empty()) {
    SWDUAL_REQUIRE(platform.num_cpus > 0, "CPU tasks but no CPUs");
    list_schedule_onto(cpu_tasks, cpu_pool(platform), schedule);
  }
  if (!gpu_tasks.empty()) {
    SWDUAL_REQUIRE(platform.num_gpus > 0, "GPU tasks but no GPUs");
    list_schedule_onto(gpu_tasks, gpu_pool(platform), schedule);
  }
  return schedule;
}

}  // namespace swdual::sched
