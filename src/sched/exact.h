// Exact optimal makespan for small instances (branch and bound).
//
// R|p_j,p̄_j|Cmax on (m CPUs, k GPUs) is NP-hard, but small instances are
// solvable exactly: tasks are assigned longest-first by depth-first search
// over per-PE loads, pruning with the incumbent and an area lower bound,
// and breaking the symmetry of identical machines. This is the ground-truth
// oracle used by property tests and by the ablation benches to report true
// approximation ratios (not just ratios to a lower bound).
#pragma once

#include <optional>
#include <vector>

#include "sched/schedule.h"
#include "sched/task.h"

namespace swdual::sched {

/// Result of the exact solver.
struct ExactResult {
  double makespan = 0.0;
  Schedule schedule;
  std::uint64_t nodes_explored = 0;
};

/// Solve to optimality. `node_limit` bounds the search; returns nullopt if
/// the limit is hit before the search space is exhausted (the incumbent is
/// then not certified). Intended for n ≲ 25.
std::optional<ExactResult> exact_schedule(const std::vector<Task>& tasks,
                                          const HybridPlatform& platform,
                                          std::uint64_t node_limit = 50'000'000);

}  // namespace swdual::sched
