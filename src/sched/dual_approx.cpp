#include "sched/dual_approx.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/trace.h"
#include "sched/baselines.h"
#include "sched/list_scheduling.h"
#include "util/error.h"

namespace swdual::sched {

namespace {

constexpr double kRelTol = 1e-12;

bool leq(double a, double b) { return a <= b * (1.0 + kRelTol) + kRelTol; }

/// Tasks sorted by decreasing acceleration ratio (the knapsack priority of
/// Fig. 4), stable for determinism.
std::vector<Task> sorted_by_ratio(std::vector<Task> tasks) {
  std::stable_sort(tasks.begin(), tasks.end(), [](const Task& a, const Task& b) {
    return a.accel() > b.accel();
  });
  return tasks;
}

}  // namespace

DualStepResult dual_approx_step(const std::vector<Task>& tasks,
                                const HybridPlatform& platform,
                                double lambda) {
  SWDUAL_REQUIRE(lambda >= 0, "guess must be non-negative");
  SWDUAL_REQUIRE(platform.total() > 0, "platform has no PEs");
  const double m = static_cast<double>(platform.num_cpus);
  const double k = static_cast<double>(platform.num_gpus);

  DualStepResult result;

  std::vector<Task> gpu_tasks;   // mandatory + knapsack picks (j_last kept last)
  std::vector<Task> cpu_tasks;
  std::vector<Task> free_tasks;  // eligible for either side
  double gpu_area = 0.0;
  double cpu_area = 0.0;

  for (const Task& task : tasks) {
    const bool fits_cpu = platform.num_cpus > 0 && leq(task.cpu_time, lambda);
    const bool fits_gpu = platform.num_gpus > 0 && leq(task.gpu_time, lambda);
    if (!fits_cpu && !fits_gpu) return result;  // NO: task too long everywhere
    if (!fits_cpu) {
      gpu_tasks.push_back(task);  // forced onto a GPU
      gpu_area += task.gpu_time;
    } else if (!fits_gpu) {
      cpu_tasks.push_back(task);  // forced onto a CPU
      cpu_area += task.cpu_time;
    } else {
      free_tasks.push_back(task);
    }
  }

  // (C2): mandatory GPU work alone must respect the GPU area bound.
  if (!leq(gpu_area, k * lambda)) return result;  // NO

  // Greedy minimization knapsack (Fig. 4): best-accelerated tasks first,
  // fill the GPUs until the area reaches kλ; the crossing task j_last stays.
  std::ptrdiff_t j_last = -1;  // position in gpu_tasks of the overflow task
  for (const Task& task : sorted_by_ratio(std::move(free_tasks))) {
    if (gpu_area < k * lambda) {
      gpu_area += task.gpu_time;
      gpu_tasks.push_back(task);
      if (gpu_area >= k * lambda) {
        j_last = static_cast<std::ptrdiff_t>(gpu_tasks.size()) - 1;
      }
    } else {
      cpu_tasks.push_back(task);
      cpu_area += task.cpu_time;
    }
  }

  // (C1): the leftover CPU workload must fit in area mλ. The greedy leaves
  // the minimum possible CPU workload (continuous-knapsack optimal), so
  // exceeding mλ certifies that no λ-schedule exists.
  if (!leq(cpu_area, m * lambda)) return result;  // NO
  if (platform.num_cpus == 0 && !cpu_tasks.empty()) return result;  // NO

  // Build the 2λ schedule: LPT within each side; j_last scheduled last on
  // the GPUs so Prop. 1's analysis applies (all other GPU tasks have area
  // ≤ kλ, and the least-loaded GPU is below λ when j_last is placed).
  std::vector<Task> gpu_order;
  std::optional<Task> overflow_task;
  if (j_last >= 0) {
    overflow_task = gpu_tasks[static_cast<std::size_t>(j_last)];
    gpu_tasks.erase(gpu_tasks.begin() + j_last);
  }
  gpu_order = sorted_lpt(std::move(gpu_tasks), PeType::kGpu);
  if (overflow_task) gpu_order.push_back(*overflow_task);

  result.schedule = schedule_split(sorted_lpt(std::move(cpu_tasks), PeType::kCpu),
                                   gpu_order, platform);
  result.feasible = true;
  result.cpu_area = cpu_area;
  result.gpu_area = gpu_area;
  return result;
}

double makespan_lower_bound(const std::vector<Task>& tasks,
                            const HybridPlatform& platform) {
  SWDUAL_REQUIRE(platform.total() > 0, "platform has no PEs");
  if (tasks.empty()) return 0.0;

  // Every task runs somewhere, taking at least its faster processing time.
  double longest = 0.0;
  for (const Task& task : tasks) {
    double fastest = std::numeric_limits<double>::infinity();
    if (platform.num_cpus > 0) fastest = std::min(fastest, task.cpu_time);
    if (platform.num_gpus > 0) fastest = std::min(fastest, task.gpu_time);
    longest = std::max(longest, fastest);
  }

  // Fractional area bound: smallest λ whose continuous-knapsack split fits
  // both area budgets. Tasks are divisible in this relaxation, so any real
  // schedule of makespan λ passes the test — hence a valid lower bound.
  const std::vector<Task> by_ratio = sorted_by_ratio(tasks);
  const double m = static_cast<double>(platform.num_cpus);
  const double k = static_cast<double>(platform.num_gpus);
  const auto fractional_feasible = [&](double lambda) {
    double gpu_budget = k * lambda;
    double cpu_area = 0.0;
    for (const Task& task : by_ratio) {
      if (gpu_budget >= task.gpu_time) {
        gpu_budget -= task.gpu_time;
      } else if (task.gpu_time > 0) {
        const double fraction_on_gpu = gpu_budget / task.gpu_time;
        gpu_budget = 0;
        cpu_area += task.cpu_time * (1.0 - fraction_on_gpu);
      } else {
        gpu_budget = 0;
      }
    }
    return leq(cpu_area, m * lambda);
  };

  double lo = 0.0;
  double hi = longest;
  // Grow hi until feasible (it must become feasible once λ covers all work).
  while (!fractional_feasible(hi)) hi *= 2.0;
  for (int iter = 0; iter < 100 && (hi - lo) > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (fractional_feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return std::max(longest, hi);
}

Schedule swdual_schedule(const std::vector<Task>& tasks,
                         const HybridPlatform& platform, double epsilon,
                         DualSearchStats* stats, obs::Tracer* tracer) {
  SWDUAL_REQUIRE(epsilon > 0, "epsilon must be positive");
  if (tasks.empty()) {
    if (stats) *stats = {};
    return {};
  }

  // Initial bounds: B_min from the certified lower bound; B_max from any
  // feasible schedule's makespan (earliest-completion greedy).
  double b_min = makespan_lower_bound(tasks, platform);
  double b_max = lpt_hybrid(tasks, platform).makespan();
  b_max = std::max(b_max, b_min);

  Schedule best;
  double best_makespan = std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
  double final_lambda = b_max;

  const auto consider = [&](double lambda) -> bool {
    obs::Span span;
    if (tracer) {
      span = tracer->span("lambda_step", "sched", obs::kMasterTrack);
      span.arg("lambda", lambda);
    }
    DualStepResult step = dual_approx_step(tasks, platform, lambda);
    if (tracer) {
      span.arg("feasible", step.feasible ? 1.0 : 0.0);
      // Knapsack fill level: GPU area over its budget kλ (Fig. 4); tops 1
      // when the overflow task j_last crossed the boundary.
      const double budget =
          static_cast<double>(platform.num_gpus) * lambda;
      span.arg("gpu_fill", budget > 0 ? step.gpu_area / budget : 0.0);
      span.arg("cpu_area", step.cpu_area);
    }
    if (!step.feasible) return false;
    const double makespan = step.schedule.makespan();
    SWDUAL_CHECK(leq(makespan, 2.0 * lambda),
                 "dual-approx step violated its 2λ guarantee");
    span.arg("makespan", makespan);
    if (makespan < best_makespan) {
      best_makespan = makespan;
      best = std::move(step.schedule);
    }
    return true;
  };

  // The upper bound is an achievable makespan, so the step at B_max is YES.
  consider(b_max);
  while ((b_max - b_min) > epsilon * std::max(b_max, 1e-300) &&
         iterations < 200) {
    ++iterations;
    const double lambda = 0.5 * (b_min + b_max);
    if (consider(lambda)) {
      b_max = lambda;
      final_lambda = lambda;
    } else {
      b_min = lambda;
    }
  }
  SWDUAL_CHECK(std::isfinite(best_makespan),
               "binary search ended with no feasible schedule");

  if (stats) {
    stats->iterations = iterations;
    stats->final_lambda = final_lambda;
    stats->lower_bound = b_min;
    stats->makespan = best_makespan;
  }
  return best;
}

namespace {

/// Evaluate an allocation (PE type per task) by LPT list scheduling each side.
Schedule realize_allocation(const std::vector<Task>& tasks,
                            const std::vector<PeType>& where,
                            const HybridPlatform& platform) {
  std::vector<Task> cpu_tasks, gpu_tasks;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    (where[i] == PeType::kCpu ? cpu_tasks : gpu_tasks).push_back(tasks[i]);
  }
  return schedule_split(sorted_lpt(std::move(cpu_tasks), PeType::kCpu),
                        sorted_lpt(std::move(gpu_tasks), PeType::kGpu),
                        platform);
}

}  // namespace

Schedule swdual_schedule_refined(const std::vector<Task>& tasks,
                                 const HybridPlatform& platform,
                                 double epsilon, DualSearchStats* stats,
                                 obs::Tracer* tracer) {
  Schedule base = swdual_schedule(tasks, platform, epsilon, stats, tracer);
  if (tasks.empty() || platform.num_cpus == 0 || platform.num_gpus == 0) {
    return base;
  }

  // Recover the base allocation.
  std::vector<PeType> where(tasks.size(), PeType::kCpu);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto placed = base.find_task(tasks[i].id);
    SWDUAL_CHECK(placed.has_value(), "base schedule lost a task");
    where[i] = placed->pe.type;
  }

  double best_makespan = base.makespan();
  Schedule best = std::move(base);

  // Hill-climb on single-task side moves (first-improvement, multi-pass).
  bool improved = true;
  for (int pass = 0; pass < 64 && improved; ++pass) {
    improved = false;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      where[i] = where[i] == PeType::kCpu ? PeType::kGpu : PeType::kCpu;
      Schedule candidate = realize_allocation(tasks, where, platform);
      const double makespan = candidate.makespan();
      if (makespan + 1e-12 < best_makespan) {
        best_makespan = makespan;
        best = std::move(candidate);
        improved = true;
      } else {
        where[i] = where[i] == PeType::kCpu ? PeType::kGpu : PeType::kCpu;
      }
    }
  }
  if (stats) stats->makespan = best_makespan;
  return best;
}

}  // namespace swdual::sched
