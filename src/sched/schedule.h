// Schedule representation, validation, and metrics (Gantt-chart model).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/contracts.h"
#include "sched/task.h"

namespace swdual::sched {

/// One placed task: where and when it runs.
struct Assignment {
  std::size_t task_id = 0;
  PeId pe;
  double start = 0.0;
  double end = 0.0;

  double duration() const { return end - start; }
};

/// A complete non-preemptive schedule.
class Schedule {
 public:
  void add(Assignment assignment) {
    SWDUAL_DCHECK(assignment.end >= assignment.start,
                  "assignment ends before it starts");
    assignments_.push_back(assignment);
  }

  const std::vector<Assignment>& assignments() const { return assignments_; }
  bool empty() const { return assignments_.empty(); }
  std::size_t size() const { return assignments_.size(); }

  /// Global completion time (0 for an empty schedule).
  double makespan() const;

  /// Sum of processing time placed on PEs of the given type (the
  /// "computational area" W_C / W_G of §III).
  double area(PeType type) const;

  /// Completion time of the given PE (0 if unused).
  double pe_finish(const PeId& pe) const;

  /// Assignment holding a task, if present.
  std::optional<Assignment> find_task(std::size_t task_id) const;

 private:
  std::vector<Assignment> assignments_;
};

/// Aggregate quality metrics for a schedule on a platform.
struct ScheduleMetrics {
  double makespan = 0.0;
  double cpu_area = 0.0;
  double gpu_area = 0.0;
  double total_idle = 0.0;      ///< Σ over PEs of (makespan − busy time)
  double idle_fraction = 0.0;   ///< total_idle / (makespan · #PEs)
  std::size_t tasks_on_cpu = 0;
  std::size_t tasks_on_gpu = 0;
};

ScheduleMetrics compute_metrics(const Schedule& schedule,
                                const HybridPlatform& platform);

/// Structural validation: every task of `tasks` placed exactly once, on a PE
/// that exists, with duration equal to its processing time on that PE type,
/// start >= 0, and no two tasks overlapping on the same PE. Throws
/// swdual::Error with a diagnostic on the first violation.
void validate_schedule(const Schedule& schedule, const std::vector<Task>& tasks,
                       const HybridPlatform& platform);

/// Render a small ASCII Gantt chart (for examples and debugging).
std::string render_gantt(const Schedule& schedule,
                         const HybridPlatform& platform, std::size_t width = 72);

}  // namespace swdual::sched
