#include "sched/schedule.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "util/error.h"

namespace swdual::sched {

std::string pe_name(const PeId& pe) {
  return (pe.type == PeType::kCpu ? "CPU" : "GPU") + std::to_string(pe.index);
}

double Schedule::makespan() const {
  double latest = 0.0;
  for (const Assignment& a : assignments_) latest = std::max(latest, a.end);
  return latest;
}

double Schedule::area(PeType type) const {
  double total = 0.0;
  for (const Assignment& a : assignments_) {
    if (a.pe.type == type) total += a.duration();
  }
  return total;
}

double Schedule::pe_finish(const PeId& pe) const {
  double latest = 0.0;
  for (const Assignment& a : assignments_) {
    if (a.pe == pe) latest = std::max(latest, a.end);
  }
  return latest;
}

std::optional<Assignment> Schedule::find_task(std::size_t task_id) const {
  for (const Assignment& a : assignments_) {
    if (a.task_id == task_id) return a;
  }
  return std::nullopt;
}

ScheduleMetrics compute_metrics(const Schedule& schedule,
                                const HybridPlatform& platform) {
  ScheduleMetrics metrics;
  metrics.makespan = schedule.makespan();
  metrics.cpu_area = schedule.area(PeType::kCpu);
  metrics.gpu_area = schedule.area(PeType::kGpu);
  for (const Assignment& a : schedule.assignments()) {
    if (a.pe.type == PeType::kCpu) {
      ++metrics.tasks_on_cpu;
    } else {
      ++metrics.tasks_on_gpu;
    }
  }
  const double capacity =
      metrics.makespan * static_cast<double>(platform.total());
  metrics.total_idle = capacity - metrics.cpu_area - metrics.gpu_area;
  metrics.idle_fraction = capacity > 0 ? metrics.total_idle / capacity : 0.0;
  return metrics;
}

void validate_schedule(const Schedule& schedule,
                       const std::vector<Task>& tasks,
                       const HybridPlatform& platform) {
  constexpr double kTol = 1e-9;

  std::map<std::size_t, const Task*> by_id;
  for (const Task& task : tasks) by_id[task.id] = &task;
  SWDUAL_CHECK(by_id.size() == tasks.size(), "duplicate task ids in input");

  std::set<std::size_t> placed;
  std::map<std::pair<int, std::size_t>, std::vector<const Assignment*>> per_pe;
  for (const Assignment& a : schedule.assignments()) {
    const auto it = by_id.find(a.task_id);
    SWDUAL_CHECK(it != by_id.end(),
                 "schedule places unknown task " + std::to_string(a.task_id));
    SWDUAL_CHECK(placed.insert(a.task_id).second,
                 "task " + std::to_string(a.task_id) + " placed twice");
    SWDUAL_CHECK(a.pe.index < platform.count(a.pe.type),
                 "assignment uses nonexistent PE " + pe_name(a.pe));
    SWDUAL_CHECK(a.start >= -kTol, "negative start time");
    const double expected = it->second->time_on(a.pe.type);
    SWDUAL_CHECK(std::abs(a.duration() - expected) <= kTol * (1 + expected),
                 "duration mismatch for task " + std::to_string(a.task_id) +
                     " on " + pe_name(a.pe));
    per_pe[{static_cast<int>(a.pe.type), a.pe.index}].push_back(&a);
  }
  SWDUAL_CHECK(placed.size() == tasks.size(),
               "schedule misses " +
                   std::to_string(tasks.size() - placed.size()) + " task(s)");

  for (auto& [pe, list] : per_pe) {
    std::sort(list.begin(), list.end(),
              [](const Assignment* a, const Assignment* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 1; i < list.size(); ++i) {
      SWDUAL_CHECK(list[i]->start >= list[i - 1]->end - kTol,
                   "overlap on PE between tasks " +
                       std::to_string(list[i - 1]->task_id) + " and " +
                       std::to_string(list[i]->task_id));
    }
  }
}

std::string render_gantt(const Schedule& schedule,
                         const HybridPlatform& platform, std::size_t width) {
  const double makespan = schedule.makespan();
  std::ostringstream os;
  if (makespan <= 0) {
    os << "(empty schedule)\n";
    return os.str();
  }
  const double scale = static_cast<double>(width) / makespan;
  const auto emit_pe = [&](PeId pe) {
    std::string line(width, '.');
    for (const Assignment& a : schedule.assignments()) {
      if (!(a.pe == pe)) continue;
      auto lo = static_cast<std::size_t>(a.start * scale);
      auto hi = static_cast<std::size_t>(a.end * scale);
      lo = std::min(lo, width - 1);
      hi = std::min(std::max(hi, lo + 1), width);
      const char mark =
          static_cast<char>('a' + static_cast<char>(a.task_id % 26));
      for (std::size_t c = lo; c < hi; ++c) line[c] = mark;
    }
    os << pe_name(pe) << (pe.index < 10 ? " " : "") << " |" << line << "|\n";
  };
  for (std::size_t g = 0; g < platform.num_gpus; ++g) {
    emit_pe({PeType::kGpu, g});
  }
  for (std::size_t c = 0; c < platform.num_cpus; ++c) {
    emit_pe({PeType::kCpu, c});
  }
  os << "makespan = " << makespan << '\n';
  return os.str();
}

}  // namespace swdual::sched
