// Baseline allocation policies from the related work the paper compares
// against (§I): self-scheduling [10], equal-power distribution [11], and
// static proportional distribution by theoretical computing power [12],
// plus plain LPT as a classical reference point.
#pragma once

#include <vector>

#include "sched/schedule.h"
#include "sched/task.h"

namespace swdual::sched {

/// Self-scheduling (Singh et al. [10]): one work unit at a time — each task,
/// in input order, goes to the PE that becomes available first, regardless
/// of how well-suited the PE is. This is simply list scheduling over the
/// mixed pool with heterogeneous durations.
Schedule self_scheduling(const std::vector<Task>& tasks,
                         const HybridPlatform& platform);

/// Earliest-completion-time variant of self-scheduling: each task goes to
/// the PE where it would *finish* first (a slightly smarter dynamic policy;
/// included as an ablation point between self-scheduling and SWDUAL).
Schedule earliest_completion(const std::vector<Task>& tasks,
                             const HybridPlatform& platform);

/// Equal-power distribution (Singh & Aruni [11]): assumes CPUs and GPUs have
/// the same processing power and deals tasks round-robin across all PEs.
Schedule equal_power(const std::vector<Task>& tasks,
                     const HybridPlatform& platform);

/// Proportional static distribution (Meng & Chaudhary [12]): the CPU-work of
/// the task set is split between the GPU pool and the CPU pool proportionally
/// to their aggregate theoretical computing power (GPU power estimated from
/// the mean acceleration factor); each pool is then LPT-scheduled.
Schedule proportional_static(const std::vector<Task>& tasks,
                             const HybridPlatform& platform);

/// Classical LPT over the mixed pool, placing each task (longest CPU time
/// first) on the PE where it finishes earliest.
Schedule lpt_hybrid(const std::vector<Task>& tasks,
                    const HybridPlatform& platform);

}  // namespace swdual::sched
