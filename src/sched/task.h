// Task and platform models for hybrid CPU+GPU scheduling (paper §III).
//
// A task is one pairwise-comparison job (in SWDUAL: one query against the
// whole database) with two known processing times: p_j on a CPU and p̄_j on
// a GPU. The platform has m identical CPUs and k identical GPUs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace swdual::sched {

/// Processing-element class.
enum class PeType { kCpu, kGpu };

/// Identity of one processing element within the platform.
struct PeId {
  PeType type = PeType::kCpu;
  std::size_t index = 0;

  bool operator==(const PeId&) const = default;
};

/// One schedulable task with machine-dependent processing times.
struct Task {
  std::size_t id = 0;
  double cpu_time = 0.0;  ///< p_j: processing time on any CPU
  double gpu_time = 0.0;  ///< p̄_j: processing time on any GPU

  /// GPU acceleration ratio p_j / p̄_j — the greedy knapsack's sort key.
  double accel() const { return gpu_time > 0 ? cpu_time / gpu_time : 0.0; }

  double time_on(PeType type) const {
    return type == PeType::kCpu ? cpu_time : gpu_time;
  }
};

/// A hybrid platform: m CPUs and k GPUs.
struct HybridPlatform {
  std::size_t num_cpus = 1;  ///< m
  std::size_t num_gpus = 1;  ///< k

  std::size_t count(PeType type) const {
    return type == PeType::kCpu ? num_cpus : num_gpus;
  }
  std::size_t total() const { return num_cpus + num_gpus; }
};

/// Printable PE name, e.g. "GPU3" / "CPU0".
std::string pe_name(const PeId& pe);

}  // namespace swdual::sched
