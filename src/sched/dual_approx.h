// The SWDUAL dual-approximation scheduling algorithm (paper §III).
//
// One step of the scheme takes a guess λ and either returns a schedule of
// makespan at most 2λ or correctly answers that no schedule of makespan at
// most λ exists:
//
//   1. Any task with p_cpu > λ and p_gpu > λ certifies NO (a λ-schedule runs
//      every task somewhere in at most λ).
//   2. Tasks with p_cpu > λ are forced onto GPUs. If their area alone
//      exceeds kλ, answer NO.
//   3. Remaining tasks, sorted by decreasing acceleration ratio p/p̄, greedily
//      fill the GPUs until the GPU computational area reaches kλ (Fig. 4);
//      the first task crossing the boundary — j_last — stays on the GPUs.
//      Greedy-by-ratio with the overflow item solves the continuous
//      minimization knapsack (5)–(7), so the CPU workload it leaves is a
//      lower bound on any feasible assignment's CPU workload.
//   4. If the CPU area W_C now exceeds mλ, answer NO (by step 3's bound this
//      is a valid certificate). Otherwise list-schedule: GPU tasks on the k
//      GPUs with j_last placed last (Prop. 1's analysis), CPU tasks on the m
//      CPUs (Fig. 5). The result has makespan ≤ 2λ.
//
// A binary search over λ then closes in on the optimum; keeping the best YES
// schedule yields a 2-approximation of the optimal makespan.
#pragma once

#include <optional>
#include <vector>

#include "sched/schedule.h"
#include "sched/task.h"

namespace swdual::obs {
class Tracer;
}  // namespace swdual::obs

namespace swdual::sched {

/// Outcome of one dual-approximation step.
struct DualStepResult {
  bool feasible = false;              ///< false == certified "NO" for this λ
  Schedule schedule;                  ///< valid iff feasible
  double cpu_area = 0.0;              ///< W_C after the knapsack
  double gpu_area = 0.0;              ///< GPU area after the knapsack
};

/// One step of the 2-dual-approximation with guess λ.
DualStepResult dual_approx_step(const std::vector<Task>& tasks,
                                const HybridPlatform& platform, double lambda);

/// Statistics of a completed binary search.
struct DualSearchStats {
  std::size_t iterations = 0;
  double final_lambda = 0.0;
  double lower_bound = 0.0;   ///< greatest certified-NO λ (≤ optimum)
  double makespan = 0.0;      ///< makespan of the returned schedule
};

/// Full SWDUAL scheduler: binary search on λ between provable bounds,
/// returning the best schedule found. `epsilon` is the relative width at
/// which the search stops. Guaranteed makespan ≤ 2·OPT. With a tracer, each
/// λ-iteration becomes a `lambda_step` span on obs::kMasterTrack carrying λ,
/// the YES/NO verdict, and the knapsack GPU fill level.
Schedule swdual_schedule(const std::vector<Task>& tasks,
                         const HybridPlatform& platform,
                         double epsilon = 1e-3,
                         DualSearchStats* stats = nullptr,
                         obs::Tracer* tracer = nullptr);

/// Refined variant: SWDUAL followed by local improvement (single-task moves
/// and cross-type swaps accepted while the makespan strictly decreases).
/// This stands in for the 3/2-approximation of Kedad-Sidhoum et al.
/// (HeteroPar'13), whose big-task dynamic program we approximate by local
/// search; see DESIGN.md. Never worse than swdual_schedule's result.
Schedule swdual_schedule_refined(const std::vector<Task>& tasks,
                                 const HybridPlatform& platform,
                                 double epsilon = 1e-3,
                                 DualSearchStats* stats = nullptr,
                                 obs::Tracer* tracer = nullptr);

/// Certified lower bound on the optimal makespan: the larger of the longest
/// min-processing-time task and the smallest λ for which the fractional
/// (continuous-knapsack) area test is feasible.
double makespan_lower_bound(const std::vector<Task>& tasks,
                            const HybridPlatform& platform);

}  // namespace swdual::sched
