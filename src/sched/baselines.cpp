#include "sched/baselines.h"

#include <algorithm>
#include <numeric>

#include "sched/list_scheduling.h"
#include "util/error.h"

namespace swdual::sched {

Schedule self_scheduling(const std::vector<Task>& tasks,
                         const HybridPlatform& platform) {
  Schedule schedule;
  list_schedule_onto(tasks, all_pes(platform), schedule);
  return schedule;
}

namespace {
/// Place each task (in the given order) on the PE minimizing its finish time.
Schedule greedy_ect(const std::vector<Task>& tasks,
                    const HybridPlatform& platform) {
  const std::vector<PeId> pes = all_pes(platform);
  SWDUAL_REQUIRE(!pes.empty(), "platform has no PEs");
  std::vector<double> available(pes.size(), 0.0);
  Schedule schedule;
  for (const Task& task : tasks) {
    std::size_t best = 0;
    double best_finish = 0.0;
    for (std::size_t i = 0; i < pes.size(); ++i) {
      const double finish = available[i] + task.time_on(pes[i].type);
      if (i == 0 || finish < best_finish) {
        best = i;
        best_finish = finish;
      }
    }
    Assignment a;
    a.task_id = task.id;
    a.pe = pes[best];
    a.start = available[best];
    a.end = best_finish;
    schedule.add(a);
    available[best] = best_finish;
  }
  return schedule;
}
}  // namespace

Schedule earliest_completion(const std::vector<Task>& tasks,
                             const HybridPlatform& platform) {
  return greedy_ect(tasks, platform);
}

Schedule equal_power(const std::vector<Task>& tasks,
                     const HybridPlatform& platform) {
  const std::vector<PeId> pes = all_pes(platform);
  SWDUAL_REQUIRE(!pes.empty(), "platform has no PEs");
  // Round-robin deal, then compact each PE's queue front to back.
  std::vector<double> available(pes.size(), 0.0);
  Schedule schedule;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const std::size_t i = t % pes.size();
    Assignment a;
    a.task_id = tasks[t].id;
    a.pe = pes[i];
    a.start = available[i];
    a.end = a.start + tasks[t].time_on(pes[i].type);
    schedule.add(a);
    available[i] = a.end;
  }
  return schedule;
}

Schedule proportional_static(const std::vector<Task>& tasks,
                             const HybridPlatform& platform) {
  if (tasks.empty()) return {};
  SWDUAL_REQUIRE(platform.num_cpus > 0 && platform.num_gpus > 0,
                 "proportional split needs both PE types");

  // Theoretical power: one CPU = 1; one GPU = mean acceleration factor.
  double accel_sum = 0.0;
  for (const Task& task : tasks) accel_sum += task.accel();
  const double gpu_power = accel_sum / static_cast<double>(tasks.size());
  const double total_power = static_cast<double>(platform.num_cpus) +
                             gpu_power * static_cast<double>(platform.num_gpus);
  const double gpu_share =
      gpu_power * static_cast<double>(platform.num_gpus) / total_power;

  const double total_work = std::accumulate(
      tasks.begin(), tasks.end(), 0.0,
      [](double acc, const Task& t) { return acc + t.cpu_time; });
  const double gpu_target = gpu_share * total_work;

  // Deal the largest tasks to the GPU pool until its share is reached.
  const std::vector<Task> by_size = sorted_lpt(tasks, PeType::kCpu);
  std::vector<Task> gpu_tasks, cpu_tasks;
  double gpu_work = 0.0;
  for (const Task& task : by_size) {
    if (gpu_work < gpu_target) {
      gpu_tasks.push_back(task);
      gpu_work += task.cpu_time;
    } else {
      cpu_tasks.push_back(task);
    }
  }
  return schedule_split(cpu_tasks, gpu_tasks, platform);
}

Schedule lpt_hybrid(const std::vector<Task>& tasks,
                    const HybridPlatform& platform) {
  return greedy_ect(sorted_lpt(tasks, PeType::kCpu), platform);
}

}  // namespace swdual::sched
