#include "sched/exact.h"

#include <algorithm>
#include <numeric>

#include "sched/baselines.h"
#include "sched/list_scheduling.h"
#include "util/error.h"

namespace swdual::sched {

namespace {

struct SearchState {
  const std::vector<Task>* tasks = nullptr;  // sorted, longest first
  std::vector<double> cpu_load;
  std::vector<double> gpu_load;
  std::vector<int> assignment;  // PE slot per task (best found)
  std::vector<int> current;
  double best = 0.0;
  std::uint64_t nodes = 0;
  std::uint64_t node_limit = 0;
  bool exhausted = true;

  double max_load() const {
    double m = 0.0;
    for (double l : cpu_load) m = std::max(m, l);
    for (double l : gpu_load) m = std::max(m, l);
    return m;
  }
};

void dfs(SearchState& state, std::size_t index) {
  if (++state.nodes > state.node_limit) {
    state.exhausted = false;
    return;
  }
  const std::vector<Task>& tasks = *state.tasks;
  if (index == tasks.size()) {
    const double makespan = state.max_load();
    if (makespan < state.best) {
      state.best = makespan;
      state.assignment = state.current;
    }
    return;
  }
  // The makespan only grows as tasks are added; prune at the incumbent.
  if (state.max_load() >= state.best) return;

  const Task& task = tasks[index];
  const auto try_pool = [&](std::vector<double>& loads, double time,
                            int slot_base) {
    // Symmetry breaking: among equally-loaded machines, try only the first.
    double last_load = -1.0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (loads[i] == last_load) continue;
      last_load = loads[i];
      if (loads[i] + time >= state.best) continue;  // dominated
      loads[i] += time;
      state.current[index] = slot_base + static_cast<int>(i);
      dfs(state, index + 1);
      loads[i] -= time;
      if (!state.exhausted) return;
    }
  };
  try_pool(state.cpu_load, task.cpu_time, 0);
  if (!state.exhausted) return;
  try_pool(state.gpu_load, task.gpu_time,
           static_cast<int>(state.cpu_load.size()));
}

}  // namespace

std::optional<ExactResult> exact_schedule(const std::vector<Task>& tasks,
                                          const HybridPlatform& platform,
                                          std::uint64_t node_limit) {
  SWDUAL_REQUIRE(platform.total() > 0, "platform has no PEs");
  ExactResult result;
  if (tasks.empty()) return result;

  // Longest-first ordering tightens pruning dramatically.
  std::vector<Task> sorted = tasks;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Task& a, const Task& b) {
                     return std::min(a.cpu_time, a.gpu_time) >
                            std::min(b.cpu_time, b.gpu_time);
                   });

  SearchState state;
  state.tasks = &sorted;
  state.cpu_load.assign(platform.num_cpus, 0.0);
  state.gpu_load.assign(platform.num_gpus, 0.0);
  state.current.assign(sorted.size(), -1);
  state.node_limit = node_limit;

  // Incumbent: a good heuristic start (LPT over both pools).
  state.best = lpt_hybrid(tasks, platform).makespan() + 1e-12;

  dfs(state, 0);
  if (!state.exhausted) return std::nullopt;

  // If DFS never improved on the incumbent, rebuild it from LPT directly.
  if (state.assignment.empty()) {
    result.makespan = state.best - 1e-12;
    result.schedule = lpt_hybrid(tasks, platform);
    result.nodes_explored = state.nodes;
    return result;
  }

  // Materialize the optimal assignment as a schedule.
  std::vector<std::vector<Task>> per_slot(platform.total());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    per_slot[static_cast<std::size_t>(state.assignment[i])].push_back(
        sorted[i]);
  }
  Schedule schedule;
  for (std::size_t slot = 0; slot < per_slot.size(); ++slot) {
    const bool is_cpu = slot < platform.num_cpus;
    const PeId pe{is_cpu ? PeType::kCpu : PeType::kGpu,
                  is_cpu ? slot : slot - platform.num_cpus};
    double clock = 0.0;
    for (const Task& task : per_slot[slot]) {
      const double duration = task.time_on(pe.type);
      schedule.add({task.id, pe, clock, clock + duration});
      clock += duration;
    }
  }
  result.schedule = std::move(schedule);
  result.makespan = result.schedule.makespan();
  result.nodes_explored = state.nodes;
  return result;
}

}  // namespace swdual::sched
