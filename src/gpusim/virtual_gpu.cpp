#include "gpusim/virtual_gpu.h"

#include <algorithm>

#include "util/error.h"

namespace swdual::gpusim {

VirtualGpu::VirtualGpu(DeviceSpec spec) : spec_(std::move(spec)) {
  SWDUAL_REQUIRE(spec_.gcups > 0, "device throughput must be positive");
  SWDUAL_REQUIRE(spec_.pcie_gbps > 0, "PCIe bandwidth must be positive");
  SWDUAL_REQUIRE(spec_.memory_bytes > 0, "device memory must be positive");
}

BatchResult VirtualGpu::run_batch(std::span<const std::uint8_t> query,
                                  const align::DbView& db,
                                  const align::ScoringScheme& scheme) {
  const align::SearchProfiles profiles(query, scheme,
                                       align::KernelKind::kInterSeq);
  return run_batch(profiles, db);
}

BatchResult VirtualGpu::run_batch(const align::SearchProfiles& profiles,
                                  const align::DbView& db) {
  SWDUAL_REQUIRE(profiles.kernel() == align::KernelKind::kInterSeq,
                 "virtual GPU batches run the inter-sequence kernel");
  const std::span<const std::uint8_t> query = profiles.query();
  BatchResult result;
  result.scores.assign(db.size(), 0);
  if (db.empty() || query.empty()) {
    ++batches_run_;
    return result;
  }

  // Memory partitioning: residues resident on the device per sub-batch must
  // fit next to the query profile and per-thread DP state. We budget half
  // the device memory for database residues, as CUDASW++ does.
  const std::uint64_t residue_budget = spec_.memory_bytes / 2;
  std::size_t begin = 0;
  result.sub_batches = 0;
  while (begin < db.size()) {
    std::uint64_t bytes = 0;
    std::size_t end = begin;
    while (end < db.size() &&
           (bytes + db[end].size() <= residue_budget || end == begin)) {
      bytes += db[end].size();
      ++end;
    }

    const align::SearchResult chunk_result =
        align::search_range(profiles, db, begin, end);
    std::copy(chunk_result.scores.begin(), chunk_result.scores.end(),
              result.scores.begin() + static_cast<std::ptrdiff_t>(begin));
    result.cells += chunk_result.cells;

    // Modeled time: transfers + launch + kernel execution at an
    // occupancy-scaled throughput. The device sustains `gcups` only when a
    // full wave of sm_count×threads_per_sm alignments is resident; smaller
    // batches leave SMs idle, which is the first-order reason CUDASW++ loses
    // throughput on short databases.
    const double transfer_seconds =
        static_cast<double>(bytes + query.size()) /
        (spec_.pcie_gbps * 1e9 / 8.0);
    const std::size_t wave_size = spec_.sm_count * spec_.threads_per_sm;
    const std::size_t lanes = end - begin;
    const double occupancy = std::min(
        1.0, static_cast<double>(lanes) / static_cast<double>(wave_size));
    const double kernel_seconds =
        static_cast<double>(chunk_result.cells) /
        (spec_.gcups * 1e9 * occupancy);
    result.virtual_seconds +=
        transfer_seconds + spec_.kernel_launch_seconds + kernel_seconds;
    result.bytes_transferred += bytes + query.size();
    ++result.sub_batches;
    begin = end;
  }

  total_virtual_seconds_ += result.virtual_seconds;
  ++batches_run_;
  return result;
}

}  // namespace swdual::gpusim
