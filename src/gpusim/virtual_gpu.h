// Virtual GPU device (the CUDA hardware substitution).
//
// No CUDA device is available in this environment, so SWDUAL's GPU workers
// run on a software device that mirrors the externally visible behaviour of
// a Tesla C2050 running a CUDASW++-2.0-class kernel:
//
//   * results  — batch Smith–Waterman scores, computed exactly, via the
//     inter-sequence kernel (CUDASW++'s inter-task SIMT parallelization maps
//     one alignment per CUDA thread; the 8-lane SIMD batch kernel is the
//     same computation at narrower width);
//   * timing   — a virtual clock charged from an SM/occupancy model: batches
//     of alignments are waved across `sm_count × threads_per_sm` contexts at
//     `gcups` sustained throughput, plus PCIe transfer time for query and
//     database residues at `pcie_gbps`;
//   * capacity — device-memory tracking; batches that exceed `memory_bytes`
//     are split into sub-batches exactly as CUDASW++ partitions large
//     databases.
//
// The scheduler and master–slave runtime treat this object exactly as they
// would a physical accelerator: correct scores now, timing from the model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "align/search.h"
#include "seq/sequence.h"

namespace swdual::gpusim {

/// Static description of the simulated device (defaults: Tesla C2050).
struct DeviceSpec {
  std::string name = "Virtual Tesla C2050";
  std::size_t sm_count = 14;             ///< streaming multiprocessors
  std::size_t threads_per_sm = 1024;     ///< resident threads per SM
  double gcups = 24.9;                   ///< sustained kernel throughput
  double pcie_gbps = 4.0;                ///< effective host↔device bandwidth
  double kernel_launch_seconds = 20e-6;  ///< per kernel launch
  std::uint64_t memory_bytes = 3ULL << 30;  ///< 3 GB device memory
};

/// Result of one batch submission.
struct BatchResult {
  std::vector<int> scores;        ///< exact SW scores, database order
  double virtual_seconds = 0.0;   ///< modeled device time for this batch
  std::uint64_t cells = 0;        ///< DP cells in the batch
  std::size_t sub_batches = 1;    ///< memory-partitioning splits
  std::uint64_t bytes_transferred = 0;

  double modeled_gcups() const {
    return virtual_seconds > 0
               ? static_cast<double>(cells) / virtual_seconds / 1e9
               : 0.0;
  }
};

/// One virtual accelerator. Thread-compatible (one master thread per device,
/// like a CUDA context).
class VirtualGpu {
 public:
  explicit VirtualGpu(DeviceSpec spec = {});

  const DeviceSpec& spec() const { return spec_; }

  /// Execute one query against a database batch: exact scores plus modeled
  /// time. The scoring scheme must use 16-bit-safe penalties (see
  /// align::striped_score); overflowing pairs are rescanned exactly.
  BatchResult run_batch(std::span<const std::uint8_t> query,
                        const align::DbView& db,
                        const align::ScoringScheme& scheme);

  /// Same execution with caller-provided (possibly cached/shared) query
  /// profiles — the resident-query-context reuse CUDASW++-class tools apply
  /// across batches. The profiles must target KernelKind::kInterSeq (the
  /// device's inter-task SIMT model). Scores are bit-identical to the
  /// building overload.
  BatchResult run_batch(const align::SearchProfiles& profiles,
                        const align::DbView& db);

  /// Total virtual busy time accumulated by this device.
  double total_virtual_seconds() const { return total_virtual_seconds_; }

  /// Number of batches executed.
  std::size_t batches_run() const { return batches_run_; }

 private:
  DeviceSpec spec_;
  double total_virtual_seconds_ = 0.0;
  std::size_t batches_run_ = 0;
};

}  // namespace swdual::gpusim
