// Discrete-event simulator for hybrid-platform execution in virtual time.
//
// This is the multi-worker substitution for the paper's 8-CPU/8-GPU testbed:
// the same schedules and dynamic policies run against modeled per-task times
// (platform/perf_model.h) on a virtual clock, so "execution time with N
// workers" is measurable on a single host core. Scores are not computed here
// — correctness is the master–slave runtime's job; the DES reproduces
// *timing* behaviour (makespan, per-PE idle, dynamic dispatch order).
#pragma once

#include <algorithm>
#include <vector>

#include "sched/schedule.h"
#include "sched/task.h"

namespace swdual::obs {
class Tracer;
}  // namespace swdual::obs

namespace swdual::platform {

/// Realized execution of one task in virtual time.
struct TraceEntry {
  std::size_t task_id = 0;
  sched::PeId pe;
  double start = 0.0;
  double end = 0.0;
};

/// Result of a virtual execution.
struct ExecutionTrace {
  std::vector<TraceEntry> entries;
  double makespan = 0.0;
  double cpu_busy = 0.0;   ///< Σ busy time on CPUs
  double gpu_busy = 0.0;   ///< Σ busy time on GPUs
  double total_idle = 0.0; ///< Σ over PEs of (makespan − busy)

  /// Idle share of the platform's capacity, guarded the same way as
  /// master::SearchReport::virtual_idle_fraction: an empty workload (or any
  /// degenerate zero-makespan / zero-PE case) is 0 % idle, never NaN, and
  /// rounding can't push the result outside [0, 1].
  double idle_fraction(const sched::HybridPlatform& platform) const {
    const double capacity =
        makespan * static_cast<double>(platform.total());
    if (!(capacity > 0)) return 0.0;
    return std::clamp(total_idle / capacity, 0.0, 1.0);
  }
};

/// Replay a static schedule: each PE runs its assigned tasks in start-time
/// order, back to back (work-conserving compaction). The resulting makespan
/// is never larger than the schedule's. This models the paper's one-round
/// master–slave dispatch: the master sends each worker its task list up
/// front and workers execute without further coordination.
///
/// With a tracer, every TraceEntry is additionally emitted as a
/// virtual-clock event (category "des") on the PE's track, numbered with
/// the master's GPUs-first worker-id convention — so DES timelines and real
/// worker timelines land on the same Chrome trace lanes.
ExecutionTrace simulate_static(const sched::Schedule& schedule,
                               const std::vector<sched::Task>& tasks,
                               const sched::HybridPlatform& platform,
                               obs::Tracer* tracer = nullptr);

/// Simulate dynamic self-scheduling: workers pull the next undispatched task
/// the moment they become free (the one-unit-at-a-time strategy of [10]).
/// `dispatch_latency` models the master round-trip per pull. Tracing as in
/// simulate_static.
ExecutionTrace simulate_self_scheduling(const std::vector<sched::Task>& tasks,
                                        const sched::HybridPlatform& platform,
                                        double dispatch_latency = 0.0,
                                        obs::Tracer* tracer = nullptr);

}  // namespace swdual::platform
