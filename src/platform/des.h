// Discrete-event simulator for hybrid-platform execution in virtual time.
//
// This is the multi-worker substitution for the paper's 8-CPU/8-GPU testbed:
// the same schedules and dynamic policies run against modeled per-task times
// (platform/perf_model.h) on a virtual clock, so "execution time with N
// workers" is measurable on a single host core. Scores are not computed here
// — correctness is the master–slave runtime's job; the DES reproduces
// *timing* behaviour (makespan, per-PE idle, dynamic dispatch order).
#pragma once

#include <vector>

#include "sched/schedule.h"
#include "sched/task.h"

namespace swdual::platform {

/// Realized execution of one task in virtual time.
struct TraceEntry {
  std::size_t task_id = 0;
  sched::PeId pe;
  double start = 0.0;
  double end = 0.0;
};

/// Result of a virtual execution.
struct ExecutionTrace {
  std::vector<TraceEntry> entries;
  double makespan = 0.0;
  double cpu_busy = 0.0;   ///< Σ busy time on CPUs
  double gpu_busy = 0.0;   ///< Σ busy time on GPUs
  double total_idle = 0.0; ///< Σ over PEs of (makespan − busy)

  double idle_fraction(const sched::HybridPlatform& platform) const {
    const double capacity =
        makespan * static_cast<double>(platform.total());
    return capacity > 0 ? total_idle / capacity : 0.0;
  }
};

/// Replay a static schedule: each PE runs its assigned tasks in start-time
/// order, back to back (work-conserving compaction). The resulting makespan
/// is never larger than the schedule's. This models the paper's one-round
/// master–slave dispatch: the master sends each worker its task list up
/// front and workers execute without further coordination.
ExecutionTrace simulate_static(const sched::Schedule& schedule,
                               const std::vector<sched::Task>& tasks,
                               const sched::HybridPlatform& platform);

/// Simulate dynamic self-scheduling: workers pull the next undispatched task
/// the moment they become free (the one-unit-at-a-time strategy of [10]).
/// `dispatch_latency` models the master round-trip per pull.
ExecutionTrace simulate_self_scheduling(const std::vector<sched::Task>& tasks,
                                        const sched::HybridPlatform& platform,
                                        double dispatch_latency = 0.0);

}  // namespace swdual::platform
