#include "platform/des.h"

#include <algorithm>
#include <map>
#include <queue>
#include <string>

#include "check/contracts.h"
#include "obs/trace.h"
#include "util/error.h"

namespace swdual::platform {

namespace {

/// Track for a DES PE, matching the master's worker-id convention (GPUs
/// register first): GPU g → worker g, CPU c → worker k + c.
std::size_t track_of(const sched::PeId& pe,
                     const sched::HybridPlatform& platform) {
  const std::size_t worker = pe.type == sched::PeType::kGpu
                                 ? pe.index
                                 : platform.num_gpus + pe.index;
  return obs::worker_track(worker);
}

void finalize(ExecutionTrace& trace, const sched::HybridPlatform& platform,
              obs::Tracer* tracer) {
  for (const TraceEntry& entry : trace.entries) {
    SWDUAL_DCHECK(entry.end >= entry.start && entry.start >= 0,
                  "DES produced a negative-length or negative-start span");
    trace.makespan = std::max(trace.makespan, entry.end);
    const double duration = entry.end - entry.start;
    if (entry.pe.type == sched::PeType::kCpu) {
      trace.cpu_busy += duration;
    } else {
      trace.gpu_busy += duration;
    }
    if (tracer) {
      obs::TraceEvent event;
      event.clock = obs::Clock::kVirtual;
      event.name = "task " + std::to_string(entry.task_id);
      event.category = "des";
      event.track = track_of(entry.pe, platform);
      event.start = entry.start;
      event.end = entry.end;
      event.args = {{"task_id", static_cast<double>(entry.task_id)}};
      tracer->record(std::move(event));
    }
  }
  const double capacity =
      trace.makespan * static_cast<double>(platform.total());
  trace.total_idle = capacity - trace.cpu_busy - trace.gpu_busy;
}

}  // namespace

ExecutionTrace simulate_static(const sched::Schedule& schedule,
                               const std::vector<sched::Task>& tasks,
                               const sched::HybridPlatform& platform,
                               obs::Tracer* tracer) {
  std::map<std::size_t, const sched::Task*> by_id;
  for (const sched::Task& task : tasks) by_id[task.id] = &task;

  // Group assignments per PE, keep schedule order, compact.
  std::map<std::pair<int, std::size_t>, std::vector<const sched::Assignment*>>
      per_pe;
  for (const sched::Assignment& a : schedule.assignments()) {
    SWDUAL_REQUIRE(by_id.count(a.task_id) == 1,
                   "schedule references unknown task");
    SWDUAL_REQUIRE(a.pe.index < platform.count(a.pe.type),
                   "schedule uses PE outside the platform");
    per_pe[{static_cast<int>(a.pe.type), a.pe.index}].push_back(&a);
  }

  ExecutionTrace trace;
  for (auto& [key, list] : per_pe) {
    std::sort(list.begin(), list.end(),
              [](const sched::Assignment* a, const sched::Assignment* b) {
                return a->start < b->start;
              });
    double clock = 0.0;
    for (const sched::Assignment* a : list) {
      const double duration = by_id.at(a->task_id)->time_on(a->pe.type);
      trace.entries.push_back(
          {a->task_id, a->pe, clock, clock + duration});
      clock += duration;
    }
  }
  finalize(trace, platform, tracer);
  return trace;
}

ExecutionTrace simulate_self_scheduling(const std::vector<sched::Task>& tasks,
                                        const sched::HybridPlatform& platform,
                                        double dispatch_latency,
                                        obs::Tracer* tracer) {
  SWDUAL_REQUIRE(platform.total() > 0, "platform has no PEs");
  SWDUAL_REQUIRE(dispatch_latency >= 0, "latency must be non-negative");

  // Event queue of (free time, pe slot); GPUs occupy the first k slots so
  // they win ties — they are the workers that register first in the paper's
  // experimental setup.
  std::vector<sched::PeId> pes;
  for (std::size_t g = 0; g < platform.num_gpus; ++g) {
    pes.push_back({sched::PeType::kGpu, g});
  }
  for (std::size_t c = 0; c < platform.num_cpus; ++c) {
    pes.push_back({sched::PeType::kCpu, c});
  }
  using Slot = std::pair<double, std::size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (std::size_t i = 0; i < pes.size(); ++i) heap.emplace(0.0, i);

  ExecutionTrace trace;
  for (const sched::Task& task : tasks) {
    const auto [free_at, slot] = heap.top();
    heap.pop();
    const sched::PeId pe = pes[slot];
    const double start = free_at + dispatch_latency;
    const double end = start + task.time_on(pe.type);
    trace.entries.push_back({task.id, pe, start, end});
    heap.emplace(end, slot);
  }
  finalize(trace, platform, tracer);
  return trace;
}

}  // namespace swdual::platform
