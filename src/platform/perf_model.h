// Performance model for the hybrid platform (the hardware substitution).
//
// The paper's testbed was Idgraf: 2× Intel Xeon (8 cores) + 8× Tesla C2050,
// which we do not have. The scheduling algorithm only consumes per-task
// processing times (p_cpu, p̄_gpu); those are a function of the DP cell count
// (Σ|q|·|d| for one query against the database chunk) divided by the
// processing element's sustained GCUPS. We therefore model each PE class by
// a GCUPS constant plus a fixed per-task overhead, calibrated so that the
// single-worker column of the paper's Table II is reproduced:
//
//   class      Table II (1 worker, UniProt+40 queries) → implied GCUPS
//   SWPS3        69208.2 s   ≈ 0.28  GCUPS/core
//   STRIPED       7190.0 s   ≈ 2.7   GCUPS/core
//   SWIPE         2367.2 s   ≈ 8.3   GCUPS/worker
//   CUDASW++       785.3 s   ≈ 24.9  GCUPS/GPU
//
// (assuming the paper's workload of ≈1.96e13 cells: 40 queries averaging
// ≈2550 aa against UniProt's ≈1.92e8 residues). SWDUAL's CPU workers run a
// SWIPE-class kernel and its GPU workers a CUDASW++-class kernel, matching
// §V "it integrates CUDASW++ 2.0 and SWIPE into the code".
//
// All constants are data, not code — override any of them to recalibrate,
// or use `calibrate_cpu_gcups()` to measure this host's real kernels.
#pragma once

#include <cstdint>

#include "sched/task.h"

namespace swdual::platform {

/// Throughput class of one worker.
struct WorkerClass {
  double gcups = 1.0;          ///< sustained billion cell updates / second
  double task_overhead = 0.0;  ///< fixed seconds per task (dispatch, I/O)

  /// Predicted wall-clock seconds to process `cells` DP cells.
  double seconds_for(std::uint64_t cells) const {
    return task_overhead + static_cast<double>(cells) / (gcups * 1e9);
  }
};

/// Calibrated worker classes (see header comment for the derivation).
struct PerfModel {
  WorkerClass swps3_cpu{0.28, 0.002};
  WorkerClass striped_cpu{2.7, 0.002};
  WorkerClass swipe_cpu{8.3, 0.002};
  WorkerClass cudasw_gpu{24.9, 0.050};  ///< includes host↔device transfers

  /// SWDUAL's worker classes (paper §V: SWIPE on CPUs, CUDASW++ on GPUs).
  const WorkerClass& cpu_worker() const { return swipe_cpu; }
  const WorkerClass& gpu_worker() const { return cudasw_gpu; }

  /// Build a scheduler task from a cell count using the SWDUAL classes.
  sched::Task make_task(std::size_t id, std::uint64_t cells) const {
    return {id, cpu_worker().seconds_for(cells),
            gpu_worker().seconds_for(cells)};
  }
};

/// Measure the real sustained GCUPS of this host's inter-sequence kernel
/// (used by the bench harnesses' --calibrate flag to re-derive swipe_cpu
/// from hardware instead of from Table II).
double calibrate_cpu_gcups(std::size_t query_len = 256,
                           std::size_t db_sequences = 64,
                           std::size_t db_len = 256);

}  // namespace swdual::platform
