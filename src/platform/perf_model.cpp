#include "platform/perf_model.h"

#include "align/search.h"
#include "seq/dbgen.h"
#include "util/rng.h"
#include "util/timer.h"

namespace swdual::platform {

double calibrate_cpu_gcups(std::size_t query_len, std::size_t db_sequences,
                           std::size_t db_len) {
  Rng rng(20140501);
  const seq::Sequence query = seq::random_protein(rng, "cal_q", query_len);
  std::vector<seq::Sequence> db;
  db.reserve(db_sequences);
  for (std::size_t i = 0; i < db_sequences; ++i) {
    db.push_back(seq::random_protein(rng, "cal_d", db_len));
  }
  const align::ScoringScheme scheme;
  // One warm-up pass (page in profiles and code), then a timed pass.
  align::search_database(query, db, scheme, align::KernelKind::kInterSeq);
  const align::SearchResult result = align::search_database(
      query, db, scheme, align::KernelKind::kInterSeq);
  return result.gcups();
}

}  // namespace swdual::platform
