#include "serve/service.h"

#include <exception>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace swdual::serve {

const char* submit_status_name(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kShutdown: return "shutdown";
  }
  return "unknown";
}

QueryService::QueryService(std::vector<seq::Sequence> db, ServiceConfig config)
    : db_(std::move(db)),
      view_(align::make_db_view(db_)),
      config_(std::move(config)),
      results_(config_.result_cache_capacity),
      profiles_(config_.profile_cache_capacity) {
  start();
}

QueryService::QueryService(std::shared_ptr<const seq::MappedSwdb> db,
                           ServiceConfig config)
    : mapped_(std::move(db)),
      config_(std::move(config)),
      results_(config_.result_cache_capacity),
      profiles_(config_.profile_cache_capacity) {
  SWDUAL_REQUIRE(mapped_ != nullptr, "mapped database must not be null");
  view_ = mapped_->residue_views();
  start();
}

void QueryService::start() {
  SWDUAL_REQUIRE(config_.max_batch > 0, "max_batch must be positive");
  SWDUAL_REQUIRE(config_.admission_capacity > 0,
                 "admission_capacity must be positive");
  batcher_ = std::thread([this] { run(); });
}

QueryService::~QueryService() {
  shutdown();
  if (batcher_.joinable()) batcher_.join();
}

Submission QueryService::submit(const seq::Sequence& query) {
  SWDUAL_REQUIRE(!query.empty(), "cannot search with an empty query");
  Request request;
  request.query = query;
  request.key = result_key({query.residues.data(), query.residues.size()},
                           config_.db_id, config_.master.scheme,
                           config_.master.cpu_kernel);
  request.enqueue_wall = config_.tracer ? config_.tracer->now() : 0.0;

  Submission ticket;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      ++rejected_shutdown_;
      if (config_.metrics) config_.metrics->add("serve_rejected_shutdown");
      ticket.status = SubmitStatus::kShutdown;
      ticket.reason = "service is shut down";
      return ticket;
    }
    if (admission_.size() >= config_.admission_capacity) {
      ++rejected_queue_full_;
      if (config_.metrics) config_.metrics->add("serve_rejected_queue_full");
      ticket.status = SubmitStatus::kQueueFull;
      ticket.reason = "admission queue full (capacity " +
                      std::to_string(config_.admission_capacity) + ")";
      return ticket;
    }
    request.id = next_id_++;
    request.promise = std::make_shared<std::promise<QueryResponse>>();
    ticket.status = SubmitStatus::kAccepted;
    ticket.result = request.promise->get_future().share();
    ++accepted_;
    if (config_.tracer) {
      config_.tracer->instant(
          "submit", "serve", obs::kMasterTrack,
          {{"request", static_cast<double>(request.id)},
           {"queued", static_cast<double>(admission_.size())}});
    }
    admission_.push_back(std::move(request));
  }
  if (config_.metrics) config_.metrics->add("serve_accepted");
  wake_.notify_one();
  return ticket;
}

void QueryService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
  }
  wake_.notify_all();
}

void QueryService::run() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return !admission_.empty() || !accepting_; });
      if (admission_.empty()) return;  // shut down and fully drained
      while (!admission_.empty() && batch.size() < config_.max_batch) {
        batch.push_back(std::move(admission_.front()));
        admission_.pop_front();
      }
    }
    execute_batch(std::move(batch));
  }
}

void QueryService::admit(Request& request) {
  request.admit_seconds = request.timer.seconds();
  if (config_.tracer) {
    request.admit_wall = config_.tracer->now();
    obs::TraceEvent queued;
    queued.phase = obs::TraceEvent::Phase::kComplete;
    queued.clock = obs::Clock::kWall;
    queued.name = "queued";
    queued.category = "serve";
    queued.track = obs::kMasterTrack;
    queued.start = request.enqueue_wall;
    queued.end = request.admit_wall;
    queued.args = {{"request", static_cast<double>(request.id)}};
    config_.tracer->record(std::move(queued));
  }
  if (config_.metrics) {
    config_.metrics->observe("serve_queue_seconds", request.admit_seconds);
  }
}

void QueryService::fulfill(Request& request,
                           std::vector<align::SearchHit> hits,
                           bool cache_hit) {
  QueryResponse response;
  response.hits = std::move(hits);
  response.cache_hit = cache_hit;
  response.queue_seconds = request.admit_seconds;
  response.total_seconds = request.timer.seconds();
  response.execute_seconds = response.total_seconds - response.queue_seconds;
  if (config_.tracer) {
    obs::TraceEvent executed;
    executed.phase = obs::TraceEvent::Phase::kComplete;
    executed.clock = obs::Clock::kWall;
    executed.name = cache_hit ? "cache-hit" : "execute";
    executed.category = "serve";
    executed.track = obs::kMasterTrack;
    executed.start = request.admit_wall;
    executed.end = config_.tracer->now();
    executed.args = {{"request", static_cast<double>(request.id)}};
    config_.tracer->record(std::move(executed));
  }
  if (config_.metrics) {
    config_.metrics->add(cache_hit ? "serve_cache_hits"
                                   : "serve_cache_misses");
    config_.metrics->observe("serve_execute_seconds",
                             response.execute_seconds);
    config_.metrics->observe("serve_latency_seconds",
                             response.total_seconds);
  }
  request.promise->set_value(std::move(response));
}

void QueryService::execute_batch(std::vector<Request> batch) {
  if (config_.before_batch) config_.before_batch(batch.size());
  obs::Span span;
  if (config_.tracer) {
    span = config_.tracer->span("batch", "serve", obs::kMasterTrack);
    span.arg("requests", static_cast<double>(batch.size()));
  }
  if (config_.metrics) {
    config_.metrics->observe("serve_batch_size",
                             static_cast<double>(batch.size()));
  }

  // Admit every request, answer cache hits immediately, and collapse the
  // remaining misses by key: duplicates within one batch execute once.
  std::unordered_map<std::string, std::vector<std::size_t>> groups;
  std::vector<std::size_t> leaders;  // first request of each distinct key
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    admit(request);
    if (const auto cached = results_.lookup(request.key)) {
      fulfill(request, *cached, /*cache_hit=*/true);
      continue;
    }
    auto& group = groups[request.key];
    if (group.empty()) leaders.push_back(i);
    group.push_back(i);
  }
  if (leaders.empty()) return;

  std::vector<seq::Sequence> queries;
  queries.reserve(leaders.size());
  for (const std::size_t leader : leaders) {
    queries.push_back(batch[leader].query);
  }

  master::MasterConfig engine = config_.master;
  engine.tracer = config_.tracer;
  engine.metrics = config_.metrics;
  engine.profile_cache = &profiles_;

  master::SearchReport report;
  try {
    report = master::run_search(queries, view_, engine);
  } catch (...) {
    // Execution failed (e.g. a task exhausted its retries): fail exactly the
    // requests of this batch and keep serving — the batcher must survive.
    const std::exception_ptr error = std::current_exception();
    for (const std::size_t leader : leaders) {
      for (const std::size_t i : groups[batch[leader].key]) {
        batch[i].promise->set_exception(error);
      }
    }
    return;
  }

  // Count the batch before fulfilling any promise: a caller that waits on
  // its future and immediately reads stats() must see this work included.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++batches_;
    searches_ += leaders.size();
  }
  if (config_.metrics) {
    config_.metrics->add("serve_batches");
    config_.metrics->add("serve_searches",
                         static_cast<double>(leaders.size()));
  }

  for (std::size_t q = 0; q < leaders.size(); ++q) {
    const std::string& key = batch[leaders[q]].key;
    const auto value = results_.insert(key, report.results[q].hits);
    for (const std::size_t i : groups[key]) {
      fulfill(batch[i], *value, /*cache_hit=*/false);
    }
  }
}

QueryService::Stats QueryService::stats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.accepted = accepted_;
    stats.rejected_queue_full = rejected_queue_full_;
    stats.rejected_shutdown = rejected_shutdown_;
    stats.batches = batches_;
    stats.searches = searches_;
  }
  stats.results = results_.stats();
  stats.profiles = profiles_.stats();
  return stats;
}

}  // namespace swdual::serve
