#include "serve/service.h"

#include <exception>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace swdual::serve {

const char* submit_status_name(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kShutdown: return "shutdown";
  }
  return "unknown";
}

QueryService::QueryService(std::vector<seq::Sequence> db, ServiceConfig config)
    : db_(std::move(db)),
      view_(align::make_db_view(db_)),
      config_(std::move(config)),
      results_(config_.result_cache_capacity),
      profiles_(config_.profile_cache_capacity) {
  start();
}

QueryService::QueryService(std::shared_ptr<const seq::MappedSwdb> db,
                           ServiceConfig config)
    : mapped_(std::move(db)),
      config_(std::move(config)),
      results_(config_.result_cache_capacity),
      profiles_(config_.profile_cache_capacity) {
  SWDUAL_REQUIRE(mapped_ != nullptr, "mapped database must not be null");
  view_ = mapped_->residue_views();
  start();
}

void QueryService::start() {
  SWDUAL_REQUIRE(config_.max_batch > 0, "max_batch must be positive");
  SWDUAL_REQUIRE(config_.admission_capacity > 0,
                 "admission_capacity must be positive");
  config_.master.filter.validate();
  if (config_.master.annotate.enabled()) {
    config_.master.annotate.validate();
    // One calibration per service, acquired before the batcher starts:
    // every dispatch (master path, sharded path, shard recovery) then
    // borrows the same deterministic parameters.
    const seq::AlphabetKind kind =
        mapped_ ? mapped_->alphabet()
                : (db_.empty() ? seq::AlphabetKind::kProtein
                               : db_.front().alphabet);
    stats_params_ = stats_cache_.acquire(
        config_.master.scheme, seq::Alphabet::get(kind), config_.db_id);
    db_residues_ = align::db_residue_count(view_);
  }
  if (config_.shards > 0) {
    align::ShardedSearchOptions options;
    options.num_shards = config_.shards;
    options.threads_per_shard = config_.threads_per_shard;
    options.max_shard_retries = config_.max_shard_retries;
    options.before_shard = config_.before_shard;
    options.tracer = config_.tracer;
    options.metrics = config_.metrics;
    sharded_ = mapped_ ? std::make_unique<align::ShardedSearchEngine>(
                             mapped_, options)
                       : std::make_unique<align::ShardedSearchEngine>(
                             view_, options);
  }
  batcher_ = std::thread([this] { run(); });
}

QueryService::~QueryService() {
  shutdown();
  if (batcher_.joinable()) batcher_.join();
}

Submission QueryService::submit(const seq::Sequence& query) {
  SWDUAL_REQUIRE(!query.empty(), "cannot search with an empty query");
  Request request;
  request.query = query;
  request.key = result_key({query.residues.data(), query.residues.size()},
                           config_.db_id, config_.master.scheme,
                           config_.master.cpu_kernel, config_.master.filter,
                           config_.master.annotate);
  request.enqueue_wall = config_.tracer ? config_.tracer->now() : 0.0;

  Submission ticket;
  {
    util::MutexLock lock(mutex_);
    if (!accepting_) {
      ++rejected_shutdown_;
      if (config_.metrics) config_.metrics->add("serve_rejected_shutdown");
      ticket.status = SubmitStatus::kShutdown;
      ticket.reason = "service is shut down";
      return ticket;
    }
    if (admission_.size() >= config_.admission_capacity) {
      ++rejected_queue_full_;
      if (config_.metrics) config_.metrics->add("serve_rejected_queue_full");
      ticket.status = SubmitStatus::kQueueFull;
      ticket.reason = "admission queue full (capacity " +
                      std::to_string(config_.admission_capacity) + ")";
      return ticket;
    }
    request.id = next_id_++;
    request.promise = std::make_shared<std::promise<QueryResponse>>();
    ticket.status = SubmitStatus::kAccepted;
    ticket.result = request.promise->get_future().share();
    ++accepted_;
    if (config_.tracer) {
      config_.tracer->instant(
          "submit", "serve", obs::kMasterTrack,
          {{"request", static_cast<double>(request.id)},
           {"queued", static_cast<double>(admission_.size())}});
    }
    admission_.push_back(std::move(request));
  }
  if (config_.metrics) config_.metrics->add("serve_accepted");
  wake_.notify_one();
  return ticket;
}

void QueryService::shutdown() {
  {
    util::MutexLock lock(mutex_);
    accepting_ = false;
  }
  wake_.notify_all();
}

void QueryService::run() {
  for (;;) {
    std::vector<Request> batch;
    {
      util::MutexLock lock(mutex_);
      while (admission_.empty() && accepting_) wake_.wait(mutex_);
      if (admission_.empty()) return;  // shut down and fully drained
      while (!admission_.empty() && batch.size() < config_.max_batch) {
        batch.push_back(std::move(admission_.front()));
        admission_.pop_front();
      }
    }
    execute_batch(std::move(batch));
  }
}

void QueryService::admit(Request& request) {
  request.admit_seconds = request.timer.seconds();
  if (config_.tracer) {
    request.admit_wall = config_.tracer->now();
    obs::TraceEvent queued;
    queued.phase = obs::TraceEvent::Phase::kComplete;
    queued.clock = obs::Clock::kWall;
    queued.name = "queued";
    queued.category = "serve";
    queued.track = obs::kMasterTrack;
    queued.start = request.enqueue_wall;
    queued.end = request.admit_wall;
    queued.args = {{"request", static_cast<double>(request.id)}};
    config_.tracer->record(std::move(queued));
  }
  if (config_.metrics) {
    config_.metrics->observe("serve_queue_seconds", request.admit_seconds);
  }
}

void QueryService::fulfill(Request& request,
                           std::vector<align::SearchHit> hits,
                           bool cache_hit, std::string partial_reason,
                           const align::FilterStats& filter) {
  QueryResponse response;
  response.hits = std::move(hits);
  response.cache_hit = cache_hit;
  response.partial = !partial_reason.empty();
  response.partial_reason = std::move(partial_reason);
  response.filtered = config_.master.filter.enabled();
  response.filter = filter;
  response.annotated = config_.master.annotate.enabled();
  if (response.partial) {
    util::MutexLock lock(mutex_);
    ++partial_responses_;
  }
  response.queue_seconds = request.admit_seconds;
  response.total_seconds = request.timer.seconds();
  response.execute_seconds = response.total_seconds - response.queue_seconds;
  if (config_.tracer) {
    obs::TraceEvent executed;
    executed.phase = obs::TraceEvent::Phase::kComplete;
    executed.clock = obs::Clock::kWall;
    executed.name = cache_hit ? "cache-hit" : "execute";
    executed.category = "serve";
    executed.track = obs::kMasterTrack;
    executed.start = request.admit_wall;
    executed.end = config_.tracer->now();
    executed.args = {{"request", static_cast<double>(request.id)}};
    config_.tracer->record(std::move(executed));
  }
  if (config_.metrics) {
    if (response.partial) config_.metrics->add("serve_partial_responses");
    config_.metrics->add(cache_hit ? "serve_cache_hits"
                                   : "serve_cache_misses");
    config_.metrics->observe("serve_execute_seconds",
                             response.execute_seconds);
    config_.metrics->observe("serve_latency_seconds",
                             response.total_seconds);
  }
  request.promise->set_value(std::move(response));
}

void QueryService::execute_batch(std::vector<Request> batch) {
  if (config_.before_batch) config_.before_batch(batch.size());
  obs::Span span;
  if (config_.tracer) {
    span = config_.tracer->span("batch", "serve", obs::kMasterTrack);
    span.arg("requests", static_cast<double>(batch.size()));
  }
  if (config_.metrics) {
    config_.metrics->observe("serve_batch_size",
                             static_cast<double>(batch.size()));
  }

  // Admit every request, answer cache hits immediately, and collapse the
  // remaining misses by key: duplicates within one batch execute once.
  std::unordered_map<std::string, std::vector<std::size_t>> groups;
  std::vector<std::size_t> leaders;  // first request of each distinct key
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    admit(request);
    if (const auto cached = results_.lookup(request.key)) {
      fulfill(request, *cached, /*cache_hit=*/true);
      continue;
    }
    auto& group = groups[request.key];
    if (group.empty()) leaders.push_back(i);
    group.push_back(i);
  }
  if (leaders.empty()) return;

  if (sharded_) {
    execute_group_sharded(batch, leaders, groups);
    return;
  }

  std::vector<seq::Sequence> queries;
  queries.reserve(leaders.size());
  for (const std::size_t leader : leaders) {
    queries.push_back(batch[leader].query);
  }

  master::MasterConfig engine = config_.master;
  engine.tracer = config_.tracer;
  engine.metrics = config_.metrics;
  engine.profile_cache = &profiles_;
  engine.stats = stats_params_.get();  // run_search annotates post-merge

  master::SearchReport report;
  try {
    report = master::run_search(queries, view_, engine);
  } catch (...) {
    // Execution failed (e.g. a task exhausted its retries): fail exactly the
    // requests of this batch and keep serving — the batcher must survive.
    const std::exception_ptr error = std::current_exception();
    for (const std::size_t leader : leaders) {
      for (const std::size_t i : groups[batch[leader].key]) {
        batch[i].promise->set_exception(error);
      }
    }
    return;
  }

  // Count the batch before fulfilling any promise: a caller that waits on
  // its future and immediately reads stats() must see this work included.
  {
    util::MutexLock lock(mutex_);
    ++batches_;
    searches_ += leaders.size();
    filter_stats_.merge(report.filter);
  }
  if (config_.metrics) {
    config_.metrics->add("serve_batches");
    config_.metrics->add("serve_searches",
                         static_cast<double>(leaders.size()));
  }

  for (std::size_t q = 0; q < leaders.size(); ++q) {
    const std::string& key = batch[leaders[q]].key;
    const auto value = results_.insert(key, report.results[q].hits);
    for (const std::size_t i : groups[key]) {
      // report.filter is the batch aggregate: the master merges worker
      // counters across every query of the workload.
      fulfill(batch[i], *value, /*cache_hit=*/false, {}, report.filter);
    }
  }
}

void QueryService::execute_group_sharded(
    std::vector<Request>& batch, const std::vector<std::size_t>& leaders,
    std::unordered_map<std::string, std::vector<std::size_t>>& groups) {
  // The collapsed distinct queries of this batch form one multi-query
  // group: the sharded engine scans every shard chunk once per query while
  // the chunk is hot, instead of one full database pass per query.
  std::vector<std::span<const std::uint8_t>> queries;
  queries.reserve(leaders.size());
  for (const std::size_t leader : leaders) {
    const seq::Sequence& query = batch[leader].query;
    queries.emplace_back(query.residues.data(), query.residues.size());
  }

  const std::size_t top = config_.master.top_hits;
  std::vector<align::ShardedSearchResult> results;
  try {
    // search_many_filtered with mode kOff delegates straight to
    // search_many, so this is the one dispatch point for both modes.
    results = sharded_->search_many_filtered(
        queries, config_.master.scheme, config_.master.cpu_kernel, top,
        config_.master.filter, config_.master.cpu_backend);
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (const std::size_t leader : leaders) {
      for (const std::size_t i : groups[batch[leader].key]) {
        batch[i].promise->set_exception(error);
      }
    }
    return;
  }

  // Escalated recovery: a shard that exhausted its in-engine retries gets
  // one more chance through the master scheduler (the shard overload of
  // run_search), scanning only that shard's records. Failures are shared
  // by the whole group, so recovery runs once per failed shard, not per
  // query.
  std::vector<align::ShardFailure> remaining;
  bool rescued_any = false;
  if (!results.empty() && !results.front().failures.empty()) {
    std::vector<seq::Sequence> leader_queries;
    leader_queries.reserve(leaders.size());
    for (const std::size_t leader : leaders) {
      leader_queries.push_back(batch[leader].query);
    }
    for (const align::ShardFailure& failure : results.front().failures) {
      const auto& records = sharded_->plan().shards[failure.shard].records;
      if (config_.shard_recovery) {
        master::MasterConfig engine = config_.master;
        engine.tracer = config_.tracer;
        engine.metrics = config_.metrics;
        engine.profile_cache = &profiles_;
        try {
          const master::SearchReport rescued = master::run_search(
              leader_queries, view_, records, engine);
          for (std::size_t q = 0; q < results.size(); ++q) {
            // Re-rank the union of the partial top-k and the rescued
            // shard's top-k; both carry global indices, so the merged
            // ranking matches the unsharded search.
            std::vector<align::SearchHit> merged;
            for (const align::SearchHit& hit : results[q].ranked.hits) {
              align::push_top_hit(merged, hit, top);
            }
            for (const align::SearchHit& hit : rescued.results[q].hits) {
              align::push_top_hit(merged, hit, top);
            }
            align::finish_top_hits(merged);
            results[q].ranked.hits = std::move(merged);
          }
          {
            util::MutexLock lock(mutex_);
            ++shard_recoveries_;
          }
          if (config_.metrics) {
            config_.metrics->add("serve_shard_recoveries");
          }
          rescued_any = true;
          continue;  // shard rescued; not a remaining failure
        } catch (...) {
          // master recovery failed too — fall through to partial
        }
      }
      remaining.push_back(failure);
    }
  }

  // Annotate AFTER the recovery merge, never inside the sharded engine or
  // the per-shard recovery run (the shard overload of run_search disables
  // annotation itself): each query's hits are only now the final global
  // top-k, and the search space must be the whole database's residues.
  if (config_.master.annotate.enabled()) {
    for (std::size_t q = 0; q < results.size(); ++q) {
      align::annotate_hits(results[q].ranked.hits, queries[q], view_,
                           config_.master.scheme, config_.master.annotate,
                           *stats_params_, db_residues_, config_.tracer,
                           config_.metrics, obs::kMasterTrack);
    }
  }

  std::string partial_reason;
  for (const align::ShardFailure& failure : remaining) {
    if (!partial_reason.empty()) partial_reason += "; ";
    partial_reason += "shard " + std::to_string(failure.shard) +
                      " failed after " + std::to_string(failure.attempts) +
                      " attempts: " + failure.reason;
  }

  {
    util::MutexLock lock(mutex_);
    ++batches_;
    searches_ += leaders.size();
    for (const align::ShardedSearchResult& result : results) {
      filter_stats_.merge(result.filter);
    }
  }
  if (config_.metrics) {
    config_.metrics->add("serve_batches");
    config_.metrics->add("serve_searches",
                         static_cast<double>(leaders.size()));
  }

  // A filtered answer patched up through master recovery merges the rescued
  // shard's *per-shard* candidate selection into the surviving shards'
  // global selection — a valid answer (every hit is exactly rescored) but
  // not the canonical one the filter key promises, so it must not be cached.
  const bool cacheable =
      partial_reason.empty() &&
      !(rescued_any && config_.master.filter.enabled());

  for (std::size_t q = 0; q < leaders.size(); ++q) {
    const std::string& key = batch[leaders[q]].key;
    if (cacheable) {
      // Complete answers are deterministic across shard topology and
      // cacheable under the topology-free key.
      const auto value = results_.insert(key, results[q].ranked.hits);
      for (const std::size_t i : groups[key]) {
        fulfill(batch[i], *value, /*cache_hit=*/false, {},
                results[q].filter);
      }
    } else {
      // Partial answers must never enter the cache: a later request at a
      // healthy moment deserves the full result.
      for (const std::size_t i : groups[key]) {
        fulfill(batch[i], results[q].ranked.hits, /*cache_hit=*/false,
                partial_reason, results[q].filter);
      }
    }
  }
}

QueryService::Stats QueryService::stats() const {
  Stats stats;
  {
    util::MutexLock lock(mutex_);
    stats.accepted = accepted_;
    stats.rejected_queue_full = rejected_queue_full_;
    stats.rejected_shutdown = rejected_shutdown_;
    stats.batches = batches_;
    stats.searches = searches_;
    stats.partial_responses = partial_responses_;
    stats.shard_recoveries = shard_recoveries_;
    stats.filter = filter_stats_;
  }
  stats.results = results_.stats();
  stats.profiles = profiles_.stats();
  if (sharded_) stats.shards = sharded_->stats();
  return stats;
}

}  // namespace swdual::serve
