#include "serve/cache.h"

#include <algorithm>

#include "align/profile_cache.h"

namespace swdual::serve {

std::string result_key(std::span<const std::uint8_t> query,
                       const std::string& db_id,
                       const align::ScoringScheme& scheme,
                       align::KernelKind kernel,
                       const align::FilterConfig& filter,
                       const align::AnnotateConfig& annotate) {
  std::string key;
  key.reserve(query.size() + db_id.size() + 64);
  key += db_id;
  key += '/';
  key += align::scoring_key(scheme);
  key += '/';
  key += align::kernel_name(kernel);
  key += '/';
  if (filter.enabled()) {
    // kOff deliberately adds nothing: the filtered-off answer is the exact
    // answer, so both share one cache entry.
    key += "filter:";
    key += align::filter_mode_name(filter.mode);
    key += ":b";
    key += std::to_string(filter.band);
    key += ":k";
    key += std::to_string(filter.keep_factor);
    key += '/';
  }
  if (annotate.enabled()) {
    // kOff adds nothing, mirroring the filter segment: an unannotated
    // answer is the plain ranked answer.
    key += "annotate:";
    key += align::annotate_mode_name(annotate.mode);
    key += ":e";
    key += std::to_string(annotate.evalue_cutoff);
    key += '/';
  }
  key.append(reinterpret_cast<const char*>(query.data()), query.size());
  return key;
}

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const ResultCache::Hits> ResultCache::lookup(
    const std::string& key) {
  util::MutexLock lock(mutex_);
  const auto found = index_.find(key);
  if (found == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, found->second);
  return found->second->second;
}

std::shared_ptr<const ResultCache::Hits> ResultCache::insert(
    const std::string& key, Hits hits) {
  util::MutexLock lock(mutex_);
  const auto raced = index_.find(key);
  if (raced != index_.end()) {
    lru_.splice(lru_.begin(), lru_, raced->second);
    return raced->second->second;
  }
  auto value = std::make_shared<const Hits>(std::move(hits));
  lru_.emplace_front(key, value);
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  return value;
}

ResultCache::Stats ResultCache::stats() const {
  util::MutexLock lock(mutex_);
  return {hits_, misses_, evictions_, lru_.size(), capacity_};
}

}  // namespace swdual::serve
