// LRU cache of finished query results for the serve layer.
//
// A service that replays real traffic sees heavy repetition (annotation
// pipelines re-submit the same marker genes, interactive users retry), so a
// completed search's ranked hits are worth keeping. The key is everything
// that determines the answer: the query residues, the database identity, the
// scoring parameters, and the kernel. The resolved SIMD backend is
// deliberately *not* part of the key — every backend produces bit-identical
// scores (tests/align/test_backend_equivalence.cpp), so a hit computed on
// AVX2 is the right answer for an SSE2 host too. Shard topology (shard
// count, thread counts, scatter order) is excluded for the same reason:
// sharded scatter-gather results are bit-identical to the unsharded search
// (tests/align/test_sharded_search.cpp), so a cached answer is valid at any
// shard count. test_result_cache.cpp pins the exact key layout so a field
// cannot sneak in unreviewed.
//
// Thread-safe; values are shared_ptr so a hit handed to a caller stays
// valid after the entry is evicted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "align/annotate.h"
#include "align/scoring.h"
#include "align/search.h"
#include "util/mutex.h"

namespace swdual::serve {

/// Canonical cache key for one query's result: db identity + scoring
/// parameters (align::scoring_key) + kernel + filter config + annotation
/// config + raw query residues. The filter segment appears only when the
/// two-stage filter is enabled: kOff is bit-identical to the exact search,
/// so its key IS the exact search's key and the two share cache entries. A
/// heuristic config changes which hits are returned (band + keep_factor
/// decide the candidate set), so it must split the cache — but the SIMD
/// backend, thread counts, worker types, and shard topology still stay out
/// of the key: the screen is bit-identical across backends and candidate
/// selection is a deterministic global function of the screen, so filtered
/// answers are identical across all of them (tests/align/test_filter.cpp).
/// The annotate segment follows the same rule: mode kOff adds nothing,
/// while an enabled mode joins the key with its evalue cutoff — the mode
/// decides what a cached hit carries (stats vs. a CIGAR) and the cutoff
/// decides which hits survive, so differently-annotated answers must not
/// alias. Calibration inputs stay out: params are a deterministic function
/// of (scheme, alphabet, db_id), all already in the key.
std::string result_key(std::span<const std::uint8_t> query,
                       const std::string& db_id,
                       const align::ScoringScheme& scheme,
                       align::KernelKind kernel,
                       const align::FilterConfig& filter = {},
                       const align::AnnotateConfig& annotate = {});

class ResultCache {
 public:
  using Hits = std::vector<align::SearchHit>;

  /// `capacity` = maximum retained entries (≥ 1).
  explicit ResultCache(std::size_t capacity = 1024);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Ranked hits for `key`, or nullptr on a miss. A hit refreshes LRU order.
  std::shared_ptr<const Hits> lookup(const std::string& key);

  /// Insert (or refresh) `key` → `hits`, evicting the LRU tail past
  /// capacity. Returns the resident value (the existing one if another
  /// thread raced the insert — first writer wins, answers are identical by
  /// key construction).
  std::shared_ptr<const Hits> insert(const std::string& key, Hits hits);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };
  Stats stats() const;

  /// The cache's capability, for lock-order declarations in owning layers
  /// (QueryService declares service → result-cache → profile-cache; see
  /// DESIGN.md "Static concurrency analysis"). Never lock it directly —
  /// every public method is self-locking.
  util::Mutex& capability() const SWDUAL_RETURN_CAPABILITY(mutex_) {
    return mutex_;
  }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const Hits>>;

  std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::list<Entry> lru_ SWDUAL_GUARDED_BY(mutex_);  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      SWDUAL_GUARDED_BY(mutex_);
  std::uint64_t hits_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ SWDUAL_GUARDED_BY(mutex_) = 0;
};

}  // namespace swdual::serve
