// Long-running concurrent query service over the master–slave runtime.
//
// The paper's runtime answers one batch and exits; a deployment sits behind
// an API and fields overlapping requests all day. This layer adds the three
// pieces that turn the batch engine into a service:
//
//   - Admission control: a bounded queue between submitters and the
//     execution loop. When it is full, submit() rejects immediately with a
//     machine-readable reason — it never blocks a caller indefinitely, so
//     backpressure propagates to clients instead of accumulating as hidden
//     memory growth.
//   - Micro-batching: one batcher thread drains up to `max_batch` admitted
//     requests at a time, collapses duplicates, and dispatches the distinct
//     queries through master::run_search as ONE workload — the
//     dual-approximation scheduler sees the whole batch and splits it across
//     CPU and GPU workers, exactly as the paper's Fig. 6 flow intends.
//     Per-query profiles come from a shared align::ProfileCache, so repeat
//     queries skip profile construction entirely.
//   - Result caching: finished answers go into an LRU ResultCache keyed by
//     (query residues, db id, scoring params, kernel); a hit at admission
//     time is answered without touching a worker.
//
// Every request is tracked end to end: enqueue→admit→execute→complete
// timestamps become spans on the obs::Tracer and latency histograms
// (`serve_*`) in the obs::MetricsRegistry, whose percentile() gives
// p50/p95/p99 directly.
//
// Thread-safety: submit(), shutdown(), and stats() may be called from any
// thread concurrently. Results arrive through shared_futures, so several
// consumers can wait on one answer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "align/profile_cache.h"
#include "align/sharded_search.h"
#include "master/master.h"
#include "seq/sequence.h"
#include "seq/swdb.h"
#include "serve/cache.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace swdual::obs {
class MetricsRegistry;
class Tracer;
}  // namespace swdual::obs

namespace swdual::serve {

struct ServiceConfig {
  /// Execution engine configuration (workers, policy, scoring, kernel). The
  /// service installs its own profile cache and observability sinks into
  /// this before each dispatch; leave those fields alone here.
  master::MasterConfig master;

  /// Bounded admission queue: submissions beyond this many waiting requests
  /// are rejected with SubmitStatus::kQueueFull (never blocked).
  std::size_t admission_capacity = 256;

  /// Most requests coalesced into one scheduler workload.
  std::size_t max_batch = 16;

  std::size_t result_cache_capacity = 1024;
  std::size_t profile_cache_capacity = 64;

  /// Identity of the database this service fronts; part of every result
  /// cache key (two services over different databases must not share hits).
  /// Shard topology is deliberately NOT part of the identity: sharded and
  /// unsharded searches are bit-identical, so cached answers are valid at
  /// any shard count (the same way the SIMD backend is excluded). The
  /// two-stage filter config (master.filter) DOES join the key when enabled
  /// — it changes which hits come back — but stays topology-free for the
  /// same determinism reason (see serve/cache.h). The annotation config
  /// (master.annotate) joins the key the same way when enabled: annotated
  /// hits carry extra payload and the e-value cutoff changes which hits
  /// survive, but annotation itself is topology-independent (it runs once
  /// on the merged global top-k), so the key still excludes topology.
  std::string db_id = "db";

  /// Scale-out: > 0 runs every batch through an align::ShardedSearchEngine
  /// with this many residue-balanced shards (zero-copy views into the one
  /// database), scatter-gather merged, with the batch's distinct queries
  /// sharing one pass over each shard chunk. 0 keeps the classic path: one
  /// master::run_search (CPU+GPU scheduler) per batch.
  std::size_t shards = 0;

  /// Intra-shard scan threads for the sharded path.
  std::size_t threads_per_shard = 1;

  /// In-engine recovery attempts per failed shard scan (sharded path).
  std::size_t max_shard_retries = 1;

  /// When a shard exhausts its in-engine retry budget, re-run just that
  /// shard's records through the master scheduler (run_search's shard
  /// overload) before giving up. Off → failed shards surface as partial
  /// responses immediately.
  bool shard_recovery = true;

  /// Test hook mirroring before_batch, forwarded to the sharded engine:
  /// invoked with (shard, attempt) before every shard-scan attempt; a throw
  /// fails that attempt. nullptr in production.
  std::function<void(std::size_t shard, std::size_t attempt)> before_shard;

  /// Optional observability sinks, borrowed for the service's lifetime and
  /// forwarded into every master::run_search dispatch.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  /// Test hook: invoked by the batcher thread with the batch size right
  /// before a batch executes. Lets tests hold the batcher at a known point
  /// (e.g. to fill the admission queue deterministically). nullptr in
  /// production.
  std::function<void(std::size_t batch_size)> before_batch;
};

/// Outcome of one submit() call.
enum class SubmitStatus {
  kAccepted,   ///< queued; `result` will be fulfilled
  kQueueFull,  ///< admission queue at capacity — retry later
  kShutdown,   ///< service no longer accepts work
};

const char* submit_status_name(SubmitStatus status);

/// One fulfilled request.
struct QueryResponse {
  std::vector<align::SearchHit> hits;  ///< top hits, rank order
  bool cache_hit = false;              ///< answered from the result cache
  double queue_seconds = 0.0;          ///< enqueue → admitted by the batcher
  double execute_seconds = 0.0;        ///< admitted → answer ready
  double total_seconds = 0.0;          ///< enqueue → answer ready

  /// Sharded path only: some shards failed past every retry, so `hits`
  /// covers only the shards that were scanned. `partial_reason` names the
  /// failed shards and the last error. Partial answers are never cached.
  bool partial = false;
  std::string partial_reason;

  /// Set when the two-stage filter (ServiceConfig master.filter) produced
  /// this answer. `filter` carries the screen counters of the engine pass
  /// behind a fresh answer — per query on the sharded path, batch-aggregate
  /// on the master path — and is zero on cache hits (the work was already
  /// paid for by the request that populated the cache).
  bool filtered = false;
  align::FilterStats filter;

  /// True when annotation (ServiceConfig master.annotate) is enabled: every
  /// hit's `annotation` then carries e-value and bit score, plus a CIGAR
  /// and aligned coordinates under stats+cigar. Annotations ride the result
  /// cache with the hits, so cache hits are annotated too.
  bool annotated = false;
};

/// Ticket returned by submit(). `result` is only valid when accepted().
struct Submission {
  SubmitStatus status = SubmitStatus::kShutdown;
  std::string reason;  ///< human-readable rejection reason; empty on accept
  std::shared_future<QueryResponse> result;

  bool accepted() const { return status == SubmitStatus::kAccepted; }
};

class QueryService {
 public:
  /// Takes ownership of the database records (a long-running service must
  /// not depend on a caller's buffers) and starts the batcher thread.
  QueryService(std::vector<seq::Sequence> db, ServiceConfig config);

  /// Zero-copy variant: the service shares an mmap-backed SWDB instead of
  /// owning record copies. The shared_ptr keeps the mapping alive for the
  /// service's lifetime (MappedSwdb lifetime rule), so any number of
  /// services/engines/shards over the same file share one physical copy of
  /// the database via the page cache.
  QueryService(std::shared_ptr<const seq::MappedSwdb> db,
               ServiceConfig config);

  /// Graceful: stops admissions, drains already-admitted requests, joins.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submit one query. Never blocks on the execution pipeline: the call
  /// either enqueues and returns a future, or rejects with a reason.
  Submission submit(const seq::Sequence& query);

  /// Stop accepting new work. Already-admitted requests still complete
  /// (their futures are fulfilled) before the batcher exits. Idempotent.
  void shutdown();

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t batches = 0;    ///< workloads dispatched to the engine
    std::uint64_t searches = 0;   ///< distinct queries actually executed
    std::uint64_t partial_responses = 0;  ///< fulfilled with failed shards
    std::uint64_t shard_recoveries = 0;   ///< shards rescued via the master
    ResultCache::Stats results;
    align::ProfileCache::Stats profiles;
    align::ShardedSearchEngine::Stats shards;  ///< zeros on the master path

    /// Accumulated two-stage filter counters across every executed search
    /// (zeros while master.filter is off).
    align::FilterStats filter;
  };
  Stats stats() const;

  /// Shards the service searches with (1 when unsharded/master path).
  std::size_t num_shards() const {
    return sharded_ ? sharded_->num_shards() : 1;
  }

 private:
  struct Request {
    seq::Sequence query;
    std::string key;  ///< result-cache key
    std::shared_ptr<std::promise<QueryResponse>> promise;
    WallTimer timer;           ///< started at enqueue
    double enqueue_wall = 0;   ///< tracer-epoch timestamp (0 if no tracer)
    double admit_wall = 0;     ///< tracer-epoch timestamp at admission
    double admit_seconds = 0;  ///< enqueue → admission (filled at admission)
    std::uint64_t id = 0;      ///< monotonic request id, for trace args
  };

  void run();
  void execute_batch(std::vector<Request> batch);
  /// Sharded scatter-gather execution of one collapsed query group.
  void execute_group_sharded(std::vector<Request>& batch,
                             const std::vector<std::size_t>& leaders,
                             std::unordered_map<std::string,
                                                std::vector<std::size_t>>&
                                 groups);
  void admit(Request& request);
  void fulfill(Request& request, std::vector<align::SearchHit> hits,
               bool cache_hit, std::string partial_reason = {},
               const align::FilterStats& filter = {});
  /// Shared ctor tail: validate config, start the batcher.
  void start();

  std::vector<seq::Sequence> db_;  ///< owned records (record ctor only)
  std::shared_ptr<const seq::MappedSwdb> mapped_;  ///< mmap ctor only
  align::DbView view_;  ///< residue views into db_ or mapped_
  ServiceConfig config_;
  ResultCache results_;
  align::ProfileCache profiles_;
  align::StatsCache stats_cache_;  ///< calibrated Karlin–Altschul params
  /// Acquired once at start() when master.annotate is enabled; every
  /// dispatch borrows the same calibration (deterministic per scheme ×
  /// alphabet × db_id, see align::StatsCache).
  std::shared_ptr<const align::KarlinAltschulParams> stats_params_;
  std::uint64_t db_residues_ = 0;  ///< Karlin–Altschul search space n
  std::unique_ptr<align::ShardedSearchEngine> sharded_;  ///< shards > 0 only

  /// Service capability, declared before both cache capabilities: the
  /// admission lock may be held briefly around queue/counter state, but the
  /// caches are only ever entered with it released (their methods are
  /// self-locking), so the scatter-gather path cannot produce a
  /// service↔cache deadlock — and under Clang, acquiring mutex_ while a
  /// cache lock is held contradicts this declaration and fails the build.
  mutable util::Mutex mutex_
      SWDUAL_ACQUIRED_BEFORE(results_.capability(), profiles_.capability());
  util::CondVar wake_;
  std::deque<Request> admission_ SWDUAL_GUARDED_BY(mutex_);
  bool accepting_ SWDUAL_GUARDED_BY(mutex_) = true;
  std::uint64_t next_id_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t accepted_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_queue_full_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_shutdown_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t batches_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t searches_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t partial_responses_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t shard_recoveries_ SWDUAL_GUARDED_BY(mutex_) = 0;
  align::FilterStats filter_stats_ SWDUAL_GUARDED_BY(mutex_);

  std::thread batcher_;  ///< must be last: joins before members destruct
};

}  // namespace swdual::serve
