#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>
#include <sstream>

namespace swdual::obs {

double TraceEvent::arg(const std::string& key, double fallback) const {
  for (const auto& [arg_key, arg_value] : args) {
    if (arg_key == key) return arg_value;
  }
  return fallback;
}

// ---------------------------------------------------------------------------
// Span

Span::Span(Tracer* tracer, std::string name, std::string category,
           std::size_t track)
    : tracer_(tracer) {
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.track = track;
  event_.start = tracer_->now();
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      event_(std::move(other.event_)),
      has_virtual_(other.has_virtual_),
      virtual_start_(other.virtual_start_),
      virtual_end_(other.virtual_end_) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = other.tracer_;
    event_ = std::move(other.event_);
    has_virtual_ = other.has_virtual_;
    virtual_start_ = other.virtual_start_;
    virtual_end_ = other.virtual_end_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::arg(std::string key, double value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(std::move(key), value);
}

void Span::virtual_interval(double start, double end) {
  if (tracer_ == nullptr) return;
  has_virtual_ = true;
  virtual_start_ = start;
  virtual_end_ = end;
}

void Span::finish() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  event_.end = tracer->now();
  if (has_virtual_) {
    TraceEvent virtual_event = event_;
    virtual_event.clock = Clock::kVirtual;
    virtual_event.start = virtual_start_;
    virtual_event.end = virtual_end_;
    tracer->record(std::move(virtual_event));
  }
  tracer->record(std::move(event_));
}

// ---------------------------------------------------------------------------
// Tracer

struct Tracer::ThreadBuffer {
  /// Uncontended except against flush(). flush() acquires it while holding
  /// the owner's registry_mutex_; the declared order makes the reverse
  /// nesting (registry inside a buffer lock) a compile error under Clang.
  util::Mutex mutex SWDUAL_ACQUIRED_AFTER(owner->registry_mutex_);
  Tracer* owner = nullptr;  ///< the tracer whose registry published us
  std::uint32_t index = 0;
  std::vector<TraceEvent> events SWDUAL_GUARDED_BY(mutex);
};

namespace {

/// Globally unique tracer ids let the thread-local buffer cache detect that
/// it belongs to a different (possibly destroyed) tracer. Ids never repeat,
/// so a stale cache can never be mistaken for a live one.
std::atomic<std::uint64_t> g_next_tracer_id{1};

struct BufferCache {
  std::uint64_t tracer_id = 0;
  Tracer::ThreadBuffer* buffer = nullptr;
};
thread_local BufferCache t_buffer_cache;

}  // namespace

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer* Tracer::local_buffer() {
  if (t_buffer_cache.tracer_id == id_) return t_buffer_cache.buffer;
  util::MutexLock lock(registry_mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->owner = this;
  buffer->index = static_cast<std::uint32_t>(buffers_.size());
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  t_buffer_cache = {id_, raw};
  return raw;
}

void Tracer::record_impl(TraceEvent event) {
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ThreadBuffer* buffer = local_buffer();
  event.thread = buffer->index;
  util::MutexLock lock(buffer->mutex);
  buffer->events.push_back(std::move(event));
}

void Tracer::instant_impl(std::string name, std::string category,
                          std::size_t track,
                          std::vector<std::pair<std::string, double>> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = track;
  event.start = event.end = now();
  event.args = std::move(args);
  record_impl(std::move(event));
}

std::vector<TraceEvent> Tracer::flush() {
  std::vector<TraceEvent> all;
  {
    util::MutexLock lock(registry_mutex_);
    for (auto& buffer : buffers_) {
      util::MutexLock buffer_lock(buffer->mutex);
      all.insert(all.end(), std::make_move_iterator(buffer->events.begin()),
                 std::make_move_iterator(buffer->events.end()));
      buffer->events.clear();
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return all;
}

// ---------------------------------------------------------------------------
// Chrome trace_event export

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microsecond timestamps with fixed millinanosecond precision, so golden
/// traces compare byte-for-byte across runs and platforms.
std::string format_micros(double seconds) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", seconds * 1e6);
  return buffer;
}

std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

/// Chrome tid lane: the virtual clock gets lane 0 on every pid, wall-clock
/// events one lane per recording thread.
std::uint32_t lane_of(const TraceEvent& event) {
  return event.clock == Clock::kVirtual ? 0 : event.thread + 1;
}

void write_args(std::ostream& out,
                const std::vector<std::pair<std::string, double>>& args) {
  out << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out << ",";
    out << '"' << json_escape(args[i].first)
        << "\":" << format_value(args[i].second);
  }
  out << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const ChromeTraceOptions& options) {
  std::set<std::size_t> pids;
  std::set<std::pair<std::size_t, std::uint32_t>> lanes;
  for (const TraceEvent& event : events) {
    pids.insert(event.track);
    lanes.insert({event.track, lane_of(event)});
  }

  out << "{\"traceEvents\":[";
  bool first = true;
  const auto separator = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  for (const std::size_t pid : pids) {
    separator();
    const auto named = options.track_names.find(pid);
    const std::string name = named != options.track_names.end()
                                 ? named->second
                                 : "track " + std::to_string(pid);
    out << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"ts\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
        << json_escape(name) << "\"}}";
  }
  for (const auto& [pid, tid] : lanes) {
    separator();
    const std::string name =
        tid == 0 ? "virtual" : "wall " + std::to_string(tid - 1);
    out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"ts\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"" << name
        << "\"}}";
  }

  for (const TraceEvent& event : events) {
    separator();
    out << "{\"ph\":\""
        << (event.phase == TraceEvent::Phase::kInstant ? "i" : "X")
        << "\",\"pid\":" << event.track << ",\"tid\":" << lane_of(event)
        << ",\"ts\":" << format_micros(event.start);
    if (event.phase == TraceEvent::Phase::kInstant) {
      out << ",\"s\":\"t\"";
    } else {
      out << ",\"dur\":" << format_micros(event.duration());
    }
    out << ",\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
        << json_escape(event.category) << "\",\"args\":";
    write_args(out, event.args);
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const ChromeTraceOptions& options) {
  std::ostringstream out;
  write_chrome_trace(out, events, options);
  return out.str();
}

}  // namespace swdual::obs
