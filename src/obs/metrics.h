// Named runtime metrics: thread-safe counters and value histograms.
//
// Complements the tracer (obs/trace.h): spans answer "when did it happen",
// the registry answers "how often / how much" with O(1) state per metric.
// The instrumented layers use a small shared vocabulary:
//   counters   tasks_dispatched, task_retries, task_faults,
//              serve_accepted, serve_rejected_*, serve_cache_{hits,misses},
//              serve_batches, serve_searches, serve_partial_responses,
//              serve_shard_{scans,retries,failures,recoveries,group_passes}
//   histograms chunk_scan_seconds, task_virtual_seconds, lambda_iterations,
//              serve_{queue,execute,latency}_seconds, serve_batch_size,
//              serve_shard_scan_seconds, serve_shard_group_queries
// Names are created on first use; readers of absent names see zeros.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace swdual::obs {

class MetricsRegistry {
 public:
  /// Running summary of one histogram. min/max are 0 when count == 0.
  struct HistogramSummary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Add `delta` to the named counter (created at 0 on first use).
  void add(const std::string& name, double delta = 1.0);

  /// Record one sample into the named histogram.
  void observe(const std::string& name, double value);

  /// Current counter value; 0.0 for a name never touched.
  double counter(const std::string& name) const;

  /// Current histogram summary; all-zero for a name never touched.
  HistogramSummary histogram(const std::string& name) const;

  /// Linear-interpolated percentile of the named histogram's samples,
  /// q in [0,1] (0.5 = p50, 0.99 = p99); 0.0 for a name never touched.
  /// Histograms retain every sample (8 bytes each) to make order statistics
  /// exact — latency-style metrics at service scale, not per-cell rates.
  double percentile(const std::string& name, double q) const;

  /// Flat text dump, deterministic: one `counter <name> <value>` line per
  /// counter then one `histogram <name> count=... sum=... min=... max=...
  /// mean=...` line per histogram, each block sorted by name.
  std::string dump() const;

 private:
  /// Readers–writer lock: add()/observe() are exclusive writers, every
  /// accessor (counter, histogram, percentile, dump) takes a shared read
  /// lock so concurrent report readers never serialize each other.
  mutable util::SharedMutex mutex_;
  std::map<std::string, double> counters_ SWDUAL_GUARDED_BY(mutex_);
  std::map<std::string, HistogramSummary> histograms_
      SWDUAL_GUARDED_BY(mutex_);
  std::map<std::string, std::vector<double>> samples_
      SWDUAL_GUARDED_BY(mutex_);
};

}  // namespace swdual::obs
