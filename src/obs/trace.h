// Execution tracing: thread-safe span/event recording over two clock domains.
//
// The paper's evaluation is about *where time goes* on a hybrid platform
// (per-PE busy/idle, dispatch order, makespan), so every layer of the stack
// can emit structured spans through a shared Tracer: the master's
// dispatch/collect/merge phases, each worker's task executions, the parallel
// engine's chunk scans, the scheduler's λ-iterations, and the DES replay.
//
// Two clock domains coexist (see DESIGN.md "Observability"):
//   - wall time:     seconds on this host's steady clock, relative to the
//                    tracer's construction (its epoch);
//   - virtual time:  modeled seconds on the paper's hardware, starting at 0.
// A Span measures wall time by RAII and may additionally carry one virtual
// interval; it then flushes as two events, one per clock. Purely virtual
// producers (the DES) record virtual events directly.
//
// Recording is thread-safe and cheap: each thread appends to its own
// mutex-guarded buffer (uncontended except against flush), and a global
// atomic sequence number gives flush() a total record order. flush() drains
// every buffer and returns the merged, sequence-ordered event list; export
// helpers turn that list into Chrome trace_event JSON (chrome://tracing /
// Perfetto) with one pid per track and separate wall/virtual tid lanes.
//
// Building with -DSWDUAL_TRACE=OFF compiles the tracer down to no-ops: the
// inline entry points below reduce to empty bodies, instrumentation sites
// keep compiling, and flush() always returns an empty list.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"

#ifndef SWDUAL_TRACE_ENABLED
#define SWDUAL_TRACE_ENABLED 1
#endif

namespace swdual::obs {

/// Which clock an event's timestamps live on.
enum class Clock { kWall, kVirtual };

/// Track (Chrome pid) convention shared by the instrumented layers: the
/// master owns track 0, worker / PE `i` owns track i + 1. The DES maps its
/// PEs with the same GPUs-first numbering the master uses for worker ids.
inline constexpr std::size_t kMasterTrack = 0;
constexpr std::size_t worker_track(std::size_t worker_id) {
  return worker_id + 1;
}

/// One recorded event. `seq` and `thread` are filled by the tracer.
struct TraceEvent {
  enum class Phase { kComplete, kInstant };

  Phase phase = Phase::kComplete;
  Clock clock = Clock::kWall;
  std::string name;
  std::string category;
  std::size_t track = 0;     ///< logical timeline (master / worker / PE)
  std::uint32_t thread = 0;  ///< recording thread (per-tracer buffer index)
  std::uint64_t seq = 0;     ///< global record order across all threads
  double start = 0.0;        ///< seconds since epoch (wall) or 0 (virtual)
  double end = 0.0;          ///< == start for instants
  std::vector<std::pair<std::string, double>> args;

  double duration() const { return end - start; }

  /// First value recorded under `key`, or `fallback` if absent.
  double arg(const std::string& key, double fallback = 0.0) const;
};

class Tracer;

/// RAII wall-clock span. A default-constructed Span is inert, so call sites
/// can declare one unconditionally and only arm it when a tracer is present.
/// finish() (or destruction) records the wall event, plus a second
/// virtual-clock event if virtual_interval() was set.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Attach a numeric attribute (kept on both clock domains' events).
  void arg(std::string key, double value);

  /// Attach the span's interval on the virtual clock.
  void virtual_interval(double start, double end);

  /// Record now instead of at destruction. Idempotent.
  void finish();

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string name, std::string category,
       std::size_t track);

  Tracer* tracer_ = nullptr;
  TraceEvent event_;
  bool has_virtual_ = false;
  double virtual_start_ = 0.0;
  double virtual_end_ = 0.0;
};

/// Thread-safe event sink. See file comment for the buffering model.
class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// False when the build compiled the tracer out (-DSWDUAL_TRACE=OFF).
  static constexpr bool compiled_in() { return SWDUAL_TRACE_ENABLED != 0; }

  /// Open a wall-clock span on `track`.
  Span span(std::string name, std::string category, std::size_t track) {
    if constexpr (!compiled_in()) return {};
    return Span(this, std::move(name), std::move(category), track);
  }

  /// Record a zero-duration wall-clock event at the current time.
  void instant(std::string name, std::string category, std::size_t track,
               std::vector<std::pair<std::string, double>> args = {}) {
    if constexpr (!compiled_in()) return;
    instant_impl(std::move(name), std::move(category), track,
                 std::move(args));
  }

  /// Record a fully specified event (used for virtual-clock timelines).
  void record(TraceEvent event) {
    if constexpr (!compiled_in()) return;
    record_impl(std::move(event));
  }

  /// Wall seconds since this tracer's construction.
  double now() const {
    if constexpr (!compiled_in()) return 0.0;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Drain every thread's buffer; events come back in global record order
  /// (ascending seq). Each event is returned exactly once.
  std::vector<TraceEvent> flush();

  struct ThreadBuffer;  ///< opaque per-thread event buffer

 private:
  void instant_impl(std::string name, std::string category, std::size_t track,
                    std::vector<std::pair<std::string, double>> args);
  void record_impl(TraceEvent event);
  ThreadBuffer* local_buffer();

  std::uint64_t id_ = 0;  ///< globally unique, validates thread-local caches
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_seq_{0};
  /// Guards the buffer registry. Each ThreadBuffer carries its own mutex
  /// (declared SWDUAL_ACQUIRED_AFTER(registry_mutex_) in trace.cpp) for its
  /// event vector; flush() nests buffer locks inside the registry lock,
  /// record paths take only their own buffer's lock.
  mutable util::Mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      SWDUAL_GUARDED_BY(registry_mutex_);
};

/// Options for the Chrome trace_event exporter.
struct ChromeTraceOptions {
  /// Human-readable process_name per track (pid); unnamed tracks fall back
  /// to "track N".
  std::map<std::size_t, std::string> track_names;
};

/// Write Chrome trace_event JSON (chrome://tracing "JSON Array Format",
/// wrapped in an object): one pid per track, tid 0 is the virtual-time lane,
/// tids 1+ are wall-clock lanes (one per recording thread). Timestamps are
/// microseconds. Output is deterministic for a deterministic event list.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const ChromeTraceOptions& options = {});

/// write_chrome_trace into a string.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const ChromeTraceOptions& options = {});

}  // namespace swdual::obs
