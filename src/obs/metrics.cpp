#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "util/stats.h"

namespace swdual::obs {

void MetricsRegistry::add(const std::string& name, double delta) {
  util::WriterMutexLock lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  util::WriterMutexLock lock(mutex_);
  HistogramSummary& h = histograms_[name];
  h.min = h.count == 0 ? value : std::min(h.min, value);
  h.max = h.count == 0 ? value : std::max(h.max, value);
  h.sum += value;
  ++h.count;
  samples_[name].push_back(value);
}

double MetricsRegistry::counter(const std::string& name) const {
  util::ReaderMutexLock lock(mutex_);
  const auto found = counters_.find(name);
  return found != counters_.end() ? found->second : 0.0;
}

MetricsRegistry::HistogramSummary MetricsRegistry::histogram(
    const std::string& name) const {
  util::ReaderMutexLock lock(mutex_);
  const auto found = histograms_.find(name);
  return found != histograms_.end() ? found->second : HistogramSummary{};
}

double MetricsRegistry::percentile(const std::string& name, double q) const {
  std::vector<double> sorted;
  {
    util::ReaderMutexLock lock(mutex_);
    const auto found = samples_.find(name);
    if (found == samples_.end()) return 0.0;
    sorted = found->second;
  }
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

namespace {

std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

std::string MetricsRegistry::dump() const {
  util::ReaderMutexLock lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << "counter " << name << ' ' << format_value(value) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out << "histogram " << name << " count=" << h.count
        << " sum=" << format_value(h.sum) << " min=" << format_value(h.min)
        << " max=" << format_value(h.max)
        << " mean=" << format_value(h.mean()) << '\n';
  }
  return out.str();
}

}  // namespace swdual::obs
