#include "core/workload.h"

#include <numeric>

#include "util/error.h"
#include "util/rng.h"

namespace swdual::core {

std::uint64_t Workload::total_cells() const {
  std::uint64_t total = 0;
  for (std::size_t q = 0; q < query_lengths.size(); ++q) total += cells(q);
  return total;
}

Workload make_workload(const std::string& database_name,
                       seq::QuerySetKind query_set,
                       std::size_t scale_denominator, std::uint64_t seed) {
  const seq::DatabaseProfile profile =
      seq::table3_profile(database_name, scale_denominator);
  const std::vector<std::size_t> db_lengths = seq::generate_lengths(profile);

  Workload workload;
  workload.name = database_name;
  workload.db_sequences = db_lengths.size();
  workload.db_residues =
      std::accumulate(db_lengths.begin(), db_lengths.end(), std::uint64_t{0});

  // Query lengths: anchored extremes plus uniform draws over the set's
  // range. Uniform (not database-biased) sampling matches the paper's
  // workload: its UniProt experiment implies ≈1.96e13 DP cells, i.e. a mean
  // query length of ≈2550 aa — the mean of uniform(100, 5000) — whereas
  // drawing from the database's log-normal lengths (median ≈300 aa) would
  // shrink the workload ≈6×.
  std::size_t min_len = 0, max_len = 0;
  switch (query_set) {
    case seq::QuerySetKind::kPaper: min_len = 100; max_len = 5000; break;
    case seq::QuerySetKind::kHomogeneous: min_len = 4500; max_len = 5000; break;
    case seq::QuerySetKind::kHeterogeneous: min_len = 4; max_len = 35213; break;
  }
  Rng rng(seed);
  workload.query_lengths.push_back(min_len);
  workload.query_lengths.push_back(max_len);
  while (workload.query_lengths.size() < seq::kPaperQueryCount) {
    workload.query_lengths.push_back(static_cast<std::size_t>(
        rng.between(static_cast<std::int64_t>(min_len),
                    static_cast<std::int64_t>(max_len))));
  }
  return workload;
}

std::vector<sched::Task> make_tasks(const Workload& workload,
                                    const platform::WorkerClass& cpu,
                                    const platform::WorkerClass& gpu) {
  std::vector<sched::Task> tasks;
  tasks.reserve(workload.query_lengths.size());
  for (std::size_t q = 0; q < workload.query_lengths.size(); ++q) {
    const std::uint64_t cells = workload.cells(q);
    tasks.push_back({q, cpu.seconds_for(cells), gpu.seconds_for(cells)});
  }
  return tasks;
}

sched::HybridPlatform split_workers(std::size_t total_workers) {
  SWDUAL_REQUIRE(total_workers >= 2,
                 "SWDUAL needs at least one CPU and one GPU worker");
  const std::size_t gpus = std::min<std::size_t>(4, total_workers - 1);
  return {total_workers - gpus, gpus};
}

}  // namespace swdual::core
