// Paper-scale workload descriptions.
//
// A workload is the cost structure of one experiment: query lengths plus the
// database residue total. That is all Smith–Waterman cost depends on, so the
// scheduling experiments (Tables II, IV, V; Figs. 7–9) can run at the
// paper's full database sizes without materializing half a million residue
// strings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/perf_model.h"
#include "sched/task.h"
#include "seq/dbgen.h"
#include "seq/queryset.h"

namespace swdual::core {

struct Workload {
  std::string name;
  std::vector<std::size_t> query_lengths;  ///< one task per query
  std::uint64_t db_residues = 0;
  std::size_t db_sequences = 0;

  /// DP cells of task q: |query_q| · db_residues.
  std::uint64_t cells(std::size_t q) const {
    return static_cast<std::uint64_t>(query_lengths[q]) * db_residues;
  }
  std::uint64_t total_cells() const;
};

/// Build a full-scale workload for one Table III database and one of the
/// paper's query sets. `scale_denominator` shrinks the database (1 = paper
/// scale); query lengths always follow the set's definition.
Workload make_workload(const std::string& database_name,
                       seq::QuerySetKind query_set,
                       std::size_t scale_denominator = 1,
                       std::uint64_t seed = 42);

/// Scheduler tasks for a workload under a worker-class pair.
std::vector<sched::Task> make_tasks(const Workload& workload,
                                    const platform::WorkerClass& cpu,
                                    const platform::WorkerClass& gpu);

/// The paper's worker-count split (§V-A): "the first four workers used on
/// the SWDUAL execution were GPUs and the last four workers were CPUs" —
/// 2 workers = 1 GPU + 1 CPU, 3 = 2+1, 4 = 3+1, 5..8 = 4 GPUs + rest CPUs.
sched::HybridPlatform split_workers(std::size_t total_workers);

}  // namespace swdual::core
