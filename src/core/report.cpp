#include "core/report.h"

#include <sstream>

#include "util/error.h"
#include "util/table.h"

namespace swdual::core {

std::vector<AnnotatedHit> annotate_hits(
    const master::QueryResult& result,
    const align::KarlinAltschulParams& params, std::size_t query_length,
    std::uint64_t db_residues) {
  std::vector<AnnotatedHit> hits;
  hits.reserve(result.hits.size());
  for (const align::SearchHit& hit : result.hits) {
    AnnotatedHit annotated;
    annotated.db_index = hit.db_index;
    annotated.score = hit.score;
    annotated.bits = align::bit_score(params, hit.score);
    annotated.evalue =
        align::evalue(params, hit.score, query_length, db_residues);
    hits.push_back(annotated);
  }
  return hits;
}

std::string render_search_report(const std::vector<seq::Sequence>& queries,
                                 const std::vector<seq::Sequence>& db,
                                 const master::SearchReport& report,
                                 const align::KarlinAltschulParams& params,
                                 double max_evalue) {
  SWDUAL_REQUIRE(max_evalue > 0, "E-value cutoff must be positive");
  std::uint64_t db_residues = 0;
  for (const seq::Sequence& record : db) db_residues += record.length();

  std::ostringstream os;
  for (const master::QueryResult& result : report.results) {
    const seq::Sequence& query = queries[result.query_index];
    os << "Query: " << query.id << " (" << query.length() << " residues)\n";
    const auto hits =
        annotate_hits(result, params, query.length(), db_residues);
    TextTable table;
    table.set_header({"subject", "length", "score", "bits", "E-value"});
    std::size_t shown = 0;
    for (const AnnotatedHit& hit : hits) {
      if (hit.evalue > max_evalue) continue;
      std::ostringstream evalue_text;
      evalue_text.precision(2);
      evalue_text << std::scientific << hit.evalue;
      table.add_row({db[hit.db_index].id,
                     std::to_string(db[hit.db_index].length()),
                     std::to_string(hit.score), TextTable::fmt(hit.bits, 1),
                     evalue_text.str()});
      ++shown;
    }
    if (shown == 0) {
      os << "  (no hits below E-value " << max_evalue << ")\n\n";
    } else {
      os << table.render() << '\n';
    }
  }
  os << "search space: " << report.total_cells << " cells; wall "
     << report.wall_seconds << " s; modeled hybrid makespan "
     << report.virtual_makespan << " s (" << report.virtual_gcups
     << " GCUPS)\n";
  return os.str();
}

}  // namespace swdual::core
