// Search-report annotation and rendering: raw Smith–Waterman scores turned
// into bit scores and E-values (statistics.h), formatted like a classic
// sequence-search tool report.
#pragma once

#include <string>
#include <vector>

#include "align/statistics.h"
#include "master/master.h"

namespace swdual::core {

/// One hit with significance statistics.
struct AnnotatedHit {
  std::size_t db_index = 0;
  int score = 0;
  double bits = 0.0;
  double evalue = 0.0;
};

/// Annotate one query's hits. `db_residues` is the total database size (the
/// n of the Karlin–Altschul m·n search space).
std::vector<AnnotatedHit> annotate_hits(
    const master::QueryResult& result, const align::KarlinAltschulParams& params,
    std::size_t query_length, std::uint64_t db_residues);

/// Render a full human-readable report for a finished search: per query the
/// ranked hits with score/bits/E-value, then the timing summary. Hits with
/// E-value above `max_evalue` are suppressed.
std::string render_search_report(const std::vector<seq::Sequence>& queries,
                                 const std::vector<seq::Sequence>& db,
                                 const master::SearchReport& report,
                                 const align::KarlinAltschulParams& params,
                                 double max_evalue = 10.0);

}  // namespace swdual::core
