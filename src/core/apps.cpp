#include "core/apps.h"

#include "sched/dual_approx.h"
#include "util/error.h"

namespace swdual::core {

const char* app_name(AppKind app) {
  switch (app) {
    case AppKind::kSwps3: return "SWPS3";
    case AppKind::kStriped: return "STRIPED";
    case AppKind::kSwipe: return "SWIPE";
    case AppKind::kCudasw: return "CUDASW++";
    case AppKind::kSwdual: return "SWDUAL";
    case AppKind::kSwdualRefined: return "SWDUAL-refined";
  }
  return "unknown";
}

namespace {

AppRunResult from_trace(const platform::ExecutionTrace& trace,
                        const Workload& workload,
                        const sched::HybridPlatform& platform) {
  AppRunResult result;
  result.virtual_seconds = trace.makespan;
  result.gcups = trace.makespan > 0
                     ? static_cast<double>(workload.total_cells()) /
                           trace.makespan / 1e9
                     : 0.0;
  result.idle_fraction = trace.idle_fraction(platform);
  return result;
}

/// Single-PE-class run: every task costs its class time; self-scheduled.
/// `threads_per_worker` divides each task's time (intra-task parallel scan).
AppRunResult homogeneous_run(const Workload& workload,
                             const platform::WorkerClass& worker_class,
                             std::size_t workers, sched::PeType type,
                             std::size_t threads_per_worker = 1) {
  SWDUAL_REQUIRE(workers >= 1, "need at least one worker");
  const double threads =
      static_cast<double>(std::max<std::size_t>(1, threads_per_worker));
  std::vector<sched::Task> tasks;
  tasks.reserve(workload.query_lengths.size());
  for (std::size_t q = 0; q < workload.query_lengths.size(); ++q) {
    const double seconds =
        worker_class.seconds_for(workload.cells(q)) / threads;
    tasks.push_back({q, seconds, seconds});
  }
  const sched::HybridPlatform platform =
      type == sched::PeType::kCpu
          ? sched::HybridPlatform{workers, 0}
          : sched::HybridPlatform{0, workers};
  return from_trace(
      platform::simulate_self_scheduling(tasks, platform), workload, platform);
}

}  // namespace

AppRunResult run_swdual_virtual(const Workload& workload,
                                const sched::HybridPlatform& platform,
                                const platform::PerfModel& model,
                                bool refined) {
  const std::vector<sched::Task> tasks =
      make_tasks(workload, model.cpu_worker(), model.gpu_worker());
  const sched::Schedule plan =
      refined ? sched::swdual_schedule_refined(tasks, platform)
              : sched::swdual_schedule(tasks, platform);
  return from_trace(platform::simulate_static(plan, tasks, platform),
                    workload, platform);
}

AppRunResult run_app_virtual(AppKind app, const Workload& workload,
                             std::size_t workers,
                             const platform::PerfModel& model,
                             std::size_t threads_per_worker) {
  switch (app) {
    case AppKind::kSwps3:
      return homogeneous_run(workload, model.swps3_cpu, workers,
                             sched::PeType::kCpu, threads_per_worker);
    case AppKind::kStriped:
      return homogeneous_run(workload, model.striped_cpu, workers,
                             sched::PeType::kCpu, threads_per_worker);
    case AppKind::kSwipe:
      return homogeneous_run(workload, model.swipe_cpu, workers,
                             sched::PeType::kCpu, threads_per_worker);
    case AppKind::kCudasw:
      return homogeneous_run(workload, model.cudasw_gpu, workers,
                             sched::PeType::kGpu);
    case AppKind::kSwdual:
      return run_swdual_virtual(workload, split_workers(workers), model,
                                false);
    case AppKind::kSwdualRefined:
      return run_swdual_virtual(workload, split_workers(workers), model,
                                true);
  }
  throw InvalidArgument("unknown application kind");
}

}  // namespace swdual::core
