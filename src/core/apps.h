// Virtual-time drivers for the compared applications (paper Table I).
//
// Each driver reproduces a baseline's *parallelization strategy* over a
// workload at its calibrated throughput class and returns the modeled
// execution time on the paper's hardware:
//
//   SWPS3 / STRIPED / SWIPE — CPU-only, T threads, dynamic self-scheduling
//     of query tasks across the threads (these tools parallelize a search
//     internally; at task granularity that behaves like self-scheduling
//     with near-zero dispatch cost).
//   CUDASW++ — GPU-only, T devices, self-scheduling of query tasks.
//   SWDUAL — hybrid: the dual-approximation schedule executed one-round
//     master–slave style (static replay).
//
// These drivers power the Table II / Fig. 7 reproduction; real-kernel
// correctness is covered by the master–slave runtime and its tests.
#pragma once

#include <string>

#include "core/workload.h"
#include "platform/des.h"
#include "platform/perf_model.h"

namespace swdual::core {

enum class AppKind {
  kSwps3,
  kStriped,
  kSwipe,
  kCudasw,
  kSwdual,
  kSwdualRefined,
};

const char* app_name(AppKind app);

struct AppRunResult {
  double virtual_seconds = 0.0;  ///< modeled wall-clock on paper hardware
  double gcups = 0.0;            ///< workload cells / virtual_seconds
  double idle_fraction = 0.0;    ///< PE idle share within the run
};

/// Run one application on `workers` processing elements in virtual time.
/// For CPU-only (GPU-only) apps, all workers are CPUs (GPUs); for SWDUAL the
/// workers are split per §V-A (split_workers) unless an explicit platform is
/// given via run_app_virtual_on.
///
/// `threads_per_worker` models intra-task threading inside each CPU worker
/// (the chunked parallel scan of align::ParallelSearchEngine): each task's
/// CPU time shrinks linearly with the thread count, matching how the CPU
/// baselines parallelize one search internally. It is ignored for the
/// GPU-only CUDASW++ class and for SWDUAL's GPU share.
AppRunResult run_app_virtual(AppKind app, const Workload& workload,
                             std::size_t workers,
                             const platform::PerfModel& model = {},
                             std::size_t threads_per_worker = 1);

/// SWDUAL on an explicit (m CPUs, k GPUs) platform — used for the Table IV
/// extension to 8 CPUs + 8 GPUs.
AppRunResult run_swdual_virtual(const Workload& workload,
                                const sched::HybridPlatform& platform,
                                const platform::PerfModel& model = {},
                                bool refined = false);

}  // namespace swdual::core
