// Closable blocking MPMC queue.
//
// This is the transport underlying the in-process master–slave runtime: the
// master pushes task messages, workers block on pop(); close() drains and
// then releases all waiters, signalling end-of-stream.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace swdual {

template <typename T>
class ConcurrentQueue {
 public:
  ConcurrentQueue() = default;
  ConcurrentQueue(const ConcurrentQueue&) = delete;
  ConcurrentQueue& operator=(const ConcurrentQueue&) = delete;

  /// Enqueue an item. Returns false if the queue is already closed — a
  /// dropped item, which a caller waiting on a matching result would never
  /// notice. [[nodiscard]] so every call site must decide (check, or
  /// explicitly void-cast where close() racing a push is benign).
  [[nodiscard]] bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained.
  /// Returns nullopt only at end-of-stream.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop; nullopt if currently empty (queue may still be open).
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Close the queue: no further pushes succeed; waiters drain then unblock.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace swdual
