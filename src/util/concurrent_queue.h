// Closable blocking MPMC queue.
//
// This is the transport underlying the in-process master–slave runtime: the
// master pushes task messages, workers block on pop(); close() drains and
// then releases all waiters, signalling end-of-stream.
//
// Locking discipline is statically checked: items_ and closed_ are
// SWDUAL_GUARDED_BY(mutex_), so any new accessor that forgets the lock is a
// compile error under Clang's -Wthread-safety (see util/thread_annotations.h).
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "util/mutex.h"

namespace swdual {

template <typename T>
class ConcurrentQueue {
 public:
  ConcurrentQueue() = default;
  ConcurrentQueue(const ConcurrentQueue&) = delete;
  ConcurrentQueue& operator=(const ConcurrentQueue&) = delete;

  /// Enqueue an item. Returns false if the queue is already closed — a
  /// dropped item, which a caller waiting on a matching result would never
  /// notice. [[nodiscard]] so every call site must decide (check, or
  /// explicitly void-cast where close() racing a push is benign).
  [[nodiscard]] bool push(T item) {
    {
      util::MutexLock lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained.
  /// Returns nullopt only at end-of-stream.
  std::optional<T> pop() {
    util::MutexLock lock(mutex_);
    while (items_.empty() && !closed_) cv_.wait(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop; nullopt if currently empty (queue may still be open).
  std::optional<T> try_pop() {
    util::MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Close the queue: no further pushes succeed; waiters drain then unblock.
  void close() {
    {
      util::MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    util::MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    util::MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<T> items_ SWDUAL_GUARDED_BY(mutex_);
  bool closed_ SWDUAL_GUARDED_BY(mutex_) = false;
};

}  // namespace swdual
