// Deterministic, fast pseudo-random number generation.
//
// xoshiro256** seeded via splitmix64 — reproducible across platforms, unlike
// std::mt19937 + std::uniform_int_distribution whose outputs are
// implementation-defined. All synthetic databases and property tests use this
// so results are bit-identical everywhere.
#pragma once

#include <cmath>
#include <cstdint>

namespace swdual {

inline constexpr double kPi = 3.14159265358979323846;

/// splitmix64: used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedbead5eedbeadULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Exponentially distributed double with the given mean.
  double exponential(double mean) {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; no caching).
  double normal() {
    double u1;
    do { u1 = uniform(); } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
  }

  /// Log-normally distributed double (parameters of the underlying normal).
  double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace swdual
