// Small string utilities (header-only).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace swdual {

/// Split on a delimiter character; empty fields are preserved.
inline std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

/// Strip leading/trailing ASCII whitespace.
inline std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
           c == '\f';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

inline bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

inline bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

/// Upper-case ASCII in place (residue normalization for FASTA input).
inline void to_upper_ascii(std::string& s) {
  for (char& c : s) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
}

}  // namespace swdual
