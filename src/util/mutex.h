// Annotated mutex wrappers: the analyzable locking vocabulary of the tree.
//
// std::mutex + std::lock_guard are invisible to Clang's thread-safety
// analysis (the lock/unlock calls happen inside unannotated standard-library
// templates), so every concurrent layer uses these thin wrappers instead:
//
//   util::Mutex        std::mutex with SWDUAL_ACQUIRE/RELEASE annotations
//   util::SharedMutex  std::shared_mutex (exclusive writers, shared readers)
//   util::MutexLock    annotated RAII scope, replaces std::lock_guard
//   util::ReaderMutexLock / util::WriterMutexLock  shared-mutex scopes
//   util::CondVar      std::condition_variable over util::Mutex
//
// The wrappers add no state and no behavior beyond the standard primitives
// (tests/util/test_mutex.cpp pins that, including under the tsan preset);
// what they add is *visibility*: SWDUAL_GUARDED_BY members become statically
// checkable at every call site. Condition waits are written as explicit
// loops — `while (!ready_) cv_.wait(mutex_);` — because a predicate lambda
// is analyzed as a separate function that cannot see the held capability.
//
// tools/swdual_lint.py bans raw std::mutex members and bare .lock() /
// .unlock() calls outside src/util/, so this header is the single point
// where locking idiom can drift.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace swdual::util {

/// Annotated exclusive mutex. Prefer util::MutexLock to manual lock/unlock.
class SWDUAL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SWDUAL_ACQUIRE() { mu_.lock(); }
  void unlock() SWDUAL_RELEASE() { mu_.unlock(); }
  bool try_lock() SWDUAL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped standard mutex — for util::CondVar only, which must hand
  /// an adopted std::unique_lock to std::condition_variable::wait.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Annotated shared (readers–writer) mutex: exclusive lock() for writers,
/// shared lock_shared() for readers of SWDUAL_GUARDED_BY state.
class SWDUAL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SWDUAL_ACQUIRE() { mu_.lock(); }
  void unlock() SWDUAL_RELEASE() { mu_.unlock(); }
  bool try_lock() SWDUAL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() SWDUAL_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() SWDUAL_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() SWDUAL_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive scope over util::Mutex — the analyzable std::lock_guard.
class SWDUAL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SWDUAL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SWDUAL_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive scope over util::SharedMutex (writer side).
class SWDUAL_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SWDUAL_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() SWDUAL_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared scope over util::SharedMutex (reader side).
class SWDUAL_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SWDUAL_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() SWDUAL_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over util::Mutex. wait() atomically releases the held
/// mutex while blocked and reacquires it before returning — the capability
/// is held again on return, which is exactly how the analysis models the
/// REQUIRES contract. Use an explicit predicate loop at the call site:
///
///   util::MutexLock lock(mutex_);
///   while (items_.empty() && !closed_) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Block until notified. The caller must hold `mu` (it is released for
  /// the duration of the wait and reacquired before returning).
  void wait(Mutex& mu) SWDUAL_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.native(), std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // ownership stays with the caller's scope
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace swdual::util
