// Tiny declarative command-line parser for the example/bench binaries.
//
//   CliParser cli("tool", "does things");
//   cli.add_flag("verbose", "enable debug logging");
//   cli.add_option("db", "path to database", "uniprot.swdb");
//   cli.parse(argc, argv);           // throws InvalidArgument on bad input
//   if (cli.flag("verbose")) ...
//   auto path = cli.option("db");
//
// Supports --name value, --name=value, and bare --flag. Unknown options are
// an error; `--help` prints usage and sets help_requested().
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace swdual {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Register a boolean flag (default false).
  void add_flag(const std::string& name, const std::string& help);

  /// Register a string option with a default value.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parse argv; throws InvalidArgument for unknown/malformed arguments.
  void parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  const std::string& option(const std::string& name) const;

  /// Parse the option as a long. Throws InvalidArgument for non-numeric
  /// input and for values outside [LONG_MIN, LONG_MAX] (strtol's ERANGE),
  /// which would otherwise silently clamp.
  long option_int(const std::string& name) const;

  /// Parse the option as a double. Throws InvalidArgument for non-numeric
  /// input and for magnitudes that overflow to ±HUGE_VAL.
  double option_double(const std::string& name) const;

  /// Parse a strictly positive double (e-value cutoffs, scale factors,
  /// ...). Rejects zero, negatives, and NaN; "inf" is accepted (an e-value
  /// cutoff of +inf means "no cutoff").
  double option_positive_double(const std::string& name) const;

  /// Parse a count-like option (threads, workers, top-k, ...): a
  /// non-negative integer that fits std::size_t. Rejects negatives ("-1"
  /// never wraps to 18446744073709551615) and out-of-range magnitudes.
  std::size_t option_uint(const std::string& name) const;

  /// Positional arguments left after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  bool help_requested() const { return help_requested_; }
  std::string usage() const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool flag_set = false;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace swdual
