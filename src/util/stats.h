// Streaming and batch descriptive statistics used by benchmarks and the
// platform simulator (idle-time accounting, run-to-run variance).
#pragma once

#include <cstddef>
#include <vector>

namespace swdual {

/// Welford streaming accumulator: mean/variance without storing samples.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary over a sample vector, including order statistics.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Compute a Summary (copies and sorts the input).
Summary summarize(std::vector<double> samples);

/// Linear-interpolated percentile of a *sorted* sample vector, q in [0,1].
double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace swdual
