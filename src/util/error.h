// Error handling primitives shared by every swdual library.
//
// The project uses exceptions for unrecoverable API misuse and I/O failure
// (per C++ Core Guidelines E.2), with SWDUAL_CHECK/SWDUAL_REQUIRE macros to
// attach file:line context to the message. Both are always-on; the
// compile-out debug tier SWDUAL_DCHECK lives in check/contracts.h.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace swdual {

/// Base class for all errors thrown by swdual libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input file or stream is malformed or unreadable.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when a caller violates a documented API precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace swdual

/// Validate a runtime invariant; throws swdual::Error with context on failure.
#define SWDUAL_CHECK(expr, msg)                                               \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::swdual::detail::throw_check_failure("check", #expr, __FILE__,         \
                                            __LINE__, (msg));                 \
    }                                                                         \
  } while (0)

/// Validate an API precondition; throws swdual::InvalidArgument on failure.
#define SWDUAL_REQUIRE(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) {                                                            \
      throw ::swdual::InvalidArgument(std::string("precondition (") + #expr + \
                                      ") violated: " + (msg));                \
    }                                                                         \
  } while (0)
