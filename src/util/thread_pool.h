// Fixed-size thread pool with a futures-based submit API.
//
// Used by the real (non-simulated) execution engine and by the virtual GPU
// to run alignment batches. Shutdown is cooperative: the destructor closes
// the queue and joins all workers (RAII, no detached threads).
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/concurrent_queue.h"

namespace swdual {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedule a callable; returns a future for its result. Arguments are
  /// captured by value (decay-copied); move-only callables and arguments are
  /// supported.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>> {
    using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         bound = std::make_tuple(std::forward<Args>(args)...)]() mutable -> R {
          return std::apply(std::move(fn), std::move(bound));
        });
    std::future<R> result = task->get_future();
    const bool accepted = queue_.push([task] { (*task)(); });
    if (!accepted) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    return result;
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  // The pool holds no lock of its own: all synchronization lives inside the
  // annotated ConcurrentQueue (util/concurrent_queue.h). workers_ is written
  // only in the constructor and read-only afterwards, so it needs no guard.
  ConcurrentQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

/// Run fn(i) for i in [0, count) across the pool and wait for completion.
/// Items are batched into ranges internally so tiny per-item closures do not
/// pay one queue round-trip each.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Chunk-grain overload: fn(begin, end) over consecutive ranges of at most
/// `grain` items (grain 0 is treated as 1). One queue entry per range.
void parallel_for(ThreadPool& pool, std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace swdual
