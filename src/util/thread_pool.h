// Fixed-size thread pool with a futures-based submit API.
//
// Used by the real (non-simulated) execution engine and by the virtual GPU
// to run alignment batches. Shutdown is cooperative: the destructor closes
// the queue and joins all workers (RAII, no detached threads).
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/concurrent_queue.h"

namespace swdual {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedule a callable; returns a future for its result.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::bind(std::forward<F>(f), std::forward<Args>(args)...));
    std::future<R> result = task->get_future();
    const bool accepted = queue_.push([task] { (*task)(); });
    if (!accepted) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    return result;
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  ConcurrentQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

/// Run fn(i) for i in [0, count) across the pool and wait for completion.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace swdual
