// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace swdual {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace swdual
