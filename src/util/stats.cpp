#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace swdual {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile_sorted(const std::vector<double>& sorted, double q) {
  SWDUAL_REQUIRE(!sorted.empty(), "percentile of empty sample");
  SWDUAL_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = samples.front();
  s.max = samples.back();
  s.sum = rs.sum();
  s.p25 = percentile_sorted(samples, 0.25);
  s.median = percentile_sorted(samples, 0.50);
  s.p75 = percentile_sorted(samples, 0.75);
  s.p95 = percentile_sorted(samples, 0.95);
  return s;
}

}  // namespace swdual
