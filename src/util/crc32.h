// CRC-32 (IEEE 802.3 polynomial, reflected) — header-only.
//
// Used for SWDB record integrity and wire-message framing. Table-driven,
// one byte per step; the table is built at first use.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace swdual {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// Incremental CRC-32: feed chunks, read value() at any point.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> bytes) {
    const auto& table = detail::crc32_table();
    for (std::uint8_t byte : bytes) {
      state_ = table[(state_ ^ byte) & 0xffu] ^ (state_ >> 8);
    }
  }
  void update(const void* data, std::size_t size) {
    update({static_cast<const std::uint8_t*>(data), size});
  }
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot CRC-32 of a buffer.
inline std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  Crc32 crc;
  crc.update(bytes);
  return crc.value();
}

}  // namespace swdual
