#include "util/cli.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace swdual {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  Option opt;
  opt.help = help;
  opt.is_flag = true;
  options_[name] = std::move(opt);
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  Option opt;
  opt.help = help;
  opt.value = default_value;
  options_[name] = std::move(opt);
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    SWDUAL_REQUIRE(it != options_.end(), "unknown option --" + name);
    Option& opt = it->second;
    if (opt.is_flag) {
      SWDUAL_REQUIRE(!has_value, "flag --" + name + " takes no value");
      opt.flag_set = true;
    } else {
      if (!has_value) {
        SWDUAL_REQUIRE(i + 1 < argc, "option --" + name + " needs a value");
        value = argv[++i];
      }
      opt.value = std::move(value);
    }
  }
}

bool CliParser::flag(const std::string& name) const {
  auto it = options_.find(name);
  SWDUAL_REQUIRE(it != options_.end() && it->second.is_flag,
                 "flag not registered: " + name);
  return it->second.flag_set;
}

const std::string& CliParser::option(const std::string& name) const {
  auto it = options_.find(name);
  SWDUAL_REQUIRE(it != options_.end() && !it->second.is_flag,
                 "option not registered: " + name);
  return it->second.value;
}

long CliParser::option_int(const std::string& name) const {
  const std::string& text = option(name);
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  SWDUAL_REQUIRE(end != nullptr && *end == '\0' && !text.empty(),
                 "option --" + name + " is not an integer: " + text);
  // strtol clamps to LONG_MIN/LONG_MAX on overflow and only reports it via
  // ERANGE; accepting the clamped value would silently turn
  // "--threads 99999999999999999999" into LONG_MAX.
  SWDUAL_REQUIRE(errno != ERANGE,
                 "option --" + name + " is out of range: " + text);
  return value;
}

double CliParser::option_double(const std::string& name) const {
  const std::string& text = option(name);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  SWDUAL_REQUIRE(end != nullptr && *end == '\0' && !text.empty(),
                 "option --" + name + " is not a number: " + text);
  // Overflow clamps to ±HUGE_VAL with ERANGE; underflow (a denormal-or-zero
  // result, also ERANGE) is representable and accepted.
  SWDUAL_REQUIRE(errno != ERANGE || std::abs(value) < HUGE_VAL,
                 "option --" + name + " is out of range: " + text);
  return value;
}

double CliParser::option_positive_double(const std::string& name) const {
  const double value = option_double(name);
  // NaN fails the comparison too, so "--evalue nan" is rejected here.
  SWDUAL_REQUIRE(value > 0,
                 "option --" + name + " must be positive: " + option(name));
  return value;
}

std::size_t CliParser::option_uint(const std::string& name) const {
  const std::string& text = option(name);
  // strtoull accepts "-5" and wraps it to a huge positive value; a count
  // must reject any sign character up front.
  SWDUAL_REQUIRE(!text.empty() && text.find_first_of("+-") == std::string::npos,
                 "option --" + name + " must be a non-negative integer: " +
                     text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  SWDUAL_REQUIRE(end != nullptr && *end == '\0',
                 "option --" + name + " is not an integer: " + text);
  SWDUAL_REQUIRE(errno != ERANGE &&
                     value <= std::numeric_limits<std::size_t>::max(),
                 "option --" + name + " is out of range: " + text);
  return static_cast<std::size_t>(value);
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) os << " <value (default: " << opt.value << ")>";
    os << "\n      " << opt.help << "\n";
  }
  return os.str();
}

}  // namespace swdual
