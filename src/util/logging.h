// Minimal leveled logger.
//
// Thread-safe: each log statement formats into a local buffer and emits it
// with a single locked write, so lines from worker threads never interleave.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace swdual {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log configuration. Defaults to kInfo on stderr.
class Logger {
 public:
  /// Process-wide logger instance.
  static Logger& instance();

  /// Messages below `level` are discarded.
  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Emit one formatted line (appends '\n'). Thread-safe.
  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kInfo;
  std::mutex mutex_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace swdual

#define SWDUAL_LOG(severity)                                           \
  if (static_cast<int>(::swdual::Logger::instance().level()) <=        \
      static_cast<int>(::swdual::LogLevel::severity))                  \
  ::swdual::detail::LogLine(::swdual::LogLevel::severity)

#define LOG_DEBUG SWDUAL_LOG(kDebug)
#define LOG_INFO SWDUAL_LOG(kInfo)
#define LOG_WARN SWDUAL_LOG(kWarn)
#define LOG_ERROR SWDUAL_LOG(kError)
