// Minimal leveled logger.
//
// Thread-safe: each log statement formats into a local buffer and emits it
// with a single locked write, so lines from worker threads never interleave.
// The level is an atomic (set_level() may race log statements from worker
// threads — a relaxed read is all the filter needs); the stderr stream is
// the state mutex_ guards.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "util/mutex.h"

namespace swdual {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log configuration. Defaults to kInfo on stderr.
class Logger {
 public:
  /// Process-wide logger instance.
  static Logger& instance();

  /// Messages below `level` are discarded. Safe to call concurrently with
  /// log statements from any thread.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Emit one formatted line (appends '\n'). Thread-safe.
  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kInfo};
  util::Mutex mutex_;  ///< serializes the stderr write (one line at a time)
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace swdual

#define SWDUAL_LOG(severity)                                           \
  if (static_cast<int>(::swdual::Logger::instance().level()) <=        \
      static_cast<int>(::swdual::LogLevel::severity))                  \
  ::swdual::detail::LogLine(::swdual::LogLevel::severity)

#define LOG_DEBUG SWDUAL_LOG(kDebug)
#define LOG_INFO SWDUAL_LOG(kInfo)
#define LOG_WARN SWDUAL_LOG(kWarn)
#define LOG_ERROR SWDUAL_LOG(kError)
