// Cache-line-aligned storage for SIMD-streamed buffers.
//
// std::vector's default allocator only guarantees alignof(std::max_align_t)
// (16 bytes); a 256/512-bit vector load from such a buffer straddles a
// cache line every other access, which measurably slows the wide striped
// kernels. AlignedVector<T> is a std::vector whose allocations start on a
// 64-byte boundary, so every load/store at a vector-width-multiple offset
// is fully inside one line.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace swdual {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal C++17 aligned allocator: every allocation is 64-byte aligned.
template <class T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <class U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <class U>
  bool operator==(const CacheAlignedAllocator<U>&) const { return true; }
  template <class U>
  bool operator!=(const CacheAlignedAllocator<U>&) const { return false; }
};

template <class T>
using AlignedVector = std::vector<T, CacheAlignedAllocator<T>>;

}  // namespace swdual
