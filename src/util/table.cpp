#include "util/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace swdual {

void TextTable::set_header(std::vector<std::string> header) {
  SWDUAL_REQUIRE(!header.empty(), "table header must not be empty");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  SWDUAL_REQUIRE(row.size() == header_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 < header_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << csv();
  if (!out) throw IoError("write failed: " + path);
}

}  // namespace swdual
