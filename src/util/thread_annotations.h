// Clang thread-safety annotation macros: the compile-time lock-discipline
// net over every concurrent layer (util/concurrent_queue, the thread pool,
// obs trace/metrics, serve service/cache, align profile_cache and
// sharded_search).
//
// Under Clang these expand to the [[clang::...]] capability attributes that
// -Wthread-safety / -Wthread-safety-beta analyze: a read of a
// SWDUAL_GUARDED_BY member without its mutex held, a call to a
// SWDUAL_REQUIRES function without the capability, or an acquisition that
// contradicts a declared SWDUAL_ACQUIRED_BEFORE/AFTER order is a *compile
// error* in the dev/clang presets and the clang-threadsafety CI job — lock
// misuse is rejected before it can become a tsan interleaving. Under every
// other compiler the macros expand to nothing: zero code, zero overhead,
// identical behavior (tests/check/compile_fail asserts the net is live
// under Clang; tests/util/test_mutex.cpp asserts the wrappers behave like
// the raw primitives everywhere).
//
// Use these through util/mutex.h (util::Mutex, util::MutexLock, ...) rather
// than on raw std::mutex members: std::lock_guard call sites are opaque to
// the analysis, the annotated wrappers are not. tools/swdual_lint.py
// enforces that convention across src/. See DESIGN.md "Static concurrency
// analysis" for the capability map and how to annotate new shared state.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SWDUAL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SWDUAL_THREAD_ANNOTATION
#define SWDUAL_THREAD_ANNOTATION(x)  // no-op off Clang: annotations erase
#endif

/// A type that models a capability (a lock): util::Mutex and
/// util::SharedMutex. The string names the capability kind in diagnostics.
#define SWDUAL_CAPABILITY(x) SWDUAL_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires a capability at construction and releases it
/// at destruction (util::MutexLock and friends).
#define SWDUAL_SCOPED_CAPABILITY SWDUAL_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define SWDUAL_GUARDED_BY(x) SWDUAL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define SWDUAL_PT_GUARDED_BY(x) SWDUAL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declared lock-acquisition order (checked under -Wthread-safety-beta):
/// acquiring these mutexes in an order that contradicts the declaration is
/// diagnosed — the static form of deadlock avoidance.
#define SWDUAL_ACQUIRED_BEFORE(...) \
  SWDUAL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SWDUAL_ACQUIRED_AFTER(...) \
  SWDUAL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the capability (exclusive
/// / shared); it does not acquire or release it.
#define SWDUAL_REQUIRES(...) \
  SWDUAL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SWDUAL_REQUIRES_SHARED(...) \
  SWDUAL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the capability (exclusive or shared).
#define SWDUAL_ACQUIRE(...) \
  SWDUAL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SWDUAL_ACQUIRE_SHARED(...) \
  SWDUAL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SWDUAL_RELEASE(...) \
  SWDUAL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SWDUAL_RELEASE_SHARED(...) \
  SWDUAL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SWDUAL_RELEASE_GENERIC(...) \
  SWDUAL_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define SWDUAL_TRY_ACQUIRE(...) \
  SWDUAL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SWDUAL_TRY_ACQUIRE_SHARED(...) \
  SWDUAL_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called while holding the capability (it
/// acquires it itself — the self-locking public API convention).
#define SWDUAL_EXCLUDES(...) \
  SWDUAL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability (lets annotated
/// accessors participate in capability expressions, e.g. lock-order
/// declarations across objects).
#define SWDUAL_RETURN_CAPABILITY(x) SWDUAL_THREAD_ANNOTATION(lock_returned(x))

/// Assert (at runtime) that the capability is held; teaches the analysis
/// about externally-guaranteed locking it cannot see.
#define SWDUAL_ASSERT_CAPABILITY(x) \
  SWDUAL_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disable the analysis for one function. Every use must
/// carry a comment explaining why the discipline cannot be expressed.
#define SWDUAL_NO_THREAD_SAFETY_ANALYSIS \
  SWDUAL_THREAD_ANNOTATION(no_thread_safety_analysis)
