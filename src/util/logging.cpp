#include "util/logging.h"

#include <cstdio>

namespace swdual {

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(this->level())) return;
  util::MutexLock lock(mutex_);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace swdual
