#include "util/thread_pool.h"

#include <algorithm>

namespace swdual {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  while (auto job = queue_.pop()) {
    (*job)();
  }
}

void parallel_for(ThreadPool& pool, std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t step = std::max<std::size_t>(1, grain);
  std::vector<std::future<void>> futures;
  futures.reserve((count + step - 1) / step);
  for (std::size_t begin = 0; begin < count; begin += step) {
    const std::size_t end = std::min(begin + step, count);
    futures.push_back(pool.submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  // Aim for a few ranges per worker: enough slack for load balancing without
  // per-item queue overhead.
  const std::size_t grain =
      std::max<std::size_t>(1, count / (pool.size() * 4));
  parallel_for(pool, count, grain,
               [&fn](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) fn(i);
               });
}

}  // namespace swdual
