#include "util/thread_pool.h"

#include <algorithm>

namespace swdual {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  while (auto job = queue_.pop()) {
    (*job)();
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit(fn, i));
  }
  for (auto& f : futures) f.get();
}

}  // namespace swdual
