// Text-table and CSV rendering for benchmark harness output.
//
// Every bench binary prints the paper's table rows through TextTable so the
// reproduced tables are visually comparable to the originals, and writes a
// machine-readable CSV next to it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace swdual {

class TextTable {
 public:
  /// Set the header row (defines column count).
  void set_header(std::vector<std::string> header);

  /// Append a row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles/ints with the given precision.
  static std::string fmt(double value, int precision = 2);

  /// Render with aligned columns and a separator under the header.
  std::string render() const;

  /// Render as CSV (comma-separated, minimal quoting).
  std::string csv() const;

  /// Write csv() to a file; throws IoError on failure.
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace swdual
