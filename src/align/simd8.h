// Portable 16-lane 8-bit unsigned SIMD vector (the byte-precision tier) —
// the narrowest member of the width-generic vector family.
//
// Farrar's implementation (and SWIPE, and CUDASW++) runs most alignments in
// 8-bit *unsigned* arithmetic with a bias: substitution scores are stored as
// score+bias >= 0, and saturating-at-zero subtraction provides the local
// alignment's max(…, 0) for free. Pairs whose score approaches the 8-bit
// ceiling are redone at 16 bits. SSE2 on x86, plain loops elsewhere.
//
// Vector interface contract (shared by V8, VecU8Scalar<N>, V8x32, V8x64 —
// the striped byte kernel is templated over any type providing it):
//   static constexpr std::size_t kLanes;   // lane count
//   using value_type = std::uint8_t;
//   zero() / splat(x) / load(p) / store(p)
//   adds(a, b) / subs(a, b)                // saturating at 255 / 0
//   max(a, b) / min(a, b) / any_gt(a, b)   // lane-wise max/min, strict any >
//   ge(a, b)                               // all-ones where a >= b, else 0
//   bit_and(a, b) / bit_or(a, b)           // lane-wise bitwise combine
//   blend(mask, a, b)                      // a where mask all-ones, else b
//   shift_lanes_up()                       // lane i <- lane i-1, lane 0 <- 0
//   lane(i) / hmax()                       // extraction (outside hot loops)
// Optional (detected with a requires-expression by the banded screen):
//   lut32(table, idx)                      // per-lane 32-entry byte lookup
#pragma once

#include <algorithm>
#include <cstdint>

#include "align/simd_scalar.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define SWDUAL_SIMD8_SSE2 1
#endif

namespace swdual::align {

inline constexpr std::size_t kLanes8 = 16;

#if defined(SWDUAL_SIMD8_SSE2)
struct V8 {
  static constexpr std::size_t kLanes = 16;
  using value_type = std::uint8_t;

  __m128i v;

  static V8 zero() { return {_mm_setzero_si128()}; }
  static V8 splat(std::uint8_t x) {
    return {_mm_set1_epi8(static_cast<char>(x))};
  }
  static V8 load(const std::uint8_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(std::uint8_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  /// Saturating unsigned addition (clamps at 255).
  friend V8 adds(V8 a, V8 b) { return {_mm_adds_epu8(a.v, b.v)}; }
  /// Saturating unsigned subtraction (clamps at 0 — the free max(…,0)).
  friend V8 subs(V8 a, V8 b) { return {_mm_subs_epu8(a.v, b.v)}; }
  friend V8 max(V8 a, V8 b) { return {_mm_max_epu8(a.v, b.v)}; }
  friend V8 min(V8 a, V8 b) { return {_mm_min_epu8(a.v, b.v)}; }
  /// Any lane of a strictly greater than the matching lane of b.
  friend bool any_gt(V8 a, V8 b) {
    // a > b  <=>  subs(a, b) != 0 in that lane.
    const __m128i diff = _mm_subs_epu8(a.v, b.v);
    return _mm_movemask_epi8(_mm_cmpeq_epi8(diff, _mm_setzero_si128())) !=
           0xFFFF;
  }
  /// All-ones mask where a >= b lane-wise (unsigned), 0 elsewhere.
  friend V8 ge(V8 a, V8 b) {
    // a >= b  <=>  subs(b, a) == 0 in that lane.
    return {_mm_cmpeq_epi8(_mm_subs_epu8(b.v, a.v), _mm_setzero_si128())};
  }
  friend V8 bit_and(V8 a, V8 b) { return {_mm_and_si128(a.v, b.v)}; }
  friend V8 bit_or(V8 a, V8 b) { return {_mm_or_si128(a.v, b.v)}; }
  /// Lane-wise select: a where mask is all-ones, b where mask is 0.
  friend V8 blend(V8 mask, V8 a, V8 b) {
    return {_mm_or_si128(_mm_and_si128(mask.v, a.v),
                         _mm_andnot_si128(mask.v, b.v))};
  }
  /// Shift lanes towards higher indices by one byte; lane 0 becomes 0.
  V8 shift_lanes_up() const { return {_mm_slli_si128(v, 1)}; }
  std::uint8_t lane(std::size_t i) const {
    alignas(16) std::uint8_t tmp[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    return tmp[i];
  }
  std::uint8_t hmax() const {
    alignas(16) std::uint8_t tmp[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    return *std::max_element(tmp, tmp + 16);
  }
};
#else
using V8 = VecU8Scalar<16>;
#endif

}  // namespace swdual::align
