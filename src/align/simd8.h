// Portable 16-lane 8-bit unsigned SIMD vector (the byte-precision tier).
//
// Farrar's implementation (and SWIPE, and CUDASW++) runs most alignments in
// 8-bit *unsigned* arithmetic with a bias: substitution scores are stored as
// score+bias >= 0, and saturating-at-zero subtraction provides the local
// alignment's max(…, 0) for free. Pairs whose score approaches the 8-bit
// ceiling are redone at 16 bits. SSE2 on x86, plain loops elsewhere.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#define SWDUAL_SIMD8_SSE2 1
#endif

namespace swdual::align {

inline constexpr std::size_t kLanes8 = 16;

struct V8 {
#if defined(SWDUAL_SIMD8_SSE2)
  __m128i v;

  static V8 zero() { return {_mm_setzero_si128()}; }
  static V8 splat(std::uint8_t x) {
    return {_mm_set1_epi8(static_cast<char>(x))};
  }
  static V8 load(const std::uint8_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(std::uint8_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  /// Saturating unsigned addition (clamps at 255).
  friend V8 adds(V8 a, V8 b) { return {_mm_adds_epu8(a.v, b.v)}; }
  /// Saturating unsigned subtraction (clamps at 0 — the free max(…,0)).
  friend V8 subs(V8 a, V8 b) { return {_mm_subs_epu8(a.v, b.v)}; }
  friend V8 max(V8 a, V8 b) { return {_mm_max_epu8(a.v, b.v)}; }
  /// Any lane of a strictly greater than the matching lane of b.
  friend bool any_gt(V8 a, V8 b) {
    // a > b  <=>  subs(a, b) != 0 in that lane.
    const __m128i diff = _mm_subs_epu8(a.v, b.v);
    return _mm_movemask_epi8(_mm_cmpeq_epi8(diff, _mm_setzero_si128())) !=
           0xFFFF;
  }
  /// Shift lanes towards higher indices by one byte; lane 0 becomes 0.
  V8 shift_lanes_up() const { return {_mm_slli_si128(v, 1)}; }
  std::uint8_t lane(std::size_t i) const {
    alignas(16) std::uint8_t tmp[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    return tmp[i];
  }
  std::uint8_t hmax() const {
    alignas(16) std::uint8_t tmp[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    return *std::max_element(tmp, tmp + 16);
  }
#else
  std::array<std::uint8_t, 16> v;

  static std::uint8_t sat_add(int a, int b) {
    return static_cast<std::uint8_t>(std::min(255, a + b));
  }
  static std::uint8_t sat_sub(int a, int b) {
    return static_cast<std::uint8_t>(std::max(0, a - b));
  }
  static V8 zero() { return splat(0); }
  static V8 splat(std::uint8_t x) {
    V8 out;
    out.v.fill(x);
    return out;
  }
  static V8 load(const std::uint8_t* p) {
    V8 out;
    std::copy(p, p + 16, out.v.begin());
    return out;
  }
  void store(std::uint8_t* p) const { std::copy(v.begin(), v.end(), p); }
  friend V8 adds(V8 a, V8 b) {
    V8 out;
    for (int i = 0; i < 16; ++i) out.v[i] = sat_add(a.v[i], b.v[i]);
    return out;
  }
  friend V8 subs(V8 a, V8 b) {
    V8 out;
    for (int i = 0; i < 16; ++i) out.v[i] = sat_sub(a.v[i], b.v[i]);
    return out;
  }
  friend V8 max(V8 a, V8 b) {
    V8 out;
    for (int i = 0; i < 16; ++i) out.v[i] = std::max(a.v[i], b.v[i]);
    return out;
  }
  friend bool any_gt(V8 a, V8 b) {
    for (int i = 0; i < 16; ++i) {
      if (a.v[i] > b.v[i]) return true;
    }
    return false;
  }
  V8 shift_lanes_up() const {
    V8 out;
    out.v[0] = 0;
    for (int i = 1; i < 16; ++i) out.v[i] = v[i - 1];
    return out;
  }
  std::uint8_t lane(std::size_t i) const { return v[i]; }
  std::uint8_t hmax() const { return *std::max_element(v.begin(), v.end()); }
#endif
};

}  // namespace swdual::align
