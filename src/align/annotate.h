// Annotated search results: Karlin–Altschul significance + CIGAR traceback.
//
// A raw Smith–Waterman score is not a result — production services in the
// BLAST / SWAPHI lineage report, for every hit, how surprising the score is
// (e-value, bit score) and the alignment itself. This module turns the
// library islands in statistics.h / traceback.h / locate.h into a pipeline
// stage: annotate_hits() decorates an already-merged top-k hit list in
// place, and the engines / serve plumb an AnnotateConfig through to it.
//
// Placement is the key invariant: annotation runs ONCE, post-merge, on the
// global top-k winners — never per chunk or per shard. The hit list an
// engine produces is already bit-identical across backends, thread counts,
// chunking, and shard topologies, and annotation is a pure per-hit function
// of (query, record, scheme, params, db_residues), so annotated results
// inherit that topology independence by construction. The cost is k
// tracebacks of O(m·n̂) on winners, negligible next to the full DB scan.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "align/search.h"
#include "align/statistics.h"
#include "seq/alphabet.h"
#include "util/mutex.h"

namespace swdual::obs {
class MetricsRegistry;
class Tracer;
}  // namespace swdual::obs

namespace swdual::align {

/// How much annotation a search should attach to its hits.
enum class AnnotateMode {
  kOff,         ///< plain hits, annotation pointer stays null
  kStats,       ///< e-value + bit score per hit
  kStatsCigar,  ///< stats plus a validated CIGAR traceback per hit
};

const char* annotate_mode_name(AnnotateMode mode);
bool parse_annotate_mode(const std::string& name, AnnotateMode& out);

/// Annotation policy for a search.
struct AnnotateConfig {
  AnnotateMode mode = AnnotateMode::kOff;

  /// Hits with evalue > cutoff are dropped AFTER ranking (the kept prefix
  /// of the top-k is unchanged, so annotated results stay a prefix-filter
  /// of the unannotated ranking). The default +infinity keeps every hit,
  /// making annotated and unannotated hit lists identical in scores/order.
  double evalue_cutoff = std::numeric_limits<double>::infinity();

  bool enabled() const { return mode != AnnotateMode::kOff; }

  /// Throws InvalidArgument on a non-positive or NaN cutoff (+inf is the
  /// "no cutoff" value and is valid).
  void validate() const;
};

/// Per-hit annotation payload, shared immutably via SearchHit::annotation.
struct HitAnnotation {
  double evalue = 0.0;
  double bits = 0.0;

  /// SAM-style CIGAR (kStatsCigar only; empty under kStats). The aligned
  /// region's 1-based inclusive coordinates accompany it; all four are 0
  /// for an empty (score-0) alignment.
  std::string cigar;
  std::size_t query_begin = 0, query_end = 0;
  std::size_t db_begin = 0, db_end = 0;
};

/// Decorate a merged, ranked hit list in place: compute evalue/bits for
/// every hit with `params` and search space m = |query|, n = db_residues,
/// drop hits beyond config.evalue_cutoff, then (kStatsCigar) traceback each
/// survivor against its record — `record(db_index)` must return the residue
/// span of that database record. The traceback score is checked against the
/// hit's search score (they are the same Gotoh recurrence; a mismatch is a
/// kernel bug, reported as swdual::Error). Emits annotate_stats /
/// annotate_traceback spans on `trace_track` and annotate_hits_total /
/// annotate_cutoff_dropped metrics when sinks are provided. No-op when
/// config.enabled() is false.
void annotate_hits(
    std::vector<SearchHit>& hits, std::span<const std::uint8_t> query,
    const std::function<std::span<const std::uint8_t>(std::size_t)>& record,
    const ScoringScheme& scheme, const AnnotateConfig& config,
    const KarlinAltschulParams& params, std::uint64_t db_residues,
    obs::Tracer* tracer = nullptr, obs::MetricsRegistry* metrics = nullptr,
    std::size_t trace_track = 0);

/// DbView convenience overload: record i resolves to db[i].
void annotate_hits(std::vector<SearchHit>& hits,
                   std::span<const std::uint8_t> query, const DbView& db,
                   const ScoringScheme& scheme, const AnnotateConfig& config,
                   const KarlinAltschulParams& params,
                   std::uint64_t db_residues, obs::Tracer* tracer = nullptr,
                   obs::MetricsRegistry* metrics = nullptr,
                   std::size_t trace_track = 0);

/// Total residues in a database view (the Karlin–Altschul search space `n`).
std::uint64_t db_residue_count(const DbView& db);

/// Thread-safe cache of calibrated Karlin–Altschul parameters, keyed by
/// (scoring scheme, alphabet, database id) — the db id keeps two databases'
/// stats separate should calibration ever become db-dependent, and mirrors
/// how serve keys its ResultCache. Calibration (a few hundred Gotoh
/// alignments) runs OUTSIDE the lock on a miss; a racing duplicate resolves
/// in favour of the first writer, so every caller sees one stable object.
/// Deterministic: fixed seed, background frequencies chosen by alphabet
/// (Robinson–Robinson for protein, uniform for DNA/RNA).
class StatsCache {
 public:
  explicit StatsCache(std::size_t capacity = 16);

  StatsCache(const StatsCache&) = delete;
  StatsCache& operator=(const StatsCache&) = delete;

  std::shared_ptr<const KarlinAltschulParams> acquire(
      const ScoringScheme& scheme, const seq::Alphabet& alphabet,
      const std::string& db_id);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };
  Stats stats() const;

  /// Leaf capability for lock-order declarations (never lock directly;
  /// every public method is self-locking).
  util::Mutex& capability() const SWDUAL_RETURN_CAPABILITY(mutex_) {
    return mutex_;
  }

 private:
  using Entry =
      std::pair<std::string, std::shared_ptr<const KarlinAltschulParams>>;

  std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::list<Entry> lru_ SWDUAL_GUARDED_BY(mutex_);  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      SWDUAL_GUARDED_BY(mutex_);
  std::uint64_t hits_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ SWDUAL_GUARDED_BY(mutex_) = 0;
};

/// Serial annotated drivers: search_database / search_database_filtered plus
/// an annotate_hits pass on the ranked winners. These are the reference
/// semantics the parallel / sharded / serve paths must match bit-for-bit.
RankedSearchResult search_database_annotated(
    std::span<const std::uint8_t> query, const DbView& db,
    const ScoringScheme& scheme, KernelKind kernel, std::size_t top_k,
    const AnnotateConfig& annotate, const KarlinAltschulParams& params,
    Backend backend = Backend::kAuto);

FilteredSearchResult search_database_filtered_annotated(
    std::span<const std::uint8_t> query, const DbView& db,
    const ScoringScheme& scheme, KernelKind kernel, std::size_t top_k,
    const FilterConfig& filter, const AnnotateConfig& annotate,
    const KarlinAltschulParams& params, Backend backend = Backend::kAuto);

}  // namespace swdual::align
