#include "align/kernel_banded.h"

#include "align/backend.h"

namespace swdual::align {

BandedBatchResult banded_screen(std::span<const std::uint8_t> query,
                                const SequenceViews& db,
                                const ScoringScheme& scheme,
                                std::size_t band) {
  // Per-sequence screen scores are independent of the batch a sequence
  // lands in (same argument as interseq), and the byte tier's overflow
  // guard is a function of cell values only, so the 8→16-bit escalation
  // decisions — and hence all results — are bit-identical across backends.
  return kernel_table(best_backend(KernelKind::kInterSeq))
      .banded(query, db, scheme, band);
}

}  // namespace swdual::align
