// Farrar's striped SIMD Smith–Waterman (intra-sequence vectorization).
//
// This is the kernel class behind the paper's STRIPED baseline (Farrar 2007)
// and SWPS3 (Szalkowski et al. 2008): one query/database pair at a time,
// eight query cells per instruction in a striped layout that moves the
// vertical-gap (F) dependency out of the inner loop, fixed up afterwards by
// the "lazy F" loop.
//
// 16-bit saturating arithmetic; on saturation the driver in search.h
// recomputes the pair with the 32-bit scalar oracle.
#pragma once

#include <cstdint>
#include <span>

#include "align/profile.h"
#include "align/scoring.h"

namespace swdual::align {

struct StripedResult {
  int score = 0;
  bool overflow = false;  ///< true if the 16-bit range saturated
  std::uint64_t cells = 0;
};

/// Score one query (via its striped profile) against one database sequence.
StripedResult striped_score(const StripedProfile& profile,
                            std::span<const std::uint8_t> db,
                            const GapPenalty& gap);

/// Convenience overload building the profile internally (prefer the profile
/// overload when searching a whole database with one query).
StripedResult striped_score(std::span<const std::uint8_t> query,
                            std::span<const std::uint8_t> db,
                            const ScoringScheme& scheme);

}  // namespace swdual::align
