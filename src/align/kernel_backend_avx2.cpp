// AVX2 backend: the width-generic kernels instantiated on the 256-bit
// vector types (32×u8 / 16×i16 lanes).
//
// This translation unit — and only this one — is compiled with -mavx2 (see
// src/align/CMakeLists.txt), so the instantiations below may use AVX2
// instructions freely; nothing here runs unless the runtime dispatcher has
// confirmed the CPU supports AVX2 (align/backend.cpp). If the compiler
// cannot target AVX2 the provider degrades to nullptr and the backend is
// reported as not compiled.
#include "align/kernel_dispatch.h"
#include "align/simd_avx2.h"

#if defined(SWDUAL_SIMD_AVX2)

#include "align/kernel_banded_impl.h"
#include "align/kernel_interseq_impl.h"
#include "align/kernel_striped8_impl.h"
#include "align/kernel_striped_impl.h"

namespace swdual::align::detail {

namespace {

const KernelTable kTable = {
    &striped8_score_impl<V8x32>,
    &striped_score_impl<V16x16>,
    &interseq_scores_impl<V16x16>,
    &banded_screen_impl<V8x32, V16x16>,
};

}  // namespace

const KernelTable* avx2_kernel_table() { return &kTable; }

}  // namespace swdual::align::detail

#else

namespace swdual::align::detail {

const KernelTable* avx2_kernel_table() { return nullptr; }

}  // namespace swdual::align::detail

#endif
