#include "align/kernel_striped8.h"

#include "align/backend.h"
#include "align/kernel_striped8_impl.h"
#include "align/simd8.h"

namespace swdual::align {

StripedResult striped8_score(const StripedProfileU8& profile,
                             std::span<const std::uint8_t> db,
                             const GapPenalty& gap) {
  // Narrow fixed-width entry point (16 byte lanes: SSE2 on x86, emulated
  // elsewhere). Wider widths are reached through align::kernel_table(),
  // with a profile striped for the matching lane count.
  return striped8_score_impl<V8>(profile, db, gap);
}

StripedResult striped8_score(std::span<const std::uint8_t> query,
                             std::span<const std::uint8_t> db,
                             const ScoringScheme& scheme) {
  if (query.empty()) {
    return {};
  }
  // Convenience path: one-shot profile, built for (and run on) the best
  // backend this host offers.
  const Backend backend = best_backend(KernelKind::kStriped8);
  const StripedProfileU8 profile(query, *scheme.matrix,
                                 backend_lanes8(backend));
  return kernel_table(backend).striped8(profile, db, scheme.gap);
}

}  // namespace swdual::align
