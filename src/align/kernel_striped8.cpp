#include "align/kernel_striped8.h"

#include <vector>

#include "align/simd8.h"
#include "util/error.h"

namespace swdual::align {

StripedResult striped8_score(const StripedProfileU8& profile,
                             std::span<const std::uint8_t> db,
                             const GapPenalty& gap) {
  SWDUAL_REQUIRE(gap.extend >= 1, "byte kernel requires gap.extend >= 1");
  SWDUAL_REQUIRE(gap.open >= 0 && gap.open + gap.extend <= 255,
                 "gap penalties out of byte range");
  StripedResult result;
  const std::size_t seg_len = profile.segment_length();
  result.cells =
      static_cast<std::uint64_t>(profile.query_length()) * db.size();
  if (db.empty() || profile.query_length() == 0) return result;

  const V8 v_bias = V8::splat(profile.bias());
  const V8 v_gap_extend = V8::splat(static_cast<std::uint8_t>(gap.extend));
  const V8 v_gap_open_extend =
      V8::splat(static_cast<std::uint8_t>(gap.open + gap.extend));

  std::vector<std::uint8_t> h_load_buf(seg_len * kLanes8, 0);
  std::vector<std::uint8_t> h_store_buf(seg_len * kLanes8, 0);
  std::vector<std::uint8_t> e_buf(seg_len * kLanes8, 0);
  std::uint8_t* h_load = h_load_buf.data();
  std::uint8_t* h_store = h_store_buf.data();
  std::uint8_t* e_ptr = e_buf.data();

  V8 v_max = V8::zero();

  for (std::size_t j = 0; j < db.size(); ++j) {
    const std::uint8_t* scores = profile.row(db[j]);
    V8 v_f = V8::zero();
    V8 v_h = V8::load(h_load + (seg_len - 1) * kLanes8).shift_lanes_up();

    for (std::size_t s = 0; s < seg_len; ++s) {
      // H = max(diag + score, E, F, 0): biased add, then bias removal with
      // saturation at zero (the free max(…,0)).
      v_h = subs(adds(v_h, V8::load(scores + s * kLanes8)), v_bias);
      const V8 v_e = V8::load(e_ptr + s * kLanes8);
      v_h = max(v_h, v_e);
      v_h = max(v_h, v_f);
      v_max = max(v_max, v_h);
      v_h.store(h_store + s * kLanes8);

      const V8 v_h_gap = subs(v_h, v_gap_open_extend);
      max(subs(v_e, v_gap_extend), v_h_gap).store(e_ptr + s * kLanes8);
      v_f = max(subs(v_f, v_gap_extend), v_h_gap);

      v_h = V8::load(h_load + s * kLanes8);
    }

    // Lazy F, byte flavour (same dominance argument as the 16-bit kernel).
    v_f = v_f.shift_lanes_up();
    std::size_t s = 0;
    while (any_gt(v_f, subs(V8::load(h_store + s * kLanes8),
                            v_gap_open_extend))) {
      const V8 v_h_cur = max(V8::load(h_store + s * kLanes8), v_f);
      v_h_cur.store(h_store + s * kLanes8);
      v_max = max(v_max, v_h_cur);
      const V8 v_h_gap = subs(v_h_cur, v_gap_open_extend);
      max(V8::load(e_ptr + s * kLanes8), v_h_gap)
          .store(e_ptr + s * kLanes8);
      v_f = subs(v_f, v_gap_extend);
      if (++s >= seg_len) {
        s = 0;
        v_f = v_f.shift_lanes_up();
      }
    }

    std::swap(h_load, h_store);
  }

  const std::uint8_t best = v_max.hmax();
  // Overflow guard band (same rule as the 16-bit kernel): the biased add
  // saturates at 255, so a clamp requires a prior H above
  // 255 − bias − max_score; every stored H passed through v_max, so a
  // maximum below that band proves no clamping happened anywhere. Scores
  // inside the band (including a legitimate ceiling score, which is
  // indistinguishable from a clamp) are conservatively escalated.
  const int guard = 255 - static_cast<int>(profile.bias()) -
                    static_cast<int>(profile.max_score());
  if (best >= guard) {
    result.overflow = true;
  }
  result.score = best;
  return result;
}

StripedResult striped8_score(std::span<const std::uint8_t> query,
                             std::span<const std::uint8_t> db,
                             const ScoringScheme& scheme) {
  if (query.empty()) {
    return {};
  }
  const StripedProfileU8 profile(query, *scheme.matrix);
  return striped8_score(profile, db, scheme.gap);
}

}  // namespace swdual::align
