// SSE2 backend: the width-generic kernels instantiated on the 128-bit
// vector types (16×u8 / 8×i16). Compiled whenever the base target has SSE2
// (always true on x86-64); absent on other architectures, where the scalar
// backend covers the same geometry.
#include "align/kernel_dispatch.h"

#if defined(__SSE2__)

#include "align/kernel_banded_impl.h"
#include "align/kernel_interseq_impl.h"
#include "align/kernel_striped8_impl.h"
#include "align/kernel_striped_impl.h"
#include "align/simd16.h"
#include "align/simd8.h"

namespace swdual::align::detail {

namespace {

const KernelTable kTable = {
    &striped8_score_impl<V8>,
    &striped_score_impl<V16>,
    &interseq_scores_impl<V16>,
    &banded_screen_impl<V8, V16>,
};

}  // namespace

const KernelTable* sse2_kernel_table() { return &kTable; }

}  // namespace swdual::align::detail

#else

namespace swdual::align::detail {

const KernelTable* sse2_kernel_table() { return nullptr; }

}  // namespace swdual::align::detail

#endif
