// Alignment value type and pretty-printing (the paper's Fig. 1 rendering).
#pragma once

#include <string>

#include "seq/alphabet.h"

namespace swdual::align {

/// A computed pairwise alignment: two equal-length strings over the residue
/// alphabet plus '-' gap characters, with score and coordinates.
struct Alignment {
  std::string aligned_query;  ///< query residues with gaps inserted
  std::string aligned_db;     ///< database residues with gaps inserted
  int score = 0;
  /// 1-based inclusive coordinates of the aligned region in each sequence.
  /// For a global alignment these span the whole sequences; for a local one
  /// they delimit the optimal local region.
  std::size_t query_begin = 0, query_end = 0;
  std::size_t db_begin = 0, db_end = 0;

  std::size_t length() const { return aligned_query.size(); }
  std::size_t matches() const;
  std::size_t mismatches() const;
  std::size_t gaps() const;

  /// Percent identity over aligned columns (0 for empty alignments).
  double identity() const;
};

/// Render in the Fig. 1 style: query line, midline (| match, . mismatch,
/// space gap), database line, wrapped at `width` columns, score last.
std::string render_alignment(const Alignment& alignment,
                             std::size_t width = 60);

}  // namespace swdual::align
