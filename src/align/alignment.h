// Alignment value type, CIGAR emission, and pretty-printing (the paper's
// Fig. 1 rendering).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "align/scoring.h"
#include "seq/alphabet.h"

namespace swdual::align {

/// A computed pairwise alignment: two equal-length strings over the residue
/// alphabet plus '-' gap characters, with score and coordinates.
struct Alignment {
  std::string aligned_query;  ///< query residues with gaps inserted
  std::string aligned_db;     ///< database residues with gaps inserted
  int score = 0;
  /// 1-based inclusive coordinates of the aligned region in each sequence.
  /// For a global alignment these span the whole sequences; for a local one
  /// they delimit the optimal local region.
  std::size_t query_begin = 0, query_end = 0;
  std::size_t db_begin = 0, db_end = 0;

  std::size_t length() const { return aligned_query.size(); }
  std::size_t matches() const;
  std::size_t mismatches() const;
  std::size_t gaps() const;

  /// Percent identity over aligned columns (0 for empty alignments).
  double identity() const;

  /// SAM-convention CIGAR of the alignment: M = aligned residue pair
  /// (match or mismatch), I = query residue against a gap, D = gap against
  /// a database residue. An empty (score-0) local alignment yields "".
  /// Validated on emission: the M+I columns must consume exactly
  /// [query_begin, query_end] and the M+D columns exactly [db_begin, db_end]
  /// (throws swdual::Error otherwise — a traceback that miscounted its own
  /// coordinates must never reach a report).
  std::string cigar() const;
};

/// Re-derive the Gotoh affine-gap score of a CIGAR applied to the raw
/// encoded residues: Σ S(q,d) over M columns minus (open + L·extend) per
/// gap run of length L. `query_begin`/`db_begin` are the alignment's
/// 1-based start coordinates. This is the independent score oracle for
/// annotated hits: a hit's CIGAR must re-derive the hit's exact search
/// score. Throws InvalidArgument on a malformed CIGAR or one that walks
/// outside either sequence. An empty CIGAR scores 0.
int cigar_score(const std::string& cigar,
                std::span<const std::uint8_t> query,
                std::span<const std::uint8_t> db, std::size_t query_begin,
                std::size_t db_begin, const ScoringScheme& scheme);

/// Render in the Fig. 1 style: query line, midline (| match, . mismatch,
/// space gap), database line, wrapped at `width` columns, score last.
std::string render_alignment(const Alignment& alignment,
                             std::size_t width = 60);

}  // namespace swdual::align
