#include "align/profile_cache.h"

#include <algorithm>

#include "util/crc32.h"
#include "util/error.h"

namespace swdual::align {

std::string scoring_key(const ScoringScheme& scheme) {
  const ScoreMatrix& matrix = *scheme.matrix;
  Crc32 crc;
  for (std::uint8_t a = 0; a < matrix.size(); ++a) {
    crc.update(matrix.row(a), matrix.size());
  }
  return matrix.name() + '/' + std::to_string(matrix.size()) + '/' +
         std::to_string(crc.value()) + "/o" +
         std::to_string(scheme.gap.open) + "e" +
         std::to_string(scheme.gap.extend);
}

namespace {

std::string make_key(std::span<const std::uint8_t> query,
                     const ScoringScheme& scheme, KernelKind kernel,
                     Backend backend) {
  std::string key;
  key.reserve(query.size() + 64);
  key += kernel_name(kernel);
  key += '/';
  key += backend_name(backend);
  key += '/';
  key += scoring_key(scheme);
  key += '/';
  key.append(reinterpret_cast<const char*>(query.data()), query.size());
  return key;
}

}  // namespace

ProfileCache::ProfileCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const CachedProfiles> ProfileCache::acquire(
    std::span<const std::uint8_t> query, const ScoringScheme& scheme,
    KernelKind kernel, Backend backend) {
  const Backend resolved = resolve_backend(backend);
  std::string key = make_key(query, scheme, kernel, resolved);

  {
    util::MutexLock lock(mutex_);
    const auto found = index_.find(key);
    if (found != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, found->second);
      return found->second->second;
    }
  }

  // Miss: build outside the lock (profile construction is O(|q|·alphabet)
  // and must not serialize other workers' lookups).
  auto entry = std::shared_ptr<CachedProfiles>(new CachedProfiles());
  entry->residues_.assign(query.begin(), query.end());
  entry->profiles_.emplace(entry->query(), scheme, kernel, resolved);

  util::MutexLock lock(mutex_);
  const auto raced = index_.find(key);
  if (raced != index_.end()) {
    // Another thread built the same entry first; keep theirs.
    ++hits_;
    lru_.splice(lru_.begin(), lru_, raced->second);
    return raced->second->second;
  }
  ++misses_;
  lru_.emplace_front(key, entry);
  index_.emplace(std::move(key), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  return entry;
}

ProfileCache::Stats ProfileCache::stats() const {
  util::MutexLock lock(mutex_);
  return {hits_, misses_, evictions_, lru_.size(), capacity_};
}

}  // namespace swdual::align
