// Rognes-style inter-sequence SIMD Smith–Waterman.
//
// This is the kernel class behind the paper's SWIPE baseline (Rognes 2011):
// instead of vectorizing within one DP matrix, one batch of *database
// sequences* is aligned against the query simultaneously, one per SIMD
// lane (8 lanes on SSE2, 16 on AVX2, 32 on AVX-512BW — the active backend
// decides). There is no striping and no lazy-F fixup — every lane is an
// independent matrix, so all dependencies are lane-local and the
// recurrence is computed directly.
//
// Sequences are batched one SIMD-width at a time, longest-first, with
// exhausted lanes padded by a sentinel profile row of large negative scores
// (padding columns can then never create or extend a positive-scoring
// alignment). Per-sequence scores are independent of the batch width.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/profile.h"
#include "align/scoring.h"

namespace swdual::align {

struct InterSeqResult {
  std::vector<int> scores;          ///< one per input sequence, input order
  std::vector<bool> overflow;       ///< lanes that saturated (recompute!)
  std::uint64_t cells = 0;          ///< true DP cells (excludes padding)
};

/// Views of the database sequences to score in one call.
using SequenceViews = std::vector<std::span<const std::uint8_t>>;

/// Score one query against many database sequences, one SIMD batch at a
/// time, on the best available backend (SWDUAL_FORCE_BACKEND overrides).
InterSeqResult interseq_scores(std::span<const std::uint8_t> query,
                               const SequenceViews& db, const ScoringScheme& scheme);

}  // namespace swdual::align
