// Width-generic body of the byte-precision striped kernel.
//
// Templated over any vector type V satisfying the simd8.h interface
// contract; one body serves the scalar, SSE2, AVX2 and AVX-512BW backends
// (kernel_backend_*.cpp each instantiate it at their width). The striped
// segment layout is derived from V::kLanes and the profile must have been
// built with the same lane count; the resulting score and overflow decision
// are lane-count independent (see DESIGN.md "SIMD backends & dispatch").
#pragma once

#include <cstdint>
#include <span>

#include "align/kernel_striped.h"
#include "align/profile.h"
#include "align/scratch.h"
#include "util/error.h"

namespace swdual::align {

template <class V>
StripedResult striped8_score_impl(const StripedProfileU8& profile,
                                  std::span<const std::uint8_t> db,
                                  const GapPenalty& gap) {
  constexpr std::size_t kL = V::kLanes;
  SWDUAL_REQUIRE(profile.lanes() == kL,
                 "byte profile lane count does not match the kernel width");
  SWDUAL_REQUIRE(gap.extend >= 1, "byte kernel requires gap.extend >= 1");
  SWDUAL_REQUIRE(gap.open >= 0 && gap.open + gap.extend <= 255,
                 "gap penalties out of byte range");
  StripedResult result;
  const std::size_t seg_len = profile.segment_length();
  result.cells =
      static_cast<std::uint64_t>(profile.query_length()) * db.size();
  if (db.empty() || profile.query_length() == 0) return result;

  const V v_bias = V::splat(profile.bias());
  const V v_gap_extend = V::splat(static_cast<std::uint8_t>(gap.extend));
  const V v_gap_open_extend =
      V::splat(static_cast<std::uint8_t>(gap.open + gap.extend));
  const V v_gap_open = V::splat(static_cast<std::uint8_t>(gap.open));

  // Per-thread workspace: zeroed rows, capacity reused across records.
  const AlignScratch::RowsU8 rows = thread_scratch().rows_u8(seg_len * kL);
  std::uint8_t* h_load = rows.h_load;
  std::uint8_t* h_store = rows.h_store;
  std::uint8_t* e_ptr = rows.e;

  V v_max = V::zero();

  for (std::size_t j = 0; j < db.size(); ++j) {
    const std::uint8_t* scores = profile.row(db[j]);
    V v_f = V::zero();
    V v_h = V::load(h_load + (seg_len - 1) * kL).shift_lanes_up();

    for (std::size_t s = 0; s < seg_len; ++s) {
      // H = max(diag + score, E, F, 0): biased add, then bias removal with
      // saturation at zero (the free max(…,0)).
      v_h = subs(adds(v_h, V::load(scores + s * kL)), v_bias);
      const V v_e = V::load(e_ptr + s * kL);
      v_h = max(v_h, v_e);
      v_h = max(v_h, v_f);
      v_max = max(v_max, v_h);
      v_h.store(h_store + s * kL);

      const V v_h_gap = subs(v_h, v_gap_open_extend);
      max(subs(v_e, v_gap_extend), v_h_gap).store(e_ptr + s * kL);
      v_f = max(subs(v_f, v_gap_extend), v_h_gap);

      v_h = V::load(h_load + s * kL);
    }

    // Lazy F, byte flavour (same dominance argument as the 16-bit kernel).
    //
    // On random protein corpora the correction fires on 30–50% of columns
    // (the wider the vector, the more often some lane needs it) but runs
    // only ~2 steps, so the entry branch is maximally unpredictable while
    // the work is tiny. Two restructurings keep scores bit-identical and
    // remove most of the mispredict cost:
    //
    //  1. The first kLazyFUnconditional steps run without a check. The
    //     step body only max-merges F-derived candidates — true lower
    //     bounds of the DP cell values (F propagates down query positions
    //     at −extend per step) — so when no correction is due it rewrites
    //     the rows with values they already dominate: a no-op.
    //  2. The loop exit uses the threshold H − open rather than
    //     H − (open+extend). Exiting once every lane has F ≤ H(s) − open
    //     is exact: H(s) changes only when F > H(s); the stored E(s) is
    //     already ≥ H(s) − open − extend so it changes only when
    //     F > E(s) + open + extend ≥ H(s); and the carry stays dominated
    //     at every later segment because F − extend ≤ H(s) − open − extend
    //     is a value the segment loop already folded into F(s+1).
    v_f = v_f.shift_lanes_up();
    std::size_t s = 0;
    constexpr std::size_t kLazyFUnconditional = 2;
    const std::size_t unchecked =
        seg_len < kLazyFUnconditional ? seg_len : kLazyFUnconditional;
    for (; s < unchecked; ++s) {
      const V v_h_cur = max(V::load(h_store + s * kL), v_f);
      v_h_cur.store(h_store + s * kL);
      v_max = max(v_max, v_h_cur);
      const V v_h_gap = subs(v_h_cur, v_gap_open_extend);
      max(V::load(e_ptr + s * kL), v_h_gap).store(e_ptr + s * kL);
      v_f = subs(v_f, v_gap_extend);
    }
    if (s >= seg_len) {
      s = 0;
      v_f = v_f.shift_lanes_up();
    }
    while (any_gt(v_f, subs(V::load(h_store + s * kL), v_gap_open))) {
      const V v_h_cur = max(V::load(h_store + s * kL), v_f);
      v_h_cur.store(h_store + s * kL);
      v_max = max(v_max, v_h_cur);
      const V v_h_gap = subs(v_h_cur, v_gap_open_extend);
      max(V::load(e_ptr + s * kL), v_h_gap).store(e_ptr + s * kL);
      v_f = subs(v_f, v_gap_extend);
      if (++s >= seg_len) {
        s = 0;
        v_f = v_f.shift_lanes_up();
      }
    }

    std::swap(h_load, h_store);
  }

  const std::uint8_t best = v_max.hmax();
  // Overflow guard band (same rule as the 16-bit kernel): the biased add
  // saturates at 255, so a clamp requires a prior H above
  // 255 − bias − max_score; every stored H passed through v_max, so a
  // maximum below that band proves no clamping happened anywhere. Scores
  // inside the band (including a legitimate ceiling score, which is
  // indistinguishable from a clamp) are conservatively escalated.
  const int guard = 255 - static_cast<int>(profile.bias()) -
                    static_cast<int>(profile.max_score());
  if (best >= guard) {
    result.overflow = true;
  }
  result.score = best;
  return result;
}

}  // namespace swdual::align
