#include "align/scratch.h"

namespace swdual::align {

AlignScratch& thread_scratch() {
  thread_local AlignScratch scratch;
  return scratch;
}

}  // namespace swdual::align
