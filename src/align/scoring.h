// Substitution matrices and gap models.
//
// Scores follow the paper's §II conventions: a substitution score S(a,b) per
// residue pair, and the Gotoh affine-gap model with gap-start penalty Gs and
// gap-extension penalty Ge (Equations 2–4: the first residue of a gap costs
// Gs+Ge, each further residue Ge). The simple linear model of Equation (1)
// charges a flat g per gap character.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/alphabet.h"

namespace swdual::align {

/// A square substitution matrix indexed by alphabet codes.
class ScoreMatrix {
 public:
  ScoreMatrix() = default;

  /// Build from a row-major score table of dimension size x size.
  ScoreMatrix(seq::AlphabetKind alphabet, std::size_t size,
              std::vector<std::int8_t> scores, std::string name);

  /// The BLOSUM62 protein matrix (24x24, NCBI values) — the default for all
  /// protein experiments, as in SWIPE and CUDASW++.
  static const ScoreMatrix& blosum62();

  /// Parametric match/mismatch matrix for any alphabet (wildcard scores 0
  /// against everything). Used for DNA and for the Fig. 1 example.
  static ScoreMatrix uniform(seq::AlphabetKind alphabet, std::int8_t match,
                             std::int8_t mismatch);

  /// Parse an NCBI-format matrix file body (column header row of residue
  /// letters, then one row per residue). Lets users load BLOSUM45/50/80/90,
  /// PAM matrices, etc. from standard distribution files.
  static ScoreMatrix parse_ncbi(const std::string& text,
                                seq::AlphabetKind alphabet, std::string name);

  seq::AlphabetKind alphabet() const { return alphabet_; }
  std::size_t size() const { return size_; }
  const std::string& name() const { return name_; }

  /// Score of aligning residue codes a and b.
  std::int8_t score(std::uint8_t a, std::uint8_t b) const {
    return scores_[static_cast<std::size_t>(a) * size_ + b];
  }

  /// Raw row for code a (length size()).
  const std::int8_t* row(std::uint8_t a) const {
    return scores_.data() + static_cast<std::size_t>(a) * size_;
  }

  std::int8_t max_score() const { return max_score_; }
  std::int8_t min_score() const { return min_score_; }

  /// True if score(a,b) == score(b,a) for all codes.
  bool symmetric() const;

 private:
  seq::AlphabetKind alphabet_ = seq::AlphabetKind::kProtein;
  std::size_t size_ = 0;
  std::vector<std::int8_t> scores_;
  std::string name_;
  std::int8_t max_score_ = 0;
  std::int8_t min_score_ = 0;
};

/// Affine gap penalties (positive magnitudes, subtracted by the recursion).
struct GapPenalty {
  int open = 10;    ///< Gs — charged when a gap starts.
  int extend = 2;   ///< Ge — charged for every gap residue, including the first.
};

/// A complete pairwise-comparison scoring configuration.
struct ScoringScheme {
  const ScoreMatrix* matrix = &ScoreMatrix::blosum62();
  GapPenalty gap;
};

}  // namespace swdual::align
