#include "align/scoring.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace swdual::align {

ScoreMatrix::ScoreMatrix(seq::AlphabetKind alphabet, std::size_t size,
                         std::vector<std::int8_t> scores, std::string name)
    : alphabet_(alphabet),
      size_(size),
      scores_(std::move(scores)),
      name_(std::move(name)) {
  SWDUAL_REQUIRE(size_ > 0, "matrix size must be positive");
  SWDUAL_REQUIRE(scores_.size() == size_ * size_,
                 "matrix data does not match size^2");
  SWDUAL_REQUIRE(size_ == seq::Alphabet::get(alphabet_).size(),
                 "matrix size must equal alphabet size");
  max_score_ = *std::max_element(scores_.begin(), scores_.end());
  min_score_ = *std::min_element(scores_.begin(), scores_.end());
}

bool ScoreMatrix::symmetric() const {
  for (std::size_t a = 0; a < size_; ++a) {
    for (std::size_t b = a + 1; b < size_; ++b) {
      if (scores_[a * size_ + b] != scores_[b * size_ + a]) return false;
    }
  }
  return true;
}

const ScoreMatrix& ScoreMatrix::blosum62() {
  // NCBI BLOSUM62, rows/cols in ARNDCQEGHILKMFPSTWYVBZX* order — the same
  // order as seq::Alphabet::protein(), so alphabet codes index directly.
  static const ScoreMatrix matrix = [] {
    static constexpr std::int8_t kData[24 * 24] = {
        // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
        4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0, -2, -1, 0, -4,
        -1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3, -1, 0, -1, -4,
        -2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3, 3, 0, -1, -4,
        -2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3, 4, 1, -1, -4,
        0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4,
        -1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2, 0, 3, -1, -4,
        -1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4,
        0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3, -1, -2, -1, -4,
        -2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3, 0, 0, -1, -4,
        -1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3, -3, -3, -1, -4,
        -1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1, -4, -3, -1, -4,
        -1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2, 0, 1, -1, -4,
        -1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1, -3, -1, -1, -4,
        -2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1, -3, -3, -1, -4,
        -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2, -2, -1, -2, -4,
        1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2, 0, 0, 0, -4,
        0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0, -1, -1, 0, -4,
        -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3, -4, -3, -2, -4,
        -2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1, -3, -2, -1, -4,
        0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4, -3, -2, -1, -4,
        -2, -1, 3, 4, -3, 0, 1, -1, 0, -3, -4, 0, -3, -3, -2, 0, -1, -4, -3, -3, 4, 1, -1, -4,
        -1, 0, 0, 1, -3, 3, 4, -2, 0, -3, -3, 1, -1, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4,
        0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2, 0, 0, -2, -1, -1, -1, -1, -1, -4,
        -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, 1,
    };
    return ScoreMatrix(seq::AlphabetKind::kProtein, 24,
                       std::vector<std::int8_t>(kData, kData + 24 * 24),
                       "BLOSUM62");
  }();
  return matrix;
}

ScoreMatrix ScoreMatrix::uniform(seq::AlphabetKind alphabet, std::int8_t match,
                                 std::int8_t mismatch) {
  const seq::Alphabet& codes = seq::Alphabet::get(alphabet);
  const std::size_t n = codes.size();
  const std::uint8_t wildcard = codes.wildcard_code();
  std::vector<std::int8_t> data(n * n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == wildcard || b == wildcard) {
        data[a * n + b] = 0;
      } else {
        data[a * n + b] = (a == b) ? match : mismatch;
      }
    }
  }
  std::ostringstream name;
  name << "uniform(" << int(match) << '/' << int(mismatch) << ')';
  return ScoreMatrix(alphabet, n, std::move(data), name.str());
}

ScoreMatrix ScoreMatrix::parse_ncbi(const std::string& text,
                                    seq::AlphabetKind alphabet,
                                    std::string name) {
  const seq::Alphabet& codes = seq::Alphabet::get(alphabet);
  const std::size_t n = codes.size();
  // Wildcard-vs-anything defaults to 0 for letters missing from the file.
  std::vector<std::int8_t> data(n * n, 0);

  std::istringstream in(text);
  std::string line;
  std::vector<std::uint8_t> columns;  // alphabet code of each file column
  bool have_header = false;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    if (!have_header) {
      char letter;
      while (fields >> letter) columns.push_back(codes.encode(letter));
      SWDUAL_REQUIRE(!columns.empty(), "matrix header row has no letters");
      have_header = true;
      continue;
    }
    char row_letter;
    fields >> row_letter;
    const std::uint8_t row_code = codes.encode(row_letter);
    for (std::uint8_t col_code : columns) {
      int value;
      if (!(fields >> value)) {
        throw IoError("matrix row for '" + std::string(1, row_letter) +
                      "' is short");
      }
      SWDUAL_REQUIRE(value >= -128 && value <= 127,
                     "matrix entry out of int8 range");
      data[static_cast<std::size_t>(row_code) * n + col_code] =
          static_cast<std::int8_t>(value);
    }
  }
  SWDUAL_REQUIRE(have_header, "matrix text contains no data");
  return ScoreMatrix(alphabet, n, std::move(data), std::move(name));
}

}  // namespace swdual::align
