// Database-search driver: one query against many database sequences.
//
// This is the "fine-grained" layer of the paper's §II-C: a single task
// (query vs whole database) is accelerated internally by the selected
// kernel, while the task-level parallelism across queries is handled by the
// scheduler/master in src/core. Saturating SIMD kernels that overflow are
// transparently recomputed with the 32-bit scalar oracle.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "align/scoring.h"
#include "seq/sequence.h"

namespace swdual::align {

/// Kernel selection for one database search.
enum class KernelKind {
  kScalar,    ///< 32-bit Gotoh oracle (reference, no SIMD)
  kStriped,   ///< Farrar striped SIMD, 16-bit (STRIPED/SWPS3 class)
  kStriped8,  ///< Farrar striped SIMD, 8-bit tier with 16-bit/32-bit rescan
  kInterSeq,  ///< Rognes inter-sequence SIMD (SWIPE class)
};

/// Printable kernel name.
const char* kernel_name(KernelKind kind);

/// One scored database record.
struct SearchHit {
  std::size_t db_index = 0;
  int score = 0;
};

/// Full result of one query-vs-database task.
struct SearchResult {
  std::vector<int> scores;   ///< score per database record, database order
  std::uint64_t cells = 0;   ///< DP cells computed
  double seconds = 0.0;      ///< wall-clock kernel time
  std::size_t overflow_rescans = 0;  ///< pairs recomputed at 32 bits

  /// Billion cell updates per second (the paper's GCUPS metric).
  double gcups() const {
    return seconds > 0 ? static_cast<double>(cells) / seconds / 1e9 : 0.0;
  }

  /// The k best-scoring records, ties broken by database order.
  std::vector<SearchHit> top(std::size_t k) const;
};

/// Lightweight view of an encoded database held in memory.
using DbView = std::vector<std::span<const std::uint8_t>>;

/// Make views over a record vector (records must outlive the views).
DbView make_db_view(const std::vector<seq::Sequence>& records);

/// Score `query` against every database sequence with the chosen kernel.
SearchResult search_database(std::span<const std::uint8_t> query,
                             const DbView& db, const ScoringScheme& scheme,
                             KernelKind kernel);

/// Convenience overload for Sequence inputs.
SearchResult search_database(const seq::Sequence& query,
                             const std::vector<seq::Sequence>& db,
                             const ScoringScheme& scheme, KernelKind kernel);

}  // namespace swdual::align
