// Database-search driver: one query against many database sequences.
//
// This is the "fine-grained" layer of the paper's §II-C: a single task
// (query vs whole database) is accelerated internally by the selected
// kernel, while the task-level parallelism across queries is handled by the
// scheduler/master in src/core. Saturating SIMD kernels that overflow are
// transparently recomputed with the 32-bit scalar oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "align/backend.h"
#include "align/profile.h"
#include "align/scoring.h"
#include "seq/sequence.h"

namespace swdual::align {

// KernelKind and kernel_name live in align/backend.h (selection is
// kernel-aware); search.h re-exports them via that include.

/// Per-hit significance/alignment annotation (populated by annotate.h on the
/// merged global top-k; full definition there).
struct HitAnnotation;

/// One scored database record. `annotation` stays null on every hot path —
/// scoring, chunk merges, and shard gathers move hits as {index, score}; only
/// the post-merge annotation step attaches the shared payload, so copies of
/// an annotated hit stay cheap (one refcount bump).
struct SearchHit {
  std::size_t db_index = 0;
  int score = 0;
  std::shared_ptr<const HitAnnotation> annotation;

  SearchHit() = default;
  SearchHit(std::size_t index, int hit_score)
      : db_index(index), score(hit_score) {}
};

/// Full result of one query-vs-database task.
struct SearchResult {
  std::vector<int> scores;   ///< score per database record, database order
  std::uint64_t cells = 0;   ///< DP cells computed
  double seconds = 0.0;      ///< wall-clock kernel time
  std::size_t overflow_rescans = 0;  ///< pairs recomputed at 32 bits

  /// Billion cell updates per second (the paper's GCUPS metric).
  double gcups() const {
    return seconds > 0 ? static_cast<double>(cells) / seconds / 1e9 : 0.0;
  }

  /// The k best-scoring records, ties broken by database order.
  std::vector<SearchHit> top(std::size_t k) const;
};

/// A ranked search: the full result plus its k best hits.
struct RankedSearchResult {
  SearchResult result;
  std::vector<SearchHit> hits;  ///< equal to result.top(k)
};

/// Ranking order for hits: higher score first, ties by database order.
bool hit_better(const SearchHit& a, const SearchHit& b);

/// Bounded top-k selection primitives shared by SearchResult::top and the
/// parallel engine's per-chunk merge: push a candidate into a size-k
/// min-heap (O(log k)), then sort the retained hits into rank order.
void push_top_hit(std::vector<SearchHit>& heap, const SearchHit& candidate,
                  std::size_t k);
void finish_top_hits(std::vector<SearchHit>& heap);

/// Lightweight view of an encoded database held in memory.
using DbView = std::vector<std::span<const std::uint8_t>>;

/// Make views over a record vector (records must outlive the views).
DbView make_db_view(const std::vector<seq::Sequence>& records);

/// Per-query kernel state, built once and shared read-only by every chunk of
/// one search (serial or parallel). Profiles are striped for the resolved
/// SIMD backend's lane counts, so one SearchProfiles caches exactly one
/// profile set per active backend. The 16-bit escalation profile used by
/// the striped8 tier is built lazily on the first saturated pair, under a
/// once-flag, so concurrent chunks share a single build instead of one per
/// chunk (or, previously, one per search_database call).
class SearchProfiles {
 public:
  SearchProfiles(std::span<const std::uint8_t> query,
                 const ScoringScheme& scheme, KernelKind kernel,
                 Backend backend = Backend::kAuto);

  SearchProfiles(const SearchProfiles&) = delete;
  SearchProfiles& operator=(const SearchProfiles&) = delete;

  std::span<const std::uint8_t> query() const { return query_; }
  const ScoringScheme& scheme() const { return scheme_; }
  KernelKind kernel() const { return kernel_; }

  /// The resolved SIMD backend (never kAuto) the profiles are striped for.
  Backend backend() const { return backend_; }

  /// Kernel entry points of the resolved backend.
  const KernelTable& table() const { return *table_; }

  /// 16-bit striped profile: eager for kStriped, lazy (first overflow) for
  /// kStriped8. Safe to call concurrently; query must be non-empty.
  const StripedProfile& striped16() const;

  /// Byte-precision profile (kStriped8 only; query must be non-empty).
  const StripedProfileU8& striped8() const { return *profile8_; }

 private:
  std::span<const std::uint8_t> query_;
  ScoringScheme scheme_;
  KernelKind kernel_;
  Backend backend_;
  const KernelTable* table_;
  std::unique_ptr<StripedProfileU8> profile8_;
  mutable std::once_flag once16_;
  mutable std::unique_ptr<StripedProfile> profile16_;
};

/// Score `query` against db[begin, end) with shared profiles. scores[i] of
/// the result corresponds to db[begin + i]. This is the single scan routine
/// behind both the serial driver and the parallel engine, so chunked runs
/// are bit-identical to serial ones by construction.
SearchResult search_range(const SearchProfiles& profiles, const DbView& db,
                          std::size_t begin, std::size_t end);

/// Score `query` against every database sequence with the chosen kernel on
/// the chosen SIMD backend (kAuto = widest the host supports, overridable
/// with SWDUAL_FORCE_BACKEND).
SearchResult search_database(std::span<const std::uint8_t> query,
                             const DbView& db, const ScoringScheme& scheme,
                             KernelKind kernel,
                             Backend backend = Backend::kAuto);

/// Same scan with caller-provided (possibly cached/shared) profiles: the
/// per-query build step is skipped, results are bit-identical.
SearchResult search_database(const SearchProfiles& profiles, const DbView& db);

/// Convenience overload for Sequence inputs.
SearchResult search_database(const seq::Sequence& query,
                             const std::vector<seq::Sequence>& db,
                             const ScoringScheme& scheme, KernelKind kernel,
                             Backend backend = Backend::kAuto);

// --- Two-stage filtered search -------------------------------------------
//
// Stage 1 screens every record with the cheap vectorized banded kernel
// (align/kernel_banded.h); stage 2 rescans only the surviving candidates
// with the configured exact kernel. Screening is bit-identical across SIMD
// backends and candidate selection is deterministic, so filtered results
// are a pure function of (query, db, scheme, kernel, filter config) — they
// do not depend on backend, thread count, chunking, or shard topology.

/// Filtering policy for a search.
enum class FilterMode {
  kOff,        ///< no screening; results bit-identical to search_database
  kHeuristic,  ///< banded screen, keep top keep_factor*k + uncertain records
};

const char* filter_mode_name(FilterMode mode);
bool parse_filter_mode(const std::string& name, FilterMode& out);

/// Configuration of the two-stage pipeline.
struct FilterConfig {
  FilterMode mode = FilterMode::kOff;
  std::size_t band = 32;     ///< banded-screen half-width (>= 1)
  double keep_factor = 4.0;  ///< keep ceil(keep_factor * k) screened records

  bool enabled() const { return mode != FilterMode::kOff; }

  /// Throws InvalidArgument on out-of-range parameters (band == 0,
  /// keep_factor < 1, non-finite keep_factor).
  void validate() const;
};

/// Counters describing what the filter did (serve exports these as
/// filter_candidates / filter_rescans / filter_band_uncertain metrics).
struct FilterStats {
  std::uint64_t candidates = 0;      ///< records surviving the screen
  std::uint64_t rescans = 0;         ///< candidates rescanned exactly
  std::uint64_t band_uncertain = 0;  ///< records kept via the edge flag

  void merge(const FilterStats& other) {
    candidates += other.candidates;
    rescans += other.rescans;
    band_uncertain += other.band_uncertain;
  }
};

/// Stage-1 output for a database range. `exact[i]` is the band-coverage
/// certificate (the screened score IS the exact score); `edge_hit[i]` marks
/// records whose best banded path ended on the band boundary (the score may
/// underestimate, so selection must keep them).
struct ScreenResult {
  std::vector<int> scores;            ///< banded lower-bound score per record
  std::vector<std::uint8_t> exact;    ///< 1 = certificate: score is exact
  std::vector<std::uint8_t> edge_hit; ///< 1 = boundary-uncertain score
  std::uint64_t cells = 0;            ///< banded DP cells computed
};

/// Screen db[begin, end) with the banded kernel of the profiles' backend
/// (kScalar kernel: the scalar banded reference). scores[i] corresponds to
/// db[begin + i]. Results are bit-identical across backends and chunkings.
ScreenResult screen_range(const SearchProfiles& profiles, const DbView& db,
                          std::size_t begin, std::size_t end,
                          std::size_t band);

/// Deterministic stage-2 candidate selection: the max(k, ceil(keep_factor*k))
/// best screened records plus every edge-uncertain one, as sorted unique
/// range-local indices. `stats` (optional) accumulates selection counters.
std::vector<std::uint32_t> filter_select_candidates(const ScreenResult& screen,
                                                    std::size_t top_k,
                                                    const FilterConfig& config,
                                                    FilterStats* stats);

/// Result of a filtered search. `result.scores` holds screened lower bounds
/// with every candidate overwritten by its exact score (candidates are the
/// only records eligible for `hits`, so the ranking is exact whenever the
/// true top-k survived the screen). Mode kOff yields scores and hits
/// bit-identical to search_database + top(k).
struct FilteredSearchResult {
  SearchResult result;
  std::vector<SearchHit> hits;  ///< exact-scored top-k over the candidates
  FilterStats stats;
};

FilteredSearchResult search_database_filtered(const SearchProfiles& profiles,
                                              const DbView& db,
                                              std::size_t top_k,
                                              const FilterConfig& config);

FilteredSearchResult search_database_filtered(
    std::span<const std::uint8_t> query, const DbView& db,
    const ScoringScheme& scheme, KernelKind kernel, std::size_t top_k,
    const FilterConfig& config, Backend backend = Backend::kAuto);

}  // namespace swdual::align
