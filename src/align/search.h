// Database-search driver: one query against many database sequences.
//
// This is the "fine-grained" layer of the paper's §II-C: a single task
// (query vs whole database) is accelerated internally by the selected
// kernel, while the task-level parallelism across queries is handled by the
// scheduler/master in src/core. Saturating SIMD kernels that overflow are
// transparently recomputed with the 32-bit scalar oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "align/backend.h"
#include "align/profile.h"
#include "align/scoring.h"
#include "seq/sequence.h"

namespace swdual::align {

// KernelKind and kernel_name live in align/backend.h (selection is
// kernel-aware); search.h re-exports them via that include.

/// One scored database record.
struct SearchHit {
  std::size_t db_index = 0;
  int score = 0;
};

/// Full result of one query-vs-database task.
struct SearchResult {
  std::vector<int> scores;   ///< score per database record, database order
  std::uint64_t cells = 0;   ///< DP cells computed
  double seconds = 0.0;      ///< wall-clock kernel time
  std::size_t overflow_rescans = 0;  ///< pairs recomputed at 32 bits

  /// Billion cell updates per second (the paper's GCUPS metric).
  double gcups() const {
    return seconds > 0 ? static_cast<double>(cells) / seconds / 1e9 : 0.0;
  }

  /// The k best-scoring records, ties broken by database order.
  std::vector<SearchHit> top(std::size_t k) const;
};

/// Ranking order for hits: higher score first, ties by database order.
bool hit_better(const SearchHit& a, const SearchHit& b);

/// Bounded top-k selection primitives shared by SearchResult::top and the
/// parallel engine's per-chunk merge: push a candidate into a size-k
/// min-heap (O(log k)), then sort the retained hits into rank order.
void push_top_hit(std::vector<SearchHit>& heap, const SearchHit& candidate,
                  std::size_t k);
void finish_top_hits(std::vector<SearchHit>& heap);

/// Lightweight view of an encoded database held in memory.
using DbView = std::vector<std::span<const std::uint8_t>>;

/// Make views over a record vector (records must outlive the views).
DbView make_db_view(const std::vector<seq::Sequence>& records);

/// Per-query kernel state, built once and shared read-only by every chunk of
/// one search (serial or parallel). Profiles are striped for the resolved
/// SIMD backend's lane counts, so one SearchProfiles caches exactly one
/// profile set per active backend. The 16-bit escalation profile used by
/// the striped8 tier is built lazily on the first saturated pair, under a
/// once-flag, so concurrent chunks share a single build instead of one per
/// chunk (or, previously, one per search_database call).
class SearchProfiles {
 public:
  SearchProfiles(std::span<const std::uint8_t> query,
                 const ScoringScheme& scheme, KernelKind kernel,
                 Backend backend = Backend::kAuto);

  SearchProfiles(const SearchProfiles&) = delete;
  SearchProfiles& operator=(const SearchProfiles&) = delete;

  std::span<const std::uint8_t> query() const { return query_; }
  const ScoringScheme& scheme() const { return scheme_; }
  KernelKind kernel() const { return kernel_; }

  /// The resolved SIMD backend (never kAuto) the profiles are striped for.
  Backend backend() const { return backend_; }

  /// Kernel entry points of the resolved backend.
  const KernelTable& table() const { return *table_; }

  /// 16-bit striped profile: eager for kStriped, lazy (first overflow) for
  /// kStriped8. Safe to call concurrently; query must be non-empty.
  const StripedProfile& striped16() const;

  /// Byte-precision profile (kStriped8 only; query must be non-empty).
  const StripedProfileU8& striped8() const { return *profile8_; }

 private:
  std::span<const std::uint8_t> query_;
  ScoringScheme scheme_;
  KernelKind kernel_;
  Backend backend_;
  const KernelTable* table_;
  std::unique_ptr<StripedProfileU8> profile8_;
  mutable std::once_flag once16_;
  mutable std::unique_ptr<StripedProfile> profile16_;
};

/// Score `query` against db[begin, end) with shared profiles. scores[i] of
/// the result corresponds to db[begin + i]. This is the single scan routine
/// behind both the serial driver and the parallel engine, so chunked runs
/// are bit-identical to serial ones by construction.
SearchResult search_range(const SearchProfiles& profiles, const DbView& db,
                          std::size_t begin, std::size_t end);

/// Score `query` against every database sequence with the chosen kernel on
/// the chosen SIMD backend (kAuto = widest the host supports, overridable
/// with SWDUAL_FORCE_BACKEND).
SearchResult search_database(std::span<const std::uint8_t> query,
                             const DbView& db, const ScoringScheme& scheme,
                             KernelKind kernel,
                             Backend backend = Backend::kAuto);

/// Same scan with caller-provided (possibly cached/shared) profiles: the
/// per-query build step is skipped, results are bit-identical.
SearchResult search_database(const SearchProfiles& profiles, const DbView& db);

/// Convenience overload for Sequence inputs.
SearchResult search_database(const seq::Sequence& query,
                             const std::vector<seq::Sequence>& db,
                             const ScoringScheme& scheme, KernelKind kernel,
                             Backend backend = Backend::kAuto);

}  // namespace swdual::align
