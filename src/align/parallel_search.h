// Chunked parallel database search: multithreaded intra-task scans.
//
// The master–slave engine parallelizes *across* tasks (one query vs the
// whole database per worker); this engine additionally parallelizes *inside*
// one task, the way SWIPE/CUDASW++-class tools do: the database is
// partitioned into residue-balanced chunks that fan out over a ThreadPool,
// every chunk sharing one read-only set of query profiles (including the
// lazily built 16-bit escalation profile of the striped8 tier).
//
// Results are bit-identical to the serial search_database path — same
// scores, same cells / overflow_rescans accounting — deterministically,
// regardless of thread count: chunks are merged in index order and every
// per-record value is independent of its chunk.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "align/annotate.h"
#include "align/search.h"
#include "util/thread_pool.h"

namespace swdual::obs {
class MetricsRegistry;
class Tracer;
}  // namespace swdual::obs

namespace swdual::seq {
class MappedSwdb;
}  // namespace swdual::seq

namespace swdual::align {

struct ParallelSearchOptions {
  /// Worker threads for the internal pool. 1 runs chunks inline (no pool).
  std::size_t threads = 1;

  /// Fixed chunk size in records; 0 selects residue-balanced automatic
  /// partitioning (chunks_per_thread chunks per thread). Values larger than
  /// the database collapse to a single chunk.
  std::size_t chunk_records = 0;

  /// Automatic-partition granularity: more chunks per thread smooth load
  /// imbalance from length skew at slightly higher merge cost.
  std::size_t chunks_per_thread = 4;

  /// Permute the database longest-first once at engine construction (the
  /// inverse mapping is applied at merge, so callers always see database
  /// order). Groups similar lengths into the same interseq batch so padded
  /// lanes waste fewer cells; harmless for the other kernels.
  bool sort_by_length = true;

  /// Optional observability sinks (obs/trace.h, obs/metrics.h): every chunk
  /// scan becomes a wall-clock `chunk_scan` span on `trace_track` (recorded
  /// from the pool thread that ran it) and a `chunk_scan_seconds` histogram
  /// sample. Both must outlive the engine.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  std::size_t trace_track = 0;
};

// RankedSearchResult lives in align/search.h (shared with the serial
// annotated drivers); this header re-exports it via that include.

class ParallelSearchEngine {
 public:
  /// Snapshots `db` (span copies, not residues) and builds the partition
  /// once; the underlying records must outlive the engine.
  explicit ParallelSearchEngine(const DbView& db,
                                const ParallelSearchOptions& options = {});

  /// Zero-copy engine over an mmap-backed SWDB: chunk scans read residues
  /// straight out of the shared mapping (no per-engine or per-thread copy),
  /// and when options.sort_by_length is set the longest-first permutation
  /// comes from the database's precomputed lane-batch index instead of a
  /// per-engine sort — the heap-free refill path of the interseq kernel.
  /// The mapping must outlive the engine (see MappedSwdb lifetime rules).
  ParallelSearchEngine(const seq::MappedSwdb& db,
                       const ParallelSearchOptions& options = {});

  ParallelSearchEngine(const ParallelSearchEngine&) = delete;
  ParallelSearchEngine& operator=(const ParallelSearchEngine&) = delete;

  /// Score one query against the whole database. Scores are in database
  /// order and bit-identical to serial search_database, on every SIMD
  /// backend (kAuto = widest available, overridable via
  /// SWDUAL_FORCE_BACKEND).
  SearchResult search(std::span<const std::uint8_t> query,
                      const ScoringScheme& scheme, KernelKind kernel,
                      Backend backend = Backend::kAuto) const;

  /// search() plus a bounded top-k merge: each chunk keeps a k-hit heap and
  /// only those heaps are merged, so ranking costs O(n log k) total instead
  /// of sorting all n scores.
  RankedSearchResult search_ranked(std::span<const std::uint8_t> query,
                                   const ScoringScheme& scheme,
                                   KernelKind kernel, std::size_t k,
                                   Backend backend = Backend::kAuto) const;

  /// Scan with caller-provided (possibly cached/shared) profiles, skipping
  /// the per-call profile build. Bit-identical to the building overloads.
  SearchResult search(const SearchProfiles& profiles) const;
  RankedSearchResult search_ranked(const SearchProfiles& profiles,
                                   std::size_t k) const;

  /// search_ranked plus an annotate_hits pass (align/annotate.h) on the
  /// merged top-k: e-value/bit score from `params` with the database's
  /// total residue count as the search space, the evalue cutoff, and
  /// (stats+cigar) a validated traceback per surviving hit. The annotation
  /// runs once, post-merge, so hit scores/order stay bit-identical to the
  /// unannotated overload regardless of thread count or chunking.
  RankedSearchResult search_ranked(const SearchProfiles& profiles,
                                   std::size_t k,
                                   const AnnotateConfig& annotate,
                                   const KarlinAltschulParams& params) const;

  /// Multi-query scan: K queries share ONE pass over every database chunk.
  /// Each chunk task scans its records once per query while the chunk's
  /// residues are hot in cache, amortizing DB decode/cache traffic across
  /// the group the way SWAPHI shares one partition pass between concurrent
  /// queries. All profile sets must use the same kernel (the serve batcher
  /// collapses per-config groups, so this holds by construction). Results
  /// are per query, in input order, and bit-identical to running
  /// search_ranked once per profile set.
  std::vector<RankedSearchResult> search_ranked_many(
      std::span<const SearchProfiles* const> profiles, std::size_t k) const;

  /// Two-stage filtered search (align/search.h): chunked banded screen,
  /// deterministic candidate selection, then a candidate-only exact rescan.
  /// Mode kOff is bit-identical to search_ranked; heuristic results are
  /// identical to the serial search_database_filtered path regardless of
  /// thread count or chunking. Emits filter_screen / filter_rescore spans
  /// and filter_candidates / filter_rescans / filter_band_uncertain
  /// metrics when sinks are configured.
  FilteredSearchResult search_filtered(const SearchProfiles& profiles,
                                       std::size_t k,
                                       const FilterConfig& config) const;
  FilteredSearchResult search_filtered(std::span<const std::uint8_t> query,
                                       const ScoringScheme& scheme,
                                       KernelKind kernel, std::size_t k,
                                       const FilterConfig& config,
                                       Backend backend = Backend::kAuto) const;

  /// Filtered search plus post-merge annotation (see the annotated
  /// search_ranked overload for the semantics).
  FilteredSearchResult search_filtered(const SearchProfiles& profiles,
                                       std::size_t k,
                                       const FilterConfig& config,
                                       const AnnotateConfig& annotate,
                                       const KarlinAltschulParams& params)
      const;

  /// Multi-query filtered search: the stage-1 screens share ONE pass over
  /// every chunk (like search_ranked_many's group passes), then each query
  /// selects and rescans its own candidates. Results per query, input order.
  std::vector<FilteredSearchResult> search_filtered_many(
      std::span<const SearchProfiles* const> profiles, std::size_t k,
      const FilterConfig& config) const;

  /// Stage 1 alone, for callers that merge candidates across engines (the
  /// sharded scatter-gather path): per-query screens of the whole database,
  /// in database order, bit-identical to serial screen_range.
  std::vector<ScreenResult> screen_many(
      std::span<const SearchProfiles* const> profiles, std::size_t band) const;

  std::size_t num_chunks() const { return chunks_.size(); }
  std::size_t threads() const { return pool_ ? pool_->size() : 1; }
  std::size_t db_records() const { return db_.size(); }

  /// Total residues across the database (the Karlin–Altschul `n`).
  std::uint64_t db_residues() const { return total_residues_; }

  /// The residue span of database record `index` (database order, i.e. the
  /// caller's original indexing, independent of the length permutation).
  std::span<const std::uint8_t> record(std::size_t index) const {
    return db_[permuted_pos_[index]];
  }

 private:
  struct Chunk {
    std::size_t begin = 0;  ///< first record (permuted order)
    std::size_t end = 0;    ///< one past the last record
  };

  struct ChunkOutcome {
    SearchResult result;
    std::vector<SearchHit> hits;  ///< chunk-local top-k, original indices
  };

  ChunkOutcome run_chunk(const SearchProfiles& profiles, const Chunk& chunk,
                         std::size_t chunk_index, std::size_t top_k) const;
  RankedSearchResult run(const SearchProfiles& profiles,
                         std::size_t top_k) const;

  /// One chunk scanned once per query (outcomes in query order).
  std::vector<ChunkOutcome> run_chunk_many(
      std::span<const SearchProfiles* const> profiles, const Chunk& chunk,
      std::size_t chunk_index, std::size_t top_k) const;

  /// One chunk screened once per query with the banded stage-1 kernel.
  std::vector<ScreenResult> screen_chunk_many(
      std::span<const SearchProfiles* const> profiles, const Chunk& chunk,
      std::size_t chunk_index, std::size_t band) const;

  /// Exact rescan of the non-certified candidates; overwrites their entries
  /// in `out.result.scores` and accumulates cells/stats.
  void rescore_candidates(const SearchProfiles& profiles,
                          const std::vector<std::uint32_t>& candidates,
                          const ScreenResult& screen,
                          FilteredSearchResult& out) const;

  /// Partition db_ into chunks and spin up the pool (shared ctor tail;
  /// db_ and original_index_ must already be populated).
  void init_partition(const ParallelSearchOptions& options);

  /// chunks_ with every boundary snapped to a multiple of `batch` records,
  /// so the inter-sequence kernel never splits a SIMD batch between two
  /// chunks (a split batch runs twice with mostly-padded lanes). Scores are
  /// unaffected — lanes are independent — only padding waste is.
  std::vector<Chunk> batch_aligned_chunks(std::size_t batch) const;

  DbView db_;  ///< permuted (or original-order) span copies
  std::uint64_t total_residues_ = 0;
  std::vector<std::size_t> original_index_;  ///< permuted pos → db pos
  std::vector<std::size_t> permuted_pos_;    ///< db pos → permuted pos
  std::vector<Chunk> chunks_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when options.threads <= 1
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::size_t trace_track_ = 0;
};

}  // namespace swdual::align
