#include "align/backend.h"

#include <cstdlib>
#include <string_view>

#include "align/kernel_dispatch.h"
#include "util/error.h"

namespace swdual::align {

namespace {

/// Host CPU support for a backend's instruction set (independent of what
/// this binary was compiled with).
bool cpu_supports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSSE2:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case Backend::kAVX2:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kAVX512:
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0;
#else
      return false;
#endif
    case Backend::kAuto:
      return false;
  }
  return false;
}

const KernelTable* table_for(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return detail::scalar_kernel_table();
    case Backend::kSSE2: return detail::sse2_kernel_table();
    case Backend::kAVX2: return detail::avx2_kernel_table();
    case Backend::kAVX512: return detail::avx512_kernel_table();
    case Backend::kAuto: return nullptr;
  }
  return nullptr;
}

/// SWDUAL_DISABLE_AVX512: any non-empty value other than "0" disables
/// automatic selection of the 512-bit tier. Read per call, like the force
/// override, so tests and long-lived services can re-point it.
bool avx512_disabled() {
  // Read-only env access: the tree never setenv()s, so concurrent getenv
  // calls cannot race a mutation (concurrency-mt-unsafe's hazard).
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv("SWDUAL_DISABLE_AVX512");
  return value != nullptr && *value != '\0' &&
         std::string_view(value) != "0";
}

/// The backend named by SWDUAL_FORCE_BACKEND, or kAuto when the variable is
/// unset/empty. Throws on unknown names, unavailable backends, and the
/// force-avx512-while-disabled contradiction.
Backend forced_backend() {
  // Read-only env access; see avx512_disabled().
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* forced = std::getenv("SWDUAL_FORCE_BACKEND");
  if (forced == nullptr || *forced == '\0') return Backend::kAuto;
  Backend backend = Backend::kAuto;
  if (!parse_backend(forced, backend)) {
    throw InvalidArgument(std::string("SWDUAL_FORCE_BACKEND names an "
                                      "unknown backend: ") +
                          forced);
  }
  if (backend == Backend::kAuto) return Backend::kAuto;
  if (!backend_available(backend)) {
    throw InvalidArgument(
        std::string("SWDUAL_FORCE_BACKEND=") + forced +
        " is not available on this host (compiled: " +
        (backend_compiled(backend) ? "yes" : "no") + ")");
  }
  if (backend == Backend::kAVX512 && avx512_disabled()) {
    throw InvalidArgument(
        "SWDUAL_FORCE_BACKEND=avx512 contradicts SWDUAL_DISABLE_AVX512");
  }
  return backend;
}

/// Widest available backend honoring the disable switch (no force, no
/// per-kernel gate).
Backend widest_auto_backend() {
  Backend best = Backend::kScalar;
  for (Backend backend :
       {Backend::kSSE2, Backend::kAVX2, Backend::kAVX512}) {
    if (backend == Backend::kAVX512 && avx512_disabled()) continue;
    if (backend_available(backend)) best = backend;
  }
  return best;
}

}  // namespace

const char* kernel_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar: return "scalar";
    case KernelKind::kStriped: return "striped";
    case KernelKind::kStriped8: return "striped8";
    case KernelKind::kInterSeq: return "interseq";
  }
  return "unknown";
}

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kAuto: return "auto";
    case Backend::kScalar: return "scalar";
    case Backend::kSSE2: return "sse2";
    case Backend::kAVX2: return "avx2";
    case Backend::kAVX512: return "avx512";
  }
  return "unknown";
}

bool parse_backend(const std::string& name, Backend& out) {
  if (name == "auto") { out = Backend::kAuto; return true; }
  if (name == "scalar") { out = Backend::kScalar; return true; }
  if (name == "sse2") { out = Backend::kSSE2; return true; }
  if (name == "avx2") { out = Backend::kAVX2; return true; }
  if (name == "avx512") { out = Backend::kAVX512; return true; }
  return false;
}

bool backend_compiled(Backend backend) {
  return table_for(backend) != nullptr;
}

bool backend_available(Backend backend) {
  return backend_compiled(backend) && cpu_supports(backend);
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend backend : {Backend::kScalar, Backend::kSSE2, Backend::kAVX2,
                          Backend::kAVX512}) {
    if (backend_available(backend)) out.push_back(backend);
  }
  return out;
}

Backend best_backend() {
  // The environment overrides are consulted on every call (they are only
  // read at dispatch-table granularity — once per search, not per record)
  // so test harnesses and the CI forced-backend jobs can re-point them.
  if (const Backend forced = forced_backend(); forced != Backend::kAuto) {
    return forced;
  }
  return widest_auto_backend();
}

Backend best_backend(KernelKind kernel) {
  if (const Backend forced = forced_backend(); forced != Backend::kAuto) {
    return forced;  // an explicit request always wins over the gate
  }
  Backend best = widest_auto_backend();
  if (kernel == KernelKind::kStriped8 && best == Backend::kAVX512 &&
      backend_available(Backend::kAVX2)) {
    // Measured on the recorded bench host: striped8 runs 11.6 GCUPS on
    // avx512 vs 13.5 on avx2 (DESIGN.md "AVX-512 striped8 regression").
    // The 16-bit striped and interseq kernels win at 512 bits, so only the
    // byte tier is gated.
    best = Backend::kAVX2;
  }
  return best;
}

Backend resolve_backend(Backend backend) {
  if (backend == Backend::kAuto) return best_backend();
  if (!backend_available(backend)) {
    throw InvalidArgument(std::string("SIMD backend not available on this "
                                      "host: ") +
                          backend_name(backend));
  }
  return backend;
}

Backend resolve_backend(Backend backend, KernelKind kernel) {
  if (backend == Backend::kAuto) return best_backend(kernel);
  return resolve_backend(backend);
}

std::size_t backend_lanes8(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
    case Backend::kSSE2: return 16;
    case Backend::kAVX2: return 32;
    case Backend::kAVX512: return 64;
    case Backend::kAuto: return backend_lanes8(best_backend());
  }
  return 16;
}

std::size_t backend_lanes16(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
    case Backend::kSSE2: return 8;
    case Backend::kAVX2: return 16;
    case Backend::kAVX512: return 32;
    case Backend::kAuto: return backend_lanes16(best_backend());
  }
  return 8;
}

const KernelTable& kernel_table(Backend backend) {
  const KernelTable* table = table_for(resolve_backend(backend));
  SWDUAL_REQUIRE(table != nullptr, "kernel table missing for backend");
  return *table;
}

}  // namespace swdual::align
