// Memory-frugal full alignment: locate, then realign.
//
// sw_align_affine (traceback.h) keeps the whole O(m·n) DP matrix — fine for
// reporting a handful of hits, prohibitive for aligning a 35,213-residue
// query against a long database record. This module does what SSW and
// SSEARCH do instead:
//
//   1. forward score-only pass (O(n) memory) → best score + END cell,
//   2. reverse score-only pass from the end cell → START cell,
//   3. full traceback restricted to the [start..end]×[start..end] region,
//      whose area is the alignment's footprint, not the whole matrix.
//
// The result is score-identical to sw_align_affine; memory drops from
// O(m·n) to O(n + region²).
#pragma once

#include <cstdint>
#include <span>

#include "align/alignment.h"
#include "align/scalar.h"
#include "align/scoring.h"

namespace swdual::align {

/// Coordinates of the optimal local alignment (1-based, inclusive).
struct LocalRegion {
  int score = 0;
  std::size_t query_begin = 0, query_end = 0;
  std::size_t db_begin = 0, db_end = 0;
};

/// Locate the optimal local alignment's region with two O(n)-memory passes.
LocalRegion locate_best_alignment(std::span<const std::uint8_t> query,
                                  std::span<const std::uint8_t> db,
                                  const ScoringScheme& scheme);

/// Full local alignment using locate-then-realign (score-identical to
/// sw_align_affine, memory proportional to the alignment region only).
Alignment sw_align_affine_frugal(std::span<const std::uint8_t> query,
                                 std::span<const std::uint8_t> db,
                                 const ScoringScheme& scheme);

}  // namespace swdual::align
