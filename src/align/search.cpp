#include "align/search.h"

#include <algorithm>
#include <memory>

#include "align/kernel_interseq.h"
#include "align/kernel_striped.h"
#include "align/kernel_striped8.h"
#include "align/scalar.h"
#include "util/error.h"
#include "util/timer.h"

namespace swdual::align {

bool hit_better(const SearchHit& a, const SearchHit& b) {
  return a.score != b.score ? a.score > b.score : a.db_index < b.db_index;
}

std::vector<SearchHit> SearchResult::top(std::size_t k) const {
  std::vector<SearchHit> hits;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    push_top_hit(hits, {i, scores[i]}, k);
  }
  finish_top_hits(hits);
  return hits;
}

void push_top_hit(std::vector<SearchHit>& heap, const SearchHit& candidate,
                  std::size_t k) {
  if (k == 0) return;
  // Heap ordered by hit_better ("better ranks lower"), so heap.front() is
  // the worst retained hit and each of the n candidates costs O(log k) —
  // O(n log k) overall instead of the former full stable_sort.
  if (heap.size() < k) {
    heap.push_back(candidate);
    std::push_heap(heap.begin(), heap.end(), hit_better);
  } else if (hit_better(candidate, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), hit_better);
    heap.back() = candidate;
    std::push_heap(heap.begin(), heap.end(), hit_better);
  }
}

void finish_top_hits(std::vector<SearchHit>& heap) {
  std::sort(heap.begin(), heap.end(), hit_better);
}

DbView make_db_view(const std::vector<seq::Sequence>& records) {
  DbView view;
  view.reserve(records.size());
  for (const seq::Sequence& record : records) {
    view.emplace_back(record.residues.data(), record.residues.size());
  }
  return view;
}

SearchProfiles::SearchProfiles(std::span<const std::uint8_t> query,
                               const ScoringScheme& scheme, KernelKind kernel,
                               Backend backend)
    : query_(query),
      scheme_(scheme),
      kernel_(kernel),
      backend_(resolve_backend(backend, kernel)),
      table_(&kernel_table(backend_)) {
  if (query_.empty()) return;
  switch (kernel_) {
    case KernelKind::kStriped:
      profile16_ = std::make_unique<StripedProfile>(
          query_, *scheme_.matrix, backend_lanes16(backend_));
      break;
    case KernelKind::kStriped8:
      profile8_ = std::make_unique<StripedProfileU8>(
          query_, *scheme_.matrix, backend_lanes8(backend_));
      break;
    case KernelKind::kScalar:
    case KernelKind::kInterSeq:
      break;  // no striped state; kInterSeq builds its profile per batch
  }
}

const StripedProfile& SearchProfiles::striped16() const {
  std::call_once(once16_, [this] {
    if (!profile16_) {
      profile16_ = std::make_unique<StripedProfile>(
          query_, *scheme_.matrix, backend_lanes16(backend_));
    }
  });
  return *profile16_;
}

SearchResult search_range(const SearchProfiles& profiles, const DbView& db,
                          std::size_t begin, std::size_t end) {
  SWDUAL_REQUIRE(begin <= end && end <= db.size(),
                 "search_range out of bounds");
  const std::span<const std::uint8_t> query = profiles.query();
  const ScoringScheme& scheme = profiles.scheme();
  SearchResult result;
  result.scores.assign(end - begin, 0);

  switch (profiles.kernel()) {
    case KernelKind::kScalar: {
      for (std::size_t i = begin; i < end; ++i) {
        const ScoreResult r = gotoh_score(query, db[i], scheme);
        result.scores[i - begin] = r.score;
        result.cells += r.cells;
      }
      break;
    }
    case KernelKind::kStriped: {
      if (query.empty()) break;
      const KernelTable& table = profiles.table();
      const StripedProfile& profile = profiles.striped16();
      for (std::size_t i = begin; i < end; ++i) {
        const StripedResult r = table.striped(profile, db[i], scheme.gap);
        result.cells += r.cells;
        if (r.overflow) {
          result.scores[i - begin] = gotoh_score(query, db[i], scheme).score;
          ++result.overflow_rescans;
        } else {
          result.scores[i - begin] = r.score;
        }
      }
      break;
    }
    case KernelKind::kStriped8: {
      // Tiered precision: bytes first, escalate saturated pairs to 16 bits,
      // and to the 32-bit oracle if even those saturate.
      if (query.empty()) break;
      const KernelTable& table = profiles.table();
      const StripedProfileU8& profile8 = profiles.striped8();
      for (std::size_t i = begin; i < end; ++i) {
        const StripedResult r8 = table.striped8(profile8, db[i], scheme.gap);
        result.cells += r8.cells;
        if (!r8.overflow) {
          result.scores[i - begin] = r8.score;
          continue;
        }
        ++result.overflow_rescans;
        const StripedResult r16 =
            table.striped(profiles.striped16(), db[i], scheme.gap);
        result.scores[i - begin] = r16.overflow
                                       ? gotoh_score(query, db[i], scheme).score
                                       : r16.score;
      }
      break;
    }
    case KernelKind::kInterSeq: {
      const SequenceViews slice(db.begin() + static_cast<std::ptrdiff_t>(begin),
                                db.begin() + static_cast<std::ptrdiff_t>(end));
      const InterSeqResult r = profiles.table().interseq(query, slice, scheme);
      result.cells = r.cells;
      result.scores = r.scores;
      for (std::size_t i = 0; i < slice.size(); ++i) {
        if (r.overflow[i]) {
          result.scores[i] = gotoh_score(query, slice[i], scheme).score;
          ++result.overflow_rescans;
        }
      }
      break;
    }
  }
  return result;
}

SearchResult search_database(std::span<const std::uint8_t> query,
                             const DbView& db, const ScoringScheme& scheme,
                             KernelKind kernel, Backend backend) {
  WallTimer timer;
  const SearchProfiles profiles(query, scheme, kernel, backend);
  SearchResult result = search_range(profiles, db, 0, db.size());
  result.seconds = timer.seconds();
  return result;
}

SearchResult search_database(const SearchProfiles& profiles, const DbView& db) {
  WallTimer timer;
  SearchResult result = search_range(profiles, db, 0, db.size());
  result.seconds = timer.seconds();
  return result;
}

SearchResult search_database(const seq::Sequence& query,
                             const std::vector<seq::Sequence>& db,
                             const ScoringScheme& scheme, KernelKind kernel,
                             Backend backend) {
  const DbView view = make_db_view(db);
  return search_database(
      std::span<const std::uint8_t>(query.residues.data(),
                                    query.residues.size()),
      view, scheme, kernel, backend);
}

}  // namespace swdual::align
