#include "align/search.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "align/banded.h"
#include "align/kernel_banded.h"
#include "align/kernel_interseq.h"
#include "align/kernel_striped.h"
#include "align/kernel_striped8.h"
#include "align/scalar.h"
#include "util/error.h"
#include "util/timer.h"

namespace swdual::align {

bool hit_better(const SearchHit& a, const SearchHit& b) {
  return a.score != b.score ? a.score > b.score : a.db_index < b.db_index;
}

std::vector<SearchHit> SearchResult::top(std::size_t k) const {
  std::vector<SearchHit> hits;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    push_top_hit(hits, {i, scores[i]}, k);
  }
  finish_top_hits(hits);
  return hits;
}

void push_top_hit(std::vector<SearchHit>& heap, const SearchHit& candidate,
                  std::size_t k) {
  if (k == 0) return;
  // Heap ordered by hit_better ("better ranks lower"), so heap.front() is
  // the worst retained hit and each of the n candidates costs O(log k) —
  // O(n log k) overall instead of the former full stable_sort.
  if (heap.size() < k) {
    heap.push_back(candidate);
    std::push_heap(heap.begin(), heap.end(), hit_better);
  } else if (hit_better(candidate, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), hit_better);
    heap.back() = candidate;
    std::push_heap(heap.begin(), heap.end(), hit_better);
  }
}

void finish_top_hits(std::vector<SearchHit>& heap) {
  std::sort(heap.begin(), heap.end(), hit_better);
}

DbView make_db_view(const std::vector<seq::Sequence>& records) {
  DbView view;
  view.reserve(records.size());
  for (const seq::Sequence& record : records) {
    view.emplace_back(record.residues.data(), record.residues.size());
  }
  return view;
}

SearchProfiles::SearchProfiles(std::span<const std::uint8_t> query,
                               const ScoringScheme& scheme, KernelKind kernel,
                               Backend backend)
    : query_(query),
      scheme_(scheme),
      kernel_(kernel),
      backend_(resolve_backend(backend, kernel)),
      table_(&kernel_table(backend_)) {
  if (query_.empty()) return;
  switch (kernel_) {
    case KernelKind::kStriped:
      profile16_ = std::make_unique<StripedProfile>(
          query_, *scheme_.matrix, backend_lanes16(backend_));
      break;
    case KernelKind::kStriped8:
      profile8_ = std::make_unique<StripedProfileU8>(
          query_, *scheme_.matrix, backend_lanes8(backend_));
      break;
    case KernelKind::kScalar:
    case KernelKind::kInterSeq:
      break;  // no striped state; kInterSeq builds its profile per batch
  }
}

const StripedProfile& SearchProfiles::striped16() const {
  std::call_once(once16_, [this] {
    if (!profile16_) {
      profile16_ = std::make_unique<StripedProfile>(
          query_, *scheme_.matrix, backend_lanes16(backend_));
    }
  });
  return *profile16_;
}

SearchResult search_range(const SearchProfiles& profiles, const DbView& db,
                          std::size_t begin, std::size_t end) {
  SWDUAL_REQUIRE(begin <= end && end <= db.size(),
                 "search_range out of bounds");
  const std::span<const std::uint8_t> query = profiles.query();
  const ScoringScheme& scheme = profiles.scheme();
  SearchResult result;
  result.scores.assign(end - begin, 0);

  switch (profiles.kernel()) {
    case KernelKind::kScalar: {
      for (std::size_t i = begin; i < end; ++i) {
        const ScoreResult r = gotoh_score(query, db[i], scheme);
        result.scores[i - begin] = r.score;
        result.cells += r.cells;
      }
      break;
    }
    case KernelKind::kStriped: {
      if (query.empty()) break;
      const KernelTable& table = profiles.table();
      const StripedProfile& profile = profiles.striped16();
      for (std::size_t i = begin; i < end; ++i) {
        const StripedResult r = table.striped(profile, db[i], scheme.gap);
        result.cells += r.cells;
        if (r.overflow) {
          result.scores[i - begin] = gotoh_score(query, db[i], scheme).score;
          ++result.overflow_rescans;
        } else {
          result.scores[i - begin] = r.score;
        }
      }
      break;
    }
    case KernelKind::kStriped8: {
      // Tiered precision: bytes first, escalate saturated pairs to 16 bits,
      // and to the 32-bit oracle if even those saturate.
      if (query.empty()) break;
      const KernelTable& table = profiles.table();
      const StripedProfileU8& profile8 = profiles.striped8();
      for (std::size_t i = begin; i < end; ++i) {
        const StripedResult r8 = table.striped8(profile8, db[i], scheme.gap);
        result.cells += r8.cells;
        if (!r8.overflow) {
          result.scores[i - begin] = r8.score;
          continue;
        }
        ++result.overflow_rescans;
        const StripedResult r16 =
            table.striped(profiles.striped16(), db[i], scheme.gap);
        result.scores[i - begin] = r16.overflow
                                       ? gotoh_score(query, db[i], scheme).score
                                       : r16.score;
      }
      break;
    }
    case KernelKind::kInterSeq: {
      const SequenceViews slice(db.begin() + static_cast<std::ptrdiff_t>(begin),
                                db.begin() + static_cast<std::ptrdiff_t>(end));
      const InterSeqResult r = profiles.table().interseq(query, slice, scheme);
      result.cells = r.cells;
      result.scores = r.scores;
      for (std::size_t i = 0; i < slice.size(); ++i) {
        if (r.overflow[i]) {
          result.scores[i] = gotoh_score(query, slice[i], scheme).score;
          ++result.overflow_rescans;
        }
      }
      break;
    }
  }
  return result;
}

SearchResult search_database(std::span<const std::uint8_t> query,
                             const DbView& db, const ScoringScheme& scheme,
                             KernelKind kernel, Backend backend) {
  WallTimer timer;
  const SearchProfiles profiles(query, scheme, kernel, backend);
  SearchResult result = search_range(profiles, db, 0, db.size());
  result.seconds = timer.seconds();
  return result;
}

SearchResult search_database(const SearchProfiles& profiles, const DbView& db) {
  WallTimer timer;
  SearchResult result = search_range(profiles, db, 0, db.size());
  result.seconds = timer.seconds();
  return result;
}

SearchResult search_database(const seq::Sequence& query,
                             const std::vector<seq::Sequence>& db,
                             const ScoringScheme& scheme, KernelKind kernel,
                             Backend backend) {
  const DbView view = make_db_view(db);
  return search_database(
      std::span<const std::uint8_t>(query.residues.data(),
                                    query.residues.size()),
      view, scheme, kernel, backend);
}

const char* filter_mode_name(FilterMode mode) {
  switch (mode) {
    case FilterMode::kOff: return "off";
    case FilterMode::kHeuristic: return "heuristic";
  }
  return "unknown";
}

bool parse_filter_mode(const std::string& name, FilterMode& out) {
  if (name == "off") {
    out = FilterMode::kOff;
    return true;
  }
  if (name == "heuristic") {
    out = FilterMode::kHeuristic;
    return true;
  }
  return false;
}

void FilterConfig::validate() const {
  if (!enabled()) return;
  SWDUAL_REQUIRE(band >= 1, "filter band must be at least 1");
  SWDUAL_REQUIRE(std::isfinite(keep_factor) && keep_factor >= 1.0,
                 "filter keep_factor must be a finite value >= 1");
}

ScreenResult screen_range(const SearchProfiles& profiles, const DbView& db,
                          std::size_t begin, std::size_t end,
                          std::size_t band) {
  SWDUAL_REQUIRE(begin <= end && end <= db.size(),
                 "screen_range out of bounds");
  SWDUAL_REQUIRE(band >= 1, "filter band must be at least 1");
  const std::span<const std::uint8_t> query = profiles.query();
  const ScoringScheme& scheme = profiles.scheme();
  const std::size_t count = end - begin;
  ScreenResult result;
  result.scores.assign(count, 0);
  result.exact.assign(count, 0);
  result.edge_hit.assign(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    result.exact[i] =
        banded_covers_all(query.size(), db[begin + i].size(), band) ? 1 : 0;
  }
  if (query.empty()) return result;  // all scores 0, all bands covering

  if (profiles.kernel() == KernelKind::kScalar) {
    // The scalar kernel selection means "no SIMD": screen with the banded
    // reference so the whole pipeline stays on one code path.
    for (std::size_t i = begin; i < end; ++i) {
      const BandedResult r = banded_gotoh_score(query, db[i], scheme, band);
      result.scores[i - begin] = r.score;
      result.edge_hit[i - begin] = r.edge_hit ? 1 : 0;
      result.cells += r.cells;
    }
    return result;
  }

  const SequenceViews slice(db.begin() + static_cast<std::ptrdiff_t>(begin),
                            db.begin() + static_cast<std::ptrdiff_t>(end));
  const BandedBatchResult batch =
      profiles.table().banded(query, slice, scheme, band);
  result.cells = batch.cells;
  for (std::size_t i = 0; i < count; ++i) {
    if (batch.overflow[i]) {
      // Saturated even at 16 bits: rescreen this record with the 32-bit
      // banded reference (same results, wider accumulators).
      const BandedResult r =
          banded_gotoh_score(query, slice[i], scheme, band);
      result.scores[i] = r.score;
      result.edge_hit[i] = r.edge_hit ? 1 : 0;
    } else {
      result.scores[i] = batch.scores[i];
      result.edge_hit[i] = batch.edge_hit[i] ? 1 : 0;
    }
  }
  return result;
}

std::vector<std::uint32_t> filter_select_candidates(const ScreenResult& screen,
                                                    std::size_t top_k,
                                                    const FilterConfig& config,
                                                    FilterStats* stats) {
  const std::size_t n = screen.scores.size();
  const std::size_t keep = std::max<std::size_t>(
      top_k, static_cast<std::size_t>(
                 std::ceil(config.keep_factor * static_cast<double>(top_k))));
  std::vector<SearchHit> heap;
  heap.reserve(keep + 1);
  std::vector<std::uint32_t> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    push_top_hit(heap, {i, screen.scores[i]}, keep);
    if (screen.edge_hit[i]) {
      candidates.push_back(static_cast<std::uint32_t>(i));
      if (stats) ++stats->band_uncertain;
    }
  }
  candidates.reserve(candidates.size() + heap.size());
  for (const SearchHit& hit : heap) {
    candidates.push_back(static_cast<std::uint32_t>(hit.db_index));
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (stats) stats->candidates += candidates.size();
  return candidates;
}

FilteredSearchResult search_database_filtered(const SearchProfiles& profiles,
                                              const DbView& db,
                                              std::size_t top_k,
                                              const FilterConfig& config) {
  config.validate();
  WallTimer timer;
  FilteredSearchResult out;
  if (!config.enabled()) {
    out.result = search_range(profiles, db, 0, db.size());
    out.result.seconds = timer.seconds();
    out.hits = out.result.top(top_k);
    return out;
  }

  ScreenResult screen = screen_range(profiles, db, 0, db.size(), config.band);
  const std::vector<std::uint32_t> candidates =
      filter_select_candidates(screen, top_k, config, &out.stats);

  // Rescan only candidates whose screened score lacks the coverage
  // certificate; gather them into a compact view so the exact kernel can
  // batch them in one pass.
  DbView rescan;
  std::vector<std::uint32_t> rescan_index;
  for (const std::uint32_t c : candidates) {
    if (!screen.exact[c]) {
      rescan.push_back(db[c]);
      rescan_index.push_back(c);
    }
  }
  out.result.scores = std::move(screen.scores);
  out.result.cells = screen.cells;
  const SearchResult rescored =
      search_range(profiles, rescan, 0, rescan.size());
  out.result.cells += rescored.cells;
  out.result.overflow_rescans += rescored.overflow_rescans;
  for (std::size_t i = 0; i < rescan_index.size(); ++i) {
    out.result.scores[rescan_index[i]] = rescored.scores[i];
  }
  out.stats.rescans += rescan_index.size();

  // Only candidates are eligible for the ranking: their scores are exact,
  // so the hit list is correct whenever the screen retained the true top-k.
  std::vector<SearchHit> heap;
  for (const std::uint32_t c : candidates) {
    push_top_hit(heap, {c, out.result.scores[c]}, top_k);
  }
  finish_top_hits(heap);
  out.hits = std::move(heap);
  out.result.seconds = timer.seconds();
  return out;
}

FilteredSearchResult search_database_filtered(
    std::span<const std::uint8_t> query, const DbView& db,
    const ScoringScheme& scheme, KernelKind kernel, std::size_t top_k,
    const FilterConfig& config, Backend backend) {
  const SearchProfiles profiles(query, scheme, kernel, backend);
  return search_database_filtered(profiles, db, top_k, config);
}

}  // namespace swdual::align
