#include "align/search.h"

#include <algorithm>
#include <memory>

#include "align/kernel_interseq.h"
#include "align/kernel_striped.h"
#include "align/kernel_striped8.h"
#include "align/scalar.h"
#include "util/error.h"
#include "util/timer.h"

namespace swdual::align {

const char* kernel_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar: return "scalar";
    case KernelKind::kStriped: return "striped";
    case KernelKind::kStriped8: return "striped8";
    case KernelKind::kInterSeq: return "interseq";
  }
  return "unknown";
}

std::vector<SearchHit> SearchResult::top(std::size_t k) const {
  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    hits.push_back({i, scores[i]});
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const SearchHit& a, const SearchHit& b) {
                     return a.score > b.score;
                   });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

DbView make_db_view(const std::vector<seq::Sequence>& records) {
  DbView view;
  view.reserve(records.size());
  for (const seq::Sequence& record : records) {
    view.emplace_back(record.residues.data(), record.residues.size());
  }
  return view;
}

SearchResult search_database(std::span<const std::uint8_t> query,
                             const DbView& db, const ScoringScheme& scheme,
                             KernelKind kernel) {
  SearchResult result;
  result.scores.assign(db.size(), 0);
  WallTimer timer;

  switch (kernel) {
    case KernelKind::kScalar: {
      for (std::size_t i = 0; i < db.size(); ++i) {
        const ScoreResult r = gotoh_score(query, db[i], scheme);
        result.scores[i] = r.score;
        result.cells += r.cells;
      }
      break;
    }
    case KernelKind::kStriped: {
      if (query.empty()) break;
      const StripedProfile profile(query, *scheme.matrix);
      for (std::size_t i = 0; i < db.size(); ++i) {
        const StripedResult r = striped_score(profile, db[i], scheme.gap);
        result.cells += r.cells;
        if (r.overflow) {
          result.scores[i] = gotoh_score(query, db[i], scheme).score;
          ++result.overflow_rescans;
        } else {
          result.scores[i] = r.score;
        }
      }
      break;
    }
    case KernelKind::kStriped8: {
      // Tiered precision: bytes first, escalate saturated pairs to 16 bits,
      // and to the 32-bit oracle if even those saturate.
      if (query.empty()) break;
      const StripedProfileU8 profile8(query, *scheme.matrix);
      std::unique_ptr<StripedProfile> profile16;  // built on first escalation
      for (std::size_t i = 0; i < db.size(); ++i) {
        const StripedResult r8 = striped8_score(profile8, db[i], scheme.gap);
        result.cells += r8.cells;
        if (!r8.overflow) {
          result.scores[i] = r8.score;
          continue;
        }
        ++result.overflow_rescans;
        if (!profile16) {
          profile16 = std::make_unique<StripedProfile>(query, *scheme.matrix);
        }
        const StripedResult r16 =
            striped_score(*profile16, db[i], scheme.gap);
        result.scores[i] = r16.overflow
                               ? gotoh_score(query, db[i], scheme).score
                               : r16.score;
      }
      break;
    }
    case KernelKind::kInterSeq: {
      const InterSeqResult r = interseq_scores(query, db, scheme);
      result.cells = r.cells;
      result.scores = r.scores;
      for (std::size_t i = 0; i < db.size(); ++i) {
        if (r.overflow[i]) {
          result.scores[i] = gotoh_score(query, db[i], scheme).score;
          ++result.overflow_rescans;
        }
      }
      break;
    }
  }

  result.seconds = timer.seconds();
  return result;
}

SearchResult search_database(const seq::Sequence& query,
                             const std::vector<seq::Sequence>& db,
                             const ScoringScheme& scheme, KernelKind kernel) {
  const DbView view = make_db_view(db);
  return search_database(
      std::span<const std::uint8_t>(query.residues.data(),
                                    query.residues.size()),
      view, scheme, kernel);
}

}  // namespace swdual::align
