#include "align/kernel_interseq.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "align/simd16.h"
#include "util/error.h"

namespace swdual::align {

namespace {

constexpr std::int16_t kPadScore = -30000;

/// DP state for one group of up to eight database sequences.
struct GroupState {
  std::vector<std::int16_t> h;  // H[i], 8 lanes per query position
  std::vector<std::int16_t> e;  // E[i], 8 lanes per query position
  V16 v_max = V16::zero();
};

}  // namespace

InterSeqResult interseq_scores(std::span<const std::uint8_t> query,
                               const SequenceViews& db,
                               const ScoringScheme& scheme) {
  InterSeqResult result;
  result.scores.assign(db.size(), 0);
  result.overflow.assign(db.size(), false);
  for (const auto& seq : db) {
    result.cells += static_cast<std::uint64_t>(query.size()) * seq.size();
  }
  if (query.empty() || db.empty()) return result;

  const QueryProfile profile(query, *scheme.matrix);
  const std::size_t m = query.size();
  // Sentinel row: padding lanes gather from here once their sequence ends.
  const std::vector<std::int16_t> pad_row(m, kPadScore);

  // Process longest-first so lanes in a group have similar lengths and the
  // padded tail (pure overhead) stays short — the batching strategy of
  // CUDASW++ and SWIPE.
  std::vector<std::size_t> order(db.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return db[a].size() > db[b].size();
  });

  const V16 v_gap_extend = V16::splat(static_cast<std::int16_t>(scheme.gap.extend));
  const V16 v_gap_open_extend = V16::splat(
      static_cast<std::int16_t>(scheme.gap.open + scheme.gap.extend));
  const V16 v_zero = V16::zero();

  for (std::size_t group_start = 0; group_start < order.size();
       group_start += kLanes16) {
    const std::size_t lanes_used =
        std::min(kLanes16, order.size() - group_start);
    std::size_t max_len = 0;
    for (std::size_t l = 0; l < lanes_used; ++l) {
      max_len = std::max(max_len, db[order[group_start + l]].size());
    }
    if (max_len == 0) continue;

    GroupState state;
    state.h.assign(m * kLanes16, 0);
    state.e.assign(m * kLanes16, 0);

    for (std::size_t j = 0; j < max_len; ++j) {
      // Per-lane profile rows for this database column.
      const std::int16_t* rows[kLanes16];
      for (std::size_t l = 0; l < kLanes16; ++l) {
        if (l < lanes_used && j < db[order[group_start + l]].size()) {
          rows[l] = profile.row(db[order[group_start + l]][j]);
        } else {
          rows[l] = pad_row.data();
        }
      }

      V16 v_diag = V16::zero();  // H[i-1][j-1]; boundary row is 0
      V16 v_f = V16::zero();     // F[i][j], carried down the column
      for (std::size_t i = 0; i < m; ++i) {
        alignas(16) std::int16_t gathered[kLanes16];
        for (std::size_t l = 0; l < kLanes16; ++l) gathered[l] = rows[l][i];
        const V16 v_score = V16::load(gathered);
        const V16 v_h_prev = V16::load(state.h.data() + i * kLanes16);
        const V16 v_e_prev = V16::load(state.e.data() + i * kLanes16);

        // E: horizontal gap from column j-1 (Eq. 3).
        const V16 v_e = max(subs(v_e_prev, v_gap_extend),
                            subs(v_h_prev, v_gap_open_extend));
        // H (Eq. 2): diagonal uses H[i-1][j-1] saved from the previous i.
        V16 v_h = adds(v_diag, v_score);
        v_h = max(v_h, v_e);
        v_h = max(v_h, v_f);
        v_h = max(v_h, v_zero);
        state.v_max = max(state.v_max, v_h);

        v_diag = v_h_prev;
        v_h.store(state.h.data() + i * kLanes16);
        v_e.store(state.e.data() + i * kLanes16);

        // F for the next query position (Eq. 4).
        v_f = max(subs(v_f, v_gap_extend), subs(v_h, v_gap_open_extend));
      }
    }

    for (std::size_t l = 0; l < lanes_used; ++l) {
      const std::size_t original = order[group_start + l];
      const std::int16_t best = state.v_max.lane(l);
      result.scores[original] = best;
      result.overflow[original] =
          best >= std::numeric_limits<std::int16_t>::max();
    }
  }
  return result;
}

}  // namespace swdual::align
