#include "align/kernel_interseq.h"

#include "align/backend.h"

namespace swdual::align {

InterSeqResult interseq_scores(std::span<const std::uint8_t> query,
                               const SequenceViews& db,
                               const ScoringScheme& scheme) {
  // Batch width tracks the active backend's 16-bit lane count (8/16/32);
  // per-sequence scores are independent of the batch a sequence lands in,
  // so results are bit-identical across backends.
  return kernel_table(best_backend(KernelKind::kInterSeq))
      .interseq(query, db, scheme);
}

}  // namespace swdual::align
