#include "align/wavefront.h"

#include <algorithm>
#include <future>
#include <vector>

#include "util/error.h"

namespace swdual::align {

namespace {

constexpr int kNegInf = -(1 << 28);

/// Mutable shared state of one wavefront execution.
struct WavefrontState {
  // Bottom boundaries, indexed by global column (1-based like the DP):
  // values of H and F on the last computed row, per column.
  std::vector<int> h_bottom;
  std::vector<int> f_bottom;
  // Right boundaries per row-chunk: H and E at the last computed column for
  // each row inside the chunk. Only tile (r, c) and (r, c+1) touch row r's
  // buffers, and they are wave-ordered, so no locking is needed.
  std::vector<std::vector<int>> h_right;
  std::vector<std::vector<int>> e_right;
  // corner(r, c): H at (top-left-1, top-left-1) of tile (r, c).
  std::vector<int> corners;  // (chunks+1) x (blocks+1), row-major
  std::size_t corner_stride = 0;

  int& corner(std::size_t r, std::size_t c) {
    return corners[r * corner_stride + c];
  }
};

struct TileResult {
  int best = 0;
  std::size_t end_query = 0;
  std::size_t end_db = 0;
};

}  // namespace

ScoreResult wavefront_gotoh_score(std::span<const std::uint8_t> query,
                                  std::span<const std::uint8_t> db,
                                  const ScoringScheme& scheme,
                                  ThreadPool& pool,
                                  const WavefrontConfig& config) {
  SWDUAL_REQUIRE(config.row_chunk >= 1, "row chunk must be >= 1");
  SWDUAL_REQUIRE(config.col_blocks >= 1, "need at least one column block");
  const ScoreMatrix& matrix = *scheme.matrix;
  const int gs = scheme.gap.open;
  const int ge = scheme.gap.extend;
  SWDUAL_REQUIRE(gs >= 0 && ge >= 0, "gap penalties are positive magnitudes");

  ScoreResult result;
  result.cells = static_cast<std::uint64_t>(query.size()) * db.size();
  if (query.empty() || db.empty()) return result;

  const std::size_t m = query.size();
  const std::size_t n = db.size();
  const std::size_t chunks = (m + config.row_chunk - 1) / config.row_chunk;
  const std::size_t requested_blocks = std::min(config.col_blocks, n);
  const std::size_t block_width = (n + requested_blocks - 1) / requested_blocks;
  // Rounding block_width up can cover n with fewer blocks than requested;
  // use the effective count so no tile starts beyond the last column.
  const std::size_t blocks = (n + block_width - 1) / block_width;

  WavefrontState state;
  state.h_bottom.assign(n + 1, 0);
  state.f_bottom.assign(n + 1, kNegInf);
  state.h_right.assign(chunks, {});
  state.e_right.assign(chunks, {});
  state.corner_stride = blocks + 1;
  state.corners.assign((chunks + 1) * (blocks + 1), 0);
  for (std::size_t r = 0; r < chunks; ++r) {
    const std::size_t row_begin = r * config.row_chunk;
    const std::size_t rows = std::min(config.row_chunk, m - row_begin);
    state.h_right[r].assign(rows, 0);        // H boundary column is 0
    state.e_right[r].assign(rows, kNegInf);  // E undefined at column 0
  }

  // One tile: rows [row_begin, row_begin+rows), cols [col_begin, +cols).
  const auto run_tile = [&](std::size_t r, std::size_t c) -> TileResult {
    const std::size_t row_begin = r * config.row_chunk;
    const std::size_t rows = std::min(config.row_chunk, m - row_begin);
    const std::size_t col_begin = c * block_width;
    const std::size_t cols = std::min(block_width, n - col_begin);

    const int incoming_corner = state.corner(r, c);

    // Local copies of the top boundary for this tile's columns.
    // h_top[j] = H(row_begin-1, col_begin+j), f_top likewise.
    std::vector<int> h_row(cols + 1);
    std::vector<int> f_row(cols + 1);
    h_row[0] = 0;  // unused slot; diag handled explicitly
    f_row[0] = kNegInf;
    for (std::size_t j = 0; j < cols; ++j) {
      h_row[j + 1] = state.h_bottom[col_begin + j + 1];
      f_row[j + 1] = state.f_bottom[col_begin + j + 1];
    }

    TileResult tile;
    std::vector<int>& h_right = state.h_right[r];
    std::vector<int>& e_right = state.e_right[r];
    int corner = incoming_corner;  // H(top-1, left-1) for the current row

    for (std::size_t i = 0; i < rows; ++i) {
      const std::uint8_t q_code = query[row_begin + i];
      const std::int8_t* scores = matrix.row(q_code);
      // Left boundary for this row: H and E at col_begin-1.
      int diag = corner;             // H(global i-1, col_begin-1)
      corner = h_right[i];           // becomes the next row's corner
      int h_left = h_right[i];
      int e = e_right[i];
      for (std::size_t j = 0; j < cols; ++j) {
        const int f =
            std::max(f_row[j + 1] - ge, h_row[j + 1] - gs - ge);
        e = std::max(e - ge, h_left - gs - ge);
        int h = diag + scores[db[col_begin + j]];
        h = std::max({h, e, f, 0});
        diag = h_row[j + 1];
        h_row[j + 1] = h;
        f_row[j + 1] = f;
        h_left = h;
        if (h > tile.best) {
          tile.best = h;
          tile.end_query = row_begin + i + 1;
          tile.end_db = col_begin + j + 1;
        }
      }
      h_right[i] = h_left;  // H at this tile's last column, row i
      e_right[i] = e;
    }

    // Publish the new bottom boundary for (r+1, c) and the bottom-right
    // corner for (r+1, c+1). Only this tile writes that corner slot, and
    // its reader runs two waves later, so no synchronization is needed.
    for (std::size_t j = 0; j < cols; ++j) {
      state.h_bottom[col_begin + j + 1] = h_row[j + 1];
      state.f_bottom[col_begin + j + 1] = f_row[j + 1];
    }
    state.corner(r + 1, c + 1) = h_row[cols];
    return tile;
  };

  // Wavefront sweep: tiles with r + c == wave are independent.
  TileResult best;
  for (std::size_t wave = 0; wave < chunks + blocks - 1; ++wave) {
    std::vector<std::future<TileResult>> futures;
    for (std::size_t c = 0; c < blocks; ++c) {
      if (wave < c) continue;
      const std::size_t r = wave - c;
      if (r >= chunks) continue;
      futures.push_back(pool.submit(run_tile, r, c));
    }
    for (auto& future : futures) {
      const TileResult tile = future.get();
      if (tile.best > best.best) best = tile;
    }
  }

  result.score = best.best;
  result.end_query = best.end_query;
  result.end_db = best.end_db;
  return result;
}

}  // namespace swdual::align
