// Internal: per-backend kernel-table providers.
//
// Each kernel_backend_<name>.cpp defines its provider; a provider returns
// nullptr when the backend was not compiled into this binary (e.g. the
// AVX-512 TU built by a compiler without -mavx512bw support, or SSE2 on a
// non-x86 target). backend.cpp assembles the dispatch from these. Not part
// of the public API — include align/backend.h instead.
#pragma once

#include "align/backend.h"

namespace swdual::align::detail {

const KernelTable* scalar_kernel_table();  // never nullptr
const KernelTable* sse2_kernel_table();
const KernelTable* avx2_kernel_table();
const KernelTable* avx512_kernel_table();

}  // namespace swdual::align::detail
