// Shared LRU cache of ready-to-use query profiles.
//
// Building a SearchProfiles (striped profile layout, lazy 16-bit escalation
// state, kernel-table resolution) is pure per-query work: it depends only on
// (query residues, scoring scheme, kernel, resolved SIMD backend). A service
// that sees the same query repeatedly — or the same query fanned out to
// several workers in one batch — should build that state once and share it,
// the way SWAPHI keeps one resident query context across a whole multi-pass
// search. Entries own a copy of the query residues, so the profiles stay
// valid independent of the submitting caller's buffers, and acquire()
// returns shared ownership: an entry evicted by the LRU stays alive for as
// long as any in-flight scan still holds it.
//
// Thread-safe. Lookups are served under one mutex; a miss builds the
// profiles *outside* the lock (construction cost must not serialize
// unrelated workers), and a racing duplicate build is resolved in favour of
// the first entry inserted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "align/search.h"
#include "util/mutex.h"

namespace swdual::align {

/// Cache key fragment for a scoring configuration: matrix identity (name,
/// dimension, CRC-32 of the score table — robust against two matrices that
/// share a name) plus the affine-gap penalties. Two schemes with equal keys
/// produce bit-identical scores for every kernel.
std::string scoring_key(const ScoringScheme& scheme);

/// One cached profile set. Owns the query residues its SearchProfiles views
/// point into.
class CachedProfiles {
 public:
  const SearchProfiles& profiles() const { return *profiles_; }
  std::span<const std::uint8_t> query() const {
    return {residues_.data(), residues_.size()};
  }

 private:
  friend class ProfileCache;
  CachedProfiles() = default;

  std::vector<std::uint8_t> residues_;
  std::optional<SearchProfiles> profiles_;  ///< views into residues_
};

class ProfileCache {
 public:
  /// `capacity` = maximum retained entries (≥ 1).
  explicit ProfileCache(std::size_t capacity = 64);

  ProfileCache(const ProfileCache&) = delete;
  ProfileCache& operator=(const ProfileCache&) = delete;

  /// Get-or-build the profile set for (query, scheme, kernel, backend).
  /// kAuto resolves to the widest backend the host supports, so every
  /// caller that lets the dispatcher decide shares one entry.
  std::shared_ptr<const CachedProfiles> acquire(
      std::span<const std::uint8_t> query, const ScoringScheme& scheme,
      KernelKind kernel, Backend backend = Backend::kAuto);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };
  Stats stats() const;

  /// The cache's capability, for lock-order declarations in owning layers
  /// (the serve stack declares service → result-cache → profile-cache).
  /// It is a leaf capability: no ProfileCache method acquires any other
  /// lock while holding it. Never lock it directly — every public method
  /// is self-locking.
  util::Mutex& capability() const SWDUAL_RETURN_CAPABILITY(mutex_) {
    return mutex_;
  }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const CachedProfiles>>;

  std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::list<Entry> lru_ SWDUAL_GUARDED_BY(mutex_);  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      SWDUAL_GUARDED_BY(mutex_);
  std::uint64_t hits_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ SWDUAL_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ SWDUAL_GUARDED_BY(mutex_) = 0;
};

}  // namespace swdual::align
