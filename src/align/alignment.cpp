#include "align/alignment.h"

#include <sstream>

#include "util/error.h"

namespace swdual::align {

std::size_t Alignment::matches() const {
  std::size_t count = 0;
  for (std::size_t c = 0; c < aligned_query.size(); ++c) {
    if (aligned_query[c] != '-' && aligned_query[c] == aligned_db[c]) ++count;
  }
  return count;
}

std::size_t Alignment::mismatches() const {
  std::size_t count = 0;
  for (std::size_t c = 0; c < aligned_query.size(); ++c) {
    if (aligned_query[c] != '-' && aligned_db[c] != '-' &&
        aligned_query[c] != aligned_db[c]) {
      ++count;
    }
  }
  return count;
}

std::size_t Alignment::gaps() const {
  std::size_t count = 0;
  for (std::size_t c = 0; c < aligned_query.size(); ++c) {
    if (aligned_query[c] == '-' || aligned_db[c] == '-') ++count;
  }
  return count;
}

double Alignment::identity() const {
  if (aligned_query.empty()) return 0.0;
  return 100.0 * static_cast<double>(matches()) /
         static_cast<double>(aligned_query.size());
}

std::string Alignment::cigar() const {
  SWDUAL_CHECK(aligned_query.size() == aligned_db.size(),
               "alignment strings must have equal length");
  if (aligned_query.empty()) return {};

  std::string out;
  std::size_t query_used = 0, db_used = 0;
  char run_op = 0;
  std::size_t run_len = 0;
  const auto flush = [&] {
    if (run_len > 0) out += std::to_string(run_len) + run_op;
  };
  for (std::size_t c = 0; c < aligned_query.size(); ++c) {
    const bool q_gap = aligned_query[c] == '-';
    const bool d_gap = aligned_db[c] == '-';
    SWDUAL_CHECK(!(q_gap && d_gap), "alignment column is gap against gap");
    const char op = q_gap ? 'D' : (d_gap ? 'I' : 'M');
    if (!q_gap) ++query_used;
    if (!d_gap) ++db_used;
    if (op == run_op) {
      ++run_len;
    } else {
      flush();
      run_op = op;
      run_len = 1;
    }
  }
  flush();

  // A non-empty alignment carries 1-based inclusive coordinates; the M+I
  // columns must consume exactly the traced query range and the M+D
  // columns exactly the traced database range.
  SWDUAL_CHECK(query_begin >= 1 && query_end >= query_begin &&
                   query_used == query_end - query_begin + 1,
               "CIGAR query consumption disagrees with traced coordinates");
  SWDUAL_CHECK(db_begin >= 1 && db_end >= db_begin &&
                   db_used == db_end - db_begin + 1,
               "CIGAR db consumption disagrees with traced coordinates");
  return out;
}

int cigar_score(const std::string& cigar,
                std::span<const std::uint8_t> query,
                std::span<const std::uint8_t> db, std::size_t query_begin,
                std::size_t db_begin, const ScoringScheme& scheme) {
  if (cigar.empty()) return 0;
  SWDUAL_REQUIRE(query_begin >= 1 && db_begin >= 1,
                 "cigar_score coordinates are 1-based");
  const ScoreMatrix& matrix = *scheme.matrix;
  std::size_t q = query_begin - 1;  // 0-based cursors into the raw residues
  std::size_t d = db_begin - 1;
  int score = 0;
  std::size_t i = 0;
  while (i < cigar.size()) {
    std::size_t len = 0;
    const std::size_t digits_start = i;
    while (i < cigar.size() && cigar[i] >= '0' && cigar[i] <= '9') {
      len = len * 10 + static_cast<std::size_t>(cigar[i] - '0');
      ++i;
    }
    SWDUAL_REQUIRE(i > digits_start && len > 0 && i < cigar.size(),
                   "malformed CIGAR run: " + cigar);
    const char op = cigar[i++];
    switch (op) {
      case 'M':
        SWDUAL_REQUIRE(q + len <= query.size() && d + len <= db.size(),
                       "CIGAR walks outside the sequences: " + cigar);
        for (std::size_t c = 0; c < len; ++c) {
          score += matrix.score(query[q + c], db[d + c]);
        }
        q += len;
        d += len;
        break;
      case 'I':
        SWDUAL_REQUIRE(q + len <= query.size(),
                       "CIGAR walks outside the query: " + cigar);
        q += len;
        score -= scheme.gap.open + static_cast<int>(len) * scheme.gap.extend;
        break;
      case 'D':
        SWDUAL_REQUIRE(d + len <= db.size(),
                       "CIGAR walks outside the database record: " + cigar);
        d += len;
        score -= scheme.gap.open + static_cast<int>(len) * scheme.gap.extend;
        break;
      default:
        SWDUAL_REQUIRE(false, std::string("unknown CIGAR op '") + op + "'");
    }
  }
  return score;
}

std::string render_alignment(const Alignment& alignment, std::size_t width) {
  SWDUAL_REQUIRE(width > 0, "render width must be positive");
  SWDUAL_REQUIRE(alignment.aligned_query.size() == alignment.aligned_db.size(),
                 "alignment strings must have equal length");
  std::ostringstream os;
  const std::size_t len = alignment.aligned_query.size();
  for (std::size_t start = 0; start < len; start += width) {
    const std::size_t chunk = std::min(width, len - start);
    os << "query: " << alignment.aligned_query.substr(start, chunk) << '\n';
    os << "       ";
    for (std::size_t c = start; c < start + chunk; ++c) {
      const char q = alignment.aligned_query[c];
      const char d = alignment.aligned_db[c];
      if (q == '-' || d == '-') {
        os << ' ';
      } else if (q == d) {
        os << '|';
      } else {
        os << '.';
      }
    }
    os << '\n';
    os << "db:    " << alignment.aligned_db.substr(start, chunk) << '\n';
  }
  os << "score = " << alignment.score << '\n';
  return os.str();
}

}  // namespace swdual::align
