#include "align/alignment.h"

#include <sstream>

#include "util/error.h"

namespace swdual::align {

std::size_t Alignment::matches() const {
  std::size_t count = 0;
  for (std::size_t c = 0; c < aligned_query.size(); ++c) {
    if (aligned_query[c] != '-' && aligned_query[c] == aligned_db[c]) ++count;
  }
  return count;
}

std::size_t Alignment::mismatches() const {
  std::size_t count = 0;
  for (std::size_t c = 0; c < aligned_query.size(); ++c) {
    if (aligned_query[c] != '-' && aligned_db[c] != '-' &&
        aligned_query[c] != aligned_db[c]) {
      ++count;
    }
  }
  return count;
}

std::size_t Alignment::gaps() const {
  std::size_t count = 0;
  for (std::size_t c = 0; c < aligned_query.size(); ++c) {
    if (aligned_query[c] == '-' || aligned_db[c] == '-') ++count;
  }
  return count;
}

double Alignment::identity() const {
  if (aligned_query.empty()) return 0.0;
  return 100.0 * static_cast<double>(matches()) /
         static_cast<double>(aligned_query.size());
}

std::string render_alignment(const Alignment& alignment, std::size_t width) {
  SWDUAL_REQUIRE(width > 0, "render width must be positive");
  SWDUAL_REQUIRE(alignment.aligned_query.size() == alignment.aligned_db.size(),
                 "alignment strings must have equal length");
  std::ostringstream os;
  const std::size_t len = alignment.aligned_query.size();
  for (std::size_t start = 0; start < len; start += width) {
    const std::size_t chunk = std::min(width, len - start);
    os << "query: " << alignment.aligned_query.substr(start, chunk) << '\n';
    os << "       ";
    for (std::size_t c = start; c < start + chunk; ++c) {
      const char q = alignment.aligned_query[c];
      const char d = alignment.aligned_db[c];
      if (q == '-' || d == '-') {
        os << ' ';
      } else if (q == d) {
        os << '|';
      } else {
        os << '.';
      }
    }
    os << '\n';
    os << "db:    " << alignment.aligned_db.substr(start, chunk) << '\n';
  }
  os << "score = " << alignment.score << '\n';
  return os.str();
}

}  // namespace swdual::align
