// Reusable per-thread DP workspace for the alignment kernels.
//
// A database search calls the striped kernels once per record; without a
// workspace each call allocates (and frees) three DP rows, which on short
// records costs as much as the scan itself. AlignScratch keeps those rows
// alive between calls: buffers are zero-filled on acquisition (the kernels
// rely on all-zero initial state) but their capacity is reused, so a scan
// over a million records performs a handful of allocations instead of
// millions. Each kernel thread owns one instance via thread_scratch() —
// chunked parallel scans therefore never contend on it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/aligned.h"

namespace swdual::align {

class AlignScratch {
 public:
  /// Zero-filled buffers of `n` elements each, valid until the next
  /// acquisition of the same group. The three u8 rows back the byte-striped
  /// kernel (H load / H store / E); the i16 rows back the 16-bit one.
  struct RowsU8 {
    std::uint8_t* h_load;
    std::uint8_t* h_store;
    std::uint8_t* e;
  };
  struct RowsI16 {
    std::int16_t* h_load;
    std::int16_t* h_store;
    std::int16_t* e;
  };

  RowsU8 rows_u8(std::size_t n) {
    h8_load_.assign(n, 0);
    h8_store_.assign(n, 0);
    e8_.assign(n, 0);
    return {h8_load_.data(), h8_store_.data(), e8_.data()};
  }

  RowsI16 rows_i16(std::size_t n) {
    h16_load_.assign(n, 0);
    h16_store_.assign(n, 0);
    e16_.assign(n, 0);
    return {h16_load_.data(), h16_store_.data(), e16_.data()};
  }

  /// Inter-sequence kernel state: H and E columns (zeroed), plus a sentinel
  /// profile row of `pad` repeated `pad_len` times (lanes past the end of
  /// their sequence gather from it).
  struct InterSeqState {
    std::int16_t* h;
    std::int16_t* e;
    const std::int16_t* pad_row;
  };

  InterSeqState interseq_state(std::size_t n, std::size_t pad_len,
                               std::int16_t pad) {
    iseq_h_.assign(n, 0);
    iseq_e_.assign(n, 0);
    pad_row_.assign(pad_len, pad);
    return {iseq_h_.data(), iseq_e_.data(), pad_row_.data()};
  }

 private:
  // 64-byte-aligned so wide vector loads at lane-multiple offsets never
  // straddle cache lines (util/aligned.h).
  AlignedVector<std::uint8_t> h8_load_, h8_store_, e8_;
  AlignedVector<std::int16_t> h16_load_, h16_store_, e16_;
  AlignedVector<std::int16_t> iseq_h_, iseq_e_, pad_row_;
};

/// The calling thread's workspace (thread-local, created on first use).
AlignScratch& thread_scratch();

}  // namespace swdual::align
