// Reusable per-thread DP workspace for the alignment kernels.
//
// A database search calls the striped kernels once per record; without a
// workspace each call allocates (and frees) three DP rows, which on short
// records costs as much as the scan itself. AlignScratch keeps those rows
// alive between calls: buffers are zero-filled on acquisition (the kernels
// rely on all-zero initial state) but their capacity is reused, so a scan
// over a million records performs a handful of allocations instead of
// millions. Each kernel thread owns one instance via thread_scratch() —
// chunked parallel scans therefore never contend on it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/aligned.h"

namespace swdual::align {

class AlignScratch {
 public:
  /// Zero-filled buffers of `n` elements each, valid until the next
  /// acquisition of the same group. The three u8 rows back the byte-striped
  /// kernel (H load / H store / E); the i16 rows back the 16-bit one.
  struct RowsU8 {
    std::uint8_t* h_load;
    std::uint8_t* h_store;
    std::uint8_t* e;
  };
  struct RowsI16 {
    std::int16_t* h_load;
    std::int16_t* h_store;
    std::int16_t* e;
  };

  RowsU8 rows_u8(std::size_t n) {
    h8_load_.assign(n, 0);
    h8_store_.assign(n, 0);
    e8_.assign(n, 0);
    return {h8_load_.data(), h8_store_.data(), e8_.data()};
  }

  RowsI16 rows_i16(std::size_t n) {
    h16_load_.assign(n, 0);
    h16_store_.assign(n, 0);
    e16_.assign(n, 0);
    return {h16_load_.data(), h16_store_.data(), e16_.data()};
  }

  /// Inter-sequence kernel state: H and E columns (zeroed), `n` elements
  /// each (query length x lane count).
  struct InterSeqState {
    std::int16_t* h;
    std::int16_t* e;
  };

  InterSeqState interseq_state(std::size_t n) {
    iseq_h_.assign(n, 0);
    iseq_e_.assign(n, 0);
    return {iseq_h_.data(), iseq_e_.data()};
  }

  /// SWIPE-style per-column database profile: (alphabet size) x (lane
  /// count) int16 scores rebuilt for every database column. Contents are
  /// NOT zeroed — the kernel overwrites every slot before reading.
  std::int16_t* interseq_dprofile(std::size_t n) {
    if (dprofile_.size() < n) dprofile_.resize(n);
    return dprofile_.data();
  }

  /// Extended substitution rows (one extra padding column per row), built
  /// once per interseq call. Contents are NOT zeroed.
  std::int16_t* interseq_ext_rows(std::size_t n) {
    if (ext_rows_.size() < n) ext_rows_.resize(n);
    return ext_rows_.data();
  }

  /// Reusable lane-batch order buffer — keeps the interseq refill path
  /// heap-free when the caller's batch is already length-sorted (the SWDB
  /// v2 lane-batch index path).
  AlignedVector<std::uint32_t>& interseq_order() { return iseq_order_; }

  /// Banded-screen byte-tier state: H and E columns (zeroed), `n` elements
  /// each. Separate from the interseq buffers so the 16-bit escalation pass
  /// (which reuses them) never aliases the byte tier's.
  struct BandedStateU8 {
    std::uint8_t* h;
    std::uint8_t* e;
  };

  BandedStateU8 banded_state_u8(std::size_t n) {
    b8_h_.assign(n, 0);
    b8_e_.assign(n, 0);
    return {b8_h_.data(), b8_e_.data()};
  }

  /// Byte-tier per-column database profile for the banded screen. Contents
  /// are NOT zeroed — the kernel overwrites every slot before reading.
  std::uint8_t* banded_dprofile_u8(std::size_t n) {
    if (b8_dprofile_.size() < n) b8_dprofile_.resize(n);
    return b8_dprofile_.data();
  }

  /// Byte-tier extended substitution rows (biased, one padding column per
  /// row), built once per banded-screen call. Contents are NOT zeroed.
  std::uint8_t* banded_ext_rows_u8(std::size_t n) {
    if (b8_ext_rows_.size() < n) b8_ext_rows_.resize(n);
    return b8_ext_rows_.data();
  }

  /// Longest-first order buffer for the banded screen — its own buffer so a
  /// screen inside an interseq-driven search never clobbers interseq_order.
  AlignedVector<std::uint32_t>& banded_order() { return banded_order_; }

 private:
  // 64-byte-aligned so wide vector loads at lane-multiple offsets never
  // straddle cache lines (util/aligned.h).
  AlignedVector<std::uint8_t> h8_load_, h8_store_, e8_;
  AlignedVector<std::int16_t> h16_load_, h16_store_, e16_;
  AlignedVector<std::int16_t> iseq_h_, iseq_e_;
  AlignedVector<std::int16_t> dprofile_, ext_rows_;
  AlignedVector<std::uint32_t> iseq_order_;
  AlignedVector<std::uint8_t> b8_h_, b8_e_, b8_dprofile_, b8_ext_rows_;
  AlignedVector<std::uint32_t> banded_order_;
};

/// The calling thread's workspace (thread-local, created on first use).
AlignScratch& thread_scratch();

}  // namespace swdual::align
