#include "align/kernel_striped.h"

#include "align/backend.h"
#include "align/kernel_striped_impl.h"
#include "align/simd16.h"

namespace swdual::align {

StripedResult striped_score(const StripedProfile& profile,
                            std::span<const std::uint8_t> db,
                            const GapPenalty& gap) {
  // Narrow fixed-width entry point (8 16-bit lanes: SSE2 on x86, emulated
  // elsewhere). Wider widths are reached through align::kernel_table(),
  // with a profile striped for the matching lane count.
  return striped_score_impl<V16>(profile, db, gap);
}

StripedResult striped_score(std::span<const std::uint8_t> query,
                            std::span<const std::uint8_t> db,
                            const ScoringScheme& scheme) {
  if (query.empty()) {
    StripedResult empty;
    return empty;
  }
  // Convenience path: one-shot profile, built for (and run on) the best
  // backend this host offers.
  const Backend backend = best_backend(KernelKind::kStriped);
  const StripedProfile profile(query, *scheme.matrix,
                               backend_lanes16(backend));
  return kernel_table(backend).striped(profile, db, scheme.gap);
}

}  // namespace swdual::align
