#include "align/kernel_striped.h"

#include <limits>
#include <vector>

#include "align/simd16.h"
#include "util/error.h"

namespace swdual::align {

StripedResult striped_score(const StripedProfile& profile,
                            std::span<const std::uint8_t> db,
                            const GapPenalty& gap) {
  // A zero extension penalty would let a dominated-but-constant F chain spin
  // the lazy-F loop forever; the scalar oracle handles that configuration.
  SWDUAL_REQUIRE(gap.extend >= 1,
                 "striped kernel requires gap.extend >= 1");
  SWDUAL_REQUIRE(gap.open >= 0, "gap penalties are positive magnitudes");
  StripedResult result;
  const std::size_t seg_len = profile.segment_length();
  result.cells =
      static_cast<std::uint64_t>(profile.query_length()) * db.size();
  if (db.empty() || profile.query_length() == 0) return result;

  const V16 v_gap_extend = V16::splat(static_cast<std::int16_t>(gap.extend));
  const V16 v_gap_open_extend =
      V16::splat(static_cast<std::int16_t>(gap.open + gap.extend));
  const V16 v_zero = V16::zero();

  // H and E, striped over the query; double-buffered H (load = column j-1,
  // store = column j). All state starts at 0 — safe for local alignment
  // because H >= 0 everywhere and E/F chains seeded from 0 never beat the
  // true recurrence (gap penalties are subtracted from 0 immediately).
  std::vector<std::int16_t> h_load_buf(seg_len * kLanes16, 0);
  std::vector<std::int16_t> h_store_buf(seg_len * kLanes16, 0);
  std::vector<std::int16_t> e_buf(seg_len * kLanes16, 0);
  std::int16_t* h_load = h_load_buf.data();
  std::int16_t* h_store = h_store_buf.data();
  std::int16_t* e_ptr = e_buf.data();

  V16 v_max = V16::zero();

  for (std::size_t j = 0; j < db.size(); ++j) {
    const std::int16_t* scores = profile.row(db[j]);
    V16 v_f = V16::zero();
    // Diagonal seed: H[last segment] of column j-1, lanes shifted up so each
    // lane reads the previous query position; lane 0 gets the H=0 boundary.
    V16 v_h = V16::load(h_load + (seg_len - 1) * kLanes16).shift_lanes_up(0);

    for (std::size_t s = 0; s < seg_len; ++s) {
      v_h = adds(v_h, V16::load(scores + s * kLanes16));
      const V16 v_e = V16::load(e_ptr + s * kLanes16);
      v_h = max(v_h, v_e);
      v_h = max(v_h, v_f);
      v_h = max(v_h, v_zero);
      v_max = max(v_max, v_h);
      v_h.store(h_store + s * kLanes16);

      const V16 v_h_gap = subs(v_h, v_gap_open_extend);
      max(subs(v_e, v_gap_extend), v_h_gap).store(e_ptr + s * kLanes16);
      v_f = max(subs(v_f, v_gap_extend), v_h_gap);

      v_h = V16::load(h_load + s * kLanes16);
    }

    // Lazy F (Farrar): propagate vertical-gap chains that wrap across lanes.
    // Continue while F strictly beats re-opening a gap from H at the current
    // segment (once dominated everywhere, every later contribution of this
    // chain is dominated by an H-seeded chain the main loop already carried).
    // E is refreshed from corrected H so Eq. (3) sees final column values.
    // The shifted-in lane must be "minus infinity": a 0 fill would compare
    // greater than H−(Gs+Ge) whenever H is small and spin this loop forever.
    constexpr std::int16_t kNoGapChain = -30000;
    v_f = v_f.shift_lanes_up(kNoGapChain);
    std::size_t s = 0;
    while (any_gt(v_f, subs(V16::load(h_store + s * kLanes16),
                            v_gap_open_extend))) {
      const V16 v_h_cur = max(V16::load(h_store + s * kLanes16), v_f);
      v_h_cur.store(h_store + s * kLanes16);
      v_max = max(v_max, v_h_cur);
      const V16 v_h_gap = subs(v_h_cur, v_gap_open_extend);
      max(V16::load(e_ptr + s * kLanes16), v_h_gap)
          .store(e_ptr + s * kLanes16);
      v_f = subs(v_f, v_gap_extend);
      if (++s >= seg_len) {
        s = 0;
        v_f = v_f.shift_lanes_up(kNoGapChain);
      }
    }

    std::swap(h_load, h_store);
  }

  const std::int16_t best = v_max.hmax();
  // Overflow guard band. adds() saturates, so a clamped H is exactly
  // INT16_MAX — but a *legitimate* score of INT16_MAX is indistinguishable
  // from a clamp, and any cell within max_score of the ceiling cannot be
  // proven clamp-free. Conversely, if the maximum stays below
  // INT16_MAX − max_score, no add can ever have saturated (each add raises H
  // by at most max_score and every stored H passed through v_max), so the
  // result is provably exact. Anything inside the band is conservatively
  // reported as overflow and rescanned by the driver.
  const std::int16_t guard = static_cast<std::int16_t>(
      std::numeric_limits<std::int16_t>::max() - profile.max_score());
  result.overflow = best >= guard;
  result.score = best;
  return result;
}

StripedResult striped_score(std::span<const std::uint8_t> query,
                            std::span<const std::uint8_t> db,
                            const ScoringScheme& scheme) {
  if (query.empty()) {
    StripedResult empty;
    return empty;
  }
  const StripedProfile profile(query, *scheme.matrix);
  return striped_score(profile, db, scheme.gap);
}

}  // namespace swdual::align
