#include "align/profile.h"

#include "util/error.h"

namespace swdual::align {

QueryProfile::QueryProfile(std::span<const std::uint8_t> query,
                           const ScoreMatrix& matrix)
    : length_(query.size()), alphabet_size_(matrix.size()) {
  data_.resize(alphabet_size_ * length_);
  for (std::size_t code = 0; code < alphabet_size_; ++code) {
    std::int16_t* out = data_.data() + code * length_;
    for (std::size_t i = 0; i < length_; ++i) {
      out[i] = matrix.score(query[i], static_cast<std::uint8_t>(code));
    }
  }
}

StripedProfile::StripedProfile(std::span<const std::uint8_t> query,
                               const ScoreMatrix& matrix, std::size_t lanes)
    : length_(query.size()),
      alphabet_size_(matrix.size()),
      lanes_(lanes),
      max_score_(matrix.max_score()) {
  SWDUAL_REQUIRE(!query.empty(), "striped profile needs a non-empty query");
  SWDUAL_REQUIRE(lanes_ > 0, "striped profile needs at least one lane");
  segment_length_ = (length_ + lanes_ - 1) / lanes_;
  data_.assign(alphabet_size_ * segment_length_ * lanes_, 0);
  for (std::size_t code = 0; code < alphabet_size_; ++code) {
    std::int16_t* out = data_.data() + code * segment_length_ * lanes_;
    for (std::size_t s = 0; s < segment_length_; ++s) {
      for (std::size_t lane = 0; lane < lanes_; ++lane) {
        const std::size_t position = lane * segment_length_ + s;
        out[s * lanes_ + lane] =
            position < length_
                ? matrix.score(query[position], static_cast<std::uint8_t>(code))
                : std::int16_t{0};
      }
    }
  }
}

StripedProfileU8::StripedProfileU8(std::span<const std::uint8_t> query,
                                   const ScoreMatrix& matrix,
                                   std::size_t lanes)
    : length_(query.size()), lanes_(lanes), max_score_(matrix.max_score()) {
  SWDUAL_REQUIRE(!query.empty(), "striped profile needs a non-empty query");
  SWDUAL_REQUIRE(lanes_ > 0, "striped profile needs at least one lane");
  SWDUAL_REQUIRE(matrix.min_score() <= 0,
                 "byte profile expects a matrix with non-positive minimum");
  bias_ = static_cast<std::uint8_t>(-matrix.min_score());
  segment_length_ = (length_ + lanes_ - 1) / lanes_;
  data_.assign(matrix.size() * segment_length_ * lanes_, bias_);
  for (std::size_t code = 0; code < matrix.size(); ++code) {
    std::uint8_t* out = data_.data() + code * segment_length_ * lanes_;
    for (std::size_t s = 0; s < segment_length_; ++s) {
      for (std::size_t lane = 0; lane < lanes_; ++lane) {
        const std::size_t position = lane * segment_length_ + s;
        if (position < length_) {
          out[s * lanes_ + lane] = static_cast<std::uint8_t>(
              matrix.score(query[position], static_cast<std::uint8_t>(code)) +
              bias_);
        }
      }
    }
  }
}

}  // namespace swdual::align
