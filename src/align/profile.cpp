#include "align/profile.h"

#include "util/error.h"

namespace swdual::align {

QueryProfile::QueryProfile(std::span<const std::uint8_t> query,
                           const ScoreMatrix& matrix)
    : length_(query.size()), alphabet_size_(matrix.size()) {
  data_.resize(alphabet_size_ * length_);
  for (std::size_t code = 0; code < alphabet_size_; ++code) {
    std::int16_t* out = data_.data() + code * length_;
    for (std::size_t i = 0; i < length_; ++i) {
      out[i] = matrix.score(query[i], static_cast<std::uint8_t>(code));
    }
  }
}

StripedProfile::StripedProfile(std::span<const std::uint8_t> query,
                               const ScoreMatrix& matrix)
    : length_(query.size()),
      alphabet_size_(matrix.size()),
      max_score_(matrix.max_score()) {
  SWDUAL_REQUIRE(!query.empty(), "striped profile needs a non-empty query");
  segment_length_ = (length_ + kLanes16 - 1) / kLanes16;
  data_.assign(alphabet_size_ * segment_length_ * kLanes16, 0);
  for (std::size_t code = 0; code < alphabet_size_; ++code) {
    std::int16_t* out = data_.data() + code * segment_length_ * kLanes16;
    for (std::size_t s = 0; s < segment_length_; ++s) {
      for (std::size_t lane = 0; lane < kLanes16; ++lane) {
        const std::size_t position = lane * segment_length_ + s;
        out[s * kLanes16 + lane] =
            position < length_
                ? matrix.score(query[position], static_cast<std::uint8_t>(code))
                : std::int16_t{0};
      }
    }
  }
}

StripedProfileU8::StripedProfileU8(std::span<const std::uint8_t> query,
                                   const ScoreMatrix& matrix)
    : length_(query.size()), max_score_(matrix.max_score()) {
  SWDUAL_REQUIRE(!query.empty(), "striped profile needs a non-empty query");
  SWDUAL_REQUIRE(matrix.min_score() <= 0,
                 "byte profile expects a matrix with non-positive minimum");
  bias_ = static_cast<std::uint8_t>(-matrix.min_score());
  segment_length_ = (length_ + kLanes8 - 1) / kLanes8;
  data_.assign(matrix.size() * segment_length_ * kLanes8, bias_);
  for (std::size_t code = 0; code < matrix.size(); ++code) {
    std::uint8_t* out = data_.data() + code * segment_length_ * kLanes8;
    for (std::size_t s = 0; s < segment_length_; ++s) {
      for (std::size_t lane = 0; lane < kLanes8; ++lane) {
        const std::size_t position = lane * segment_length_ + s;
        if (position < length_) {
          out[s * kLanes8 + lane] = static_cast<std::uint8_t>(
              matrix.score(query[position], static_cast<std::uint8_t>(code)) +
              bias_);
        }
      }
    }
  }
}

}  // namespace swdual::align
