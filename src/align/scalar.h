// Scalar (non-SIMD) Smith–Waterman kernels.
//
// These are the reference oracles: every vectorized kernel is property-tested
// against gotoh_score(), and they also serve as the portable fallback when a
// saturating SIMD kernel overflows.
#pragma once

#include <cstdint>
#include <span>

#include "align/scoring.h"

namespace swdual::align {

/// Result of a score-only local alignment.
struct ScoreResult {
  int score = 0;           ///< similarity (max over all local alignments)
  std::size_t end_query = 0;  ///< 1-based query index of the best cell
  std::size_t end_db = 0;     ///< 1-based database index of the best cell
  std::uint64_t cells = 0;    ///< DP cells computed (for GCUPS accounting)
};

/// Smith–Waterman with the linear gap model of Equation (1): every gap
/// character costs `gap` (a positive magnitude). O(m·n) time, O(n) space.
ScoreResult sw_score_linear(std::span<const std::uint8_t> query,
                            std::span<const std::uint8_t> db,
                            const ScoreMatrix& matrix, int gap);

/// Smith–Waterman with the Gotoh affine-gap model of Equations (2)–(4):
/// the first residue of a gap costs Gs+Ge, each further residue Ge.
/// O(m·n) time, O(n) space. This is the project's scoring oracle.
ScoreResult gotoh_score(std::span<const std::uint8_t> query,
                        std::span<const std::uint8_t> db,
                        const ScoringScheme& scheme);

}  // namespace swdual::align
