// Width-generic scalar emulation of the saturating SIMD vectors.
//
// VecU8Scalar<N> / VecI16Scalar<N> implement the exact vector interface the
// alignment kernels are templated over (see simd8.h / simd16.h for the
// interface contract), with plain loops over an array of N lanes. They serve
// two roles: the portable fallback on targets without SSE2, and the
// runtime-selectable "scalar" backend used to validate the wide backends —
// every backend computes the same per-cell recurrence, so scores are
// bit-identical across all of them (see DESIGN.md "SIMD backends").
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

namespace swdual::align {

/// N-lane unsigned-byte vector with saturating arithmetic, emulated.
template <std::size_t N>
struct VecU8Scalar {
  static constexpr std::size_t kLanes = N;
  using value_type = std::uint8_t;

  std::array<std::uint8_t, N> v;

  static std::uint8_t sat_add(int a, int b) {
    return static_cast<std::uint8_t>(std::min(255, a + b));
  }
  static std::uint8_t sat_sub(int a, int b) {
    return static_cast<std::uint8_t>(std::max(0, a - b));
  }
  static VecU8Scalar zero() { return splat(0); }
  static VecU8Scalar splat(std::uint8_t x) {
    VecU8Scalar out;
    out.v.fill(x);
    return out;
  }
  static VecU8Scalar load(const std::uint8_t* p) {
    VecU8Scalar out;
    std::copy(p, p + N, out.v.begin());
    return out;
  }
  void store(std::uint8_t* p) const { std::copy(v.begin(), v.end(), p); }
  friend VecU8Scalar adds(VecU8Scalar a, VecU8Scalar b) {
    VecU8Scalar out;
    for (std::size_t i = 0; i < N; ++i) out.v[i] = sat_add(a.v[i], b.v[i]);
    return out;
  }
  friend VecU8Scalar subs(VecU8Scalar a, VecU8Scalar b) {
    VecU8Scalar out;
    for (std::size_t i = 0; i < N; ++i) out.v[i] = sat_sub(a.v[i], b.v[i]);
    return out;
  }
  friend VecU8Scalar max(VecU8Scalar a, VecU8Scalar b) {
    VecU8Scalar out;
    for (std::size_t i = 0; i < N; ++i) out.v[i] = std::max(a.v[i], b.v[i]);
    return out;
  }
  friend VecU8Scalar min(VecU8Scalar a, VecU8Scalar b) {
    VecU8Scalar out;
    for (std::size_t i = 0; i < N; ++i) out.v[i] = std::min(a.v[i], b.v[i]);
    return out;
  }
  friend bool any_gt(VecU8Scalar a, VecU8Scalar b) {
    for (std::size_t i = 0; i < N; ++i) {
      if (a.v[i] > b.v[i]) return true;
    }
    return false;
  }
  /// All-ones mask where a >= b lane-wise, 0 elsewhere.
  friend VecU8Scalar ge(VecU8Scalar a, VecU8Scalar b) {
    VecU8Scalar out;
    for (std::size_t i = 0; i < N; ++i) {
      out.v[i] = a.v[i] >= b.v[i] ? 0xFF : 0;
    }
    return out;
  }
  friend VecU8Scalar bit_and(VecU8Scalar a, VecU8Scalar b) {
    VecU8Scalar out;
    for (std::size_t i = 0; i < N; ++i) {
      out.v[i] = static_cast<std::uint8_t>(a.v[i] & b.v[i]);
    }
    return out;
  }
  friend VecU8Scalar bit_or(VecU8Scalar a, VecU8Scalar b) {
    VecU8Scalar out;
    for (std::size_t i = 0; i < N; ++i) {
      out.v[i] = static_cast<std::uint8_t>(a.v[i] | b.v[i]);
    }
    return out;
  }
  /// Lane-wise select: a where mask is all-ones, b where mask is 0.
  friend VecU8Scalar blend(VecU8Scalar mask, VecU8Scalar a, VecU8Scalar b) {
    VecU8Scalar out;
    for (std::size_t i = 0; i < N; ++i) {
      out.v[i] = static_cast<std::uint8_t>((mask.v[i] & a.v[i]) |
                                           (~mask.v[i] & b.v[i]));
    }
    return out;
  }
  VecU8Scalar shift_lanes_up() const {
    VecU8Scalar out;
    out.v[0] = 0;
    for (std::size_t i = 1; i < N; ++i) out.v[i] = v[i - 1];
    return out;
  }
  std::uint8_t lane(std::size_t i) const { return v[i]; }
  std::uint8_t hmax() const { return *std::max_element(v.begin(), v.end()); }
};

/// N-lane signed-16-bit vector with saturating arithmetic, emulated.
template <std::size_t N>
struct VecI16Scalar {
  static constexpr std::size_t kLanes = N;
  using value_type = std::int16_t;

  std::array<std::int16_t, N> v;

  static std::int16_t sat(int x) {
    return static_cast<std::int16_t>(std::clamp(x, -32768, 32767));
  }
  static VecI16Scalar zero() { return splat(0); }
  static VecI16Scalar splat(std::int16_t x) {
    VecI16Scalar out;
    out.v.fill(x);
    return out;
  }
  static VecI16Scalar load(const std::int16_t* p) {
    VecI16Scalar out;
    std::copy(p, p + N, out.v.begin());
    return out;
  }
  void store(std::int16_t* p) const { std::copy(v.begin(), v.end(), p); }
  friend VecI16Scalar adds(VecI16Scalar a, VecI16Scalar b) {
    VecI16Scalar out;
    for (std::size_t i = 0; i < N; ++i) out.v[i] = sat(int(a.v[i]) + b.v[i]);
    return out;
  }
  friend VecI16Scalar subs(VecI16Scalar a, VecI16Scalar b) {
    VecI16Scalar out;
    for (std::size_t i = 0; i < N; ++i) out.v[i] = sat(int(a.v[i]) - b.v[i]);
    return out;
  }
  friend VecI16Scalar max(VecI16Scalar a, VecI16Scalar b) {
    VecI16Scalar out;
    for (std::size_t i = 0; i < N; ++i) out.v[i] = std::max(a.v[i], b.v[i]);
    return out;
  }
  friend VecI16Scalar min(VecI16Scalar a, VecI16Scalar b) {
    VecI16Scalar out;
    for (std::size_t i = 0; i < N; ++i) out.v[i] = std::min(a.v[i], b.v[i]);
    return out;
  }
  friend bool any_gt(VecI16Scalar a, VecI16Scalar b) {
    for (std::size_t i = 0; i < N; ++i) {
      if (a.v[i] > b.v[i]) return true;
    }
    return false;
  }
  /// All-ones mask where a >= b lane-wise, 0 elsewhere.
  friend VecI16Scalar ge(VecI16Scalar a, VecI16Scalar b) {
    VecI16Scalar out;
    for (std::size_t i = 0; i < N; ++i) {
      out.v[i] = a.v[i] >= b.v[i] ? static_cast<std::int16_t>(-1) : 0;
    }
    return out;
  }
  friend VecI16Scalar bit_and(VecI16Scalar a, VecI16Scalar b) {
    VecI16Scalar out;
    for (std::size_t i = 0; i < N; ++i) {
      out.v[i] = static_cast<std::int16_t>(a.v[i] & b.v[i]);
    }
    return out;
  }
  friend VecI16Scalar bit_or(VecI16Scalar a, VecI16Scalar b) {
    VecI16Scalar out;
    for (std::size_t i = 0; i < N; ++i) {
      out.v[i] = static_cast<std::int16_t>(a.v[i] | b.v[i]);
    }
    return out;
  }
  /// Lane-wise select: a where mask is all-ones, b where mask is 0.
  friend VecI16Scalar blend(VecI16Scalar mask, VecI16Scalar a,
                            VecI16Scalar b) {
    VecI16Scalar out;
    for (std::size_t i = 0; i < N; ++i) {
      out.v[i] = static_cast<std::int16_t>((mask.v[i] & a.v[i]) |
                                           (~mask.v[i] & b.v[i]));
    }
    return out;
  }
  VecI16Scalar shift_lanes_up(std::int16_t fill) const {
    VecI16Scalar out;
    out.v[0] = fill;
    for (std::size_t i = 1; i < N; ++i) out.v[i] = v[i - 1];
    return out;
  }
  std::int16_t lane(std::size_t i) const { return v[i]; }
  std::int16_t hmax() const { return *std::max_element(v.begin(), v.end()); }
  void set_lane(std::size_t i, std::int16_t x) { v[i] = x; }
};

}  // namespace swdual::align
