#include "align/traceback.h"

#include <algorithm>
#include <vector>

#include "util/error.h"

namespace swdual::align {

namespace {
/// Dense (rows+1) x (cols+1) int matrix with flat storage.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols, int fill)
      : cols_(cols + 1), data_((rows + 1) * (cols + 1), fill) {}
  int& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  int at(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

 private:
  std::size_t cols_;
  std::vector<int> data_;
};

constexpr int kNegInf = -(1 << 28);
}  // namespace

Alignment nw_align_linear(std::span<const std::uint8_t> query,
                          std::span<const std::uint8_t> db,
                          const ScoreMatrix& matrix, int gap_penalty) {
  const std::size_t m = query.size();
  const std::size_t n = db.size();
  const seq::Alphabet& alphabet = seq::Alphabet::get(matrix.alphabet());

  Matrix h(m, n, 0);
  for (std::size_t i = 1; i <= m; ++i) {
    h.at(i, 0) = static_cast<int>(i) * gap_penalty;
  }
  for (std::size_t j = 1; j <= n; ++j) {
    h.at(0, j) = static_cast<int>(j) * gap_penalty;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    const std::int8_t* scores = matrix.row(query[i - 1]);
    for (std::size_t j = 1; j <= n; ++j) {
      const int diag = h.at(i - 1, j - 1) + scores[db[j - 1]];
      const int up = h.at(i - 1, j) + gap_penalty;
      const int left = h.at(i, j - 1) + gap_penalty;
      h.at(i, j) = std::max({diag, up, left});
    }
  }

  Alignment alignment;
  alignment.score = h.at(m, n);
  alignment.query_begin = m > 0 ? 1 : 0;
  alignment.query_end = m;
  alignment.db_begin = n > 0 ? 1 : 0;
  alignment.db_end = n;

  std::string aq, ad;
  std::size_t i = m, j = n;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        h.at(i, j) ==
            h.at(i - 1, j - 1) + matrix.score(query[i - 1], db[j - 1])) {
      aq.push_back(alphabet.decode(query[i - 1]));
      ad.push_back(alphabet.decode(db[j - 1]));
      --i;
      --j;
    } else if (i > 0 && h.at(i, j) == h.at(i - 1, j) + gap_penalty) {
      aq.push_back(alphabet.decode(query[i - 1]));
      ad.push_back('-');
      --i;
    } else {
      SWDUAL_CHECK(j > 0 && h.at(i, j) == h.at(i, j - 1) + gap_penalty,
                   "NW traceback lost the optimal path");
      aq.push_back('-');
      ad.push_back(alphabet.decode(db[j - 1]));
      --j;
    }
  }
  std::reverse(aq.begin(), aq.end());
  std::reverse(ad.begin(), ad.end());
  alignment.aligned_query = std::move(aq);
  alignment.aligned_db = std::move(ad);
  return alignment;
}

Alignment nw_align_affine(std::span<const std::uint8_t> query,
                          std::span<const std::uint8_t> db,
                          const ScoringScheme& scheme) {
  const ScoreMatrix& matrix = *scheme.matrix;
  const int gs = scheme.gap.open;
  const int ge = scheme.gap.extend;
  SWDUAL_REQUIRE(gs >= 0 && ge >= 0, "gap penalties are positive magnitudes");
  const std::size_t m = query.size();
  const std::size_t n = db.size();
  const seq::Alphabet& alphabet = seq::Alphabet::get(matrix.alphabet());

  Matrix h(m, n, kNegInf), e(m, n, kNegInf), f(m, n, kNegInf);
  h.at(0, 0) = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    e.at(0, j) = -(gs + static_cast<int>(j) * ge);
    h.at(0, j) = e.at(0, j);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    f.at(i, 0) = -(gs + static_cast<int>(i) * ge);
    h.at(i, 0) = f.at(i, 0);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    const std::int8_t* scores = matrix.row(query[i - 1]);
    for (std::size_t j = 1; j <= n; ++j) {
      e.at(i, j) = std::max(e.at(i, j - 1) - ge, h.at(i, j - 1) - gs - ge);
      f.at(i, j) = std::max(f.at(i - 1, j) - ge, h.at(i - 1, j) - gs - ge);
      const int diag = h.at(i - 1, j - 1) == kNegInf
                           ? kNegInf
                           : h.at(i - 1, j - 1) + scores[db[j - 1]];
      h.at(i, j) = std::max({diag, e.at(i, j), f.at(i, j)});
    }
  }

  Alignment alignment;
  alignment.score = h.at(m, n);
  alignment.query_begin = m > 0 ? 1 : 0;
  alignment.query_end = m;
  alignment.db_begin = n > 0 ? 1 : 0;
  alignment.db_end = n;

  std::string aq, ad;
  std::size_t i = m, j = n;
  enum class State { kH, kE, kF } state = State::kH;
  while (i > 0 || j > 0) {
    if (state == State::kH) {
      const int value = h.at(i, j);
      if (j > 0 && value == e.at(i, j)) {
        state = State::kE;
      } else if (i > 0 && value == f.at(i, j)) {
        state = State::kF;
      } else {
        SWDUAL_CHECK(i > 0 && j > 0 &&
                         value == h.at(i - 1, j - 1) +
                                      matrix.score(query[i - 1], db[j - 1]),
                     "NW affine traceback lost the optimal path");
        aq.push_back(alphabet.decode(query[i - 1]));
        ad.push_back(alphabet.decode(db[j - 1]));
        --i;
        --j;
      }
    } else if (state == State::kE) {
      aq.push_back('-');
      ad.push_back(alphabet.decode(db[j - 1]));
      const bool opened = e.at(i, j) == h.at(i, j - 1) - gs - ge;
      --j;
      if (opened) state = State::kH;
    } else {
      aq.push_back(alphabet.decode(query[i - 1]));
      ad.push_back('-');
      const bool opened = f.at(i, j) == h.at(i - 1, j) - gs - ge;
      --i;
      if (opened) state = State::kH;
    }
  }
  std::reverse(aq.begin(), aq.end());
  std::reverse(ad.begin(), ad.end());
  alignment.aligned_query = std::move(aq);
  alignment.aligned_db = std::move(ad);
  return alignment;
}

Alignment sw_align_affine(std::span<const std::uint8_t> query,
                          std::span<const std::uint8_t> db,
                          const ScoringScheme& scheme) {
  const ScoreMatrix& matrix = *scheme.matrix;
  const int gs = scheme.gap.open;
  const int ge = scheme.gap.extend;
  SWDUAL_REQUIRE(gs >= 0 && ge >= 0, "gap penalties are positive magnitudes");
  const std::size_t m = query.size();
  const std::size_t n = db.size();
  const seq::Alphabet& alphabet = seq::Alphabet::get(matrix.alphabet());

  Matrix h(m, n, 0), e(m, n, kNegInf), f(m, n, kNegInf);
  int best = 0;
  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    const std::int8_t* scores = matrix.row(query[i - 1]);
    for (std::size_t j = 1; j <= n; ++j) {
      e.at(i, j) = std::max(e.at(i, j - 1) - ge, h.at(i, j - 1) - gs - ge);
      f.at(i, j) = std::max(f.at(i - 1, j) - ge, h.at(i - 1, j) - gs - ge);
      const int diag = h.at(i - 1, j - 1) + scores[db[j - 1]];
      const int value = std::max({diag, e.at(i, j), f.at(i, j), 0});
      h.at(i, j) = value;
      if (value > best) {
        best = value;
        best_i = i;
        best_j = j;
      }
    }
  }

  Alignment alignment;
  alignment.score = best;
  if (best == 0) return alignment;  // empty local alignment

  std::string aq, ad;
  std::size_t i = best_i, j = best_j;
  enum class State { kH, kE, kF } state = State::kH;
  while (true) {
    if (state == State::kH) {
      const int value = h.at(i, j);
      if (value == 0) break;
      if (value == e.at(i, j)) {
        state = State::kE;
      } else if (value == f.at(i, j)) {
        state = State::kF;
      } else {
        SWDUAL_CHECK(
            value ==
                h.at(i - 1, j - 1) + matrix.score(query[i - 1], db[j - 1]),
            "SW traceback lost the optimal path");
        aq.push_back(alphabet.decode(query[i - 1]));
        ad.push_back(alphabet.decode(db[j - 1]));
        --i;
        --j;
      }
    } else if (state == State::kE) {
      aq.push_back('-');
      ad.push_back(alphabet.decode(db[j - 1]));
      const bool opened = e.at(i, j) == h.at(i, j - 1) - gs - ge;
      --j;
      if (opened) state = State::kH;
    } else {
      aq.push_back(alphabet.decode(query[i - 1]));
      ad.push_back('-');
      const bool opened = f.at(i, j) == h.at(i - 1, j) - gs - ge;
      --i;
      if (opened) state = State::kH;
    }
  }
  std::reverse(aq.begin(), aq.end());
  std::reverse(ad.begin(), ad.end());
  alignment.aligned_query = std::move(aq);
  alignment.aligned_db = std::move(ad);
  alignment.query_begin = i + 1;
  alignment.query_end = best_i;
  alignment.db_begin = j + 1;
  alignment.db_end = best_j;
  return alignment;
}

}  // namespace swdual::align
