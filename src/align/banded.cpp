#include "align/banded.h"

#include <algorithm>
#include <vector>

#include "util/error.h"

namespace swdual::align {

ScoreResult banded_gotoh_score(std::span<const std::uint8_t> query,
                               std::span<const std::uint8_t> db,
                               const ScoringScheme& scheme, std::size_t band) {
  SWDUAL_REQUIRE(band >= 1, "band half-width must be at least 1");
  const ScoreMatrix& matrix = *scheme.matrix;
  const int gs = scheme.gap.open;
  const int ge = scheme.gap.extend;

  ScoreResult result;
  if (query.empty() || db.empty()) return result;

  const std::size_t m = query.size();
  const std::size_t n = db.size();
  const double slope = static_cast<double>(n) / static_cast<double>(m);

  constexpr int kNegInf = -(1 << 28);
  // Full-width rows, but only band columns are touched per row. Cells never
  // written stay at their unreachable defaults.
  std::vector<int> h_row(n + 1, 0);
  std::vector<int> f_row(n + 1, kNegInf);

  for (std::size_t i = 1; i <= m; ++i) {
    const auto center = static_cast<std::ptrdiff_t>(slope * static_cast<double>(i));
    const std::size_t j_lo = static_cast<std::size_t>(
        std::max<std::ptrdiff_t>(1, center - static_cast<std::ptrdiff_t>(band)));
    const std::size_t j_hi =
        std::min(n, static_cast<std::size_t>(center + static_cast<std::ptrdiff_t>(band)));
    if (j_lo > j_hi) continue;

    const std::int8_t* scores = matrix.row(query[i - 1]);
    // Outside-band cells on row i-1 (and this row's left edge) behave as 0
    // for H (a local alignment can always restart) and -inf for gap states;
    // since h_row holds 0 wherever untouched, this falls out naturally for
    // the first rows. To avoid stale in-band values leaking when the band
    // slides right, clear the cell just left of the window.
    int diag = (j_lo >= 1) ? h_row[j_lo - 1] : 0;
    int h_left = 0;
    int e = kNegInf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      result.cells++;
      const int f = std::max(f_row[j] - ge, h_row[j] - gs - ge);
      e = std::max(e - ge, h_left - gs - ge);
      int h = diag + scores[db[j - 1]];
      h = std::max({h, e, f, 0});
      diag = h_row[j];
      h_row[j] = h;
      f_row[j] = f;
      h_left = h;
      if (h > result.score) {
        result.score = h;
        result.end_query = i;
        result.end_db = j;
      }
    }
    // Invalidate the column just beyond the window so the next row does not
    // read values from two rows ago as if they were row i.
    if (j_hi + 1 <= n) {
      h_row[j_hi + 1] = 0;
      f_row[j_hi + 1] = kNegInf;
    }
    if (j_lo >= 1) {
      h_row[j_lo - 1] = 0;
      f_row[j_lo - 1] = kNegInf;
    }
  }
  return result;
}

}  // namespace swdual::align
