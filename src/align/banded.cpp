#include "align/banded.h"

#include <algorithm>
#include <vector>

#include "util/error.h"

namespace swdual::align {

bool banded_covers_all(std::size_t m, std::size_t n, std::size_t band) {
  if (m == 0 || n == 0) return true;
  // Column 1 at row m (center n): need n − band ≤ 1. Column n at row 1
  // (center ⌊n/m⌋): need ⌊n/m⌋ + band ≥ n. Integer arithmetic only — the
  // certificate must be trustworthy at ragged length ratios.
  return band >= n - 1 && band + n / m >= n;
}

BandedResult banded_gotoh_score(std::span<const std::uint8_t> query,
                                std::span<const std::uint8_t> db,
                                const ScoringScheme& scheme, std::size_t band) {
  SWDUAL_REQUIRE(band >= 1, "band half-width must be at least 1");
  const ScoreMatrix& matrix = *scheme.matrix;
  const int gs = scheme.gap.open;
  const int ge = scheme.gap.extend;

  BandedResult result;
  result.exact = banded_covers_all(query.size(), db.size(), band);
  if (query.empty() || db.empty()) return result;

  const std::size_t m = query.size();
  const std::size_t n = db.size();

  constexpr int kNegInf = -(1 << 28);
  // Full-width rows, but only band columns are touched per row. Cells never
  // written stay at their unreachable defaults.
  std::vector<int> h_row(n + 1, 0);
  std::vector<int> f_row(n + 1, kNegInf);

  int edge_best = 0;
  std::size_t prev_hi = 0;  // previous row's window end (0 = none yet)

  for (std::size_t i = 1; i <= m; ++i) {
    // Integer center: ⌊i·n/m⌋. The products fit comfortably in 64 bits for
    // any realistic sequence length, and unlike the former double-based
    // slope they cannot drift off the true center line at ragged m:n ratios.
    const std::size_t center = i * n / m;
    const std::size_t j_lo = center > band ? center - band : 1;
    const std::size_t j_hi = std::min(n, center + band);

    // Band-boundary columns whose outside neighbour exists: a best score on
    // one of these is "uncertain" (the optimum may continue out of band).
    // A boundary at column 1 or n touches the matrix edge, not the band's.
    const std::size_t left_edge =
        (center > band && center - band >= 2) ? center - band : 0;
    const std::size_t right_edge =
        (center + band <= n - 1) ? center + band : 0;

    // The window slides right monotonically; when it jumps by more than one
    // column (very ragged n ≫ m ratios), the skipped columns still hold
    // values from older rows. Reset them to their out-of-band defaults
    // before reading — each column is reset at most once over the whole
    // scan, so this stays amortized O(n).
    const std::size_t stale_lo = std::max(j_lo > 1 ? j_lo - 1 : 1, prev_hi + 1);
    for (std::size_t j = stale_lo; j <= j_hi; ++j) {
      h_row[j] = 0;
      f_row[j] = kNegInf;
    }
    prev_hi = j_hi;

    const std::int8_t* scores = matrix.row(query[i - 1]);
    // Outside-band cells behave as 0 for H (a local alignment can always
    // restart) and -inf for the gap states.
    int diag = h_row[j_lo - 1];
    int h_left = 0;
    int e = kNegInf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      result.cells++;
      const int f = std::max(f_row[j] - ge, h_row[j] - gs - ge);
      e = std::max(e - ge, h_left - gs - ge);
      int h = diag + scores[db[j - 1]];
      h = std::max({h, e, f, 0});
      diag = h_row[j];
      h_row[j] = h;
      f_row[j] = f;
      h_left = h;
      if (h > result.score) {
        result.score = h;
        result.end_query = i;
        result.end_db = j;
      }
      if ((j == left_edge || j == right_edge) && h > edge_best) {
        edge_best = h;
      }
    }
    // Clear the cell just left of the window so the next row's diagonal
    // read at the same offset sees an out-of-band 0, not this row's stale
    // in-band value.
    if (j_lo >= 1) h_row[j_lo - 1] = 0;
  }
  result.edge_hit = result.score > 0 && edge_best == result.score;
  return result;
}

}  // namespace swdual::align
