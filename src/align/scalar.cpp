#include "align/scalar.h"

#include <algorithm>
#include <vector>

#include "util/error.h"

namespace swdual::align {

ScoreResult sw_score_linear(std::span<const std::uint8_t> query,
                            std::span<const std::uint8_t> db,
                            const ScoreMatrix& matrix, int gap) {
  SWDUAL_REQUIRE(gap >= 0, "gap penalty is a positive magnitude");
  ScoreResult result;
  result.cells = static_cast<std::uint64_t>(query.size()) * db.size();
  if (query.empty() || db.empty()) return result;

  // One row of H, rolled over the query dimension.
  std::vector<int> row(db.size() + 1, 0);
  for (std::size_t i = 1; i <= query.size(); ++i) {
    int diag = 0;  // H[i-1][j-1]
    const std::int8_t* scores = matrix.row(query[i - 1]);
    for (std::size_t j = 1; j <= db.size(); ++j) {
      const int up = row[j];        // H[i-1][j]
      const int left = row[j - 1];  // H[i][j-1] (already updated this row)
      int h = diag + scores[db[j - 1]];
      h = std::max(h, up - gap);
      h = std::max(h, left - gap);
      h = std::max(h, 0);
      diag = row[j];
      row[j] = h;
      if (h > result.score) {
        result.score = h;
        result.end_query = i;
        result.end_db = j;
      }
    }
  }
  return result;
}

ScoreResult gotoh_score(std::span<const std::uint8_t> query,
                        std::span<const std::uint8_t> db,
                        const ScoringScheme& scheme) {
  const ScoreMatrix& matrix = *scheme.matrix;
  const int gs = scheme.gap.open;
  const int ge = scheme.gap.extend;
  SWDUAL_REQUIRE(gs >= 0 && ge >= 0, "gap penalties are positive magnitudes");

  ScoreResult result;
  result.cells = static_cast<std::uint64_t>(query.size()) * db.size();
  if (query.empty() || db.empty()) return result;

  // Rolling rows of H and F (Eq. 4: F looks at row i-1, so it rolls over
  // the query dimension); E (Eq. 3: looks at column j-1) is carried across
  // the inner loop.
  const std::size_t n = db.size();
  std::vector<int> h_row(n + 1, 0);
  std::vector<int> f_row(n + 1, 0);
  constexpr int kNegInf = -(1 << 28);
  std::fill(f_row.begin(), f_row.end(), kNegInf);

  for (std::size_t i = 1; i <= query.size(); ++i) {
    const std::int8_t* scores = matrix.row(query[i - 1]);
    int diag = 0;       // H[i-1][j-1]
    int h_left = 0;     // H[i][j-1]
    int e = kNegInf;    // E[i][j-1], reset at each new row
    for (std::size_t j = 1; j <= n; ++j) {
      // F: vertical gap, Eq. (4) — F[i][j] = -Ge + max(F[i-1][j], H[i-1][j] - Gs).
      const int f = std::max(f_row[j] - ge, h_row[j] - gs - ge);
      // E: horizontal gap, Eq. (3) — E[i][j] = -Ge + max(E[i][j-1], H[i][j-1] - Gs).
      e = std::max(e - ge, h_left - gs - ge);
      // H, Eq. (2).
      int h = diag + scores[db[j - 1]];
      h = std::max({h, e, f, 0});
      diag = h_row[j];
      h_row[j] = h;
      f_row[j] = f;
      h_left = h;
      if (h > result.score) {
        result.score = h;
        result.end_query = i;
        result.end_db = j;
      }
    }
  }
  return result;
}

}  // namespace swdual::align
