// Portable 8-lane 16-bit signed SIMD vector — the narrowest member of the
// width-generic 16-bit vector family.
//
// One code path for both SIMD kernels: compiled to SSE2 intrinsics on x86
// and to plain (auto-vectorizable) loops elsewhere, so kernel results are
// bit-identical across platforms. Arithmetic is *saturating* — kernels
// detect saturation at INT16_MAX and fall back to the 32-bit scalar oracle.
//
// Vector interface contract (shared by V16, VecI16Scalar<N>, V16x16, V16x32
// — the 16-bit kernels are templated over any type providing it):
//   static constexpr std::size_t kLanes;   // lane count
//   using value_type = std::int16_t;
//   zero() / splat(x) / load(p) / store(p)
//   adds(a, b) / subs(a, b)                // saturating at ±32767/−32768
//   max(a, b) / min(a, b) / any_gt(a, b)   // lane-wise max/min, strict any >
//   ge(a, b)                               // all-ones where a >= b, else 0
//   bit_and(a, b) / bit_or(a, b)           // lane-wise bitwise combine
//   blend(mask, a, b)                      // a where mask all-ones, else b
//   shift_lanes_up(fill)                   // lane i <- lane i-1, lane 0 <- fill
//   lane(i) / hmax() / set_lane(i, x)      // extraction (outside hot loops)
#pragma once

#include <algorithm>
#include <cstdint>

#include "align/simd_scalar.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define SWDUAL_SIMD_SSE2 1
#endif

namespace swdual::align {

inline constexpr std::size_t kLanes16 = 8;

#if defined(SWDUAL_SIMD_SSE2)
struct V16 {
  static constexpr std::size_t kLanes = 8;
  using value_type = std::int16_t;

  __m128i v;

  static V16 zero() { return {_mm_setzero_si128()}; }
  static V16 splat(std::int16_t x) { return {_mm_set1_epi16(x)}; }
  static V16 load(const std::int16_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(std::int16_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  /// Saturating lane-wise addition.
  friend V16 adds(V16 a, V16 b) { return {_mm_adds_epi16(a.v, b.v)}; }
  /// Saturating lane-wise subtraction.
  friend V16 subs(V16 a, V16 b) { return {_mm_subs_epi16(a.v, b.v)}; }
  friend V16 max(V16 a, V16 b) { return {_mm_max_epi16(a.v, b.v)}; }
  friend V16 min(V16 a, V16 b) { return {_mm_min_epi16(a.v, b.v)}; }
  /// True if any lane of a is strictly greater than the matching lane of b.
  friend bool any_gt(V16 a, V16 b) {
    return _mm_movemask_epi8(_mm_cmpgt_epi16(a.v, b.v)) != 0;
  }
  /// All-ones mask where a >= b lane-wise (signed), 0 elsewhere.
  friend V16 ge(V16 a, V16 b) {
    // a >= b  <=>  max(a, b) == a in that lane.
    return {_mm_cmpeq_epi16(_mm_max_epi16(a.v, b.v), a.v)};
  }
  friend V16 bit_and(V16 a, V16 b) { return {_mm_and_si128(a.v, b.v)}; }
  friend V16 bit_or(V16 a, V16 b) { return {_mm_or_si128(a.v, b.v)}; }
  /// Lane-wise select: a where mask is all-ones, b where mask is 0.
  friend V16 blend(V16 mask, V16 a, V16 b) {
    return {_mm_or_si128(_mm_and_si128(mask.v, a.v),
                         _mm_andnot_si128(mask.v, b.v))};
  }
  /// Shift lanes towards higher indices by one; lane 0 becomes `fill`.
  V16 shift_lanes_up(std::int16_t fill) const {
    V16 out{_mm_slli_si128(v, 2)};
    out.v = _mm_insert_epi16(out.v, fill, 0);
    return out;
  }
  std::int16_t lane(std::size_t i) const {
    alignas(16) std::int16_t tmp[8];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    return tmp[i];
  }
  /// Maximum across all 8 lanes.
  std::int16_t hmax() const {
    alignas(16) std::int16_t tmp[8];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    std::int16_t best = tmp[0];
    for (int i = 1; i < 8; ++i) best = std::max(best, tmp[i]);
    return best;
  }

  /// Insert a value into one lane (slow path; used for gathers).
  void set_lane(std::size_t i, std::int16_t x) {
    alignas(16) std::int16_t tmp[8];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    tmp[i] = x;
    v = _mm_load_si128(reinterpret_cast<const __m128i*>(tmp));
  }
};
#else
using V16 = VecI16Scalar<8>;
#endif

}  // namespace swdual::align
