// Portable 8-lane 16-bit signed SIMD vector.
//
// One code path for both SIMD kernels: compiled to SSE2 intrinsics on x86
// and to plain (auto-vectorizable) loops elsewhere, so kernel results are
// bit-identical across platforms. Arithmetic is *saturating* — kernels
// detect saturation at INT16_MAX and fall back to the 32-bit scalar oracle.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#define SWDUAL_SIMD_SSE2 1
#endif

namespace swdual::align {

struct V16 {
#if defined(SWDUAL_SIMD_SSE2)
  __m128i v;

  static V16 zero() { return {_mm_setzero_si128()}; }
  static V16 splat(std::int16_t x) { return {_mm_set1_epi16(x)}; }
  static V16 load(const std::int16_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(std::int16_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  /// Saturating lane-wise addition.
  friend V16 adds(V16 a, V16 b) { return {_mm_adds_epi16(a.v, b.v)}; }
  /// Saturating lane-wise subtraction.
  friend V16 subs(V16 a, V16 b) { return {_mm_subs_epi16(a.v, b.v)}; }
  friend V16 max(V16 a, V16 b) { return {_mm_max_epi16(a.v, b.v)}; }
  /// True if any lane of a is strictly greater than the matching lane of b.
  friend bool any_gt(V16 a, V16 b) {
    return _mm_movemask_epi8(_mm_cmpgt_epi16(a.v, b.v)) != 0;
  }
  /// Shift lanes towards higher indices by one; lane 0 becomes `fill`.
  V16 shift_lanes_up(std::int16_t fill) const {
    V16 out{_mm_slli_si128(v, 2)};
    out.v = _mm_insert_epi16(out.v, fill, 0);
    return out;
  }
  std::int16_t lane(std::size_t i) const {
    alignas(16) std::int16_t tmp[8];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    return tmp[i];
  }
  /// Maximum across all 8 lanes.
  std::int16_t hmax() const {
    alignas(16) std::int16_t tmp[8];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    std::int16_t best = tmp[0];
    for (int i = 1; i < 8; ++i) best = std::max(best, tmp[i]);
    return best;
  }
#else
  std::array<std::int16_t, 8> v;

  static std::int16_t sat(int x) {
    return static_cast<std::int16_t>(std::clamp(x, -32768, 32767));
  }
  static V16 zero() { return splat(0); }
  static V16 splat(std::int16_t x) {
    V16 out;
    out.v.fill(x);
    return out;
  }
  static V16 load(const std::int16_t* p) {
    V16 out;
    std::copy(p, p + 8, out.v.begin());
    return out;
  }
  void store(std::int16_t* p) const { std::copy(v.begin(), v.end(), p); }
  friend V16 adds(V16 a, V16 b) {
    V16 out;
    for (int i = 0; i < 8; ++i) out.v[i] = sat(int(a.v[i]) + b.v[i]);
    return out;
  }
  friend V16 subs(V16 a, V16 b) {
    V16 out;
    for (int i = 0; i < 8; ++i) out.v[i] = sat(int(a.v[i]) - b.v[i]);
    return out;
  }
  friend V16 max(V16 a, V16 b) {
    V16 out;
    for (int i = 0; i < 8; ++i) out.v[i] = std::max(a.v[i], b.v[i]);
    return out;
  }
  friend bool any_gt(V16 a, V16 b) {
    for (int i = 0; i < 8; ++i) {
      if (a.v[i] > b.v[i]) return true;
    }
    return false;
  }
  V16 shift_lanes_up(std::int16_t fill) const {
    V16 out;
    out.v[0] = fill;
    for (int i = 1; i < 8; ++i) out.v[i] = v[i - 1];
    return out;
  }
  std::int16_t lane(std::size_t i) const { return v[i]; }
  std::int16_t hmax() const {
    std::int16_t best = v[0];
    for (int i = 1; i < 8; ++i) best = std::max(best, v[i]);
    return best;
  }
#endif

  /// Insert a value into one lane (slow path; used for gathers).
  void set_lane(std::size_t i, std::int16_t x) {
#if defined(SWDUAL_SIMD_SSE2)
    alignas(16) std::int16_t tmp[8];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), v);
    tmp[i] = x;
    v = _mm_load_si128(reinterpret_cast<const __m128i*>(tmp));
#else
    v[i] = x;
#endif
  }
};

}  // namespace swdual::align
