// Width-generic body of the Rognes inter-sequence kernel.
//
// Templated over any 16-bit vector type V satisfying the simd16.h interface
// contract: V::kLanes database sequences are aligned against the query
// simultaneously, one per lane. Lanes are fully independent DP matrices, so
// per-sequence scores and overflow flags do not depend on the batch width —
// only throughput does. kernel_backend_*.cpp instantiate this at each
// compiled width.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <vector>

#include "align/kernel_interseq.h"
#include "align/profile.h"
#include "align/scratch.h"

namespace swdual::align {

inline constexpr std::int16_t kInterSeqPadScore = -30000;

template <class V>
InterSeqResult interseq_scores_impl(std::span<const std::uint8_t> query,
                                    const SequenceViews& db,
                                    const ScoringScheme& scheme) {
  constexpr std::size_t kL = V::kLanes;
  InterSeqResult result;
  result.scores.assign(db.size(), 0);
  result.overflow.assign(db.size(), false);
  for (const auto& seq : db) {
    result.cells += static_cast<std::uint64_t>(query.size()) * seq.size();
  }
  if (query.empty() || db.empty()) return result;

  const QueryProfile profile(query, *scheme.matrix);
  const std::size_t m = query.size();

  // Process longest-first so lanes in a group have similar lengths and the
  // padded tail (pure overhead) stays short — the batching strategy of
  // CUDASW++ and SWIPE.
  std::vector<std::size_t> order(db.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return db[a].size() > db[b].size();
                   });

  const V v_gap_extend =
      V::splat(static_cast<std::int16_t>(scheme.gap.extend));
  const V v_gap_open_extend = V::splat(
      static_cast<std::int16_t>(scheme.gap.open + scheme.gap.extend));
  const V v_zero = V::zero();

  for (std::size_t group_start = 0; group_start < order.size();
       group_start += kL) {
    const std::size_t lanes_used = std::min(kL, order.size() - group_start);
    std::size_t max_len = 0;
    for (std::size_t l = 0; l < lanes_used; ++l) {
      max_len = std::max(max_len, db[order[group_start + l]].size());
    }
    if (max_len == 0) continue;

    // H/E columns and the sentinel row (padding lanes gather from it once
    // their sequence ends) live in the per-thread workspace.
    const AlignScratch::InterSeqState state = thread_scratch().interseq_state(
        m * kL, m, kInterSeqPadScore);
    V v_max = V::zero();

    for (std::size_t j = 0; j < max_len; ++j) {
      // Per-lane profile rows for this database column.
      const std::int16_t* lane_rows[kL];
      for (std::size_t l = 0; l < kL; ++l) {
        if (l < lanes_used && j < db[order[group_start + l]].size()) {
          lane_rows[l] = profile.row(db[order[group_start + l]][j]);
        } else {
          lane_rows[l] = state.pad_row;
        }
      }

      V v_diag = V::zero();  // H[i-1][j-1]; boundary row is 0
      V v_f = V::zero();     // F[i][j], carried down the column
      for (std::size_t i = 0; i < m; ++i) {
        alignas(64) std::int16_t gathered[kL];
        for (std::size_t l = 0; l < kL; ++l) gathered[l] = lane_rows[l][i];
        const V v_score = V::load(gathered);
        const V v_h_prev = V::load(state.h + i * kL);
        const V v_e_prev = V::load(state.e + i * kL);

        // E: horizontal gap from column j-1 (Eq. 3).
        const V v_e = max(subs(v_e_prev, v_gap_extend),
                          subs(v_h_prev, v_gap_open_extend));
        // H (Eq. 2): diagonal uses H[i-1][j-1] saved from the previous i.
        V v_h = adds(v_diag, v_score);
        v_h = max(v_h, v_e);
        v_h = max(v_h, v_f);
        v_h = max(v_h, v_zero);
        v_max = max(v_max, v_h);

        v_diag = v_h_prev;
        v_h.store(state.h + i * kL);
        v_e.store(state.e + i * kL);

        // F for the next query position (Eq. 4).
        v_f = max(subs(v_f, v_gap_extend), subs(v_h, v_gap_open_extend));
      }
    }

    for (std::size_t l = 0; l < lanes_used; ++l) {
      const std::size_t original = order[group_start + l];
      const std::int16_t best = v_max.lane(l);
      result.scores[original] = best;
      result.overflow[original] =
          best >= std::numeric_limits<std::int16_t>::max();
    }
  }
  return result;
}

}  // namespace swdual::align
