// Width-generic body of the Rognes inter-sequence kernel (round 2).
//
// Templated over any 16-bit vector type V satisfying the simd16.h interface
// contract: V::kLanes database sequences are aligned against the query
// simultaneously, one per lane. Lanes are fully independent DP matrices, so
// per-sequence scores and overflow flags do not depend on the batch width —
// only throughput does. kernel_backend_*.cpp instantiate this at each
// compiled width.
//
// The inner loop is the SWIPE "database profile" formulation: instead of
// gathering one score per lane per cell (kLanes scalar loads for every DP
// cell — the round-1 bottleneck that left interseq 6-10x behind striped8),
// each database column j first materializes a dprofile of
// alphabet_size x kLanes scores, and the query loop then issues ONE vector
// load per cell: dprofile + q[i]*kLanes. The dprofile build costs
// O(alphabet x lanes) per column; the loop it feeds runs m iterations with
// m >> alphabet (360 vs 24 in the bench), so per-cell cost drops from
// kLanes scalar loads to one vector load.
//
// Lane batching: sequences are processed longest-first so all lanes of a
// group retire together (the occupancy fix from Rognes' SWIPE and Rucci et
// al.'s KNL study). When the caller already supplies length-sorted views —
// the SWDB v2 lane-batch index path, or chunks from a sorting
// ParallelSearchEngine — the kernel detects the order with one O(n) scan
// and skips its own sort entirely: the steady-state refill path performs no
// allocation and no sorting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>

#include "align/kernel_interseq.h"
#include "align/scratch.h"

namespace swdual::align {

inline constexpr std::int16_t kInterSeqPadScore = -30000;

template <class V>
InterSeqResult interseq_scores_impl(std::span<const std::uint8_t> query,
                                    const SequenceViews& db,
                                    const ScoringScheme& scheme) {
  constexpr std::size_t kL = V::kLanes;
  InterSeqResult result;
  result.scores.assign(db.size(), 0);
  result.overflow.assign(db.size(), false);
  for (const auto& seq : db) {
    result.cells += static_cast<std::uint64_t>(query.size()) * seq.size();
  }
  if (query.empty() || db.empty()) return result;

  const ScoreMatrix& matrix = *scheme.matrix;
  const std::size_t m = query.size();
  const std::size_t asize = matrix.size();
  // Sequence positions past a lane's end use one synthetic residue code
  // (== asize): an extra column in every substitution row holding the pad
  // score, so padding needs no branch in the dprofile build.
  const std::uint8_t pad_code = static_cast<std::uint8_t>(asize);

  AlignScratch& scratch = thread_scratch();

  // Substitution rows widened to int16 with the pad column appended:
  // ext_rows[a * (asize+1) + c] == S(a, c), and the pad score at c == asize.
  std::int16_t* ext_rows = scratch.interseq_ext_rows(asize * (asize + 1));
  for (std::size_t a = 0; a < asize; ++a) {
    const std::int8_t* row = matrix.row(static_cast<std::uint8_t>(a));
    std::int16_t* dst = ext_rows + a * (asize + 1);
    for (std::size_t c = 0; c < asize; ++c) dst[c] = row[c];
    dst[asize] = kInterSeqPadScore;
  }

  // Process longest-first so lanes in a group have similar lengths and the
  // padded tail (pure overhead) stays short — the batching strategy of
  // CUDASW++ and SWIPE. Callers that deliver pre-sorted batches (the SWDB
  // v2 lane-batch index) skip the sort: the order buffer is thread-local
  // and the identity fill is O(n).
  AlignedVector<std::uint32_t>& order = scratch.interseq_order();
  order.resize(db.size());
  std::iota(order.begin(), order.end(), 0u);
  bool presorted = true;
  for (std::size_t i = 1; i < db.size(); ++i) {
    if (db[i - 1].size() < db[i].size()) {
      presorted = false;
      break;
    }
  }
  if (!presorted) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return db[a].size() > db[b].size();
                     });
  }

  const V v_gap_extend =
      V::splat(static_cast<std::int16_t>(scheme.gap.extend));
  const V v_gap_open_extend = V::splat(
      static_cast<std::int16_t>(scheme.gap.open + scheme.gap.extend));
  const V v_zero = V::zero();

  // Per-column database profile: dprofile[a * kL + lane] is the score of
  // query residue a against lane's current database residue.
  std::int16_t* dprofile = scratch.interseq_dprofile(asize * kL);

  for (std::size_t group_start = 0; group_start < order.size();
       group_start += kL) {
    const std::size_t lanes_used = std::min(kL, order.size() - group_start);
    const std::uint8_t* lane_seq[kL];
    std::size_t lane_len[kL];
    std::size_t max_len = 0;
    for (std::size_t l = 0; l < kL; ++l) {
      if (l < lanes_used) {
        const auto& seq = db[order[group_start + l]];
        lane_seq[l] = seq.data();
        lane_len[l] = seq.size();
        max_len = std::max(max_len, seq.size());
      } else {
        lane_seq[l] = nullptr;
        lane_len[l] = 0;
      }
    }
    if (max_len == 0) continue;

    // H/E columns live in the per-thread workspace.
    const AlignScratch::InterSeqState state =
        scratch.interseq_state(m * kL);
    V v_max = V::zero();

    for (std::size_t j = 0; j < max_len; ++j) {
      // This column's database residue per lane (pad once a lane's
      // sequence has ended), then the dprofile for the whole column.
      std::uint8_t codes[kL];
      for (std::size_t l = 0; l < kL; ++l) {
        codes[l] = j < lane_len[l] ? lane_seq[l][j] : pad_code;
      }
      for (std::size_t a = 0; a < asize; ++a) {
        const std::int16_t* ext = ext_rows + a * (asize + 1);
        std::int16_t* dst = dprofile + a * kL;
        for (std::size_t l = 0; l < kL; ++l) dst[l] = ext[codes[l]];
      }

      V v_diag = V::zero();  // H[i-1][j-1]; boundary row is 0
      V v_f = V::zero();     // F[i][j], carried down the column
      for (std::size_t i = 0; i < m; ++i) {
        const V v_score = V::load(dprofile + query[i] * kL);
        const V v_h_prev = V::load(state.h + i * kL);
        const V v_e_prev = V::load(state.e + i * kL);

        // E: horizontal gap from column j-1 (Eq. 3).
        const V v_e = max(subs(v_e_prev, v_gap_extend),
                          subs(v_h_prev, v_gap_open_extend));
        // H (Eq. 2): diagonal uses H[i-1][j-1] saved from the previous i.
        V v_h = adds(v_diag, v_score);
        v_h = max(v_h, v_e);
        v_h = max(v_h, v_f);
        v_h = max(v_h, v_zero);
        v_max = max(v_max, v_h);

        v_diag = v_h_prev;
        v_h.store(state.h + i * kL);
        v_e.store(state.e + i * kL);

        // F for the next query position (Eq. 4).
        v_f = max(subs(v_f, v_gap_extend), subs(v_h, v_gap_open_extend));
      }
    }

    for (std::size_t l = 0; l < lanes_used; ++l) {
      const std::size_t original = order[group_start + l];
      const std::int16_t best = v_max.lane(l);
      result.scores[original] = best;
      result.overflow[original] =
          best >= std::numeric_limits<std::int16_t>::max();
    }
  }
  return result;
}

}  // namespace swdual::align
