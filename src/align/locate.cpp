#include "align/locate.h"

#include <algorithm>
#include <vector>

#include "align/traceback.h"
#include "util/error.h"

namespace swdual::align {

LocalRegion locate_best_alignment(std::span<const std::uint8_t> query,
                                  std::span<const std::uint8_t> db,
                                  const ScoringScheme& scheme) {
  LocalRegion region;
  const ScoreResult forward = gotoh_score(query, db, scheme);
  region.score = forward.score;
  if (forward.score == 0) return region;  // empty alignment
  region.query_end = forward.end_query;
  region.db_end = forward.end_db;

  // Reverse pass: the optimal alignment ends at (end_query, end_db); running
  // the same recursion on the reversed prefixes finds where it starts. The
  // reverse matrix's maximum equals the forward score, and the cell where it
  // is attained maps back to the start coordinates.
  std::vector<std::uint8_t> query_rev(query.begin(),
                                      query.begin() + forward.end_query);
  std::vector<std::uint8_t> db_rev(db.begin(), db.begin() + forward.end_db);
  std::reverse(query_rev.begin(), query_rev.end());
  std::reverse(db_rev.begin(), db_rev.end());
  const ScoreResult backward = gotoh_score(query_rev, db_rev, scheme);
  SWDUAL_CHECK(backward.score == forward.score,
               "reverse pass lost the optimal score");
  region.query_begin = forward.end_query - backward.end_query + 1;
  region.db_begin = forward.end_db - backward.end_db + 1;
  return region;
}

Alignment sw_align_affine_frugal(std::span<const std::uint8_t> query,
                                 std::span<const std::uint8_t> db,
                                 const ScoringScheme& scheme) {
  const LocalRegion region = locate_best_alignment(query, db, scheme);
  if (region.score == 0) return {};

  const std::span<const std::uint8_t> query_slice =
      query.subspan(region.query_begin - 1,
                    region.query_end - region.query_begin + 1);
  const std::span<const std::uint8_t> db_slice =
      db.subspan(region.db_begin - 1, region.db_end - region.db_begin + 1);

  Alignment alignment = sw_align_affine(query_slice, db_slice, scheme);
  SWDUAL_CHECK(alignment.score == region.score,
               "region realignment lost the optimal score");
  alignment.query_begin += region.query_begin - 1;
  alignment.query_end += region.query_begin - 1;
  alignment.db_begin += region.db_begin - 1;
  alignment.db_end += region.db_begin - 1;
  return alignment;
}

}  // namespace swdual::align
