// AVX-512BW vector types: 64 unsigned-byte lanes (V8x64) and 32 signed
// 16-bit lanes (V16x32), implementing the interface contract of simd8.h /
// simd16.h. Requires AVX-512F + AVX-512BW (byte/word arithmetic and the
// full-width mask compares); nothing from VL/VBMI/DQ is used.
//
// Like simd_avx2.h, this header compiles to nothing unless the including
// translation unit enables AVX-512BW; only kernel_backend_avx512.cpp and
// the wide-wrapper test do. Runtime capability is a separate question
// answered by align::backend_available(Backend::kAVX512).
//
// shift_lanes_up crosses the four 128-bit lanes with the same carry idiom
// as AVX2, one level up: t = [a.2, a.1, a.0, 0] (each 128-bit lane's
// predecessor, built with maskz_shuffle_i64x2), then a per-lane alignr
// picks the crossing byte(s) from t.
#pragma once

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <algorithm>
#include <cstdint>
#include <immintrin.h>

#define SWDUAL_SIMD_AVX512 1

namespace swdual::align {

/// 64-lane unsigned byte vector (AVX-512BW).
struct V8x64 {
  static constexpr std::size_t kLanes = 64;
  using value_type = std::uint8_t;

  __m512i v;

  static V8x64 zero() { return {_mm512_setzero_si512()}; }
  static V8x64 splat(std::uint8_t x) {
    return {_mm512_set1_epi8(static_cast<char>(x))};
  }
  static V8x64 load(const std::uint8_t* p) {
    return {_mm512_loadu_si512(p)};
  }
  void store(std::uint8_t* p) const { _mm512_storeu_si512(p, v); }
  friend V8x64 adds(V8x64 a, V8x64 b) {
    return {_mm512_adds_epu8(a.v, b.v)};
  }
  friend V8x64 subs(V8x64 a, V8x64 b) {
    return {_mm512_subs_epu8(a.v, b.v)};
  }
  friend V8x64 max(V8x64 a, V8x64 b) { return {_mm512_max_epu8(a.v, b.v)}; }
  friend V8x64 min(V8x64 a, V8x64 b) { return {_mm512_min_epu8(a.v, b.v)}; }
  friend bool any_gt(V8x64 a, V8x64 b) {
    return _mm512_cmpgt_epu8_mask(a.v, b.v) != 0;
  }
  /// All-ones mask where a >= b lane-wise (unsigned), 0 elsewhere.
  friend V8x64 ge(V8x64 a, V8x64 b) {
    return {_mm512_movm_epi8(_mm512_cmpge_epu8_mask(a.v, b.v))};
  }
  friend V8x64 bit_and(V8x64 a, V8x64 b) {
    return {_mm512_and_si512(a.v, b.v)};
  }
  friend V8x64 bit_or(V8x64 a, V8x64 b) {
    return {_mm512_or_si512(a.v, b.v)};
  }
  /// Lane-wise select: a where mask is all-ones, b where mask is 0
  /// (ternlog 0xCA = mask ? a : b).
  friend V8x64 blend(V8x64 mask, V8x64 a, V8x64 b) {
    return {_mm512_ternarylogic_epi64(mask.v, a.v, b.v, 0xCA)};
  }
  /// Per-lane lookup into a 32-entry byte table; every idx lane must be < 32.
  /// vpshufb indexes within 16-byte quarters, so both table halves are
  /// broadcast to all four and bit 4 of the index selects between them.
  static V8x64 lut32(const std::uint8_t* table, V8x64 idx) {
    const __m512i lo = _mm512_broadcast_i32x4(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(table)));
    const __m512i hi = _mm512_broadcast_i32x4(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(table + 16)));
    const __m512i pick_lo = _mm512_shuffle_epi8(lo, idx.v);
    const __m512i pick_hi = _mm512_shuffle_epi8(hi, idx.v);
    const __mmask64 use_hi =
        _mm512_test_epi8_mask(idx.v, _mm512_set1_epi8(0x10));
    return {_mm512_mask_blend_epi8(use_hi, pick_lo, pick_hi)};
  }
  V8x64 shift_lanes_up() const {
    const __m512i t =
        _mm512_maskz_shuffle_i64x2(0xFC, v, v, 0x90);  // [a.2, a.1, a.0, 0]
    return {_mm512_alignr_epi8(v, t, 15)};
  }
  std::uint8_t lane(std::size_t i) const {
    alignas(64) std::uint8_t tmp[64];
    _mm512_store_si512(tmp, v);
    return tmp[i];
  }
  std::uint8_t hmax() const {
    alignas(64) std::uint8_t tmp[64];
    _mm512_store_si512(tmp, v);
    return *std::max_element(tmp, tmp + 64);
  }
};

/// 32-lane signed 16-bit vector (AVX-512BW).
struct V16x32 {
  static constexpr std::size_t kLanes = 32;
  using value_type = std::int16_t;

  __m512i v;

  static V16x32 zero() { return {_mm512_setzero_si512()}; }
  static V16x32 splat(std::int16_t x) { return {_mm512_set1_epi16(x)}; }
  static V16x32 load(const std::int16_t* p) {
    return {_mm512_loadu_si512(p)};
  }
  void store(std::int16_t* p) const { _mm512_storeu_si512(p, v); }
  friend V16x32 adds(V16x32 a, V16x32 b) {
    return {_mm512_adds_epi16(a.v, b.v)};
  }
  friend V16x32 subs(V16x32 a, V16x32 b) {
    return {_mm512_subs_epi16(a.v, b.v)};
  }
  friend V16x32 max(V16x32 a, V16x32 b) {
    return {_mm512_max_epi16(a.v, b.v)};
  }
  friend V16x32 min(V16x32 a, V16x32 b) {
    return {_mm512_min_epi16(a.v, b.v)};
  }
  friend bool any_gt(V16x32 a, V16x32 b) {
    return _mm512_cmpgt_epi16_mask(a.v, b.v) != 0;
  }
  /// All-ones mask where a >= b lane-wise (signed), 0 elsewhere.
  friend V16x32 ge(V16x32 a, V16x32 b) {
    return {_mm512_movm_epi16(_mm512_cmpge_epi16_mask(a.v, b.v))};
  }
  friend V16x32 bit_and(V16x32 a, V16x32 b) {
    return {_mm512_and_si512(a.v, b.v)};
  }
  friend V16x32 bit_or(V16x32 a, V16x32 b) {
    return {_mm512_or_si512(a.v, b.v)};
  }
  /// Lane-wise select: a where mask is all-ones, b where mask is 0
  /// (ternlog 0xCA = mask ? a : b).
  friend V16x32 blend(V16x32 mask, V16x32 a, V16x32 b) {
    return {_mm512_ternarylogic_epi64(mask.v, a.v, b.v, 0xCA)};
  }
  V16x32 shift_lanes_up(std::int16_t fill) const {
    const __m512i t =
        _mm512_maskz_shuffle_i64x2(0xFC, v, v, 0x90);  // [a.2, a.1, a.0, 0]
    const __m512i shifted = _mm512_alignr_epi8(v, t, 14);
    return {_mm512_mask_blend_epi16(__mmask32{1}, shifted,
                                    _mm512_set1_epi16(fill))};
  }
  std::int16_t lane(std::size_t i) const {
    alignas(64) std::int16_t tmp[32];
    _mm512_store_si512(tmp, v);
    return tmp[i];
  }
  std::int16_t hmax() const {
    alignas(64) std::int16_t tmp[32];
    _mm512_store_si512(tmp, v);
    std::int16_t best = tmp[0];
    for (int i = 1; i < 32; ++i) best = std::max(best, tmp[i]);
    return best;
  }
  void set_lane(std::size_t i, std::int16_t x) {
    alignas(64) std::int16_t tmp[32];
    _mm512_store_si512(tmp, v);
    tmp[i] = x;
    v = _mm512_load_si512(tmp);
  }
};

}  // namespace swdual::align

#endif  // __AVX512F__ && __AVX512BW__
