// Full-traceback pairwise alignment.
//
// These routines keep the whole DP matrix (O(m·n) memory) and recover the
// alignment path, unlike the score-only kernels in scalar.h. They back the
// annotated-results pipeline (annotate.h tracebacks the merged top-k winners
// to produce CIGARs), the memory-frugal wrappers in locate.h, and the Fig. 1
// example.
#pragma once

#include <cstdint>
#include <span>

#include "align/alignment.h"
#include "align/scoring.h"

namespace swdual::align {

/// Global (Needleman–Wunsch) alignment with the linear gap model used in the
/// paper's Fig. 1 example: match ma, mismatch mi, gap g (signed scores,
/// ma > 0 >= mi, g <= 0 conventionally).
Alignment nw_align_linear(std::span<const std::uint8_t> query,
                          std::span<const std::uint8_t> db,
                          const ScoreMatrix& matrix, int gap_penalty);

/// Global (Needleman–Wunsch–Gotoh) alignment with the affine-gap model:
/// both sequences are aligned end to end; leading/trailing gaps pay the
/// same affine penalties as internal ones.
Alignment nw_align_affine(std::span<const std::uint8_t> query,
                          std::span<const std::uint8_t> db,
                          const ScoringScheme& scheme);

/// Local (Smith–Waterman) alignment with the Gotoh affine-gap model; the
/// traceback starts at the best-scoring cell and stops at the first zero.
Alignment sw_align_affine(std::span<const std::uint8_t> query,
                          std::span<const std::uint8_t> db,
                          const ScoringScheme& scheme);

}  // namespace swdual::align
