// Fine-grained wavefront-parallel Smith–Waterman (paper Fig. 2).
//
// One DP matrix is partitioned into a grid of (row-chunk × column-block)
// tiles. Tile (r,c) depends on (r-1,c) (bottom boundary: H and F), (r,c-1)
// (right boundary: H and E) and (r-1,c-1) (corner H) — exactly the
// column-based block partition of §II-C, where PE p starts once its left
// neighbour has produced a border column. Tiles on the same anti-diagonal
// are independent and execute concurrently on a thread pool; the pipeline
// fills over the first (P-1) waves and drains over the last ones, which is
// the load imbalance the paper points out ("very close to the end of the
// matrix computation, only p3 is calculating").
//
// Exact: produces the same score as gotoh_score for every tiling.
#pragma once

#include <cstdint>
#include <span>

#include "align/scalar.h"
#include "align/scoring.h"
#include "util/thread_pool.h"

namespace swdual::align {

/// Tiling parameters for the wavefront execution.
struct WavefrontConfig {
  std::size_t row_chunk = 64;    ///< rows per tile (query dimension)
  std::size_t col_blocks = 4;    ///< column blocks (one per PE in Fig. 2)
};

/// Affine-gap local alignment score computed tile-wavefront-parallel on
/// `pool`. Exact for any configuration.
ScoreResult wavefront_gotoh_score(std::span<const std::uint8_t> query,
                                  std::span<const std::uint8_t> db,
                                  const ScoringScheme& scheme,
                                  ThreadPool& pool,
                                  const WavefrontConfig& config = {});

}  // namespace swdual::align
